/**
 * @file
 * Off-chip memory model: fixed access latency, access counting.
 *
 * The paper's Table 2 specifies a flat 160-cycle memory access time; the
 * evaluation metrics (LLC accesses, network traffic, sync latency) do not
 * depend on DRAM microarchitecture, so a fixed-latency model is faithful.
 */

#ifndef CBSIM_MEM_MEMORY_MODEL_HH
#define CBSIM_MEM_MEMORY_MODEL_HH

#include <functional>

#include "obs/registry.hh"
#include "sim/event_queue.hh"
#include "stats/stats.hh"

namespace cbsim {

/** Fixed-latency memory attached below the LLC banks. */
class MemoryModel
{
  public:
    MemoryModel(EventQueue& eq, Tick latency, const StatsScope& scope);

    /**
     * Issue a read of @p addr's line; @p done fires after the latency.
     * Templated so the completion schedules allocation-free.
     */
    template <typename F>
    void
    read(Addr addr, F&& done)
    {
        (void)addr;
        reads_.inc();
        eq_.schedule(latency_, std::forward<F>(done));
    }

    /** Issue a (write-back) write; fire-and-forget. */
    void write(Addr addr);

    Tick latency() const { return latency_; }

  private:
    EventQueue& eq_;
    Tick latency_;
    Counter reads_;
    Counter writes_;
};

} // namespace cbsim

#endif // CBSIM_MEM_MEMORY_MODEL_HH
