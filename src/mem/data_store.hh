/**
 * @file
 * Functional backing store for the simulated address space.
 *
 * The simulator separates timing (caches, protocols, network) from
 * function (values). All programs in this study are data-race-free except
 * for synchronization accesses that are serialized at the LLC, so a single
 * word-granular store that commits values in LLC/ownership order is
 * functionally exact (see DESIGN.md §3).
 *
 * Every simulated load and store lands here, so the container matters:
 * this is an open-addressing, linear-probe hash table (flat storage, no
 * per-node allocation, one cache line per probe) rather than a
 * node-based std::unordered_map. Nothing iterates the table, so its
 * layout has no determinism surface — only read/write/footprint are
 * observable, and those are container-independent.
 */

#ifndef CBSIM_MEM_DATA_STORE_HH
#define CBSIM_MEM_DATA_STORE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mem/addr.hh"
#include "sim/types.hh"

namespace cbsim {

/** Sparse word-granular value store; unwritten words read as zero. */
class DataStore
{
  public:
    DataStore() : slots_(initialSlots) {}

    /** Read the word containing @p addr. */
    Word
    read(Addr addr) const
    {
        const Addr key = AddrLayout::wordAlign(addr);
        for (std::size_t i = indexOf(key);; i = (i + 1) & mask()) {
            const Slot& s = slots_[i];
            if (!s.used)
                return 0;
            if (s.addr == key)
                return s.value;
        }
    }

    /** Write the word containing @p addr. */
    void
    write(Addr addr, Word value)
    {
        const Addr key = AddrLayout::wordAlign(addr);
        for (std::size_t i = indexOf(key);; i = (i + 1) & mask()) {
            Slot& s = slots_[i];
            if (s.used && s.addr == key) {
                s.value = value;
                return;
            }
            if (!s.used) {
                s = Slot{key, value, true};
                if (++used_ * 4 > slots_.size() * 3)
                    grow();
                return;
            }
        }
    }

    /** Number of distinct words ever written (for tests). */
    std::size_t footprintWords() const { return used_; }

  private:
    struct Slot
    {
        Addr addr = 0;
        Word value = 0;
        bool used = false;
    };

    static constexpr std::size_t initialSlots = 1024; // power of two

    std::size_t mask() const { return slots_.size() - 1; }

    std::size_t
    indexOf(Addr key) const
    {
        // Fibonacci-style multiplicative mix; the shift folds the high
        // bits down so word-aligned keys spread across the table.
        const std::uint64_t h = key * 0x9E3779B97F4A7C15ull;
        return static_cast<std::size_t>(h >> 32) & mask();
    }

    void
    grow()
    {
        std::vector<Slot> old(slots_.size() * 2);
        old.swap(slots_);
        for (const Slot& s : old) {
            if (!s.used)
                continue;
            std::size_t i = indexOf(s.addr);
            while (slots_[i].used)
                i = (i + 1) & mask();
            slots_[i] = s;
        }
    }

    std::vector<Slot> slots_;
    std::size_t used_ = 0;
};

} // namespace cbsim

#endif // CBSIM_MEM_DATA_STORE_HH
