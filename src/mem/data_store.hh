/**
 * @file
 * Functional backing store for the simulated address space.
 *
 * The simulator separates timing (caches, protocols, network) from
 * function (values). All programs in this study are data-race-free except
 * for synchronization accesses that are serialized at the LLC, so a single
 * word-granular store that commits values in LLC/ownership order is
 * functionally exact (see DESIGN.md §3).
 */

#ifndef CBSIM_MEM_DATA_STORE_HH
#define CBSIM_MEM_DATA_STORE_HH

#include <unordered_map>

#include "mem/addr.hh"
#include "sim/types.hh"

namespace cbsim {

/** Sparse word-granular value store; unwritten words read as zero. */
class DataStore
{
  public:
    /** Read the word containing @p addr. */
    Word read(Addr addr) const;

    /** Write the word containing @p addr. */
    void write(Addr addr, Word value);

    /** Number of distinct words ever written (for tests). */
    std::size_t footprintWords() const { return words_.size(); }

  private:
    std::unordered_map<Addr, Word> words_;
};

} // namespace cbsim

#endif // CBSIM_MEM_DATA_STORE_HH
