// CacheArray is a header-only template; this file anchors the module in
// the build graph.
#include "mem/cache_array.hh"
