/**
 * @file
 * Line-lock / MSHR table used by LLC banks and directories.
 *
 * Two protocol needs map onto the same structure:
 *  - RMW atomicity at the LLC (paper §2.6): while an atomic transaction
 *    holds the line's MSHR lock, every other operation on that line is
 *    queued in the LLC controller and replayed on unlock.
 *  - Blocking directory (MESI): while a line's transaction is in flight
 *    (e.g., invalidations outstanding), later requests queue.
 *
 * The table sits on the LLC dispatch fast path (every bank operation
 * probes it), so it is deliberately not a hash map: only a handful of
 * lines are ever locked at once per bank, and a linear scan over a flat
 * entry vector beats hashing at that size. Deferred operations are
 * stored as inline Events (see sim/event.hh) rather than std::function,
 * so queuing a replayed message never heap-allocates; an uncontended
 * lock/unlock cycle performs no allocation at all.
 */

#ifndef CBSIM_MEM_MSHR_HH
#define CBSIM_MEM_MSHR_HH

#include <utility>
#include <vector>

#include "mem/addr.hh"
#include "sim/event.hh"
#include "sim/log.hh"
#include "sim/types.hh"

namespace cbsim {

/** Deferred operation replayed when a line unlocks. */
using DeferredOp = Event;

/** Per-line lock table with FIFO replay of deferred operations. */
class LineLockTable
{
  public:
    /** True if @p addr's line is currently locked. */
    bool
    isLocked(Addr addr) const
    {
        return findEntry(AddrLayout::lineAlign(addr)) != npos;
    }

    /**
     * Lock @p addr's line.
     * @pre the line is not already locked.
     */
    void
    lock(Addr addr)
    {
        const Addr line = AddrLayout::lineAlign(addr);
        CBSIM_ASSERT(findEntry(line) == npos,
                     "locking an already-locked line");
        entries_.emplace_back(Entry{line, {}});
    }

    /**
     * Queue @p op to be replayed when @p addr's line unlocks.
     * @pre the line is locked.
     */
    void
    defer(Addr addr, DeferredOp op)
    {
        const std::size_t i = findEntry(AddrLayout::lineAlign(addr));
        CBSIM_ASSERT(i != npos, "defer on unlocked line");
        entries_[i].deferred.push_back(std::move(op));
    }

    /**
     * Unlock @p addr's line and collect its deferred operations in FIFO
     * order. The caller replays them (typically by re-dispatching each
     * original message), which lets a replayed op re-lock the line.
     */
    std::vector<DeferredOp>
    unlock(Addr addr)
    {
        const std::size_t i = findEntry(AddrLayout::lineAlign(addr));
        CBSIM_ASSERT(i != npos, "unlock on unlocked line");
        std::vector<DeferredOp> ops = std::move(entries_[i].deferred);
        entries_[i] = std::move(entries_.back());
        entries_.pop_back();
        return ops;
    }

    /** Number of currently locked lines (for tests). */
    std::size_t lockedLines() const { return entries_.size(); }

    /** Visit every locked line: fn(lineAddr, deferredOpCount). For the
     *  invariant checker's leak pass and forensic dumps. */
    template <typename Fn>
    void
    forEachLocked(Fn&& fn) const
    {
        for (const Entry& e : entries_)
            fn(e.line, e.deferred.size());
    }

  private:
    struct Entry
    {
        Addr line;
        std::vector<DeferredOp> deferred;
    };

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    std::size_t
    findEntry(Addr line) const
    {
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            if (entries_[i].line == line)
                return i;
        }
        return npos;
    }

    std::vector<Entry> entries_;
};

} // namespace cbsim

#endif // CBSIM_MEM_MSHR_HH
