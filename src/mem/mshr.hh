/**
 * @file
 * Line-lock / MSHR table used by LLC banks and directories.
 *
 * Two protocol needs map onto the same structure:
 *  - RMW atomicity at the LLC (paper §2.6): while an atomic transaction
 *    holds the line's MSHR lock, every other operation on that line is
 *    queued in the LLC controller and replayed on unlock.
 *  - Blocking directory (MESI): while a line's transaction is in flight
 *    (e.g., invalidations outstanding), later requests queue.
 */

#ifndef CBSIM_MEM_MSHR_HH
#define CBSIM_MEM_MSHR_HH

#include <deque>
#include <functional>
#include <unordered_map>

#include "mem/addr.hh"
#include "sim/log.hh"
#include "sim/types.hh"

namespace cbsim {

/** Deferred operation replayed when a line unlocks. */
using DeferredOp = std::function<void()>;

/** Per-line lock table with FIFO replay of deferred operations. */
class LineLockTable
{
  public:
    /** True if @p addr's line is currently locked. */
    bool isLocked(Addr addr) const;

    /**
     * Lock @p addr's line.
     * @pre the line is not already locked.
     */
    void lock(Addr addr);

    /**
     * Queue @p op to be replayed when @p addr's line unlocks.
     * @pre the line is locked.
     */
    void defer(Addr addr, DeferredOp op);

    /**
     * Unlock @p addr's line and collect its deferred operations in FIFO
     * order. The caller replays them (typically by re-dispatching each
     * original message), which lets a replayed op re-lock the line.
     */
    std::deque<DeferredOp> unlock(Addr addr);

    /** Number of currently locked lines (for tests). */
    std::size_t lockedLines() const { return locks_.size(); }

  private:
    struct Entry
    {
        std::deque<DeferredOp> deferred;
    };

    std::unordered_map<Addr, Entry> locks_; ///< keyed by line address
};

} // namespace cbsim

#endif // CBSIM_MEM_MSHR_HH
