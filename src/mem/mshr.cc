#include "mem/mshr.hh"

namespace cbsim {

bool
LineLockTable::isLocked(Addr addr) const
{
    return locks_.count(AddrLayout::lineAlign(addr)) != 0;
}

void
LineLockTable::lock(Addr addr)
{
    const Addr line = AddrLayout::lineAlign(addr);
    auto [it, inserted] = locks_.emplace(line, Entry{});
    (void)it;
    CBSIM_ASSERT(inserted, "locking an already-locked line");
}

void
LineLockTable::defer(Addr addr, DeferredOp op)
{
    auto it = locks_.find(AddrLayout::lineAlign(addr));
    CBSIM_ASSERT(it != locks_.end(), "defer on unlocked line");
    it->second.deferred.push_back(std::move(op));
}

std::deque<DeferredOp>
LineLockTable::unlock(Addr addr)
{
    auto it = locks_.find(AddrLayout::lineAlign(addr));
    CBSIM_ASSERT(it != locks_.end(), "unlock on unlocked line");
    auto ops = std::move(it->second.deferred);
    locks_.erase(it);
    return ops;
}

} // namespace cbsim
