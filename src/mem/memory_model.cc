#include "mem/memory_model.hh"

namespace cbsim {

MemoryModel::MemoryModel(EventQueue& eq, Tick latency,
                         const StatsScope& scope)
    : eq_(eq), latency_(latency)
{
    scope.add("reads", reads_);
    scope.add("writes", writes_);
}

void
MemoryModel::write(Addr addr)
{
    (void)addr;
    writes_.inc();
}

} // namespace cbsim
