#include "mem/memory_model.hh"

namespace cbsim {

MemoryModel::MemoryModel(EventQueue& eq, Tick latency, StatSet& stats)
    : eq_(eq), latency_(latency)
{
    stats.add("mem.reads", reads_);
    stats.add("mem.writes", writes_);
}

void
MemoryModel::write(Addr addr)
{
    (void)addr;
    writes_.inc();
}

} // namespace cbsim
