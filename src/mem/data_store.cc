#include "mem/data_store.hh"

namespace cbsim {

Word
DataStore::read(Addr addr) const
{
    auto it = words_.find(AddrLayout::wordAlign(addr));
    return it == words_.end() ? 0 : it->second;
}

void
DataStore::write(Addr addr, Word value)
{
    words_[AddrLayout::wordAlign(addr)] = value;
}

} // namespace cbsim
