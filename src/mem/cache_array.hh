/**
 * @file
 * Generic set-associative tag/state array with true-LRU replacement.
 *
 * Protocol controllers store their per-line state in the templated entry
 * type. The array is purely structural: it knows nothing about coherence.
 */

#ifndef CBSIM_MEM_CACHE_ARRAY_HH
#define CBSIM_MEM_CACHE_ARRAY_HH

#include <bit>
#include <cstdint>
#include <optional>
#include <vector>

#include "mem/addr.hh"
#include "sim/log.hh"
#include "sim/types.hh"

namespace cbsim {

/** Geometry of a cache structure. */
struct CacheGeometry
{
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned ways = 4;
    unsigned lineBytes = AddrLayout::lineBytes;

    /**
     * Divisor applied to the line number before set selection. A bank
     * of an N-way interleaved LLC only ever sees line numbers congruent
     * to its bank id mod N; dividing by N first makes all sets usable.
     * Private caches keep the default of 1.
     */
    unsigned indexDivisor = 1;

    std::uint64_t
    numSets() const
    {
        CBSIM_ASSERT(ways > 0 && lineBytes > 0, "bad geometry");
        const std::uint64_t lines = sizeBytes / lineBytes;
        CBSIM_ASSERT(lines % ways == 0, "size not divisible by ways");
        return lines / ways;
    }
};

/**
 * Set-associative array of StateT entries, indexed by line address.
 *
 * @tparam StateT per-line protocol state; must be default-constructible.
 */
template <typename StateT>
class CacheArray
{
  public:
    struct Line
    {
        bool valid = false;
        Addr tag = 0;          ///< full line address (simple, unambiguous)
        std::uint64_t lru = 0; ///< last-touch stamp
        StateT state{};
    };

    explicit CacheArray(const CacheGeometry& geom)
        : geom_(geom), sets_(geom.numSets()),
          fastIndex_(std::has_single_bit(std::uint64_t{geom.indexDivisor}) &&
                     std::has_single_bit(sets_)),
          divShift_(static_cast<unsigned>(
              std::countr_zero(std::uint64_t{geom.indexDivisor}))),
          setMask_(sets_ - 1), lines_(sets_ * geom.ways), mruIdx_(sets_)
    {
    }

    std::uint64_t numSets() const { return sets_; }
    unsigned ways() const { return geom_.ways; }

    /** Look up @p addr; returns the line or nullptr. Does not touch LRU. */
    Line*
    find(Addr addr)
    {
        const Addr line_addr = AddrLayout::lineAlign(addr);
        const std::size_t set = setOf(line_addr);
        const std::size_t base = set * geom_.ways;
        const std::size_t end = base + geom_.ways;
        // Most-recently-hit way first: spin-wait loops probe the same
        // line back to back, so this usually resolves in one compare
        // instead of a scan over every way. Purely an access-order
        // shortcut — the returned line is the same either way. (A cold
        // hint may point into another set; the tag compare rejects it,
        // since a line address maps to exactly one set.)
        Line& hint = lines_[mruIdx_[set]];
        if (hint.valid && hint.tag == line_addr)
            return &hint;
        for (auto i = base; i < end; ++i) {
            if (lines_[i].valid && lines_[i].tag == line_addr) {
                mruIdx_[set] = i;
                return &lines_[i];
            }
        }
        return nullptr;
    }

    const Line*
    find(Addr addr) const
    {
        return const_cast<CacheArray*>(this)->find(addr);
    }

    /** Mark @p line most recently used. */
    void touch(Line& line) { line.lru = ++stamp_; }

    /**
     * Pick the victim way in @p addr's set: an invalid way if any,
     * otherwise the true-LRU valid way. Never returns nullptr.
     */
    Line*
    victim(Addr addr)
    {
        const Addr line_addr = AddrLayout::lineAlign(addr);
        auto [base, end] = setRange(line_addr);
        Line* lru_line = nullptr;
        for (auto i = base; i < end; ++i) {
            if (!lines_[i].valid)
                return &lines_[i];
            if (!lru_line || lines_[i].lru < lru_line->lru)
                lru_line = &lines_[i];
        }
        return lru_line;
    }

    /**
     * Like victim(), but only lines for which @p usable returns true may
     * be displaced (invalid ways always qualify). Returns nullptr when
     * every way in the set is pinned — callers retry later.
     */
    template <typename Pred>
    Line*
    victimIf(Addr addr, Pred usable)
    {
        const Addr line_addr = AddrLayout::lineAlign(addr);
        auto [base, end] = setRange(line_addr);
        Line* lru_line = nullptr;
        for (auto i = base; i < end; ++i) {
            if (!lines_[i].valid)
                return &lines_[i];
            if (!usable(lines_[i]))
                continue;
            if (!lru_line || lines_[i].lru < lru_line->lru)
                lru_line = &lines_[i];
        }
        return lru_line;
    }

    /**
     * Install @p addr into @p line (which must belong to addr's set),
     * resetting its state and touching LRU.
     */
    void
    install(Line& line, Addr addr)
    {
        line.valid = true;
        line.tag = AddrLayout::lineAlign(addr);
        line.state = StateT{};
        touch(line);
    }

    void
    invalidate(Line& line)
    {
        line.valid = false;
        line.state = StateT{};
    }

    /** Apply @p fn to every valid line (e.g., self-invalidation sweeps). */
    template <typename Fn>
    void
    forEachValid(Fn&& fn)
    {
        for (auto& line : lines_) {
            if (line.valid)
                fn(line);
        }
    }

    /** Read-only walk over valid lines (invariant checker, forensics). */
    template <typename Fn>
    void
    forEachValid(Fn&& fn) const
    {
        for (const auto& line : lines_) {
            if (line.valid)
                fn(line);
        }
    }

    /** Count of valid lines (for tests). */
    std::size_t
    validCount() const
    {
        std::size_t n = 0;
        for (const auto& line : lines_)
            n += line.valid ? 1 : 0;
        return n;
    }

  private:
    /**
     * Set index of @p line_addr. Shift/mask when the geometry allows
     * it: set selection runs on every lookup and integer division
     * costs tens of cycles. The div/mod path stays for
     * non-power-of-two core counts (9, 25, 49 cores give indexDivisor
     * 9/25/49).
     */
    std::size_t
    setOf(Addr line_addr) const
    {
        const std::uint64_t ln = AddrLayout::lineNumber(line_addr);
        return fastIndex_ ? (ln >> divShift_) & setMask_
                          : (ln / geom_.indexDivisor) % sets_;
    }

    std::pair<std::size_t, std::size_t>
    setRange(Addr line_addr) const
    {
        const std::uint64_t set = setOf(line_addr);
        return {set * geom_.ways, (set + 1) * geom_.ways};
    }

    CacheGeometry geom_;
    std::uint64_t sets_;
    bool fastIndex_;        ///< divisor and set count are powers of two
    unsigned divShift_;     ///< log2(indexDivisor), fastIndex_ only
    std::uint64_t setMask_; ///< sets_ - 1, fastIndex_ only
    std::vector<Line> lines_;
    /** Per-set index (into lines_) of the most recently hit way. */
    std::vector<std::size_t> mruIdx_;
    std::uint64_t stamp_ = 0;
};

} // namespace cbsim

#endif // CBSIM_MEM_CACHE_ARRAY_HH
