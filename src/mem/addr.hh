/**
 * @file
 * Address arithmetic: line/word/page extraction and LLC bank interleaving.
 *
 * The simulated address space is word-granular (8-byte words) with
 * 64-byte lines and 4 KB pages (paper Table 2). LLC banks are interleaved
 * on line addresses.
 */

#ifndef CBSIM_MEM_ADDR_HH
#define CBSIM_MEM_ADDR_HH

#include "sim/log.hh"
#include "sim/types.hh"

namespace cbsim {

/** Geometry constants (Table 2). */
struct AddrLayout
{
    static constexpr unsigned wordBytes = 8;
    static constexpr unsigned lineBytes = 64;
    static constexpr unsigned pageBytes = 4096;
    static constexpr unsigned wordsPerLine = lineBytes / wordBytes;

    static Addr wordAlign(Addr a) { return a & ~Addr(wordBytes - 1); }
    static Addr lineAlign(Addr a) { return a & ~Addr(lineBytes - 1); }
    static Addr pageAlign(Addr a) { return a & ~Addr(pageBytes - 1); }

    static Addr lineNumber(Addr a) { return a / lineBytes; }
    static Addr pageNumber(Addr a) { return a / pageBytes; }

    /** Word index within its line, 0..7. */
    static unsigned
    wordInLine(Addr a)
    {
        return static_cast<unsigned>((a / wordBytes) % wordsPerLine);
    }

    /** Line-interleaved home bank for @p a among @p num_banks banks. */
    static BankId
    bankOf(Addr a, unsigned num_banks)
    {
        CBSIM_ASSERT(num_banks > 0, "bankOf: zero banks");
        // Mask when the bank count allows: this runs per issued
        // message, and core counts are usually powers of two (the
        // modulo stays for 9/25/49-core meshes).
        const Addr ln = lineNumber(a);
        if ((num_banks & (num_banks - 1)) == 0)
            return static_cast<BankId>(ln & (num_banks - 1));
        return static_cast<BankId>(ln % num_banks);
    }
};

} // namespace cbsim

#endif // CBSIM_MEM_ADDR_HH
