#include "coherence/mesi/mesi_llc.hh"

#include "harness/json.hh"

#include <bit>

#include "mem/addr.hh"
#include "obs/attribution.hh"
#include "sim/log.hh"
#include "sim/trace.hh"

namespace cbsim {

MesiLlcBank::MesiLlcBank(BankId bank, EventQueue& eq, Mesh& mesh,
                         DataStore& data, MemoryModel& memory,
                         const CacheGeometry& geom, const LlcTiming& timing)
    : bank_(bank), eq_(eq), mesh_(mesh), data_(data), memory_(memory),
      array_(geom), timing_(timing), pipe_(eq)
{
}

void
MesiLlcBank::handleMessage(const Message& msg)
{
    switch (msg.type) {
      case MsgType::InvAck:
        handleInvAck(msg);
        return;
      case MsgType::Data:
        handleOwnerData(msg);
        return;
      case MsgType::GetS:
      case MsgType::GetX:
      case MsgType::PutM:
        dispatch(msg);
        return;
      default:
        panic("MesiLlcBank: unexpected message ", msg.toString());
    }
}

void
MesiLlcBank::dispatch(const Message& msg)
{
    const Addr line_addr = AddrLayout::lineAlign(msg.addr);
    CBSIM_TRACE(TraceCategory::Llc, eq_.now(), line_addr,
                "bank " << bank_ << " dispatch " << msg.toString()
                        << (locks_.isLocked(line_addr) ? " [deferred]"
                                                       : ""));
    if (locks_.isLocked(line_addr)) {
        locks_.defer(line_addr, [this, msg] { dispatch(msg); });
        return;
    }
    Line* line = ensurePresent(msg);
    if (!line)
        return; // fetching; dispatch re-runs when the fill completes

    switch (msg.type) {
      case MsgType::GetS:
        handleGetS(msg, *line);
        break;
      case MsgType::GetX:
        handleGetX(msg, *line);
        break;
      case MsgType::PutM:
        handlePutM(msg, *line);
        break;
      default:
        panic("dispatch: bad type");
    }
}

MesiLlcBank::Line*
MesiLlcBank::ensurePresent(const Message& msg)
{
    const Addr line_addr = AddrLayout::lineAlign(msg.addr);
    if (auto* line = array_.find(line_addr)) {
        array_.touch(*line);
        return line;
    }
    // Miss: lock the line, fetch from memory, then replay.
    locks_.lock(line_addr);
    fills_.inc();
    memory_.read(line_addr, [this, msg, line_addr] { fillLine(msg, line_addr); });
    return nullptr;
}

void
MesiLlcBank::fillLine(const Message& msg, Addr line_addr)
{
    auto* victim = array_.victimIf(
        line_addr, [this](const Line& l) { return !locks_.isLocked(l.tag); });
    if (!victim) {
        // Every way in the set is pinned by an in-flight transaction;
        // retry shortly.
        eq_.schedule(4, [this, msg, line_addr] { fillLine(msg, line_addr); });
        return;
    }
    {
        if (victim->valid) {
            // Inclusive eviction: recall L1 copies. Acks are not awaited;
            // stale InvAcks are ignored by handleInvAck.
            auto& dir = victim->state;
            if (dir.sharers != 0 || dir.owner != invalidCore) {
                recalls_.inc();
                for (CoreId c = 0; c < 64; ++c) {
                    const bool sharer = dir.sharers & (1ULL << c);
                    if (sharer || dir.owner == c)
                        sendInv(c, victim->tag, 0);
                }
            }
            memory_.write(victim->tag);
        }
        array_.install(*victim, line_addr);
        accesses_.inc(); // fill writes the data array
        unlockAndReplay(line_addr);
        dispatch(msg);
    }
}

void
MesiLlcBank::sendData(const Message& req, bool exclusive, Tick extra)
{
    accesses_.inc();
    if (req.sync)
        syncAccesses_.inc();
    Message rsp;
    rsp.type = MsgType::Data;
    rsp.src = bank_;
    rsp.dst = req.src;
    rsp.dstPort = Port::Core;
    rsp.requester = req.requester;
    rsp.addr = req.addr;
    rsp.exclusive = exclusive;
    rsp.txn = req.txn;
    pipe_.access(timing_.dataLatency + extra,
                 [this, rsp] { mesh_.send(rsp); });
}

void
MesiLlcBank::sendInv(CoreId target, Addr addr, std::uint64_t txn)
{
    invsSent_.inc();
    Message inv;
    inv.type = MsgType::Inv;
    inv.src = bank_;
    inv.dst = nodeOfCore(target);
    inv.dstPort = Port::Core;
    inv.addr = addr;
    inv.txn = txn;
    mesh_.send(inv);
}

void
MesiLlcBank::handleGetS(const Message& msg, Line& line)
{
    auto& dir = line.state;
    const std::uint64_t bit = 1ULL << msg.requester;

    if (dir.owner != invalidCore && dir.owner != msg.requester) {
        // Owner holds E/M: fetch the line back, then answer shared.
        const Addr line_addr = line.tag;
        locks_.lock(line_addr);
        Txn txn;
        txn.request = msg;
        txn.waitingOwner = true;
        txns_.emplace(line_addr, txn);
        Message fwd;
        fwd.type = MsgType::FwdGetS;
        fwd.src = bank_;
        fwd.dst = nodeOfCore(dir.owner);
        fwd.dstPort = Port::Core;
        fwd.addr = line_addr;
        fwd.txn = msg.txn;
        pipe_.access(timing_.tagLatency, [this, fwd] { mesh_.send(fwd); });
        return;
    }

    if (dir.owner == invalidCore && dir.sharers == 0) {
        // First reader: grant E; track the E-holder as owner.
        dir.owner = msg.requester;
        sendData(msg, /*exclusive=*/true);
    } else {
        if (dir.owner == msg.requester)
            dir.owner = invalidCore; // stale E-owner re-requesting
        dir.sharers |= bit;
        sendData(msg, /*exclusive=*/false);
    }
}

void
MesiLlcBank::handleGetX(const Message& msg, Line& line)
{
    auto& dir = line.state;
    const std::uint64_t bit = 1ULL << msg.requester;
    const Addr line_addr = line.tag;

    if (dir.owner != invalidCore && dir.owner != msg.requester) {
        locks_.lock(line_addr);
        Txn txn;
        txn.request = msg;
        txn.waitingOwner = true;
        txns_.emplace(line_addr, txn);
        Message fwd;
        fwd.type = MsgType::FwdGetX;
        fwd.src = bank_;
        fwd.dst = nodeOfCore(dir.owner);
        fwd.dstPort = Port::Core;
        fwd.addr = line_addr;
        fwd.txn = msg.txn;
        pipe_.access(timing_.tagLatency, [this, fwd] { mesh_.send(fwd); });
        return;
    }

    const std::uint64_t to_inv = dir.sharers & ~bit;
    if (to_inv != 0) {
        locks_.lock(line_addr);
        Txn txn;
        txn.request = msg;
        txn.acksLeft = static_cast<unsigned>(std::popcount(to_inv));
        invFanout_.sample(txn.acksLeft);
        if (attr_ != nullptr && msg.sync)
            attr_->row(line_addr).invalidations += txn.acksLeft;
        txns_.emplace(line_addr, txn);
        pipe_.access(timing_.tagLatency, [this, to_inv, line_addr, msg] {
            for (CoreId c = 0; c < 64; ++c) {
                if (to_inv & (1ULL << c))
                    sendInv(c, line_addr, msg.txn);
            }
        });
        return;
    }

    dir.sharers = 0;
    dir.owner = msg.requester;
    sendData(msg, /*exclusive=*/true);
}

void
MesiLlcBank::handlePutM(const Message& msg, Line& line)
{
    auto& dir = line.state;
    if (dir.owner == msg.requester) {
        dir.owner = invalidCore;
        accesses_.inc(); // write the returned dirty line
    }
    // Stale PutM (crossed a FwdGetX): silently dropped.
}

void
MesiLlcBank::handleInvAck(const Message& msg)
{
    const Addr line_addr = AddrLayout::lineAlign(msg.addr);
    auto it = txns_.find(line_addr);
    if (it == txns_.end())
        return; // recall ack: nothing to do
    Txn& txn = it->second;
    if (txn.acksLeft == 0)
        return; // stray ack for an owner-data transaction
    if (msg.txn != txn.request.txn)
        return; // stale ack (e.g., from an untracked recall)
    if (--txn.acksLeft == 0)
        finishTxn(line_addr);
}

void
MesiLlcBank::handleOwnerData(const Message& msg)
{
    const Addr line_addr = AddrLayout::lineAlign(msg.addr);
    auto it = txns_.find(line_addr);
    if (it == txns_.end())
        return; // stale writeback data
    if (!it->second.waitingOwner)
        return;
    accesses_.inc(); // the owner's line is written into the LLC
    finishTxn(line_addr);
}

void
MesiLlcBank::finishTxn(Addr line_addr)
{
    auto it = txns_.find(line_addr);
    CBSIM_ASSERT(it != txns_.end(), "finishTxn without txn");
    const Message req = it->second.request;
    const bool was_fwd = it->second.waitingOwner;
    txns_.erase(it);

    auto* line = array_.find(line_addr);
    CBSIM_ASSERT(line, "txn on non-resident line");
    auto& dir = line->state;

    if (req.type == MsgType::GetS) {
        CBSIM_ASSERT(was_fwd, "GetS txn must wait for the owner");
        dir.sharers |= (1ULL << dir.owner) | (1ULL << req.requester);
        dir.owner = invalidCore;
        sendData(req, /*exclusive=*/false);
    } else {
        CBSIM_ASSERT(req.type == MsgType::GetX, "bad txn request");
        dir.sharers = 0;
        dir.owner = req.requester;
        sendData(req, /*exclusive=*/true);
    }
    unlockAndReplay(line_addr);
}

void
MesiLlcBank::unlockAndReplay(Addr line_addr)
{
    auto deferred = locks_.unlock(line_addr);
    for (auto& op : deferred)
        eq_.schedule(0, std::move(op));
}

std::uint64_t
MesiLlcBank::sharersOf(Addr addr) const
{
    const auto* line = array_.find(addr);
    return line ? line->state.sharers : 0;
}

CoreId
MesiLlcBank::ownerOf(Addr addr) const
{
    const auto* line = array_.find(addr);
    return line ? line->state.owner : invalidCore;
}

std::vector<Addr>
MesiLlcBank::openTxnAddrs() const
{
    std::vector<Addr> out;
    out.reserve(txns_.size());
    for (const auto& [addr, txn] : txns_)
        out.push_back(addr);
    return out;
}

void
MesiLlcBank::dumpDebug(JsonWriter& w) const
{
    w.beginObject();
    w.field("protocol", "mesi");
    w.field("bank", static_cast<std::uint64_t>(bank_));
    w.field("resident_lines",
            static_cast<std::uint64_t>(array_.validCount()));
    w.key("open_txns");
    w.beginArray();
    for (const auto& [addr, txn] : txns_) {
        w.beginObject();
        w.field("line", static_cast<std::uint64_t>(addr));
        w.field("request", msgTypeName(txn.request.type));
        w.field("requester",
                static_cast<std::uint64_t>(txn.request.requester));
        w.field("acks_left", static_cast<std::uint64_t>(txn.acksLeft));
        w.field("waiting_owner", txn.waitingOwner);
        w.endObject();
    }
    w.endArray();
    w.key("locked_lines");
    w.beginArray();
    locks_.forEachLocked([&w](Addr line, std::size_t deferred) {
        w.beginObject();
        w.field("line", static_cast<std::uint64_t>(line));
        w.field("deferred_ops", static_cast<std::uint64_t>(deferred));
        w.endObject();
    });
    w.endArray();
    w.endObject();
}

void
MesiLlcBank::registerStats(const StatsScope& scope)
{
    scope.add("accesses", accesses_);
    scope.add("sync_accesses", syncAccesses_);
    scope.add("invs_sent", invsSent_);
    scope.add("fills", fills_);
    scope.add("recalls", recalls_);
    scope.add("inv_fanout", invFanout_);
}

} // namespace cbsim
