/**
 * @file
 * L1 side of the invalidation-based MESI directory protocol (the paper's
 * "Invalidation" baseline).
 *
 * Spin loops hit locally in the L1 (S state) and are broken by explicit
 * invalidations when the writer's GetX reaches the directory. Atomics
 * acquire M state and execute locally, so a contended Test&Set storm
 * invalidates all spinning readers on every attempt — the behaviour
 * behind Figure 20's "Invalidation is outpaced for naive sync" result.
 *
 * Racy VIPS-style operations (ld_through, ld_cb, st_cb*) degrade to
 * ordinary cached loads/stores under MESI, which lets the same programs
 * run on either protocol.
 */

#ifndef CBSIM_COHERENCE_MESI_MESI_L1_HH
#define CBSIM_COHERENCE_MESI_MESI_L1_HH

#include <optional>
#include <vector>

#include "coherence/controller.hh"
#include "mem/cache_array.hh"
#include "mem/data_store.hh"
#include "noc/mesh.hh"
#include "sim/event_queue.hh"

namespace cbsim {

/** Stable MESI states; I is represented by absence from the array. */
enum class MesiState : std::uint8_t
{
    S,
    E,
    M,
};

/** Per-core L1 controller for the MESI protocol. */
class MesiL1 : public L1Controller
{
  public:
    /**
     * @param node     mesh node hosting this core
     * @param l1_geom  L1 geometry (Table 2: 32 KB, 4-way)
     * @param num_banks LLC bank count for address interleaving
     */
    /**
     * @param pause_interval local spin-loop re-check period (cycles);
     *        used for the spin-watch fast path's timing quantization
     *        and L1-energy accounting
     */
    MesiL1(CoreId core, NodeId node, EventQueue& eq, Mesh& mesh,
           DataStore& data, const CacheGeometry& l1_geom, Tick l1_latency,
           unsigned num_banks, Tick pause_interval = 12);

    void access(MemRequest req) override;
    void selfInvalidate(FenceCompletion done) override;
    void selfDowngrade(FenceCompletion done) override;
    void handleMessage(const Message& msg) override;

    /** Current state of @p addr's line (for tests); nullopt if I. */
    std::optional<MesiState> lineState(Addr addr) const;

    /**
     * Snapshot of all valid lines (for the SWMR protocol checker in
     * tests): pairs of (line address, stable state).
     */
    std::vector<std::pair<Addr, MesiState>> cachedLines() const;

    /**
     * Line address of the outstanding miss, if any. The invariant
     * checker skips lines with a pending transaction at either end.
     */
    std::optional<Addr> pendingLine() const;

    void dumpDebug(JsonWriter& w) const override;

    void registerStats(const StatsScope& scope);

    /**
     * Enable contention attribution: spin re-acquires after an
     * invalidation are charged to the watched line in this L1's shard.
     */
    void setAttribution(AttributionTable* attr) { attr_ = attr; }

  private:
    struct LineInfo
    {
        MesiState state = MesiState::S;
    };

    /** Collapse Table 1 ops onto plain cached accesses (see file doc). */
    static MemOp canonicalOp(MemOp op);

    void finishLocal(const MemRequest& req, MesiState state);
    void sendToHome(MsgType type, Addr addr, bool sync);
    void installAndComplete(const Message& msg);
    void evictFor(Addr addr);

    CoreId core_;
    NodeId node_;
    EventQueue& eq_;
    Mesh& mesh_;
    DataStore& data_;
    CacheArray<LineInfo> array_;
    Tick l1Latency_;
    unsigned numBanks_;
    Tick pauseInterval_;

    /** The single outstanding miss (cores block on memory ops). */
    struct Pending
    {
        MemRequest req;
        Addr lineAddr = 0;
        bool wantExclusive = false;
        /**
         * IS_D race: an invalidation for an earlier transaction arrived
         * while our shared-data response was in flight. The directory
         * no longer tracks us, so the arriving data may only satisfy
         * this one load; the line is dropped right after install.
         */
        bool invalidateOnInstall = false;
    };
    std::optional<Pending> pending_;
    std::uint64_t nextTxn_ = 1;

    /**
     * Forward requests that raced ahead of our in-flight exclusive
     * miss's Data response (the IM_D transient): deferred until the
     * line installs and the pending store/atomic commits, then replayed.
     */
    std::vector<Message> stashedFwds_;

    /**
     * Spin-watch fast path: a spin-marked load that re-reads the same
     * cached, unchanged value is parked here instead of re-executing
     * every pause interval. It resumes (re-issuing the load) when the
     * line is invalidated — the only event that can change the value
     * under MESI — or at a coarse liveness timeout. Waiting is
     * event-free; on wake the elapsed re-checks are charged to the L1
     * access counter so the energy model sees the spinning.
     */
    struct SpinWatch
    {
        MemRequest req;
        Addr lineAddr = 0;
        Tick parkedAt = 0;
        std::uint64_t generation = 0;
    };
    std::optional<SpinWatch> watch_;
    std::uint64_t watchGeneration_ = 0;
    Addr lastSpinAddr_ = ~Addr(0);
    Word lastSpinValue_ = 0;
    bool lastSpinValid_ = false;

    void parkSpin(MemRequest req);
    void unparkSpin();

    Counter accesses_;   ///< L1 data-array accesses (energy model input)
    Counter hits_;
    Counter misses_;
    Counter invsReceived_;
    Counter writebacks_;
    Counter spinParks_;
    Counter spinWatchTimeouts_;

    AttributionTable* attr_ = nullptr;
};

} // namespace cbsim

#endif // CBSIM_COHERENCE_MESI_MESI_L1_HH
