#include "coherence/mesi/mesi_l1.hh"

#include "harness/json.hh"
#include "mem/addr.hh"
#include "obs/attribution.hh"
#include "sim/log.hh"
#include "sim/trace.hh"

namespace cbsim {

MesiL1::MesiL1(CoreId core, NodeId node, EventQueue& eq, Mesh& mesh,
               DataStore& data, const CacheGeometry& l1_geom,
               Tick l1_latency, unsigned num_banks, Tick pause_interval)
    : core_(core), node_(node), eq_(eq), mesh_(mesh), data_(data),
      array_(l1_geom), l1Latency_(l1_latency), numBanks_(num_banks),
      pauseInterval_(pause_interval > 0 ? pause_interval : 12)
{
}

void
MesiL1::parkSpin(MemRequest req)
{
    const Addr line_addr = AddrLayout::lineAlign(req.addr);
    watch_.emplace(SpinWatch{std::move(req), line_addr, eq_.now(),
                             ++watchGeneration_});
    // Liveness net: spin loops in this suite only exit when the watched
    // value changes (which requires an invalidation), but a coarse
    // timeout keeps even pathological programs live at negligible cost.
    spinParks_.inc();
    eq_.schedule(100'000, [this, gen = watchGeneration_] {
        if (watch_ && watch_->generation == gen) {
            spinWatchTimeouts_.inc();
            unparkSpin();
        }
    });
}

void
MesiL1::unparkSpin()
{
    CBSIM_ASSERT(watch_, "unpark without watch");
    SpinWatch w = std::move(*watch_);
    watch_.reset();
    // Charge the re-checks that local spinning would have performed.
    const Tick waited = eq_.now() - w.parkedAt;
    accesses_.inc(waited / pauseInterval_);
    if (attr_ != nullptr)
        attr_->row(w.lineAddr).reacquires++;
    lastSpinValid_ = false;
    // Re-execute the load through the normal path (the line was just
    // invalidated, so this becomes the GetS refetch of the 5-message
    // invalidation hand-off; on the timeout path it is a plain hit).
    access(std::move(w.req));
}

MemOp
MesiL1::canonicalOp(MemOp op)
{
    switch (op) {
      case MemOp::LdThrough:
      case MemOp::LdCb:
        return MemOp::Load;
      case MemOp::StThrough:
      case MemOp::StCb1:
      case MemOp::StCb0:
        return MemOp::Store;
      default:
        return op;
    }
}

void
MesiL1::sendToHome(MsgType type, Addr addr, bool sync)
{
    Message msg;
    msg.type = type;
    msg.src = node_;
    msg.dst = AddrLayout::bankOf(addr, numBanks_);
    msg.dstPort = Port::Bank;
    msg.requester = core_;
    msg.addr = AddrLayout::lineAlign(addr);
    msg.sync = sync;
    msg.txn = nextTxn_++;
    mesh_.send(msg);
}

void
MesiL1::finishLocal(const MemRequest& req, MesiState state)
{
    // The line is present with sufficient permission: perform the access
    // functionally and complete after the L1 latency.
    Word result = 0;
    switch (canonicalOp(req.op)) {
      case MemOp::Load:
        result = data_.read(req.addr);
        break;
      case MemOp::Store:
        CBSIM_ASSERT(state == MesiState::M, "store without M");
        data_.write(req.addr, req.storeValue);
        break;
      case MemOp::Atomic: {
        CBSIM_ASSERT(state == MesiState::M, "atomic without M");
        const Word old = data_.read(req.addr);
        const auto out =
            evalAtomic(req.func, old, req.operand, req.compare);
        if (out.doWrite)
            data_.write(req.addr, out.newValue);
        result = old;
        break;
      }
      default:
        panic("finishLocal: unexpected op");
    }
    eq_.schedule(l1Latency_, [cb = req.onComplete, result] { cb(result); });
}

void
MesiL1::access(MemRequest req)
{
    CBSIM_ASSERT(!pending_, "core issued a second outstanding request");
    CBSIM_TRACE(TraceCategory::L1, eq_.now(), req.addr,
                "core " << core_ << " access op=" << int(req.op)
                        << " addr=0x" << std::hex << req.addr);
    accesses_.inc();
    const MemOp op = canonicalOp(req.op);
    auto* line = array_.find(req.addr);

    if (line) {
        auto& st = line->state.state;
        const bool needs_m = op != MemOp::Load;
        if (!needs_m) {
            if (req.spinHint) {
                // Spin-watch fast path: a repeated read of the same,
                // unchanged cached value parks until an invalidation.
                const Addr word = AddrLayout::wordAlign(req.addr);
                const Word value = data_.read(req.addr);
                if (lastSpinValid_ && lastSpinAddr_ == word &&
                    lastSpinValue_ == value) {
                    hits_.inc();
                    parkSpin(std::move(req));
                    return;
                }
                lastSpinValid_ = true;
                lastSpinAddr_ = word;
                lastSpinValue_ = value;
            } else {
                lastSpinValid_ = false;
            }
            hits_.inc();
            array_.touch(*line);
            finishLocal(req, st);
            return;
        }
        lastSpinValid_ = false;
        if (st == MesiState::M || st == MesiState::E) {
            hits_.inc();
            st = MesiState::M; // silent E->M upgrade
            array_.touch(*line);
            finishLocal(req, MesiState::M);
            return;
        }
        // S -> M upgrade: GetX; keep the line until the response.
    }

    misses_.inc();
    lastSpinValid_ = false;
    Pending p;
    p.lineAddr = AddrLayout::lineAlign(req.addr);
    p.wantExclusive = op != MemOp::Load;
    p.req = std::move(req);
    const bool sync = p.req.sync;
    const Addr addr = p.lineAddr;
    const bool want_x = p.wantExclusive;
    pending_.emplace(std::move(p));
    // The request leaves after the L1 lookup determined the miss.
    eq_.schedule(l1Latency_, [this, addr, want_x, sync] {
        sendToHome(want_x ? MsgType::GetX : MsgType::GetS, addr, sync);
    });
}

void
MesiL1::evictFor(Addr addr)
{
    auto* victim = array_.victim(addr);
    if (victim->valid) {
        if (victim->state.state == MesiState::M) {
            writebacks_.inc();
            Message wb;
            wb.type = MsgType::PutM;
            wb.src = node_;
            wb.dst = AddrLayout::bankOf(victim->tag, numBanks_);
            wb.dstPort = Port::Bank;
            wb.requester = core_;
            wb.addr = victim->tag;
            mesh_.send(wb);
        }
        array_.invalidate(*victim);
    }
}

void
MesiL1::installAndComplete(const Message& msg)
{
    CBSIM_ASSERT(pending_ && pending_->lineAddr == msg.addr,
                 "unexpected data response");
    Pending p = std::move(*pending_);
    pending_.reset();

    auto* line = array_.find(msg.addr);
    if (!line) {
        evictFor(msg.addr);
        line = array_.victim(msg.addr);
        array_.install(*line, msg.addr);
        accesses_.inc(); // fill writes the data array
    } else {
        array_.touch(*line);
    }
    MesiState st;
    if (p.wantExclusive)
        st = MesiState::M;
    else
        st = msg.exclusive ? MesiState::E : MesiState::S;
    line->state.state = st;
    finishLocal(p.req, st);
    if (p.invalidateOnInstall) {
        array_.invalidate(*line);
        lastSpinValid_ = false; // the next spin read must refetch
    }

    // Replay forwards that raced ahead of this Data response; the
    // store/atomic above has committed, so the forwarded line carries
    // the new value.
    if (!stashedFwds_.empty()) {
        auto fwds = std::move(stashedFwds_);
        stashedFwds_.clear();
        for (const auto& fwd : fwds)
            handleMessage(fwd);
    }
}

void
MesiL1::handleMessage(const Message& msg)
{
    CBSIM_TRACE(TraceCategory::L1, eq_.now(), msg.addr,
                "core " << core_ << " <- " << msg.toString());
    switch (msg.type) {
      case MsgType::Data:
        installAndComplete(msg);
        break;

      case MsgType::Inv: {
        invsReceived_.inc();
        if (auto* line = array_.find(msg.addr))
            array_.invalidate(*line);
        if (watch_ && watch_->lineAddr == msg.addr)
            unparkSpin();
        if (pending_ && !pending_->wantExclusive &&
            pending_->lineAddr == msg.addr) {
            // IS_D race: the in-flight fill is already stale w.r.t. the
            // directory; consume it once, then drop the line.
            pending_->invalidateOnInstall = true;
        }
        Message ack;
        ack.type = MsgType::InvAck;
        ack.src = node_;
        ack.dst = msg.src;
        ack.dstPort = Port::Bank;
        ack.requester = core_;
        ack.addr = msg.addr;
        ack.txn = msg.txn;
        mesh_.send(ack);
        break;
      }

      case MsgType::FwdGetS: {
        if (pending_ && pending_->lineAddr == msg.addr) {
            // IS_D/IM_D transient: the directory made us owner but our
            // Data response is still in flight; defer until install.
            stashedFwds_.push_back(msg);
            break;
        }
        // Downgrade M->S and return the line to the home bank.
        if (auto* line = array_.find(msg.addr))
            line->state.state = MesiState::S;
        Message rsp;
        rsp.type = MsgType::Data;
        rsp.src = node_;
        rsp.dst = msg.src;
        rsp.dstPort = Port::Bank;
        rsp.requester = core_;
        rsp.addr = msg.addr;
        rsp.txn = msg.txn;
        mesh_.send(rsp);
        break;
      }

      case MsgType::FwdGetX: {
        if (pending_ && pending_->lineAddr == msg.addr) {
            stashedFwds_.push_back(msg); // IS_D/IM_D transient: defer
            break;
        }
        if (auto* line = array_.find(msg.addr))
            array_.invalidate(*line);
        if (watch_ && watch_->lineAddr == msg.addr)
            unparkSpin();
        Message rsp;
        rsp.type = MsgType::Data;
        rsp.src = node_;
        rsp.dst = msg.src;
        rsp.dstPort = Port::Bank;
        rsp.requester = core_;
        rsp.addr = msg.addr;
        rsp.txn = msg.txn;
        mesh_.send(rsp);
        break;
      }

      default:
        panic("MesiL1: unexpected message ", msg.toString());
    }
}

void
MesiL1::selfInvalidate(FenceCompletion done)
{
    // MESI maintains coherence with explicit invalidations; the fence is
    // a no-op (still one cycle so fenced code keeps its shape).
    eq_.schedule(1, std::move(done));
}

void
MesiL1::selfDowngrade(FenceCompletion done)
{
    eq_.schedule(1, std::move(done));
}

std::vector<std::pair<Addr, MesiState>>
MesiL1::cachedLines() const
{
    std::vector<std::pair<Addr, MesiState>> lines;
    const_cast<CacheArray<LineInfo>&>(array_).forEachValid(
        [&lines](const auto& line) {
            lines.emplace_back(line.tag, line.state.state);
        });
    return lines;
}

std::optional<Addr>
MesiL1::pendingLine() const
{
    if (!pending_)
        return std::nullopt;
    return pending_->lineAddr;
}

void
MesiL1::dumpDebug(JsonWriter& w) const
{
    w.beginObject();
    w.field("protocol", "mesi");
    w.field("core", static_cast<std::uint64_t>(core_));
    w.field("cached_lines",
            static_cast<std::uint64_t>(array_.validCount()));
    w.key("pending_miss");
    if (pending_) {
        w.beginObject();
        w.field("line", static_cast<std::uint64_t>(pending_->lineAddr));
        w.field("want_exclusive", pending_->wantExclusive);
        w.field("stashed_fwds",
                static_cast<std::uint64_t>(stashedFwds_.size()));
        w.endObject();
    } else {
        w.null();
    }
    w.key("spin_watch");
    if (watch_) {
        w.beginObject();
        w.field("line", static_cast<std::uint64_t>(watch_->lineAddr));
        w.field("parked_at", watch_->parkedAt);
        w.endObject();
    } else {
        w.null();
    }
    w.endObject();
}

std::optional<MesiState>
MesiL1::lineState(Addr addr) const
{
    const auto* line = array_.find(addr);
    if (!line)
        return std::nullopt;
    return line->state.state;
}

void
MesiL1::registerStats(const StatsScope& scope)
{
    scope.add("accesses", accesses_);
    scope.add("hits", hits_);
    scope.add("misses", misses_);
    scope.add("invs_received", invsReceived_);
    scope.add("writebacks", writebacks_);
    scope.add("spin_parks", spinParks_);
    scope.add("spin_watch_timeouts", spinWatchTimeouts_);
}

} // namespace cbsim
