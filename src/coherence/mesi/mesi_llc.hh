/**
 * @file
 * LLC bank + full-map directory for the MESI protocol.
 *
 * A blocking directory: at most one transaction is in flight per line;
 * requests arriving for a busy line are queued and replayed in FIFO order
 * when the transaction completes. The directory tracks a full sharer bit
 * vector and an owner (E/M holder). Invalidation acknowledgments are
 * collected here before the exclusive requester is answered — this is the
 * protocol whose {write, inv, ack, load, data} = 5-message value hand-off
 * the paper's callback replaces with 3 messages.
 */

#ifndef CBSIM_COHERENCE_MESI_MESI_LLC_HH
#define CBSIM_COHERENCE_MESI_MESI_LLC_HH

#include <unordered_map>

#include "coherence/controller.hh"
#include "mem/cache_array.hh"
#include "mem/data_store.hh"
#include "mem/memory_model.hh"
#include "mem/mshr.hh"
#include "noc/mesh.hh"

namespace cbsim {

/** Timing parameters of an LLC bank (Table 2). */
struct LlcTiming
{
    Tick tagLatency = 6;
    Tick dataLatency = 12;
};

/** One MESI LLC bank with its directory slice. */
class MesiLlcBank : public LlcBank
{
  public:
    MesiLlcBank(BankId bank, EventQueue& eq, Mesh& mesh, DataStore& data,
                MemoryModel& memory, const CacheGeometry& geom,
                const LlcTiming& timing);

    void handleMessage(const Message& msg) override;

    /** Directory introspection for tests. */
    std::uint64_t sharersOf(Addr addr) const;
    CoreId ownerOf(Addr addr) const;

    /**
     * Line addresses with an open (in-flight) directory transaction.
     * The invariant checker skips these: mid-transaction sharer/owner
     * state is legitimately transient (invalidations or owner data
     * still on the wire).
     */
    std::vector<Addr> openTxnAddrs() const;

    /** Walk every resident directory line: fn(line, sharers, owner). */
    template <typename Fn>
    void
    forEachDirLine(Fn&& fn) const
    {
        array_.forEachValid([&fn](const Line& line) {
            fn(line.tag, line.state.sharers, line.state.owner);
        });
    }

    /** MSHR introspection for the leak invariant. */
    const LineLockTable& lockTable() const { return locks_; }

    void dumpDebug(JsonWriter& w) const override;

    void registerStats(const StatsScope& scope);

    /**
     * Enable contention attribution: invalidation fan-out of
     * sync-marked writes is charged to the written line in this
     * bank's shard.
     */
    void setAttribution(AttributionTable* attr) { attr_ = attr; }

  private:
    struct DirInfo
    {
        std::uint64_t sharers = 0;
        CoreId owner = invalidCore;
    };

    struct Txn
    {
        Message request;
        unsigned acksLeft = 0;
        bool waitingOwner = false;
    };

    using Line = CacheArray<DirInfo>::Line;

    void dispatch(const Message& msg);
    void handleGetS(const Message& msg, Line& line);
    void handleGetX(const Message& msg, Line& line);
    void handlePutM(const Message& msg, Line& line);
    void handleInvAck(const Message& msg);
    void handleOwnerData(const Message& msg);

    /** Ensure the line is resident; may lock + fetch. True if ready. */
    Line* ensurePresent(const Message& msg);

    /** Memory fill completion: pick a victim, install, replay. */
    void fillLine(const Message& msg, Addr line_addr);

    void sendData(const Message& req, bool exclusive, Tick extra = 0);
    void sendInv(CoreId target, Addr addr, std::uint64_t txn);
    void finishTxn(Addr addr);
    void unlockAndReplay(Addr addr);

    NodeId nodeOfCore(CoreId c) const { return static_cast<NodeId>(c); }

    BankId bank_;
    EventQueue& eq_;
    Mesh& mesh_;
    DataStore& data_;
    MemoryModel& memory_;
    CacheArray<DirInfo> array_;
    LlcTiming timing_;
    PipelinedResource pipe_;
    LineLockTable locks_;
    std::unordered_map<Addr, Txn> txns_;

    Counter accesses_;     ///< data-array accesses (energy/Fig. 1 metric)
    Counter syncAccesses_; ///< accesses from sync-marked instructions
    Counter invsSent_;
    Counter fills_;
    Counter recalls_;
    /**
     * Sharers invalidated per write (GetX fanout) — the per-write cost
     * the callback techniques avoid entirely (paper §2).
     */
    Histogram invFanout_;

    AttributionTable* attr_ = nullptr;
};

} // namespace cbsim

#endif // CBSIM_COHERENCE_MESI_MESI_LLC_HH
