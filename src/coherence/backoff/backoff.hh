/**
 * @file
 * Exponential back-off for LLC spinning (VIPS-M / DeNovoSync style).
 *
 * The paper evaluates back-off with a capped number of exponentiations:
 * BackOff-0 (no back-off at all), BackOff-5, BackOff-10, BackOff-15.
 * The nth consecutive retry of the same spin load is delayed by
 * base * 2^min(n, maxExponent); BackOff-0 never delays.
 */

#ifndef CBSIM_COHERENCE_BACKOFF_BACKOFF_HH
#define CBSIM_COHERENCE_BACKOFF_BACKOFF_HH

#include "sim/types.hh"

namespace cbsim {

/** Back-off policy parameters. */
struct BackoffConfig
{
    bool enabled = false;      ///< false: callbacks/MESI need no back-off
    unsigned maxExponent = 10; ///< exponentiation cap (0 = no back-off)
    Tick baseDelay = 1;        ///< first retry delay, in cycles

    /**
     * Fixed re-check interval applied to spin retries when exponential
     * back-off is disabled; models PAUSE-style local spin loops (used
     * by the MESI baseline, where spinning hits in the L1 and only the
     * re-check rate matters).
     */
    Tick pauseDelay = 0;

    static BackoffConfig off() { return {false, 0, 0, 0}; }
    static BackoffConfig
    capped(unsigned max_exp, Tick base = 1)
    {
        return {true, max_exp, base, 0};
    }
    static BackoffConfig
    pause(Tick interval)
    {
        return {false, 0, 0, interval};
    }
};

/**
 * Per-core back-off state machine. The core notifies the policy about
 * every issued instruction; consecutive re-executions of the same
 * spin-marked load grow the delay.
 */
class BackoffPolicy
{
  public:
    explicit BackoffPolicy(const BackoffConfig& cfg) : cfg_(cfg) {}

    /**
     * Delay to apply before issuing the spin-marked load at @p pc.
     * Call exactly once per dynamic spin-load issue. Inline along with
     * reset(): one of the two runs on every executed instruction.
     */
    Tick
    nextDelay(std::uint64_t pc)
    {
        if (pc != lastPc_) {
            lastPc_ = pc;
            retries_ = 0;
            return 0;
        }
        ++retries_;
        if (!cfg_.enabled)
            return cfg_.pauseDelay;
        if (cfg_.maxExponent == 0)
            return 0;
        const unsigned exp = retries_ - 1 < cfg_.maxExponent
                                 ? retries_ - 1
                                 : cfg_.maxExponent;
        return cfg_.baseDelay << exp;
    }

    /** A non-spin instruction executed: the spin streak is broken. */
    void
    reset()
    {
        lastPc_ = ~0ULL;
        retries_ = 0;
    }

    unsigned consecutiveRetries() const { return retries_; }

  private:
    BackoffConfig cfg_;
    std::uint64_t lastPc_ = ~0ULL;
    unsigned retries_ = 0;
};

} // namespace cbsim

#endif // CBSIM_COHERENCE_BACKOFF_BACKOFF_HH
