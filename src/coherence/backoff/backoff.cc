#include "coherence/backoff/backoff.hh"

namespace cbsim {

Tick
BackoffPolicy::nextDelay(std::uint64_t pc)
{
    if (pc != lastPc_) {
        lastPc_ = pc;
        retries_ = 0;
        return 0;
    }
    ++retries_;
    if (!cfg_.enabled)
        return cfg_.pauseDelay;
    if (cfg_.maxExponent == 0)
        return 0;
    const unsigned exp =
        retries_ - 1 < cfg_.maxExponent ? retries_ - 1 : cfg_.maxExponent;
    return cfg_.baseDelay << exp;
}

void
BackoffPolicy::reset()
{
    lastPc_ = ~0ULL;
    retries_ = 0;
}

} // namespace cbsim
