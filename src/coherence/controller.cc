// Interface-only translation unit; anchors the controller module.
#include "coherence/controller.hh"
