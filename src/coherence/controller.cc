// Interface-only translation unit; anchors the controller module.
#include "coherence/controller.hh"

#include "harness/json.hh"

namespace cbsim {

void
L1Controller::dumpDebug(JsonWriter& w) const
{
    w.null();
}

void
LlcBank::dumpDebug(JsonWriter& w) const
{
    w.null();
}

} // namespace cbsim
