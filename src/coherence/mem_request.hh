/**
 * @file
 * The core <-> L1 memory interface: every operation of the paper's
 * Table 1 plus ordinary DRF loads and stores.
 */

#ifndef CBSIM_COHERENCE_MEM_REQUEST_HH
#define CBSIM_COHERENCE_MEM_REQUEST_HH

#include <type_traits>

#include "noc/message.hh"
#include "sim/types.hh"

namespace cbsim {

/**
 * Memory operation kinds (Table 1 of the paper).
 *
 * Load/Store are DRF accesses that go through the L1 and obey the
 * protocol's data policy (MESI coherence or VIPS self-invalidation).
 * The *Through/Cb variants are racy synchronization accesses that bypass
 * the L1 and are serialized at the LLC.
 */
enum class MemOp : std::uint8_t
{
    Load,        ///< DRF load (cacheable)
    Store,       ///< DRF store (cacheable)
    LdThrough,   ///< racy load; non-blocking callback consume (§3.3)
    LdCb,        ///< racy load; blocks in the callback directory if empty
    StThrough,   ///< racy write-through; wakes all callbacks (st_cbA)
    StCb1,       ///< racy write-through; wakes one callback
    StCb0,       ///< racy write-through; wakes no callback
    Atomic,      ///< RMW at the LLC: {ld|ld_cb}&{st|st_cb0|st_cb1|st_cbA}
};

/**
 * True for operations that bypass the L1 (racy accesses). Inline:
 * checked on every memory access in every L1 controller.
 */
inline bool
bypassesL1(MemOp op)
{
    switch (op) {
      case MemOp::Load:
      case MemOp::Store:
        return false;
      default:
        return true;
    }
}

/**
 * Completion callback: delivers the load/RMW-read value (0 for stores).
 *
 * A plain context + function-pointer pair rather than std::function:
 * requests are copied into controller pipelines, MSHR replays, and NoC
 * completion events many times per access, and a trivially copyable
 * MemRequest keeps all of those copies flat memcpys. Assign with a
 * captureless lambda taking the context as void*:
 * @code
 *   req.onComplete = {[](void* c, Word v) {
 *       static_cast<Core*>(c)->completeMemory(v); }, this};
 * @endcode
 */
struct MemCompletion
{
    void (*fn)(void* ctx, Word value) = nullptr;
    void* ctx = nullptr;

    void operator()(Word value) const { fn(ctx, value); }
    explicit operator bool() const { return fn != nullptr; }
};

/**
 * A memory request issued by a core to its L1 controller. The controller
 * eventually invokes onComplete exactly once; the core blocks until then.
 */
struct MemRequest
{
    MemOp op = MemOp::Load;
    Addr addr = 0;
    Word storeValue = 0;        ///< for Store/StThrough/StCb*

    // Atomic payload.
    AtomicFunc func = AtomicFunc::None;
    Word operand = 0;           ///< swap/add/set value
    Word compare = 0;           ///< T&S "not taken" value
    WakePolicy wake = WakePolicy::None; ///< store-half callback policy
    bool loadIsCallback = false;        ///< the RMW read half is ld_cb

    /** Marked by sync builders; LLC attributes accesses to sync. */
    bool sync = false;

    /**
     * The instruction is a spin-loop load (ins.spin): back-off applies
     * at the core, and the MESI L1 may park repeated identical reads
     * until the line is invalidated (see MesiL1 spin watch).
     */
    bool spinHint = false;

    MemCompletion onComplete;
};

static_assert(std::is_trivially_copyable_v<MemRequest>,
              "MemRequest is copied into pipelines, MSHR replays, and "
              "completion events; keep it a flat memcpy");

/**
 * Evaluate an atomic function against @p old_value.
 *
 * @return {newValue, doWrite}: the value to store and whether the RMW
 *         writes at all (T&S fails when old != compare; T&D fails on 0).
 */
struct AtomicOutcome
{
    Word newValue;
    bool doWrite;
};

AtomicOutcome evalAtomic(AtomicFunc func, Word old_value, Word operand,
                         Word compare);

} // namespace cbsim

#endif // CBSIM_COHERENCE_MEM_REQUEST_HH
