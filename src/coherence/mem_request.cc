#include "coherence/mem_request.hh"

#include "sim/log.hh"

namespace cbsim {

AtomicOutcome
evalAtomic(AtomicFunc func, Word old_value, Word operand, Word compare)
{
    switch (func) {
      case AtomicFunc::TestAndSet:
        // Write the "taken" operand iff the lock reads as `compare`.
        return {operand, old_value == compare};
      case AtomicFunc::FetchAndStore:
        return {operand, true};
      case AtomicFunc::FetchAndAdd:
        return {old_value + operand, true};
      case AtomicFunc::TestAndDec:
        // Decrement iff positive (signal/wait consume, Fig. 18).
        return {old_value - 1, old_value > 0};
      case AtomicFunc::None:
        break;
    }
    panic("evalAtomic: bad function");
}

} // namespace cbsim
