/**
 * @file
 * Abstract interfaces for L1 controllers and LLC banks, plus the shared
 * per-bank timing helper (pipelined bank occupancy).
 */

#ifndef CBSIM_COHERENCE_CONTROLLER_HH
#define CBSIM_COHERENCE_CONTROLLER_HH

#include <functional>

#include "coherence/mem_request.hh"
#include "noc/mesh.hh"
#include "sim/event_queue.hh"
#include "stats/stats.hh"

namespace cbsim {

class JsonWriter;

/** Fence completion callback. */
using FenceCompletion = std::function<void()>;

/**
 * Protocol-side of a core's private cache. One instance per core; the
 * core blocks on access() until onComplete fires, and on fences until
 * their completion fires.
 */
class L1Controller
{
  public:
    virtual ~L1Controller() = default;

    /** Issue a memory operation (at most one outstanding per core). */
    virtual void access(MemRequest req) = 0;

    /**
     * self-invl fence: invalidate shared data in the L1 (and, per the
     * paper's footnote 7, first self-downgrade transient dirty data).
     * No-op under MESI.
     */
    virtual void selfInvalidate(FenceCompletion done) = 0;

    /** self-down fence: write-through all dirty data. No-op under MESI. */
    virtual void selfDowngrade(FenceCompletion done) = 0;

    /** Network delivery for Port::Core messages at this node. */
    virtual void handleMessage(const Message& msg) = 0;

    /**
     * Emit this controller's debug state (pending misses, transient
     * lines, ...) as one JSON value into @p w. Called only from
     * forensic dumps; the default emits null.
     */
    virtual void dumpDebug(JsonWriter& w) const;
};

/** Protocol-side of one LLC bank (home node for its address slice). */
class LlcBank
{
  public:
    virtual ~LlcBank() = default;

    /** Network delivery for Port::Bank messages at this node. */
    virtual void handleMessage(const Message& msg) = 0;

    /** Forensic state dump; see L1Controller::dumpDebug. */
    virtual void dumpDebug(JsonWriter& w) const;
};

/**
 * Pipelined-resource timing: a bank accepts one request per cycle and
 * answers after its access latency. start() returns the cycle the access
 * begins (after any queueing delay).
 */
class PipelinedResource
{
  public:
    explicit PipelinedResource(EventQueue& eq) : eq_(eq) {}

    /** Reserve the next issue slot at or after now. */
    Tick
    start()
    {
        const Tick begin = eq_.now() > nextFree_ ? eq_.now() : nextFree_;
        nextFree_ = begin + 1;
        return begin;
    }

    /**
     * Reserve a slot and schedule @p fn when the access (of @p latency
     * cycles) completes. Templated so the callable lands inline in the
     * event queue without a std::function round-trip.
     */
    template <typename F>
    void
    access(Tick latency, F&& fn)
    {
        const Tick begin = start();
        eq_.scheduleAt(begin + latency, std::forward<F>(fn));
    }

  private:
    EventQueue& eq_;
    Tick nextFree_ = 0;
};

} // namespace cbsim

#endif // CBSIM_COHERENCE_CONTROLLER_HH
