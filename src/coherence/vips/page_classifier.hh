/**
 * @file
 * First-touch private/shared page classification (VIPS-M's OS-based
 * mechanism, implemented in-simulator; see DESIGN.md substitutions).
 *
 * Pages start Private to their first accessor; a second distinct accessor
 * permanently promotes the page to Shared and the previous owner is
 * notified so it can flush/invalidate its cached lines of that page.
 * Private pages are excluded from self-invalidation.
 */

#ifndef CBSIM_COHERENCE_VIPS_PAGE_CLASSIFIER_HH
#define CBSIM_COHERENCE_VIPS_PAGE_CLASSIFIER_HH

#include <functional>
#include <unordered_map>
#include <vector>

#include "mem/addr.hh"
#include "sim/types.hh"
#include "obs/registry.hh"
#include "stats/stats.hh"

namespace cbsim {

/** Classification result for a page access. */
enum class PageClass : std::uint8_t
{
    Private,
    Shared,
};

/** Chip-wide page table for private/shared classification. */
class PageClassifier
{
  public:
    /**
     * Callback invoked on a Private(owner) -> Shared transition so the
     * previous owner's L1 can flush and invalidate the page's lines.
     */
    using TransitionHook = std::function<void(CoreId prev_owner, Addr page)>;

    explicit PageClassifier(TransitionHook hook = {});

    void setTransitionHook(TransitionHook hook) { hook_ = std::move(hook); }

    /** Classify an access by @p core to @p addr, updating the table. */
    PageClass classify(Addr addr, CoreId core);

    /** Current class without updating (unknown pages read as Private). */
    PageClass peek(Addr addr) const;

    /**
     * Owner of @p addr's page if it is classified Private to a core;
     * invalidCore for Shared or never-touched pages. The invariant
     * checker uses this to assert no L1 caches a private-marked line
     * of a page owned by someone else.
     */
    CoreId
    privateOwner(Addr addr) const
    {
        const auto it = pages_.find(AddrLayout::pageNumber(addr));
        if (it == pages_.end() || it->second.shared)
            return invalidCore;
        return it->second.owner;
    }

    void registerStats(const StatsScope& scope);

  private:
    struct PageInfo
    {
        bool shared = false;
        CoreId owner = invalidCore;
    };

    TransitionHook hook_;
    std::unordered_map<Addr, PageInfo> pages_;
    Counter privatePages_;
    Counter transitions_;
};

} // namespace cbsim

#endif // CBSIM_COHERENCE_VIPS_PAGE_CLASSIFIER_HH
