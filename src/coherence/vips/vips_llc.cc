#include "coherence/vips/vips_llc.hh"

#include "debug/fault_injection.hh"
#include "harness/json.hh"
#include "mem/addr.hh"
#include "obs/attribution.hh"
#include "obs/trace_export.hh"
#include "sim/log.hh"
#include "sim/trace.hh"

namespace cbsim {

VipsLlcBank::VipsLlcBank(BankId bank, EventQueue& eq, Mesh& mesh,
                         DataStore& data, MemoryModel& memory,
                         const CacheGeometry& geom, const LlcTiming& timing,
                         unsigned cb_entries, Tick cb_latency,
                         unsigned num_cores)
    : bank_(bank), eq_(eq), mesh_(mesh), data_(data), memory_(memory),
      array_(geom), timing_(timing), cbLatency_(cb_latency), pipe_(eq),
      cbPipe_(eq), cbdir_(cb_entries, num_cores)
{
}

void
VipsLlcBank::handleMessage(const Message& msg)
{
    dispatch(msg);
}

void
VipsLlcBank::dispatch(const Message& msg)
{
    const Addr line_addr = AddrLayout::lineAlign(msg.addr);
    CBSIM_TRACE(TraceCategory::Llc, eq_.now(), line_addr,
                "bank " << bank_ << " dispatch " << msg.toString());
    if (locks_.isLocked(line_addr)) {
        locks_.defer(line_addr, [this, msg] { dispatch(msg); });
        return;
    }
    if (!ensurePresent(msg))
        return;

    switch (msg.type) {
      case MsgType::GetS:
        handleGetS(msg);
        break;
      case MsgType::WtFlush:
        handleWtFlush(msg);
        break;
      case MsgType::LdThrough:
        handleLdThrough(msg);
        break;
      case MsgType::GetCB:
        handleGetCB(msg);
        break;
      case MsgType::StThrough:
        handleStore(msg, WakePolicy::All);
        break;
      case MsgType::StCb1:
        handleStore(msg, WakePolicy::One);
        break;
      case MsgType::StCb0:
        handleStore(msg, WakePolicy::Zero);
        break;
      case MsgType::AtomicReq:
        handleAtomic(msg);
        break;
      default:
        panic("VipsLlcBank: unexpected message ", msg.toString());
    }
}

bool
VipsLlcBank::ensurePresent(const Message& msg)
{
    const Addr line_addr = AddrLayout::lineAlign(msg.addr);
    if (auto* line = array_.find(line_addr)) {
        array_.touch(*line);
        return true;
    }
    locks_.lock(line_addr);
    fills_.inc();
    memory_.read(line_addr,
                 [this, msg, line_addr] { fillLine(msg, line_addr); });
    return false;
}

void
VipsLlcBank::fillLine(const Message& msg, Addr line_addr)
{
    auto* victim = array_.victimIf(
        line_addr, [this](const Line& l) { return !locks_.isLocked(l.tag); });
    if (!victim) {
        eq_.schedule(4, [this, msg, line_addr] { fillLine(msg, line_addr); });
        return;
    }
    if (victim->valid)
        memory_.write(victim->tag); // writeback (write-through LLC: clean)
    array_.install(*victim, line_addr);
    accesses_.inc();
    auto deferred = locks_.unlock(line_addr);
    dispatch(msg);
    for (auto& op : deferred)
        eq_.schedule(0, std::move(op));
}

void
VipsLlcBank::chargeAccess(const Message& msg)
{
    accesses_.inc();
    if (msg.sync)
        syncAccesses_.inc();
}

void
VipsLlcBank::sendToCore(MsgType type, const Message& req, Word value,
                        Tick latency)
{
    Message rsp;
    rsp.type = type;
    rsp.src = bank_;
    rsp.dst = req.src;
    rsp.dstPort = Port::Core;
    rsp.requester = req.requester;
    rsp.addr = req.addr;
    rsp.value = value;
    rsp.txn = req.txn;
    pipe_.access(latency, [this, rsp] { mesh_.send(rsp); });
}

void
VipsLlcBank::handleGetS(const Message& msg)
{
    chargeAccess(msg);
    sendToCore(MsgType::Data, msg, 0, timing_.dataLatency);
}

void
VipsLlcBank::handleWtFlush(const Message& msg)
{
    // Values were committed functionally at L1 store time; the flush is a
    // timing/traffic event that makes them visible at the LLC.
    chargeAccess(msg);
    sendToCore(MsgType::Ack, msg, 0, timing_.dataLatency);
}

void
VipsLlcBank::maybeInjectEviction()
{
    if (faults_ == nullptr || !faults_->cbEvictNow())
        return;
    CbReadResult res = cbdir_.forceEvictOne();
    if (!res.evictionHappened)
        return;
    faults_->noteCbForcedEviction();
    CBSIM_TRACE(TraceCategory::CbDir, eq_.now(), res.evictedWord,
                "bank " << bank_ << " fault-injected eviction, "
                        << res.evictedWaiters.size() << " waiters");
    handleEviction(res);
}

void
VipsLlcBank::handleLdThrough(const Message& msg)
{
    // The callback directory is consulted in parallel with the LLC
    // access (Fig. 2): consume the F/E state but never block.
    maybeInjectEviction();
    cbdirAccesses_.inc();
    cbdir_.ldThrough(msg.addr, msg.requester);
    if (attr_ != nullptr && msg.spin)
        attr_->row(msg.addr).spinRereads++;
    chargeAccess(msg);
    sendToCore(MsgType::DataWord, msg, data_.read(msg.addr),
               timing_.dataLatency);
}

void
VipsLlcBank::handleGetCB(const Message& msg)
{
    // GetCB consults the callback directory *before* the LLC (Fig. 2).
    maybeInjectEviction();
    cbdirAccesses_.inc();
    CbReadResult res = cbdir_.ldCb(msg.addr, msg.requester);
    handleEviction(res);
    if (res.blocked) {
        waiters_[AddrLayout::wordAlign(msg.addr)]
                [msg.requester] = Waiter{msg, eq_.now()};
        if (attr_ != nullptr)
            attr_->row(msg.addr).parks++;
        if (trace_ != nullptr) {
            trace_->park(bank_, msg.requester, eq_.now());
            trace_->linePark(msg.addr, msg.requester, eq_.now());
        }
        return; // no LLC access, no response until a write wakes us
    }
    chargeAccess(msg);
    sendToCore(MsgType::DataWord, msg, data_.read(msg.addr),
               cbLatency_ + timing_.dataLatency);
}

void
VipsLlcBank::handleStore(const Message& msg, WakePolicy policy)
{
    maybeInjectEviction();
    data_.write(msg.addr, msg.value);
    chargeAccess(msg);
    cbdirAccesses_.inc();
    CbWriteResult wr = cbdir_.store(msg.addr, msg.requester, policy);
    sendToCore(MsgType::Ack, msg, 0, timing_.dataLatency);
    processWakes(AddrLayout::wordAlign(msg.addr), wr.wake,
                 /*evicted=*/false);
}

void
VipsLlcBank::handleAtomic(const Message& msg)
{
    maybeInjectEviction();
    cbdirAccesses_.inc();
    if (msg.loadIsCallback) {
        CbReadResult res = cbdir_.ldCb(msg.addr, msg.requester);
        handleEviction(res);
        if (res.blocked) {
            waiters_[AddrLayout::wordAlign(msg.addr)]
                    [msg.requester] = Waiter{msg, eq_.now()};
            if (attr_ != nullptr)
                attr_->row(msg.addr).parks++;
            if (trace_ != nullptr) {
                trace_->park(bank_, msg.requester, eq_.now());
                trace_->linePark(msg.addr, msg.requester, eq_.now());
            }
            return; // the whole RMW is held off in the callback directory
        }
    } else {
        // The read half behaves as a load-through for the F/E state.
        cbdir_.ldThrough(msg.addr, msg.requester);
    }
    std::vector<CoreId> wake_queue;
    executeRmw(msg, wake_queue);
    processWakes(AddrLayout::wordAlign(msg.addr), wake_queue,
                 /*evicted=*/false);
}

void
VipsLlcBank::executeRmw(const Message& req, std::vector<CoreId>& wake_queue)
{
    const Word old = data_.read(req.addr);
    const auto out =
        evalAtomic(req.atomicFunc, old, req.atomicOperand,
                   req.atomicCompare);
    chargeAccess(req);
    if (out.doWrite) {
        data_.write(req.addr, out.newValue);
        const WakePolicy policy = req.wakePolicy == WakePolicy::None
                                      ? WakePolicy::All
                                      : req.wakePolicy;
        CbWriteResult wr = cbdir_.store(req.addr, req.requester, policy);
        for (CoreId c : wr.wake)
            wake_queue.push_back(c);
    }
    sendToCore(MsgType::DataWord, req, old,
               cbLatency_ + timing_.dataLatency);
}

void
VipsLlcBank::processWakes(Addr word, const std::vector<CoreId>& initial,
                          bool evicted)
{
    std::vector<CoreId> queue = initial;
    std::size_t head = 0;
    while (head < queue.size()) {
        const CoreId c = queue[head++];
        auto word_it = waiters_.find(word);
        CBSIM_ASSERT(word_it != waiters_.end(),
                     "wake with no parked waiters");
        auto it = word_it->second.find(c);
        CBSIM_ASSERT(it != word_it->second.end(),
                     "wake for a core that is not parked");
        const Message req = it->second.req;
        const Tick parked_at = it->second.parkedAt;
        word_it->second.erase(it);
        if (word_it->second.empty())
            waiters_.erase(word_it);

        wakesSent_.inc();
        if (attr_ != nullptr) {
            AttributionRow& row = attr_->row(word);
            if (evicted)
                row.wakeEvictions++;
            else
                row.wakes++;
            row.parkTicks.sample(eq_.now() - parked_at);
        }
        if (trace_ != nullptr) {
            trace_->wake(bank_, c, eq_.now(), evicted);
            trace_->lineWake(word, c, eq_.now());
        }
        CBSIM_TRACE(TraceCategory::CbDir, eq_.now(), word,
                    "bank " << bank_ << " wake core " << c << " word=0x"
                            << std::hex << word << std::dec
                            << (evicted ? " (eviction)" : ""));
        if (req.type == MsgType::GetCB) {
            // The wake-up message carries the (new or, on eviction,
            // current) value straight to the core: {callback, write,
            // data} — three messages total.
            sendToCore(MsgType::WakeUp, req, data_.read(word),
                       timing_.dataLatency);
        } else {
            CBSIM_ASSERT(req.type == MsgType::AtomicReq, "bad waiter");
            // Woken RMW: re-executes atomically against the current
            // value. A premature wake (Fig. 5) simply fails its test and
            // the core retries.
            executeRmw(req, queue);
        }
    }
    if (!queue.empty())
        wakeBatch_.sample(queue.size());
}

void
VipsLlcBank::handleEviction(const CbReadResult& res)
{
    if (!res.evictionHappened || res.evictedWaiters.empty())
        return;
    // Replacement loses the bits; all parked waiters are satisfied with
    // the current value (Fig. 3 step 5).
    processWakes(res.evictedWord, res.evictedWaiters, /*evicted=*/true);
}

std::size_t
VipsLlcBank::parkedWaiters() const
{
    std::size_t n = 0;
    for (const auto& [word, m] : waiters_)
        n += m.size();
    return n;
}

std::vector<std::pair<Addr, CoreId>>
VipsLlcBank::parkedWaiterList() const
{
    std::vector<std::pair<Addr, CoreId>> out;
    for (const auto& [word, m] : waiters_) {
        for (const auto& [core, waiter] : m)
            out.emplace_back(word, core);
    }
    return out;
}

void
VipsLlcBank::dumpDebug(JsonWriter& w) const
{
    w.beginObject();
    w.field("protocol", "vips");
    w.field("bank", static_cast<std::uint64_t>(bank_));
    w.key("cbdir_entries");
    w.beginArray();
    for (const auto& e : cbdir_.entryStates()) {
        w.beginObject();
        w.field("word", static_cast<std::uint64_t>(e.word));
        w.field("cb_mask", e.cb);
        w.field("fe_mask", e.fe);
        w.field("mode", e.aoOne ? "one" : "all");
        w.endObject();
    }
    w.endArray();
    w.key("parked_waiters");
    w.beginArray();
    for (const auto& [word, m] : waiters_) {
        for (const auto& [core, waiter] : m) {
            w.beginObject();
            w.field("word", static_cast<std::uint64_t>(word));
            w.field("core", static_cast<std::uint64_t>(core));
            w.field("request", msgTypeName(waiter.req.type));
            w.endObject();
        }
    }
    w.endArray();
    w.key("locked_lines");
    w.beginArray();
    locks_.forEachLocked([&w](Addr line, std::size_t deferred) {
        w.beginObject();
        w.field("line", static_cast<std::uint64_t>(line));
        w.field("deferred_ops", static_cast<std::uint64_t>(deferred));
        w.endObject();
    });
    w.endArray();
    w.endObject();
}

void
VipsLlcBank::registerStats(const StatsScope& scope)
{
    scope.add("accesses", accesses_);
    scope.add("sync_accesses", syncAccesses_);
    scope.add("cbdir_accesses", cbdirAccesses_);
    scope.add("fills", fills_);
    scope.add("wakes_sent", wakesSent_);
    scope.add("wake_batch", wakeBatch_);
    cbdir_.registerStats(scope.scope("cbdir"));
}

} // namespace cbsim
