/**
 * @file
 * LLC bank for the VIPS-M protocol with the integrated callback
 * directory (paper Fig. 2).
 *
 * Racy accesses are serialized here: loads-through and stores-through
 * operate directly on the bank; callback reads (GetCB) consult the
 * callback directory first and may park until a write wakes them; RMWs
 * execute atomically at the bank (MSHR line locking covers the only
 * multi-event case, the memory fill). A parked callback RMW re-executes
 * against the then-current value when woken, reproducing the premature
 * wake-up behaviour of the paper's Figure 5.
 */

#ifndef CBSIM_COHERENCE_VIPS_VIPS_LLC_HH
#define CBSIM_COHERENCE_VIPS_VIPS_LLC_HH

#include <map>
#include <unordered_map>

#include "coherence/callback/callback_directory.hh"
#include "coherence/controller.hh"
#include "coherence/mesi/mesi_llc.hh" // LlcTiming
#include "mem/cache_array.hh"
#include "mem/data_store.hh"
#include "mem/memory_model.hh"
#include "mem/mshr.hh"
#include "noc/mesh.hh"

namespace cbsim {

class FaultInjector;
class TraceExporter;

/** One VIPS LLC bank with its slice of the callback directory. */
class VipsLlcBank : public LlcBank
{
  public:
    VipsLlcBank(BankId bank, EventQueue& eq, Mesh& mesh, DataStore& data,
                MemoryModel& memory, const CacheGeometry& geom,
                const LlcTiming& timing, unsigned cb_entries,
                Tick cb_latency, unsigned num_cores);

    void handleMessage(const Message& msg) override;

    /** Callback-directory introspection for tests. */
    const CallbackDirectory& directory() const { return cbdir_; }

    /** Number of currently parked waiters (for tests). */
    std::size_t parkedWaiters() const;

    /** Every parked waiter as (word, core); checker/forensics view. */
    std::vector<std::pair<Addr, CoreId>> parkedWaiterList() const;

    /** MSHR introspection for the leak invariant. */
    const LineLockTable& lockTable() const { return locks_; }

    /**
     * Enable eviction-storm fault injection: before each directory
     * operation, the injector may force-evict a live-waiter entry
     * (paper §3: waiters are satisfied with the current value and the
     * bits are lost). Null (default) costs one compare per op.
     */
    void setFaultInjector(FaultInjector* f) { faults_ = f; }

    /**
     * Enable trace export: every park in and wake from this bank's
     * callback directory becomes an instant event on its track. Null
     * (default) costs one compare per park/wake.
     */
    void setTrace(TraceExporter* trace) { trace_ = trace; }

    /**
     * Enable contention attribution: LLC spin re-reads, parks, wakes,
     * wake-evictions and park durations are charged to the word's line
     * in this bank's shard. Null (default) costs one compare per site.
     */
    void setAttribution(AttributionTable* attr) { attr_ = attr; }

    void dumpDebug(JsonWriter& w) const override;

    void registerStats(const StatsScope& scope);

  private:
    struct LineInfo
    {
    };
    using Line = CacheArray<LineInfo>::Line;

    void dispatch(const Message& msg);
    bool ensurePresent(const Message& msg);
    void fillLine(const Message& msg, Addr line_addr);

    void handleGetS(const Message& msg);
    void handleWtFlush(const Message& msg);
    void handleLdThrough(const Message& msg);
    void handleGetCB(const Message& msg);
    void handleStore(const Message& msg, WakePolicy policy);
    void handleAtomic(const Message& msg);

    /**
     * Satisfy parked waiters of @p word in FIFO list order. Woken plain
     * callbacks receive the current value; woken RMWs re-execute
     * atomically and may themselves wake further waiters (queued).
     * @param evicted true when waiters are satisfied by a directory
     *        replacement rather than a write (Fig. 3 step 5)
     */
    void processWakes(Addr word, const std::vector<CoreId>& initial,
                      bool evicted);

    /** Execute the RMW of @p req against the current value; respond. */
    void executeRmw(const Message& req, std::vector<CoreId>& wake_queue);

    void handleEviction(const CbReadResult& res);

    /** Fault-injection gate run before each callback-directory op. */
    void maybeInjectEviction();

    void sendToCore(MsgType type, const Message& req, Word value,
                    Tick latency);
    void chargeAccess(const Message& msg);

    BankId bank_;
    EventQueue& eq_;
    Mesh& mesh_;
    DataStore& data_;
    MemoryModel& memory_;
    CacheArray<LineInfo> array_;
    LlcTiming timing_;
    Tick cbLatency_;
    PipelinedResource pipe_;
    PipelinedResource cbPipe_;
    LineLockTable locks_;
    CallbackDirectory cbdir_;
    FaultInjector* faults_ = nullptr;
    TraceExporter* trace_ = nullptr;
    AttributionTable* attr_ = nullptr;

    /** One parked blocked callback request plus its park tick. */
    struct Waiter
    {
        Message req;
        Tick parkedAt = 0;
    };

    /** Parked blocked callback requests: word -> core -> waiter. */
    std::unordered_map<Addr, std::map<CoreId, Waiter>> waiters_;

    Counter accesses_;     ///< LLC data accesses (Fig. 1/20 metric)
    Counter syncAccesses_;
    Counter cbdirAccesses_;
    Counter fills_;
    Counter wakesSent_;
    /**
     * Waiters satisfied per wake cascade (a store's st_cbA burst vs
     * st_cb1's strict hand-off of one).
     */
    Histogram wakeBatch_;
};

} // namespace cbsim

#endif // CBSIM_COHERENCE_VIPS_VIPS_LLC_HH
