/**
 * @file
 * L1 side of the VIPS-M-style self-invalidation / self-downgrade
 * protocol (paper §3.1).
 *
 * DRF data is cached normally; stores mark per-word dirty bits that are
 * written through at self-downgrade fences (and evictions). self-invl
 * fences discard all Shared-page lines (Private pages are exempt via the
 * first-touch classifier). Racy accesses (*_through, *_cb, atomics)
 * bypass the L1 entirely and are serialized at the home LLC bank, which
 * also hosts the callback directory.
 */

#ifndef CBSIM_COHERENCE_VIPS_VIPS_L1_HH
#define CBSIM_COHERENCE_VIPS_VIPS_L1_HH

#include <optional>
#include <unordered_map>

#include "coherence/controller.hh"
#include "coherence/vips/page_classifier.hh"
#include "mem/cache_array.hh"
#include "mem/data_store.hh"
#include "noc/mesh.hh"
#include "sim/event_queue.hh"

namespace cbsim {

class FaultInjector;

/** Per-core L1 controller for the VIPS-M protocol. */
class VipsL1 : public L1Controller
{
  public:
    VipsL1(CoreId core, NodeId node, EventQueue& eq, Mesh& mesh,
           DataStore& data, PageClassifier& classifier,
           const CacheGeometry& l1_geom, Tick l1_latency,
           unsigned num_banks);

    void access(MemRequest req) override;
    void selfInvalidate(FenceCompletion done) override;
    void selfDowngrade(FenceCompletion done) override;
    void handleMessage(const Message& msg) override;

    /**
     * Private->Shared transition: flush dirty words and invalidate all
     * cached lines of @p page_base (invoked via the classifier hook).
     */
    void reclassifyPage(Addr page_base);

    /** For tests: is @p addr's line valid in this L1? */
    bool cached(Addr addr) const;
    /** For tests: dirty-word mask of @p addr's line (0 if absent). */
    std::uint32_t dirtyMask(Addr addr) const;

    /**
     * Visit every cached line: fn(lineAddr, privatePage, dirtyMask).
     * The invariant checker cross-checks privatePage against the page
     * classifier with this.
     */
    template <typename Fn>
    void
    forEachCachedLine(Fn&& fn) const
    {
        array_.forEachValid([&fn](const Line& line) {
            fn(line.tag, line.state.privatePage, line.state.dirty);
        });
    }

    /**
     * Enable self-invalidation timing perturbation: fences may start
     * after a bounded injected delay (FaultPlan::selfInvl*). Null
     * (default) costs one compare per fence.
     */
    void setFaultInjector(FaultInjector* f) { faults_ = f; }

    void dumpDebug(JsonWriter& w) const override;

    void registerStats(const StatsScope& scope);

  private:
    struct VipsLine
    {
        std::uint32_t dirty = 0; ///< per-word dirty bits
        bool privatePage = false;
    };

    using Line = CacheArray<VipsLine>::Line;

    void missFill(MemRequest req);
    void issueThrough(MemRequest req);
    void flushLine(Line& line);
    void maybeFinishFence();
    void selfInvalidateNow(FenceCompletion done);

    CoreId core_;
    NodeId node_;
    EventQueue& eq_;
    Mesh& mesh_;
    DataStore& data_;
    PageClassifier& classifier_;
    CacheArray<VipsLine> array_;
    Tick l1Latency_;
    unsigned numBanks_;

    /** The single outstanding DRF miss. */
    struct PendingFill
    {
        MemRequest req;
        Addr lineAddr;
    };
    std::optional<PendingFill> pendingFill_;

    /** The single outstanding racy (through/callback/atomic) request. */
    struct PendingThrough
    {
        MemRequest req;
        std::uint64_t txn;
    };
    std::optional<PendingThrough> pendingThrough_;

    std::uint64_t nextTxn_ = 1;
    unsigned outstandingFlushAcks_ = 0;
    FenceCompletion fenceDone_;
    FaultInjector* faults_ = nullptr;

    Counter accesses_;
    Counter hits_;
    Counter misses_;
    Counter selfInvalidations_; ///< lines discarded by self-invl fences
    Counter wtFlushes_;
    Counter throughOps_;
};

} // namespace cbsim

#endif // CBSIM_COHERENCE_VIPS_VIPS_L1_HH
