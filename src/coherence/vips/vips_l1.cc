#include "coherence/vips/vips_l1.hh"

#include "debug/fault_injection.hh"
#include "harness/json.hh"
#include "mem/addr.hh"
#include "sim/log.hh"

namespace cbsim {

VipsL1::VipsL1(CoreId core, NodeId node, EventQueue& eq, Mesh& mesh,
               DataStore& data, PageClassifier& classifier,
               const CacheGeometry& l1_geom, Tick l1_latency,
               unsigned num_banks)
    : core_(core), node_(node), eq_(eq), mesh_(mesh), data_(data),
      classifier_(classifier), array_(l1_geom), l1Latency_(l1_latency),
      numBanks_(num_banks)
{
}

void
VipsL1::access(MemRequest req)
{
    if (bypassesL1(req.op)) {
        issueThrough(std::move(req));
        return;
    }

    CBSIM_ASSERT(!pendingFill_, "second outstanding DRF request");
    accesses_.inc();
    auto* line = array_.find(req.addr);
    if (line) {
        hits_.inc();
        array_.touch(*line);
        Word result = 0;
        if (req.op == MemOp::Load) {
            result = data_.read(req.addr);
        } else {
            data_.write(req.addr, req.storeValue);
            line->state.dirty |= 1u << AddrLayout::wordInLine(req.addr);
        }
        eq_.schedule(l1Latency_,
                     [cb = req.onComplete, result] { cb(result); });
        return;
    }

    misses_.inc();
    missFill(std::move(req));
}

void
VipsL1::missFill(MemRequest req)
{
    const Addr line_addr = AddrLayout::lineAlign(req.addr);
    const bool sync = req.sync;
    pendingFill_.emplace(PendingFill{std::move(req), line_addr});

    Message msg;
    msg.type = MsgType::GetS;
    msg.src = node_;
    msg.dst = AddrLayout::bankOf(line_addr, numBanks_);
    msg.dstPort = Port::Bank;
    msg.requester = core_;
    msg.addr = line_addr;
    msg.sync = sync;
    msg.txn = nextTxn_++;
    eq_.schedule(l1Latency_, [this, msg] { mesh_.send(msg); });
}

void
VipsL1::issueThrough(MemRequest req)
{
    CBSIM_ASSERT(!pendingThrough_, "second outstanding racy request");
    throughOps_.inc();

    Message msg;
    msg.src = node_;
    msg.dst = AddrLayout::bankOf(req.addr, numBanks_);
    msg.dstPort = Port::Bank;
    msg.requester = core_;
    msg.addr = AddrLayout::wordAlign(req.addr);
    msg.sync = req.sync;
    msg.spin = req.spinHint;
    msg.txn = nextTxn_++;

    switch (req.op) {
      case MemOp::LdThrough:
        msg.type = MsgType::LdThrough;
        break;
      case MemOp::LdCb:
        msg.type = MsgType::GetCB;
        break;
      case MemOp::StThrough:
        msg.type = MsgType::StThrough;
        msg.value = req.storeValue;
        break;
      case MemOp::StCb1:
        msg.type = MsgType::StCb1;
        msg.value = req.storeValue;
        break;
      case MemOp::StCb0:
        msg.type = MsgType::StCb0;
        msg.value = req.storeValue;
        break;
      case MemOp::Atomic:
        msg.type = MsgType::AtomicReq;
        msg.atomicFunc = req.func;
        msg.atomicOperand = req.operand;
        msg.atomicCompare = req.compare;
        msg.wakePolicy = req.wake;
        msg.loadIsCallback = req.loadIsCallback;
        break;
      default:
        panic("issueThrough: not a racy op");
    }

    pendingThrough_.emplace(PendingThrough{std::move(req), msg.txn});
    mesh_.send(msg);
}

void
VipsL1::flushLine(Line& line)
{
    if (line.state.dirty == 0)
        return;
    wtFlushes_.inc();
    Message msg;
    msg.type = MsgType::WtFlush;
    msg.src = node_;
    msg.dst = AddrLayout::bankOf(line.tag, numBanks_);
    msg.dstPort = Port::Bank;
    msg.requester = core_;
    msg.addr = line.tag;
    msg.wordMask = line.state.dirty;
    msg.txn = nextTxn_++;
    line.state.dirty = 0;
    ++outstandingFlushAcks_;
    mesh_.send(msg);
}

void
VipsL1::maybeFinishFence()
{
    if (fenceDone_ && outstandingFlushAcks_ == 0) {
        auto done = std::move(fenceDone_);
        fenceDone_ = nullptr;
        done();
    }
}

void
VipsL1::selfDowngrade(FenceCompletion done)
{
    CBSIM_ASSERT(!fenceDone_, "overlapping fences");
    array_.forEachValid([this](Line& line) { flushLine(line); });
    if (outstandingFlushAcks_ == 0) {
        // Nothing dirty: complete after one cycle.
        eq_.schedule(1, std::move(done));
        return;
    }
    fenceDone_ = std::move(done);
}

void
VipsL1::selfInvalidate(FenceCompletion done)
{
    if (faults_ != nullptr) {
        // Fault injection: perturb when the fence takes effect. The
        // core stays blocked on the fence, so a bounded delay must not
        // change results — the soak tests assert exactly that.
        const Tick delay = faults_->selfInvlDelay();
        if (delay > 0) {
            eq_.schedule(delay, [this, done = std::move(done)]() mutable {
                selfInvalidateNow(std::move(done));
            });
            return;
        }
    }
    selfInvalidateNow(std::move(done));
}

void
VipsL1::selfInvalidateNow(FenceCompletion done)
{
    CBSIM_ASSERT(!fenceDone_, "overlapping fences");
    // Footnote 7: a self-invl fence first self-downgrades transient dirty
    // lines (so they can be invalidated), then discards Shared lines.
    array_.forEachValid([this](Line& line) {
        flushLine(line);
        if (!line.state.privatePage) {
            selfInvalidations_.inc();
            array_.invalidate(line);
        }
    });
    if (outstandingFlushAcks_ == 0) {
        eq_.schedule(1, std::move(done));
        return;
    }
    fenceDone_ = std::move(done);
}

void
VipsL1::reclassifyPage(Addr page_base)
{
    array_.forEachValid([this, page_base](Line& line) {
        if (AddrLayout::pageAlign(line.tag) == page_base) {
            flushLine(line);
            array_.invalidate(line);
        }
    });
}

void
VipsL1::handleMessage(const Message& msg)
{
    switch (msg.type) {
      case MsgType::Data: {
        // DRF fill response.
        CBSIM_ASSERT(pendingFill_ && pendingFill_->lineAddr == msg.addr,
                     "unexpected fill");
        PendingFill p = std::move(*pendingFill_);
        pendingFill_.reset();

        auto* victim = array_.victim(msg.addr);
        if (victim->valid)
            flushLine(*victim);
        array_.install(*victim, msg.addr);
        accesses_.inc(); // fill write
        victim->state.privatePage =
            classifier_.classify(msg.addr, core_) == PageClass::Private;

        Word result = 0;
        if (p.req.op == MemOp::Load) {
            result = data_.read(p.req.addr);
        } else {
            data_.write(p.req.addr, p.req.storeValue);
            victim->state.dirty |=
                1u << AddrLayout::wordInLine(p.req.addr);
        }
        eq_.schedule(l1Latency_,
                     [cb = p.req.onComplete, result] { cb(result); });
        break;
      }

      case MsgType::DataWord:
      case MsgType::WakeUp: {
        // Completion of a racy load/atomic (immediate or woken).
        CBSIM_ASSERT(pendingThrough_, "through response without request");
        PendingThrough p = std::move(*pendingThrough_);
        pendingThrough_.reset();
        p.req.onComplete(msg.value);
        break;
      }

      case MsgType::Ack: {
        if (pendingThrough_ && msg.txn == pendingThrough_->txn) {
            // Racy store completion (blocking, §3.2).
            PendingThrough p = std::move(*pendingThrough_);
            pendingThrough_.reset();
            p.req.onComplete(0);
        } else {
            // Write-through flush ack.
            CBSIM_ASSERT(outstandingFlushAcks_ > 0, "stray flush ack");
            --outstandingFlushAcks_;
            maybeFinishFence();
        }
        break;
      }

      default:
        panic("VipsL1: unexpected message ", msg.toString());
    }
}

bool
VipsL1::cached(Addr addr) const
{
    return array_.find(addr) != nullptr;
}

std::uint32_t
VipsL1::dirtyMask(Addr addr) const
{
    const auto* line = array_.find(addr);
    return line ? line->state.dirty : 0;
}

void
VipsL1::dumpDebug(JsonWriter& w) const
{
    w.beginObject();
    w.field("protocol", "vips");
    w.field("core", static_cast<std::uint64_t>(core_));
    w.field("cached_lines",
            static_cast<std::uint64_t>(array_.validCount()));
    w.field("outstanding_flush_acks",
            static_cast<std::uint64_t>(outstandingFlushAcks_));
    w.field("fence_pending", static_cast<bool>(fenceDone_));
    w.key("pending_fill");
    if (pendingFill_) {
        w.beginObject();
        w.field("line",
                static_cast<std::uint64_t>(pendingFill_->lineAddr));
        w.endObject();
    } else {
        w.null();
    }
    w.key("pending_through");
    if (pendingThrough_) {
        w.beginObject();
        w.field("addr",
                static_cast<std::uint64_t>(pendingThrough_->req.addr));
        w.field("txn", pendingThrough_->txn);
        w.endObject();
    } else {
        w.null();
    }
    w.endObject();
}

void
VipsL1::registerStats(const StatsScope& scope)
{
    scope.add("accesses", accesses_);
    scope.add("hits", hits_);
    scope.add("misses", misses_);
    scope.add("self_invalidations", selfInvalidations_);
    scope.add("wt_flushes", wtFlushes_);
    scope.add("through_ops", throughOps_);
}

} // namespace cbsim
