#include "coherence/vips/page_classifier.hh"

namespace cbsim {

PageClassifier::PageClassifier(TransitionHook hook) : hook_(std::move(hook))
{
}

PageClass
PageClassifier::classify(Addr addr, CoreId core)
{
    const Addr page = AddrLayout::pageNumber(addr);
    auto [it, inserted] = pages_.emplace(page, PageInfo{});
    PageInfo& info = it->second;
    if (inserted) {
        info.owner = core;
        privatePages_.inc();
        return PageClass::Private;
    }
    if (info.shared)
        return PageClass::Shared;
    if (info.owner == core)
        return PageClass::Private;
    // Second distinct accessor: permanent promotion to Shared.
    info.shared = true;
    transitions_.inc();
    const CoreId prev = info.owner;
    info.owner = invalidCore;
    if (hook_)
        hook_(prev, page * AddrLayout::pageBytes);
    return PageClass::Shared;
}

PageClass
PageClassifier::peek(Addr addr) const
{
    auto it = pages_.find(AddrLayout::pageNumber(addr));
    if (it == pages_.end())
        return PageClass::Private;
    return it->second.shared ? PageClass::Shared : PageClass::Private;
}

void
PageClassifier::registerStats(const StatsScope& scope)
{
    scope.add("private_pages", privatePages_);
    scope.add("transitions", transitions_);
}

} // namespace cbsim
