#include "coherence/callback/callback_directory.hh"

#include "sim/log.hh"

namespace cbsim {

CallbackDirectory::CallbackDirectory(unsigned num_entries,
                                     unsigned num_cores)
    : entries_(num_entries), numCores_(num_cores)
{
    if (num_entries == 0)
        fatal("callback directory needs at least one entry");
    if (num_cores == 0 || num_cores > 64)
        fatal("callback directory supports 1..64 cores, got ", num_cores);
}

std::uint64_t
CallbackDirectory::allMask() const
{
    return numCores_ == 64 ? ~0ULL : ((1ULL << numCores_) - 1);
}

CallbackDirectory::Entry*
CallbackDirectory::find(Addr word)
{
    const Addr w = AddrLayout::wordAlign(word);
    for (auto& e : entries_) {
        if (e.valid && e.word == w)
            return &e;
    }
    return nullptr;
}

const CallbackDirectory::Entry*
CallbackDirectory::find(Addr word) const
{
    return const_cast<CallbackDirectory*>(this)->find(word);
}

CallbackDirectory::Entry&
CallbackDirectory::ensure(Addr word, CbReadResult& res)
{
    const Addr w = AddrLayout::wordAlign(word);
    if (Entry* e = find(w))
        return *e;

    // Pick an invalid entry, else the LRU victim.
    Entry* victim = nullptr;
    for (auto& e : entries_) {
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (!victim || e.lru < victim->lru)
            victim = &e;
    }
    if (victim->valid) {
        // Replacement: satisfy all waiters with the current value; the
        // bits are lost (Fig. 3 step 5). The caller performs the wakes.
        evictions_.inc();
        res.evictionHappened = true;
        res.evictedWord = victim->word;
        for (CoreId c = 0; c < numCores_; ++c) {
            if (victim->cb & (1ULL << c))
                res.evictedWaiters.push_back(c);
        }
    }
    allocations_.inc();
    victim->valid = true;
    victim->word = w;
    victim->cb = 0;
    victim->fe = allMask(); // fresh entries start all-full (Fig. 3 step 6)
    victim->aoOne = false;
    touch(*victim);
    return *victim;
}

CbReadResult
CallbackDirectory::ldCb(Addr addr, CoreId core)
{
    CBSIM_ASSERT(core < numCores_, "ldCb: core out of range");
    CbReadResult res;
    Entry& e = ensure(addr, res);
    touch(e);
    const std::uint64_t bit = 1ULL << core;

    if (e.aoOne) {
        // One mode: all F/E bits act in unison (all-full or all-empty).
        if (e.fe != 0) {
            e.fe = 0; // this read consumes the single value for everyone
            immediateReads_.inc();
            return res;
        }
    } else {
        if (e.fe & bit) {
            e.fe &= ~bit; // consume this core's full bit
            immediateReads_.inc();
            return res;
        }
    }
    // Empty: set the callback and block awaiting the next write.
    e.cb |= bit;
    res.blocked = true;
    blockedReads_.inc();
    return res;
}

void
CallbackDirectory::ldThrough(Addr addr, CoreId core)
{
    CBSIM_ASSERT(core < numCores_, "ldThrough: core out of range");
    Entry* e = find(addr);
    if (!e)
        return; // never allocates
    touch(*e);
    if (e->aoOne) {
        if (e->fe != 0)
            e->fe = 0;
    } else {
        e->fe &= ~(1ULL << core);
    }
    // Never blocks: the caller returns the current value regardless.
}

CbWriteResult
CallbackDirectory::store(Addr addr, CoreId writer, WakePolicy policy)
{
    CbWriteResult res;
    Entry* e = find(addr);
    if (!e)
        return res; // writes never allocate entries

    touch(*e);
    switch (policy) {
      case WakePolicy::All:
        // st_through / st_cbA: wake every waiter; F/E bits of the cores
        // that did NOT have a callback become full (Fig. 3 step 3); the
        // entry reverts to All mode.
        for (CoreId c = 0; c < numCores_; ++c) {
            if (e->cb & (1ULL << c))
                res.wake.push_back(c);
        }
        e->fe = allMask() & ~e->cb;
        e->cb = 0;
        e->aoOne = false;
        break;

      case WakePolicy::One: {
        // st_cb1: switch to One mode; wake exactly one waiter chosen by
        // the pseudo-random round-robin policy (scan upward from the
        // writer, wrapping); F/E bits stay empty if someone was woken
        // (Fig. 4 step 9), else become all-full in unison.
        e->aoOne = true;
        if (e->cb != 0) {
            CoreId pick = invalidCore;
            for (unsigned i = 1; i <= numCores_; ++i) {
                const CoreId c = (writer + i) % numCores_;
                if (e->cb & (1ULL << c)) {
                    pick = c;
                    break;
                }
            }
            CBSIM_ASSERT(pick != invalidCore, "cb mask inconsistent");
            e->cb &= ~(1ULL << pick);
            e->fe = 0; // undisturbed: the woken read consumed the value
            res.wake.push_back(pick);
        } else {
            e->fe = allMask(); // value available for the next reader
        }
        break;
      }

      case WakePolicy::Zero:
        // st_cb0: the write of a successful RMW; wake nobody, leave the
        // F/E bits undisturbed, stay/become One mode (lock idiom).
        e->aoOne = true;
        break;

      case WakePolicy::None:
        // DRF store: never reaches the callback directory.
        panic("WakePolicy::None presented to callback directory");
    }
    wakeups_.inc(res.wake.size());
    return res;
}

bool
CallbackDirectory::hasCallback(Addr addr, CoreId core) const
{
    const Entry* e = find(addr);
    return e && (e->cb & (1ULL << core));
}

std::optional<CallbackDirectory::EntrySnapshot>
CallbackDirectory::snapshot(Addr addr) const
{
    const Entry* e = find(addr);
    if (!e)
        return std::nullopt;
    return EntrySnapshot{e->cb, e->fe, e->aoOne};
}

std::vector<CallbackDirectory::EntryState>
CallbackDirectory::entryStates() const
{
    std::vector<EntryState> out;
    for (const auto& e : entries_) {
        if (e.valid)
            out.push_back(EntryState{e.word, e.cb, e.fe, e.aoOne});
    }
    return out;
}

CbReadResult
CallbackDirectory::forceEvictOne()
{
    CbReadResult res;
    // Prefer a live-waiter entry (the interesting recovery path); fall
    // back to any valid entry so storms still churn idle directories.
    Entry* victim = nullptr;
    for (auto& e : entries_) {
        if (!e.valid)
            continue;
        if (e.cb != 0) {
            victim = &e;
            break;
        }
        if (victim == nullptr)
            victim = &e;
    }
    if (victim == nullptr)
        return res;

    evictions_.inc();
    res.evictionHappened = true;
    res.evictedWord = victim->word;
    for (CoreId c = 0; c < numCores_; ++c) {
        if (victim->cb & (1ULL << c))
            res.evictedWaiters.push_back(c);
    }
    victim->valid = false;
    victim->cb = 0;
    victim->fe = 0;
    victim->aoOne = false;
    return res;
}

unsigned
CallbackDirectory::validEntries() const
{
    unsigned n = 0;
    for (const auto& e : entries_)
        n += e.valid ? 1 : 0;
    return n;
}

void
CallbackDirectory::registerStats(const StatsScope& scope)
{
    scope.add("allocations", allocations_);
    scope.add("evictions", evictions_);
    scope.add("blocked_reads", blockedReads_);
    scope.add("immediate_reads", immediateReads_);
    scope.add("wakeups", wakeups_);
}

} // namespace cbsim
