/**
 * @file
 * The callback directory: a tiny, self-contained directory cache "just
 * for spin-waiting" (the paper's primary contribution, §2).
 *
 * Each LLC bank owns one of these with a handful of fully-associative,
 * word-granular entries. An entry holds, per core, a Callback (CB) bit and
 * a Full/Empty (F/E) bit, plus an All/One (A/O) mode bit. The structure is
 * NOT backed by memory: entries are created on demand by callback reads
 * (only callback reads allocate) and evicted by satisfying all their
 * waiters with the current value, after which the bits are simply lost
 * and a fresh entry starts at the known state {F/E=all full, CB=all 0,
 * A/O=All}.
 *
 * This class is a pure state machine (no events, no network); the VIPS
 * LLC bank interprets its returned actions. This keeps the paper's
 * worked examples (Figs. 3-6) directly unit-testable.
 */

#ifndef CBSIM_COHERENCE_CALLBACK_CALLBACK_DIRECTORY_HH
#define CBSIM_COHERENCE_CALLBACK_CALLBACK_DIRECTORY_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "mem/addr.hh"
#include "noc/message.hh" // WakePolicy
#include "sim/types.hh"
#include "obs/registry.hh"
#include "stats/stats.hh"

namespace cbsim {

/** Result of a callback read (ld_cb) presented to the directory. */
struct CbReadResult
{
    /** True: the read must block; its CB bit has been set. */
    bool blocked = false;
    /**
     * Waiters of an entry evicted to make room (their callbacks must be
     * satisfied with the current value of @c evictedWord).
     */
    std::vector<CoreId> evictedWaiters;
    /** Word address of the evicted entry (valid iff evictedWaiters set). */
    Addr evictedWord = 0;
    bool evictionHappened = false;
};

/** Result of a write presented to the directory. */
struct CbWriteResult
{
    /** Cores whose callbacks this write satisfies (to be woken). */
    std::vector<CoreId> wake;
};

/**
 * A bank's slice of the callback directory.
 *
 * Supports up to 64 cores (CB/F/E bit vectors are 64-bit masks).
 */
class CallbackDirectory
{
  public:
    /**
     * @param num_entries entries in this bank's slice (Table 2: 4)
     * @param num_cores   cores in the system (<= 64)
     */
    CallbackDirectory(unsigned num_entries, unsigned num_cores);

    /**
     * ld_cb from @p core to word @p addr. Allocates an entry on miss
     * (possibly evicting; the caller wakes the evicted waiters).
     * If not blocked, the read consumed the F/E state and the caller
     * responds with the LLC's current value.
     */
    CbReadResult ldCb(Addr addr, CoreId core);

    /**
     * ld_through from @p core: consumes F/E state if an entry exists but
     * never blocks and never allocates (§3.3 forward-progress guard).
     */
    void ldThrough(Addr addr, CoreId core);

    /**
     * A write with the given wake policy (All = st_through/st_cbA,
     * One = st_cb1, Zero = st_cb0). Returns the waiters to wake.
     * @param writer the writing core (round-robin scan starts above it)
     */
    CbWriteResult store(Addr addr, CoreId writer, WakePolicy policy);

    /** True if @p core currently has its CB bit set for @p addr. */
    bool hasCallback(Addr addr, CoreId core) const;

    /** Entry introspection for tests; nullopt if no entry. */
    struct EntrySnapshot
    {
        std::uint64_t cb;
        std::uint64_t fe;
        bool aoOne;
    };
    std::optional<EntrySnapshot> snapshot(Addr addr) const;

    /** Number of valid entries. */
    unsigned validEntries() const;

    /**
     * Full-state snapshot of every valid entry (word address + bits),
     * for the invariant checker and forensic dumps.
     */
    struct EntryState
    {
        Addr word;
        std::uint64_t cb;
        std::uint64_t fe;
        bool aoOne;
    };
    std::vector<EntryState> entryStates() const;

    /**
     * Fault injection (eviction storm): evict one valid entry —
     * preferring one with live waiters — exactly as a capacity
     * replacement would (paper §3 recovery path: waiters are satisfied
     * with the current value and the bits are lost). Returns the
     * evicted waiters + word via the same CbReadResult shape the caller
     * already handles; evictionHappened is false if the directory holds
     * no valid entry.
     */
    CbReadResult forceEvictOne();

    void registerStats(const StatsScope& scope);

  private:
    struct Entry
    {
        bool valid = false;
        Addr word = 0;
        std::uint64_t cb = 0;   ///< per-core callback bits
        std::uint64_t fe = 0;   ///< per-core full/empty bits (1 = full)
        bool aoOne = false;     ///< A/O mode: false = All, true = One
        std::uint64_t lru = 0;
    };

    Entry* find(Addr word);
    const Entry* find(Addr word) const;

    /**
     * Get the entry for @p word, allocating (and possibly evicting) on
     * miss. Fills the eviction fields of @p res.
     */
    Entry& ensure(Addr word, CbReadResult& res);

    std::uint64_t allMask() const;
    void touch(Entry& e) { e.lru = ++stamp_; }

    std::vector<Entry> entries_;
    unsigned numCores_;
    std::uint64_t stamp_ = 0;

    Counter allocations_;
    Counter evictions_;
    Counter blockedReads_;
    Counter immediateReads_;
    Counter wakeups_;
};

} // namespace cbsim

#endif // CBSIM_COHERENCE_CALLBACK_CALLBACK_DIRECTORY_HH
