/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic() flags a simulator bug (aborts); fatal() flags a user/config
 * error (throws, so tests can assert on it); warn()/inform() print status.
 */

#ifndef CBSIM_SIM_LOG_HH
#define CBSIM_SIM_LOG_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace cbsim {

/** Exception thrown by fatal(): a user-correctable configuration error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& what) : std::runtime_error(what) {}
};

/** Exception thrown by panic(): an internal simulator invariant violation. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string& what) : std::logic_error(what) {}
};

/**
 * Exception thrown when a run exceeds its wall-clock budget (see
 * DebugConfig::wallTimeoutS). A FatalError subtype — a timeout is an
 * operational limit, not a simulator bug — that callers like the sweep
 * runner can distinguish to report "timeout" rather than "failed".
 */
class TimeoutError : public FatalError
{
  public:
    explicit TimeoutError(const std::string& what) : FatalError(what) {}
};

namespace detail {

void logMessage(const char* level, const std::string& msg);

template <typename... Args>
std::string
format(Args&&... args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/** Report an internal simulator bug and abort the simulation. */
template <typename... Args>
[[noreturn]] void
panic(Args&&... args)
{
    auto msg = detail::format(std::forward<Args>(args)...);
    detail::logMessage("panic", msg);
    throw PanicError(msg);
}

/** Report a user-correctable error (bad configuration, bad program). */
template <typename... Args>
[[noreturn]] void
fatal(Args&&... args)
{
    auto msg = detail::format(std::forward<Args>(args)...);
    detail::logMessage("fatal", msg);
    throw FatalError(msg);
}

/** Report suspicious-but-survivable conditions. */
template <typename... Args>
void
warn(Args&&... args)
{
    detail::logMessage("warn", detail::format(std::forward<Args>(args)...));
}

/** Report normal operating status. */
template <typename... Args>
void
inform(Args&&... args)
{
    detail::logMessage("info", detail::format(std::forward<Args>(args)...));
}

/** Simulator-bug assertion that survives NDEBUG builds. */
#define CBSIM_ASSERT(cond, ...)                                             \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::cbsim::panic("assertion failed: ", #cond, " ", __FILE__, ":", \
                           __LINE__, " ", ##__VA_ARGS__);                   \
        }                                                                   \
    } while (0)

} // namespace cbsim

#endif // CBSIM_SIM_LOG_HH
