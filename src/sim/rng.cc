#include "sim/rng.hh"

#include "sim/log.hh"

namespace cbsim {

namespace {

std::uint64_t
splitmix64(std::uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    for (auto& word : s_)
        word = splitmix64(seed);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    CBSIM_ASSERT(bound > 0, "Rng::below(0)");
    // Lemire's nearly-divisionless method with rejection.
    std::uint64_t x = next();
    unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
        std::uint64_t threshold = (0 - bound) % bound;
        while (lo < threshold) {
            x = next();
            m = static_cast<unsigned __int128>(x) * bound;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::jitter(std::uint64_t mean, double spread)
{
    if (mean == 0 || spread <= 0.0)
        return mean;
    const double lo = static_cast<double>(mean) * (1.0 - spread);
    const double hi = static_cast<double>(mean) * (1.0 + spread);
    const double v = lo + uniform() * (hi - lo);
    return v < 1.0 ? 1 : static_cast<std::uint64_t>(v);
}

} // namespace cbsim
