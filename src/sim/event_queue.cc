#include "sim/event_queue.hh"

namespace cbsim {

void
EventQueue::pushFar(Tick when, Event ev)
{
    std::uint32_t slot;
    if (farFree_.empty()) {
        slot = static_cast<std::uint32_t>(farSlots_.size());
        farSlots_.push_back(std::move(ev));
    } else {
        slot = farFree_.back();
        farFree_.pop_back();
        farSlots_[slot] = std::move(ev);
    }
    far_.push_back(FarKey{when, nextSeq_++, slot});
    std::push_heap(far_.begin(), far_.end(), FarLater{});
}

void
EventQueue::migrateFar()
{
    // All pending events are in the far-heap (the wheel just drained),
    // so popping the heap in (when, seq) order and appending to buckets
    // reproduces the exact global dispatch order inside the new window.
    wheelBase_ = far_.front().when;
    now_ = wheelBase_;
    while (!far_.empty() && far_.front().when - wheelBase_ < wheelSize) {
        std::pop_heap(far_.begin(), far_.end(), FarLater{});
        const FarKey key = far_.back();
        far_.pop_back();
        const std::size_t idx = key.when & (wheelSize - 1);
        Bucket& b = buckets_[idx];
        if (b.events.size() == b.head)
            setOccupied(idx);
        b.events.push_back(std::move(farSlots_[key.slot]));
        farFree_.push_back(key.slot);
        ++wheelCount_;
    }
}

void
EventQueue::fireEpochs()
{
    // Epoch boundaries cut *before* the bucket at now_ dispatches, so
    // a window [b-e, b) contains exactly the activity of ticks < b —
    // the series is half-open and identical however sparse the queue
    // is. A jump over several boundaries fires once per boundary.
    while (now_ >= nextEpochAt_) {
        const Tick boundary = nextEpochAt_;
        nextEpochAt_ += epochEvery_;
        epochFn_(boundary);
    }
}

Tick
EventQueue::run(Tick maxTicks)
{
    while (advance()) {
        if (now_ > maxTicks) {
            fatal("simulation exceeded tick budget ", maxTicks,
                  " (possible deadlock or livelock); ", pendingEvents(),
                  " events pending, head event at tick ", now_);
        }
        // Keep the disabled epoch cost to this one predicted-false
        // compare: the boundary walk lives out of line (fireEpochs) so
        // its std::function call doesn't deoptimize the dispatch loop.
        if (now_ >= nextEpochAt_) [[unlikely]]
            fireEpochs();
        // Dispatch the whole bucket at now_ in one pass: swap its
        // vector into the scratch buffer and invoke the events in
        // place, so nothing is moved per event. Same-tick re-entrant
        // schedules land in the bucket's (fresh) vector — setting the
        // occupancy bit again — and are picked up by the next
        // advance(), which stays on this tick.
        const std::size_t idx = now_ & (wheelSize - 1);
        Bucket& b = buckets_[idx];
        const std::size_t head = b.head; // non-zero only after step()
        b.head = 0;
        clearOccupied(idx);
        scratch_.swap(b.events);
        const std::size_t count = scratch_.size() - head;
        wheelCount_ -= count;
        executed_ += count;
        for (std::size_t i = head; i < scratch_.size(); ++i)
            scratch_[i]();
        scratch_.clear();
        if (b.events.empty()) {
            // No re-entrant appends: hand the (larger) capacity back
            // so the bucket stays allocation-free next time around.
            b.events.swap(scratch_);
        }
        if (executed_ >= nextPollAt_) {
            nextPollAt_ = executed_ + pollEvery_;
            pollFn_();
        }
    }
    return now_;
}

EventQueue::DebugSnapshot
EventQueue::debugSnapshot(std::size_t maxHeadTicks) const
{
    DebugSnapshot snap;
    snap.now = now_;
    snap.executed = executed_;
    snap.pending = pendingEvents();
    snap.farPending = far_.size();
    if (!far_.empty())
        snap.farMin = far_.front().when;
    if (wheelCount_ != 0) {
        // Walk occupied buckets in circular (= tick) order from now_.
        std::size_t idx = now_ & (wheelSize - 1);
        std::size_t seen = 0;
        for (std::size_t i = 0; i < wheelSize && seen < maxHeadTicks;
             ++i) {
            const std::size_t b = (idx + i) & (wheelSize - 1);
            const Bucket& bucket = buckets_[b];
            const std::size_t count = bucket.events.size() - bucket.head;
            if (count == 0)
                continue;
            // Recover the bucket's absolute tick: it is the unique tick
            // in [now_, wheelBase_ + wheelSize) congruent to b.
            Tick when = (now_ & ~(wheelSize - 1)) | b;
            if (when < now_)
                when += wheelSize;
            snap.headWindow.emplace_back(when, count);
            ++seen;
        }
    }
    return snap;
}

} // namespace cbsim
