#include "sim/event_queue.hh"

namespace cbsim {

bool
EventQueue::step()
{
    if (queue_.empty())
        return false;
    // priority_queue::top() is const; the closure must be moved out, so we
    // copy the header fields and const_cast the payload (safe: we pop right
    // after and never touch the moved-from object again).
    const Event& top = queue_.top();
    now_ = top.when;
    EventFn fn = std::move(const_cast<Event&>(top).fn);
    queue_.pop();
    ++executed_;
    fn();
    return true;
}

Tick
EventQueue::run(Tick maxTicks)
{
    while (!queue_.empty()) {
        if (queue_.top().when > maxTicks) {
            fatal("simulation exceeded tick budget ", maxTicks,
                  " (possible deadlock or livelock); now=", now_);
        }
        step();
    }
    return now_;
}

} // namespace cbsim
