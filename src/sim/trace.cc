#include "sim/trace.hh"

#include <cstdlib>
#include <cstring>
#include <iostream>

namespace cbsim {

const char*
traceCategoryName(TraceCategory c)
{
    switch (c) {
      case TraceCategory::Core: return "core";
      case TraceCategory::L1: return "l1";
      case TraceCategory::Llc: return "llc";
      case TraceCategory::CbDir: return "cbdir";
      case TraceCategory::Noc: return "noc";
      default: return "?";
    }
}

Tracer&
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

void
Tracer::configureFromEnvironment()
{
    const char* cats = std::getenv("CBSIM_TRACE");
    if (cats) {
        std::string list(cats);
        for (std::size_t c = 0;
             c < static_cast<std::size_t>(TraceCategory::NumCategories);
             ++c) {
            const char* name =
                traceCategoryName(static_cast<TraceCategory>(c));
            if (list == "all" || list.find(name) != std::string::npos)
                enabled_[c] = true;
        }
        syncMask();
    }
    if (const char* addr = std::getenv("CBSIM_TRACE_ADDR"))
        setLineFilter(std::strtoull(addr, nullptr, 0));
}

void
Tracer::enable(TraceCategory c, bool on)
{
    enabled_[static_cast<std::size_t>(c)] = on;
    syncMask();
}

void
Tracer::enableAll(bool on)
{
    enabled_.fill(on);
    syncMask();
}

void
Tracer::syncMask()
{
    std::uint8_t mask = 0;
    for (std::size_t c = 0; c < enabled_.size(); ++c) {
        if (enabled_[c])
            mask |= static_cast<std::uint8_t>(1u << c);
    }
    activeMask = mask;
}

void
Tracer::setLineFilter(Addr line_addr)
{
    lineFilter_ = AddrLayout::lineAlign(line_addr);
}

void
Tracer::setSink(std::ostream* sink)
{
    sink_ = sink;
}

void
Tracer::emit(TraceCategory c, Tick now, const std::string& text)
{
    ++emitted_;
    std::ostream& os = sink_ ? *sink_ : std::cerr;
    os << '[' << now << "] " << traceCategoryName(c) << ": " << text
       << '\n';
}

void
Tracer::reset()
{
    enabled_.fill(false);
    syncMask();
    lineFilter_ = 0;
    sink_ = nullptr;
    emitted_ = 0;
}

} // namespace cbsim
