#include "sim/log.hh"

#include <cstdio>

namespace cbsim {
namespace detail {

void
logMessage(const char* level, const std::string& msg)
{
    std::fprintf(stderr, "cbsim: %s: %s\n", level, msg.c_str());
}

} // namespace detail
} // namespace cbsim
