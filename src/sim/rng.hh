/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * The simulator never uses std::random_device or global state: every
 * stochastic component owns an Rng seeded from the run configuration, so a
 * run is a pure function of its config.
 */

#ifndef CBSIM_SIM_RNG_HH
#define CBSIM_SIM_RNG_HH

#include <cstdint>

namespace cbsim {

/** xoshiro256** by Blackman & Vigna; small, fast, and reproducible. */
class Rng
{
  public:
    /** Seed via splitmix64 so any 64-bit seed yields a good state. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) using Lemire's method; bound > 0. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial with probability @p p of returning true. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Geometric-ish work perturbation: mean +/- spread, uniformly.
     * Used for per-thread imbalance in workload generation.
     */
    std::uint64_t jitter(std::uint64_t mean, double spread);

  private:
    std::uint64_t s_[4];
};

} // namespace cbsim

#endif // CBSIM_SIM_RNG_HH
