/**
 * @file
 * Runtime-filtered protocol tracing.
 *
 * Debugging coherence protocols is all about seeing the interleaving of
 * events on one line; this tracer makes the ad-hoc printf sessions of
 * protocol bring-up a first-class tool. Categories can be enabled per
 * subsystem and the stream can be restricted to a single cache line;
 * when disabled (the default) a trace point costs one branch.
 *
 * Enable programmatically or via the environment:
 *   CBSIM_TRACE=l1,llc CBSIM_TRACE_ADDR=0x40000ec0 ./bench_fig21_apps
 */

#ifndef CBSIM_SIM_TRACE_HH
#define CBSIM_SIM_TRACE_HH

#include <array>
#include <ostream>
#include <sstream>
#include <string>

#include "mem/addr.hh"
#include "sim/types.hh"

namespace cbsim {

/** Trace categories, one per subsystem. */
enum class TraceCategory : std::uint8_t
{
    Core,  ///< instruction issue / memory completion
    L1,    ///< private-cache controllers (MESI + VIPS)
    Llc,   ///< LLC banks / directory transactions
    CbDir, ///< callback-directory state changes
    Noc,   ///< message injection/delivery
    NumCategories
};

const char* traceCategoryName(TraceCategory c);

/** Global tracer singleton (simulations are single-threaded). */
class Tracer
{
  public:
    static Tracer& instance();

    /**
     * Disabled-path fast check: one load of an inline bitmask and a
     * test, no function call. CBSIM_TRACE consults this before touching
     * the singleton, so trace points really do cost one branch when off.
     */
    static bool
    categoryOn(TraceCategory c)
    {
        return (activeMask & (1u << static_cast<unsigned>(c))) != 0;
    }

    /** Apply CBSIM_TRACE / CBSIM_TRACE_ADDR from the environment. */
    void configureFromEnvironment();

    void enable(TraceCategory c, bool on = true);
    void enableAll(bool on = true);

    /** Restrict output to events whose line matches (0 = no filter). */
    void setLineFilter(Addr line_addr);

    /** Redirect output (default: std::cerr); nullptr silences. */
    void setSink(std::ostream* sink);

    bool
    on(TraceCategory c) const
    {
        return enabled_[static_cast<std::size_t>(c)];
    }

    bool
    lineMatches(Addr addr) const
    {
        return lineFilter_ == 0 ||
               AddrLayout::lineAlign(addr) == lineFilter_;
    }

    void emit(TraceCategory c, Tick now, const std::string& text);

    std::uint64_t eventsEmitted() const { return emitted_; }

    /** Reset to the all-off default (tests). */
    void reset();

  private:
    Tracer() = default;

    /** Recompute activeMask from enabled_ after any change. */
    void syncMask();

    static_assert(static_cast<std::size_t>(TraceCategory::NumCategories) <=
                      8,
                  "activeMask is 8 bits");

    /** Bit per category, mirrored from enabled_ by enable()/reset(). */
    static inline std::uint8_t activeMask = 0;

    std::array<bool,
               static_cast<std::size_t>(TraceCategory::NumCategories)>
        enabled_{};
    Addr lineFilter_ = 0;
    std::ostream* sink_ = nullptr;
    std::uint64_t emitted_ = 0;
};

/**
 * Trace-point macro: evaluates the streamed expression only when the
 * category is enabled and the address passes the line filter.
 */
#define CBSIM_TRACE(category, now, addr, expr)                             \
    do {                                                                   \
        if (::cbsim::Tracer::categoryOn(category)) {                       \
            auto& tracer_ = ::cbsim::Tracer::instance();                   \
            if (tracer_.lineMatches(addr)) {                               \
                std::ostringstream trace_os_;                              \
                trace_os_ << expr;                                         \
                tracer_.emit(category, now, trace_os_.str());              \
            }                                                              \
        }                                                                  \
    } while (0)

} // namespace cbsim

#endif // CBSIM_SIM_TRACE_HH
