/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The whole simulator is driven by a single EventQueue. Components
 * schedule callables at absolute ticks; events scheduled for the same tick
 * fire in scheduling order (a stable queue), which keeps runs bit-exact
 * reproducible for a given seed.
 *
 * Internally the queue is two-level. The near future — a window of
 * wheelSize ticks starting at wheelBase_ — lives in a timing wheel: one
 * bucket per tick, each bucket a plain vector dispatched by index, so
 * same-tick FIFO order is structural rather than enforced by a sequence
 * comparator. A two-level occupancy bitmap (a summary word over
 * per-64-bucket words) makes finding the next pending tick a pair of
 * count-trailing-zeros operations, so advancing over sparse stretches
 * (back-off spins, barrier waits) costs the same as advancing one tick.
 * Events beyond the window (spin-park watchdogs, mostly) overflow to a
 * (when, seq)-ordered binary far-heap. The window stays fixed until the
 * wheel drains completely; only then does the queue rebase onto the
 * far-heap's minimum and migrate every far event that now fits, popping
 * them in (when, seq) order so the global FIFO contract survives the
 * hand-off. Because migration happens only at points where *all*
 * pending events sit in the far-heap, no wheel-vs-heap interleaving
 * case exists.
 *
 * Buckets retain their vector capacity across reuse, so steady-state
 * operation performs no allocation at all: schedule is an inline
 * placement-construct into an existing buffer, dispatch is an index
 * increment (see sim/event.hh for the allocation-free Event itself).
 */

#ifndef CBSIM_SIM_EVENT_QUEUE_HH
#define CBSIM_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/event.hh"
#include "sim/log.hh"
#include "sim/types.hh"

namespace cbsim {

/**
 * Type-erased event callback. Kept for signatures that store callbacks
 * long-term (completion handlers, deferred replays); transient
 * scheduling goes through the templated schedule() overloads and never
 * materializes a std::function.
 */
using EventFn = std::function<void()>;

/**
 * A stable discrete-event queue ordered by (tick, insertion sequence).
 *
 * Typical use:
 * @code
 *   EventQueue eq;
 *   eq.schedule(10, [&]{ ... });
 *   eq.run();
 * @endcode
 */
class EventQueue
{
  public:
    /**
     * Ticks covered by the timing wheel window (power of two, at most
     * 64*64 so the occupancy bitmap stays two levels deep). Bucket
     * structs cycle through the window as time advances, so the array
     * must stay cache-resident: 256 buckets is 8 KB and keeps every
     * recurring short delay (pipeline steps, NoC hops, the 160-cycle
     * memory latency) in the wheel. Larger windows measurably lose
     * more to cache misses than they save in far-heap traffic — deep
     * exponential back-off and spin-park watchdogs take the far-heap
     * path by design.
     */
    static constexpr Tick wheelSize = 256;

    EventQueue() = default;
    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Number of events executed so far. */
    std::uint64_t executedEvents() const { return executed_; }

    /** Number of events currently pending. */
    std::size_t pendingEvents() const { return wheelCount_ + far_.size(); }

    /**
     * Install a hook invoked from run() roughly every @p everyEvents
     * executed events (checked once per dispatched bucket, so the
     * disabled cost is a single compare). The watchdog uses this to
     * poll liveness and run interval invariant checks without ever
     * scheduling events of its own — a self-rescheduling check event
     * would keep the queue from draining and break quiesce detection.
     *
     * The hook runs between buckets (never mid-event) and may throw;
     * pass nullptr to remove it.
     */
    void
    setPollHook(std::uint64_t everyEvents, EventFn fn)
    {
        pollFn_ = std::move(fn);
        pollEvery_ = everyEvents == 0 ? 1 : everyEvents;
        nextPollAt_ =
            pollFn_ ? executed_ + pollEvery_ : ~std::uint64_t{0};
    }

    /**
     * Install a hook invoked from run() at every multiple of
     * @p everyTicks of simulated time (checked once per dispatched
     * bucket, so the disabled cost is a single compare — the same
     * pattern as setPollHook, but keyed on ticks rather than executed
     * events). The epoch sampler uses this to cut deterministic
     * time-series windows without scheduling events of its own.
     *
     * The hook receives the epoch's boundary tick. When the queue jumps
     * a sparse stretch spanning several boundaries, the hook fires once
     * per boundary (back-to-back), so the series stays uniform. Runs
     * between buckets, never mid-event; pass nullptr to remove.
     */
    void
    setEpochHook(Tick everyTicks, std::function<void(Tick)> fn)
    {
        epochFn_ = std::move(fn);
        epochEvery_ = everyTicks == 0 ? 1 : everyTicks;
        nextEpochAt_ = epochFn_ ? now_ + epochEvery_ : ~Tick{0};
    }

    /** Head-of-queue picture for forensic dumps (sim layer stays
     *  JSON-free; debug/forensics serializes this). */
    struct DebugSnapshot
    {
        Tick now = 0;
        std::uint64_t executed = 0;
        std::size_t pending = 0;
        std::size_t farPending = 0;
        Tick farMin = 0;        ///< valid iff farPending > 0
        /** (tick, event count) for the next few occupied wheel ticks. */
        std::vector<std::pair<Tick, std::size_t>> headWindow;
    };

    DebugSnapshot debugSnapshot(std::size_t maxHeadTicks = 8) const;

    /**
     * Schedule @p fn to fire at absolute tick @p when. The callable is
     * constructed directly in its bucket slot — no intermediate Event
     * move on the hot path.
     * @pre when >= now()
     */
    template <typename F>
    void
    scheduleAt(Tick when, F&& fn)
    {
        CBSIM_ASSERT(when >= now_, "scheduling into the past");
        if (when - wheelBase_ < wheelSize) {
            const std::size_t idx = when & (wheelSize - 1);
            Bucket& b = buckets_[idx];
            if (b.events.size() == b.head)
                setOccupied(idx);
            b.events.emplace_back(std::forward<F>(fn));
            ++wheelCount_;
        } else {
            pushFar(when, Event(std::forward<F>(fn)));
        }
    }

    /** Schedule @p fn to fire @p delay ticks from now. */
    template <typename F>
    void
    schedule(Tick delay, F&& fn)
    {
        scheduleAt(now_ + delay, std::forward<F>(fn));
    }

    /**
     * Fast path for per-tick objects: wake @p obj (obj->tick()) after
     * @p delay ticks. Equivalent to schedule(delay, [obj]{obj->tick();})
     * but the event carries no capture and shares one trampoline, and
     * the call site documents that @p obj self-paces on the queue.
     * Ordering relative to ordinary events is identical — clocked
     * wake-ups go through the same buckets.
     */
    void
    scheduleTick(Tick delay, Clocked* obj)
    {
        scheduleAt(now_ + delay, ClockedTick{obj});
    }

    /**
     * Run until the queue drains or @p maxTicks elapses.
     *
     * @param maxTicks Absolute tick budget; exceeding it is a fatal error
     *                 (livelock/deadlock detector for tests and benches).
     * @return The tick at which the queue drained.
     */
    Tick run(Tick maxTicks = maxTick);

    /** Execute a single event; returns false if the queue was empty. */
    bool
    step()
    {
        if (!advance())
            return false;
        const std::size_t idx = now_ & (wheelSize - 1);
        Bucket& b = buckets_[idx];
        Event ev = std::move(b.events[b.head]);
        ++b.head;
        --wheelCount_;
        ++executed_;
        ev(); // may reallocate b.events (same-tick schedule); ev is out
        if (b.head == b.events.size()) {
            b.events.clear(); // keeps capacity: steady state reallocates
            b.head = 0;       // nothing
            clearOccupied(idx);
        }
        return true;
    }

  private:
    /** One tick's worth of events; head indexes the next to fire. */
    struct Bucket
    {
        std::vector<Event> events;
        std::size_t head = 0;
    };

    /**
     * Far-heap entry: ordering key plus the index of the event's slot
     * in farSlots_. Keeping the heap to 24-byte keys (the events stay
     * put in their slots) makes every sift cheap; the event itself
     * moves exactly once, slot -> bucket, at migration time. seq
     * restores FIFO among same-tick far events.
     */
    struct FarKey
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    /** Min-heap order for std::push_heap/pop_heap: earliest at front. */
    struct FarLater
    {
        bool
        operator()(const FarKey& a, const FarKey& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Park @p ev in a slot and push its key (out-of-line: cold path). */
    void pushFar(Tick when, Event ev);

    static constexpr std::size_t bitmapWords = wheelSize / 64;
    static_assert(bitmapWords <= 64,
                  "one summary word must cover the bitmap");

    void
    setOccupied(std::size_t idx)
    {
        occupied_[idx >> 6] |= 1ull << (idx & 63);
        summary_ |= 1ull << (idx >> 6);
    }

    void
    clearOccupied(std::size_t idx)
    {
        const std::size_t w = idx >> 6;
        if ((occupied_[w] &= ~(1ull << (idx & 63))) == 0)
            summary_ &= ~(1ull << w);
    }

    /**
     * Index of the occupied bucket nearest to @p from in circular
     * order (possibly @p from itself). @pre wheelCount_ > 0. Every
     * pending wheel event's tick is in [now_, wheelBase_ + wheelSize),
     * and that half-open range covers each bucket index exactly once,
     * so circular distance from now_'s bucket equals tick order.
     */
    std::size_t
    nextOccupied(std::size_t from) const
    {
        const std::size_t w = from >> 6;
        const std::uint64_t first =
            occupied_[w] & (~0ull << (from & 63));
        if (first)
            return (w << 6) + std::countr_zero(first);
        // Remaining words in circular order, via the summary word:
        // strictly after w first, then wrapping to w itself (its low
        // bits — ticks that wrapped past the window edge).
        const std::uint64_t later =
            w + 1 < bitmapWords ? summary_ & (~0ull << (w + 1)) : 0;
        if (later) {
            const std::size_t w2 = std::countr_zero(later);
            return (w2 << 6) + std::countr_zero(occupied_[w2]);
        }
        const std::uint64_t wrapped = summary_ & ((2ull << w) - 1);
        CBSIM_ASSERT(wrapped, "occupancy bitmap out of sync");
        const std::size_t w2 = std::countr_zero(wrapped);
        const std::uint64_t bits =
            w2 == w ? occupied_[w] & ~(~0ull << (from & 63))
                    : occupied_[w2];
        return (w2 << 6) + std::countr_zero(bits);
    }

    /**
     * Advance now_ to the next pending event's tick (leaving the event
     * at its bucket head). Returns false when the queue is empty.
     */
    bool
    advance()
    {
        if (wheelCount_ == 0) {
            if (far_.empty())
                return false;
            migrateFar();
        }
        const std::size_t c = now_ & (wheelSize - 1);
        now_ += (nextOccupied(c) - c) & (wheelSize - 1);
        return true;
    }

    /**
     * The wheel is empty and the far-heap is not: jump the window to
     * the far-heap's minimum and migrate everything that fits, in
     * (when, seq) order so per-bucket FIFO equals global FIFO.
     */
    void migrateFar();

    std::array<Bucket, wheelSize> buckets_;
    /** Occupancy bitmap: bit per bucket, plus a bit-per-word summary. */
    std::array<std::uint64_t, bitmapWords> occupied_{};
    std::uint64_t summary_ = 0;
    std::vector<FarKey> far_;          ///< binary heap of keys
    std::vector<Event> farSlots_;      ///< parked far events
    std::vector<std::uint32_t> farFree_; ///< recyclable slot indices
    /**
     * run()'s dispatch buffer: the current bucket's vector is swapped
     * in here so events are invoked in place (no per-event move) while
     * same-tick re-entrant schedules append to the bucket's fresh
     * vector. One shared buffer serves every bucket, so its capacity
     * converges on the busiest tick's population and stays there.
     */
    std::vector<Event> scratch_;
    Tick wheelBase_ = 0;  ///< first tick of the wheel window
    Tick now_ = 0;        ///< invariant: wheelBase_ <= now_ <= base+size
    std::size_t wheelCount_ = 0; ///< pending events in the wheel
    std::uint64_t nextSeq_ = 0;  ///< far events only; monotonic
    std::uint64_t executed_ = 0;
    /** Next executed_ value at which run() calls pollFn_ (max = never). */
    std::uint64_t nextPollAt_ = ~std::uint64_t{0};
    std::uint64_t pollEvery_ = 0;
    EventFn pollFn_;
    /** Cold path of the epoch hook: fire every boundary <= now_. */
    [[gnu::noinline]] void fireEpochs();

    /** Next tick boundary at which run() calls epochFn_ (max = never). */
    Tick nextEpochAt_ = ~Tick{0};
    Tick epochEvery_ = 0;
    std::function<void(Tick)> epochFn_;
};

} // namespace cbsim

#endif // CBSIM_SIM_EVENT_QUEUE_HH
