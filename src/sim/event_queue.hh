/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The whole simulator is driven by a single EventQueue. Components
 * schedule closures at absolute ticks; events scheduled for the same tick
 * fire in scheduling order (a stable queue), which keeps runs bit-exact
 * reproducible for a given seed.
 */

#ifndef CBSIM_SIM_EVENT_QUEUE_HH
#define CBSIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/log.hh"
#include "sim/types.hh"

namespace cbsim {

/** Callback fired when an event reaches the head of the queue. */
using EventFn = std::function<void()>;

/**
 * A stable discrete-event queue ordered by (tick, insertion sequence).
 *
 * Typical use:
 * @code
 *   EventQueue eq;
 *   eq.schedule(10, [&]{ ... });
 *   eq.run();
 * @endcode
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Number of events executed so far. */
    std::uint64_t executedEvents() const { return executed_; }

    /** Number of events currently pending. */
    std::size_t pendingEvents() const { return queue_.size(); }

    /**
     * Schedule @p fn to fire at absolute tick @p when.
     * @pre when >= now()
     */
    void
    scheduleAt(Tick when, EventFn fn)
    {
        CBSIM_ASSERT(when >= now_, "scheduling into the past");
        queue_.push(Event{when, nextSeq_++, std::move(fn)});
    }

    /** Schedule @p fn to fire @p delay ticks from now. */
    void
    schedule(Tick delay, EventFn fn)
    {
        scheduleAt(now_ + delay, std::move(fn));
    }

    /**
     * Run until the queue drains or @p maxTicks elapses.
     *
     * @param maxTicks Absolute tick budget; exceeding it is a fatal error
     *                 (livelock/deadlock detector for tests and benches).
     * @return The tick at which the queue drained.
     */
    Tick run(Tick maxTicks = maxTick);

    /** Execute a single event; returns false if the queue was empty. */
    bool step();

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        EventFn fn;
    };

    struct Later
    {
        bool
        operator()(const Event& a, const Event& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace cbsim

#endif // CBSIM_SIM_EVENT_QUEUE_HH
