/**
 * @file
 * Allocation-free event representation for the simulation kernel.
 *
 * The previous kernel scheduled std::function<void()> closures: every
 * capture beyond the small-buffer threshold heap-allocated, and with
 * millions of events per simulated millisecond the allocator dominated
 * the profile. An Event instead stores its callable *inline*: a pointer
 * to a static per-type operations table (the trampoline) plus a
 * fixed-size payload buffer the callable is placement-constructed into.
 * A static_assert at the construction site guarantees no callable can
 * ever spill to the heap — grow eventCapacity if a capture legitimately
 * outgrows it (the compiler error names the offending size).
 *
 * Events are movable (buckets in the timing wheel relocate them on
 * vector growth), single-shot, and destroyed by the queue after firing.
 *
 * The Clocked interface is the companion fast path: objects that run on
 * a per-tick cadence (in-order cores) register themselves once as
 * clocked objects and are rescheduled by pointer — the event payload is
 * two machine words and carries no captured state at all. Clocked
 * wake-ups share the wheel buckets with ordinary events, so the total
 * (tick, scheduling-order) event order — and therefore bit-exact
 * determinism — is identical to a closure-based kernel's.
 */

#ifndef CBSIM_SIM_EVENT_HH
#define CBSIM_SIM_EVENT_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace cbsim {

/**
 * A per-tick schedulable object (the clocked-core fast path). Implement
 * tick() and reschedule with EventQueue::scheduleTick(delay, this):
 * cheaper than any closure (no capture, shared trampoline) and free of
 * lifetime concerns — the queue stores only the pointer.
 */
class Clocked
{
  public:
    virtual void tick() = 0;

  protected:
    ~Clocked() = default; ///< never deleted through this interface
};

/**
 * One-pointer payload behind EventQueue::scheduleTick(): all clocked
 * wake-ups share this trampoline, so the per-tick fast path carries no
 * captured state and no per-call-site instantiation.
 */
struct ClockedTick
{
    Clocked* obj;
    void operator()() const { obj->tick(); }
};

/** Inline payload capacity of an Event, in bytes (see file comment). */
inline constexpr std::size_t eventCapacity = 112;

/** A fixed-size, allocation-free, single-shot event. */
class Event
{
  public:
    Event() noexcept = default;

    /** Construct from any callable; fails to compile if it can't fit. */
    template <typename F>
        requires(!std::is_same_v<std::remove_cvref_t<F>, Event>)
    Event(F&& fn) // NOLINT: implicit by design, mirrors std::function
    {
        using Fn = std::remove_cvref_t<F>;
        static_assert(sizeof(Fn) <= eventCapacity,
                      "event callable exceeds the inline payload "
                      "capacity; shrink the capture or grow "
                      "cbsim::eventCapacity");
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "over-aligned event callable");
        static_assert(std::is_nothrow_move_constructible_v<Fn>,
                      "event callables must be nothrow-movable (the "
                      "timing wheel relocates them)");
        static_assert(std::is_invocable_r_v<void, Fn>,
                      "event callable must be invocable as void()");
        ::new (static_cast<void*>(payload_)) Fn(std::forward<F>(fn));
        ops_ = &opsFor<Fn>;
    }

    Event(Event&& other) noexcept : ops_(other.ops_)
    {
        if (ops_) {
            ops_->relocate(payload_, other.payload_);
            other.ops_ = nullptr;
        }
    }

    Event&
    operator=(Event&& other) noexcept
    {
        if (this != &other) {
            reset();
            ops_ = other.ops_;
            if (ops_) {
                ops_->relocate(payload_, other.payload_);
                other.ops_ = nullptr;
            }
        }
        return *this;
    }

    Event(const Event&) = delete;
    Event& operator=(const Event&) = delete;

    ~Event() { reset(); }

    /** True when this event holds a callable (not moved-from). */
    explicit operator bool() const noexcept { return ops_ != nullptr; }

    /** Fire the event. @pre engaged; leaves the callable constructed. */
    void
    operator()()
    {
        ops_->invoke(payload_);
    }

  private:
    struct Ops
    {
        void (*invoke)(void* p);
        /** Move-construct *src into dst, then destroy *src. */
        void (*relocate)(void* dst, void* src) noexcept;
        void (*destroy)(void* p) noexcept;
    };

    template <typename Fn>
    static constexpr Ops opsFor = {
        [](void* p) { (*static_cast<Fn*>(p))(); },
        [](void* dst, void* src) noexcept {
            ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
            static_cast<Fn*>(src)->~Fn();
        },
        [](void* p) noexcept { static_cast<Fn*>(p)->~Fn(); },
    };

    void
    reset() noexcept
    {
        if (ops_) {
            ops_->destroy(payload_);
            ops_ = nullptr;
        }
    }

    const Ops* ops_ = nullptr;
    alignas(std::max_align_t) std::byte payload_[eventCapacity];
};

static_assert(sizeof(Event) == 128,
              "Event layout drifted: ops pointer (padded to payload "
              "alignment) + inline payload, two cache lines total");

} // namespace cbsim

#endif // CBSIM_SIM_EVENT_HH
