/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */

#ifndef CBSIM_SIM_TYPES_HH
#define CBSIM_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace cbsim {

/** Simulated time, in core clock cycles. */
using Tick = std::uint64_t;

/** Sentinel for "never" / "not scheduled". */
inline constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Byte address in the simulated physical address space. */
using Addr = std::uint64_t;

/** Core (and hardware-thread) identifier; cores are numbered 0..N-1. */
using CoreId = std::uint32_t;

/** Mesh node identifier; node i hosts core i, its L1, and LLC bank i. */
using NodeId = std::uint32_t;

/** LLC bank identifier (one bank per mesh node). */
using BankId = std::uint32_t;

/** Sentinel core id (no core / invalid). */
inline constexpr CoreId invalidCore = std::numeric_limits<CoreId>::max();

/** Machine word (simulated memory is word-granular, 8 bytes). */
using Word = std::uint64_t;

} // namespace cbsim

#endif // CBSIM_SIM_TYPES_HH
