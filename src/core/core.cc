#include "core/core.hh"

#include "harness/json.hh"
#include "obs/attribution.hh"
#include "obs/trace_export.hh"
#include "sim/log.hh"

namespace cbsim {

void
SyncStats::registerStats(const StatsScope& scope)
{
    for (std::size_t k = 1; k < numKinds; ++k) {
        const StatsScope kind =
            scope.scope(syncKindName(static_cast<SyncKind>(k)));
        kind.add("latency", latency[k]);
        kind.add("completions", completions[k]);
    }
}

Core::Core(CoreId id, EventQueue& eq, L1Controller& l1,
           const BackoffConfig& backoff, SyncStats& sync_stats,
           std::function<void()> on_done)
    : id_(id), eq_(eq), l1_(l1), backoff_(backoff),
      syncStats_(sync_stats), onDone_(std::move(on_done))
{
    recordStart_.fill(maxTick);
}

void
Core::setProgram(Program program)
{
    program_ = std::move(program);
    pc_ = 0;
}

void
Core::start()
{
    CBSIM_ASSERT(!program_.empty(), "core started without a program");
    eq_.scheduleTick(0, this);
}

void
Core::step()
{
    // Batch-execute ALU/control instructions without scheduling an event
    // per instruction; stop at memory ops, fences, and Done.
    Tick t = 0; // offset from eq_.now()
    std::uint64_t guard = 0;
    while (true) {
        if (++guard > 10'000'000ULL)
            panic("core ", id_, ": runaway ALU loop at pc ", pc_);

        const Instruction& ins = program_.at(pc_);
        instructions_.inc();
        switch (ins.op) {
          case Opcode::MovImm:
            regs_[ins.rd] = ins.imm;
            ++pc_;
            t += 1;
            break;
          case Opcode::Mov:
            regs_[ins.rd] = regs_[ins.rs1];
            ++pc_;
            t += 1;
            break;
          case Opcode::Add:
            regs_[ins.rd] = regs_[ins.rs1] + regs_[ins.rs2];
            ++pc_;
            t += 1;
            break;
          case Opcode::AddImm:
            regs_[ins.rd] = regs_[ins.rs1] + ins.imm;
            ++pc_;
            t += 1;
            break;
          case Opcode::Sub:
            regs_[ins.rd] = regs_[ins.rs1] - regs_[ins.rs2];
            ++pc_;
            t += 1;
            break;
          case Opcode::Not:
            regs_[ins.rd] = regs_[ins.rs1] == 0 ? 1 : 0;
            ++pc_;
            t += 1;
            break;
          case Opcode::Beq:
            pc_ = regs_[ins.rs1] == regs_[ins.rs2] ? ins.imm : pc_ + 1;
            t += 1;
            break;
          case Opcode::Bne:
            pc_ = regs_[ins.rs1] != regs_[ins.rs2] ? ins.imm : pc_ + 1;
            t += 1;
            break;
          case Opcode::Blt:
            pc_ = regs_[ins.rs1] < regs_[ins.rs2] ? ins.imm : pc_ + 1;
            t += 1;
            break;
          case Opcode::Beqz:
            pc_ = regs_[ins.rs1] == 0 ? ins.imm : pc_ + 1;
            t += 1;
            break;
          case Opcode::Bnez:
            pc_ = regs_[ins.rs1] != 0 ? ins.imm : pc_ + 1;
            t += 1;
            break;
          case Opcode::Jump:
            pc_ = ins.imm;
            t += 1;
            break;
          case Opcode::Work:
            t += ins.useImm ? ins.imm : regs_[ins.rs1];
            t += 1;
            ++pc_;
            break;
          case Opcode::Record:
            handleRecord(ins, eq_.now() + t);
            ++pc_;
            break; // zero-cost marker
          case Opcode::SelfInvl:
          case Opcode::SelfDown: {
            const bool invl = ins.op == Opcode::SelfInvl;
            ++pc_;
            backoff_.reset();
            eq_.schedule(t, [this, invl] {
                auto resume = [this] { eq_.scheduleTick(1, this); };
                if (invl)
                    l1_.selfInvalidate(resume);
                else
                    l1_.selfDowngrade(resume);
            });
            return;
          }
          case Opcode::Done:
            finished_ = true;
            doneTick_ = eq_.now() + t;
            onDone_();
            return;
          default: {
            CBSIM_ASSERT(isMemory(ins.op), "unhandled opcode");
            memOps_.inc();
            Tick delay = t;
            if (ins.spin) {
                const Tick b = backoff_.nextDelay(pc_);
                if (backoff_.consecutiveRetries() > 0) {
                    spinRetries_.inc();
                    if (attr_ != nullptr) {
                        const Addr ea = regs_[ins.addrReg] +
                                        static_cast<Addr>(ins.offset);
                        attr_->row(ea).backoffIters++;
                    }
                }
                backoffCycles_.inc(b);
                delay += b;
            } else {
                backoff_.reset();
            }
            issueMemory(ins, delay);
            return;
          }
        }
    }
}

void
Core::handleRecord(const Instruction& ins, Tick when)
{
    const auto k = static_cast<std::size_t>(ins.record);
    if (ins.recordStart) {
        recordStart_[k] = when;
    } else {
        CBSIM_ASSERT(recordStart_[k] != maxTick,
                     "Record end without start, core ", id_);
        syncStats_.latency[k].sample(when - recordStart_[k]);
        syncStats_.completions[k].inc();
        recordStart_[k] = maxTick;
    }
}

void
Core::issueMemory(const Instruction& ins, Tick delay)
{
    MemRequest req;
    req.addr = regs_[ins.addrReg] + static_cast<Addr>(ins.offset);
    req.sync = ins.sync;
    req.spinHint = ins.spin;
    const Word value = ins.useImm ? ins.imm : regs_[ins.rs1];

    switch (ins.op) {
      case Opcode::Ld:
        req.op = MemOp::Load;
        break;
      case Opcode::St:
        req.op = MemOp::Store;
        req.storeValue = value;
        break;
      case Opcode::LdThrough:
        req.op = MemOp::LdThrough;
        break;
      case Opcode::LdCb:
        req.op = MemOp::LdCb;
        break;
      case Opcode::StThrough:
        req.op = MemOp::StThrough;
        req.storeValue = value;
        break;
      case Opcode::StCb1:
        req.op = MemOp::StCb1;
        req.storeValue = value;
        break;
      case Opcode::StCb0:
        req.op = MemOp::StCb0;
        req.storeValue = value;
        break;
      case Opcode::Atomic:
        req.op = MemOp::Atomic;
        req.func = ins.func;
        req.operand = value;
        req.compare = ins.compare;
        req.loadIsCallback = ins.ldCb;
        req.wake = ins.wake;
        break;
      default:
        panic("issueMemory: not a memory opcode");
    }

    // The core blocks on the request, so the in-flight state lives in
    // members and the completion is a plain {trampoline, this} pair —
    // the request stays trivially copyable end to end.
    pendingIns_ = &ins;
    pendingAddr_ = req.addr;
    issuedAt_ = eq_.now() + delay;
    pendingBlockingCb_ = ins.op == Opcode::LdCb ||
                         (ins.op == Opcode::Atomic && ins.ldCb);
    req.onComplete = {
        [](void* c, Word v) { static_cast<Core*>(c)->completeMemory(v); },
        this};
    eq_.schedule(delay, [this, req]() { l1_.access(req); });
}

void
Core::completeMemory(Word value)
{
    const Instruction& ins = *pendingIns_;
    const Tick stalled = eq_.now() - issuedAt_;
    stallCycles_.inc(stalled);
    stallLatency_.sample(stalled);
    if (pendingBlockingCb_) {
        cbBlockedCycles_.inc(stalled);
        cbWakeLatency_.sample(stalled);
    }
    if (attr_ != nullptr && (ins.sync || ins.spin))
        attr_->row(pendingAddr_).cycles += stalled;
    if (trace_ != nullptr) {
        const char* state = pendingBlockingCb_ ? "cbdir-blocked"
                            : ins.spin         ? "spin"
                                               : "mem";
        trace_->coreSlice(id_, state, issuedAt_, eq_.now());
    }
    switch (ins.op) {
      case Opcode::Ld:
      case Opcode::LdThrough:
      case Opcode::LdCb:
      case Opcode::Atomic:
        regs_[ins.rd] = value;
        break;
      default:
        break;
    }
    pendingIns_ = nullptr; // completed: the core is no longer blocked
    ++pc_;
    eq_.scheduleTick(1, this);
}

void
Core::dumpDebug(JsonWriter& w) const
{
    w.beginObject();
    w.field("core", static_cast<std::uint64_t>(id_));
    w.field("pc", pc_);
    w.field("finished", finished_);
    w.field("instructions", instructions_.value());
    w.key("blocked_on");
    if (pendingIns_ != nullptr) {
        w.beginObject();
        w.field("op", opcodeName(pendingIns_->op));
        w.field("addr", static_cast<std::uint64_t>(pendingAddr_));
        w.field("issued_at", issuedAt_);
        w.field("blocking_callback", pendingBlockingCb_);
        w.endObject();
    } else {
        w.null();
    }
    w.endObject();
}

void
Core::registerStats(const StatsScope& scope)
{
    scope.add("instructions", instructions_);
    scope.add("mem_ops", memOps_);
    scope.add("spin_retries", spinRetries_);
    scope.add("backoff_cycles", backoffCycles_);
    scope.add("stall_cycles", stallCycles_);
    scope.add("cb_blocked_cycles", cbBlockedCycles_);
    scope.add("stall_latency", stallLatency_);
    scope.add("cb_wake_latency", cbWakeLatency_);
}

} // namespace cbsim
