/**
 * @file
 * In-order, blocking core model.
 *
 * One instruction per cycle for ALU/control; memory operations block the
 * core until the L1 controller completes them (the paper's sync ops are
 * blocking by construction, §3.2). Consecutive re-issues of a spin-marked
 * racy load are throttled by the configured exponential back-off policy.
 */

#ifndef CBSIM_CORE_CORE_HH
#define CBSIM_CORE_CORE_HH

#include <array>
#include <functional>

#include "coherence/backoff/backoff.hh"
#include "coherence/controller.hh"
#include "isa/assembler.hh"
#include "obs/registry.hh"
#include "sim/event_queue.hh"
#include "stats/stats.hh"

namespace cbsim {

class JsonWriter;
class TraceExporter;

/** Chip-wide synchronization instrumentation shared by all cores. */
struct SyncStats
{
    static constexpr std::size_t numKinds =
        static_cast<std::size_t>(SyncKind::NumKinds);

    std::array<Histogram, numKinds> latency;
    std::array<Counter, numKinds> completions;

    void registerStats(const StatsScope& scope);
};

/** A single in-order core executing a mini-ISA program. */
class Core : public Clocked
{
  public:
    /**
     * @param id       this core's id (also readable by programs via reg
     *                 initialization in the program generator)
     * @param on_done  invoked once when the program executes Done
     */
    Core(CoreId id, EventQueue& eq, L1Controller& l1,
         const BackoffConfig& backoff, SyncStats& sync_stats,
         std::function<void()> on_done);

    /** Load the thread's program; must precede start(). */
    void setProgram(Program program);

    /** Schedule the first instruction at the current tick. */
    void start();

    CoreId id() const { return id_; }
    bool finished() const { return finished_; }
    Tick doneTick() const { return doneTick_; }

    /** Architectural register read (for tests). */
    Word reg(Reg r) const { return regs_[r]; }

    /** Instructions retired so far (the watchdog's progress probe). */
    std::uint64_t instructionsRetired() const
    {
        return instructions_.value();
    }

    /** True while a memory operation holds the core blocked. */
    bool blockedOnMemory() const { return pendingIns_ != nullptr; }

    /** Effective address of the blocking op; valid iff blockedOnMemory. */
    Addr blockedAddr() const { return pendingAddr_; }

    /**
     * True if the blocking op is a callback read (ld_cb or callback
     * RMW) — i.e. the core may legitimately sit parked in the callback
     * directory (invariant: CB waiter bits ⊆ such cores).
     */
    bool
    blockedOnCallback() const
    {
        return pendingIns_ != nullptr && pendingBlockingCb_;
    }

    /**
     * Emit this core's execution state (pc, finished, the blocked-on
     * memory op if any) into @p w for forensic dumps.
     */
    void dumpDebug(JsonWriter& w) const;

    void registerStats(const StatsScope& scope);

    /**
     * Enable trace export: each completed memory stall becomes a
     * duration slice on this core's track. Null (default) costs one
     * compare per completion.
     */
    void setTrace(TraceExporter* trace) { trace_ = trace; }

    /**
     * Enable contention attribution: sync/spin stall cycles and
     * back-off iterations are charged to the target line in this
     * core's shard. Null (default) costs one compare per site.
     */
    void setAttribution(AttributionTable* attr) { attr_ = attr; }

  private:
    /** Clocked wake-up: resume execution (see scheduleTick sites). */
    void tick() override { step(); }

    void step();
    void issueMemory(const Instruction& ins, Tick delay);
    void completeMemory(Word value);
    void handleRecord(const Instruction& ins, Tick when);

    CoreId id_;
    EventQueue& eq_;
    L1Controller& l1_;
    BackoffPolicy backoff_;
    SyncStats& syncStats_;
    std::function<void()> onDone_;

    Program program_;
    std::array<Word, numRegs> regs_{};
    std::uint64_t pc_ = 0;
    bool finished_ = false;
    Tick doneTick_ = 0;

    /** Open Record regions: start tick per SyncKind. */
    std::array<Tick, SyncStats::numKinds> recordStart_{};

    /**
     * The in-flight memory instruction (the core blocks on it, so at
     * most one exists). Keeping this state in the core lets the
     * completion callback capture just `this` and stay within
     * std::function's small-buffer optimization — the memory path
     * allocates nothing per request.
     */
    const Instruction* pendingIns_ = nullptr;
    Tick issuedAt_ = 0;
    bool pendingBlockingCb_ = false;
    Addr pendingAddr_ = 0; ///< effective address of pendingIns_

    Counter instructions_;
    Counter memOps_;
    Counter spinRetries_;
    Counter backoffCycles_;

    /** All cycles stalled on memory operations. */
    Counter stallCycles_;
    /**
     * Stall cycles on blocking callback reads (ld_cb and callback
     * RMWs) — the time a core could spend in a power-saving pause
     * state instead of waiting (paper §2.1; quantified by
     * bench_ablation_pause).
     */
    Counter cbBlockedCycles_;

    /** Distribution of per-operation memory stall times. */
    Histogram stallLatency_;
    /**
     * Distribution of blocking-callback wait times (park to wake-up
     * response) — the wake-up latency tail the callback mechanism is
     * judged on.
     */
    Histogram cbWakeLatency_;

    TraceExporter* trace_ = nullptr;
    AttributionTable* attr_ = nullptr;
};

} // namespace cbsim

#endif // CBSIM_CORE_CORE_HH
