/**
 * @file
 * On-chip network message definition shared by all coherence protocols.
 *
 * Message sizes follow the GEMS/GARNET convention used by the paper:
 * 8-byte control header, 64-byte cache line. With 16-byte flits a control
 * or single-word message fits in 1 flit and a full-line data message takes
 * 5 flits (8 B header + 64 B data).
 */

#ifndef CBSIM_NOC_MESSAGE_HH
#define CBSIM_NOC_MESSAGE_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace cbsim {

/** All message kinds used by the MESI, VIPS-M, and callback protocols. */
enum class MsgType : std::uint8_t
{
    // MESI requests (core -> directory/LLC)
    GetS,        ///< read request; installs a sharer
    GetX,        ///< write/upgrade request; wants exclusivity
    PutM,        ///< dirty writeback with full-line data
    // MESI directory traffic
    Inv,         ///< explicit invalidation (directory -> sharer)
    InvAck,      ///< invalidation acknowledgment (sharer -> directory)
    FwdGetS,     ///< forward read to the owner
    FwdGetX,     ///< forward exclusive request to the owner
    // VIPS-M / callback requests (core -> LLC), all bypass the L1
    LdThrough,   ///< racy load served directly by the LLC
    StThrough,   ///< racy single-word write-through (st_cbA semantics)
    StCb1,       ///< write-through waking one callback
    StCb0,       ///< write-through waking no callback
    GetCB,       ///< callback read (ld_cb); may block in the cb directory
    AtomicReq,   ///< RMW executed at the LLC (word-granular)
    WtFlush,     ///< self-downgrade write-through of dirty words (line)
    // Responses
    Data,        ///< full-line data response
    DataWord,    ///< single-word data response (through/atomic ops)
    WakeUp,      ///< callback wake-up carrying the word value
    Ack,         ///< store / flush acknowledgment
    // Sentinel
    NumTypes
};

/** Human-readable message-type name (for traces and tests). */
const char* msgTypeName(MsgType t);

/** True if the message carries a full 64-byte cache line. */
bool carriesLine(MsgType t);

/** Destination endpoint within a mesh node. */
enum class Port : std::uint8_t
{
    Core,  ///< the core / private-L1 complex
    Bank,  ///< the LLC bank (+ its slice of the callback directory)
};

/** Atomic read-modify-write function selector (see isa/instruction.hh). */
enum class AtomicFunc : std::uint8_t
{
    None,
    TestAndSet,     ///< write iff read value == compare ("test" succeeds)
    FetchAndStore,  ///< unconditional swap
    FetchAndAdd,    ///< read; write read+operand
    TestAndDec,     ///< decrement iff read value > 0
};

/** Which callback-write semantics the store half of an op carries. */
enum class WakePolicy : std::uint8_t
{
    None,  ///< plain DRF store (never reaches the callback directory)
    All,   ///< st_through / st_cbA: wake every waiter, F/E of rest -> full
    One,   ///< st_cb1: wake one waiter round-robin, set A/O <- One
    Zero,  ///< st_cb0: wake nobody, set A/O <- One
};

/**
 * A network message. Plain value type; routed by the Mesh and interpreted
 * by the receiving controller.
 */
struct Message
{
    MsgType type = MsgType::NumTypes;
    NodeId src = 0;
    NodeId dst = 0;
    Port dstPort = Port::Bank;
    CoreId requester = invalidCore; ///< originating core (for callbacks)
    Addr addr = 0;                  ///< line or word address (op-dependent)
    Word value = 0;                 ///< word payload (through ops, wakes)

    // Atomic-op payload (AtomicReq only).
    AtomicFunc atomicFunc = AtomicFunc::None;
    Word atomicOperand = 0;   ///< store value / addend
    Word atomicCompare = 0;   ///< T&S compare value
    WakePolicy wakePolicy = WakePolicy::None;
    bool loadIsCallback = false; ///< ld_cb&st_* : the read half may block

    // WtFlush payload: bitmask of dirty words within the line.
    std::uint32_t wordMask = 0;

    /** Data response grants exclusivity (MESI E/M install). */
    bool exclusive = false;

    /** Request originates from a sync-marked instruction (attribution). */
    bool sync = false;

    /** Transaction id used to match responses to MSHRs. */
    std::uint64_t txn = 0;

    /** Size of this message in flits for the configured flit size. */
    unsigned flits(unsigned flit_bytes, unsigned header_bytes,
                   unsigned line_bytes) const;

    std::string toString() const;
};

} // namespace cbsim

#endif // CBSIM_NOC_MESSAGE_HH
