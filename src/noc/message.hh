/**
 * @file
 * On-chip network message definition shared by all coherence protocols.
 *
 * Message sizes follow the GEMS/GARNET convention used by the paper:
 * 8-byte control header, 64-byte cache line. With 16-byte flits a control
 * or single-word message fits in 1 flit and a full-line data message takes
 * 5 flits (8 B header + 64 B data).
 */

#ifndef CBSIM_NOC_MESSAGE_HH
#define CBSIM_NOC_MESSAGE_HH

#include <bit>
#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace cbsim {

/** All message kinds used by the MESI, VIPS-M, and callback protocols. */
enum class MsgType : std::uint8_t
{
    // MESI requests (core -> directory/LLC)
    GetS,        ///< read request; installs a sharer
    GetX,        ///< write/upgrade request; wants exclusivity
    PutM,        ///< dirty writeback with full-line data
    // MESI directory traffic
    Inv,         ///< explicit invalidation (directory -> sharer)
    InvAck,      ///< invalidation acknowledgment (sharer -> directory)
    FwdGetS,     ///< forward read to the owner
    FwdGetX,     ///< forward exclusive request to the owner
    // VIPS-M / callback requests (core -> LLC), all bypass the L1
    LdThrough,   ///< racy load served directly by the LLC
    StThrough,   ///< racy single-word write-through (st_cbA semantics)
    StCb1,       ///< write-through waking one callback
    StCb0,       ///< write-through waking no callback
    GetCB,       ///< callback read (ld_cb); may block in the cb directory
    AtomicReq,   ///< RMW executed at the LLC (word-granular)
    WtFlush,     ///< self-downgrade write-through of dirty words (line)
    // Responses
    Data,        ///< full-line data response
    DataWord,    ///< single-word data response (through/atomic ops)
    WakeUp,      ///< callback wake-up carrying the word value
    Ack,         ///< store / flush acknowledgment
    // Sentinel
    NumTypes
};

/** Human-readable message-type name (for traces and tests). */
const char* msgTypeName(MsgType t);

/** True if the message carries a full 64-byte cache line. */
bool carriesLine(MsgType t);

/** Destination endpoint within a mesh node. */
enum class Port : std::uint8_t
{
    Core,  ///< the core / private-L1 complex
    Bank,  ///< the LLC bank (+ its slice of the callback directory)
};

/** Atomic read-modify-write function selector (see isa/instruction.hh). */
enum class AtomicFunc : std::uint8_t
{
    None,
    TestAndSet,     ///< write iff read value == compare ("test" succeeds)
    FetchAndStore,  ///< unconditional swap
    FetchAndAdd,    ///< read; write read+operand
    TestAndDec,     ///< decrement iff read value > 0
};

/** Which callback-write semantics the store half of an op carries. */
enum class WakePolicy : std::uint8_t
{
    None,  ///< plain DRF store (never reaches the callback directory)
    All,   ///< st_through / st_cbA: wake every waiter, F/E of rest -> full
    One,   ///< st_cb1: wake one waiter round-robin, set A/O <- One
    Zero,  ///< st_cb0: wake nobody, set A/O <- One
};

/**
 * A network message. Plain value type; routed by the Mesh and interpreted
 * by the receiving controller.
 *
 * Field order is widest-first so the struct packs into exactly one cache
 * line (64 bytes, asserted below): a message is copied at every hop of
 * its mesh route and into every deferred-replay closure, so its size is
 * a first-order cost of the NoC hot path.
 */
struct Message
{
    Addr addr = 0;            ///< line or word address (op-dependent)
    Word value = 0;           ///< word payload (through ops, wakes)

    // Atomic-op payload (AtomicReq only).
    Word atomicOperand = 0;   ///< swap/add/set value
    Word atomicCompare = 0;   ///< T&S compare value

    /** Transaction id used to match responses to MSHRs. */
    std::uint64_t txn = 0;

    NodeId src = 0;
    NodeId dst = 0;
    CoreId requester = invalidCore; ///< originating core (for callbacks)

    // WtFlush payload: bitmask of dirty words within the line.
    std::uint32_t wordMask = 0;

    MsgType type = MsgType::NumTypes;
    Port dstPort = Port::Bank;
    AtomicFunc atomicFunc = AtomicFunc::None;
    WakePolicy wakePolicy = WakePolicy::None;
    bool loadIsCallback = false; ///< ld_cb&st_* : the read half may block

    /** Data response grants exclusivity (MESI E/M install). */
    bool exclusive = false;

    /** Request originates from a sync-marked instruction (attribution). */
    bool sync = false;

    /**
     * Request originates from a spin-marked instruction (a back-off
     * re-read of a guard): lets the LLC attribute spin re-reads to the
     * line without inspecting the issuing core's program.
     */
    bool spin = false;

    /**
     * Size of this message in flits for the configured flit size.
     * Inline: computed for every injected message on the NoC hot path.
     */
    unsigned
    flits(unsigned flit_bytes, unsigned header_bytes,
          unsigned line_bytes) const
    {
        unsigned payload_bytes = 0;
        switch (type) {
          case MsgType::PutM:
          case MsgType::Data:
            payload_bytes = line_bytes;
            break;
          case MsgType::StThrough:
          case MsgType::StCb1:
          case MsgType::StCb0:
          case MsgType::AtomicReq:
          case MsgType::DataWord:
          case MsgType::WakeUp:
            payload_bytes = sizeof(Word);
            break;
          case MsgType::WtFlush:
            payload_bytes = sizeof(Word) *
                            static_cast<unsigned>(std::popcount(wordMask));
            break;
          default:
            break;
        }
        const unsigned total = header_bytes + payload_bytes;
        return (total + flit_bytes - 1) / flit_bytes;
    }

    std::string toString() const;
};

static_assert(sizeof(Message) == 64,
              "Message should stay one cache line; it is copied per "
              "mesh hop");

} // namespace cbsim

#endif // CBSIM_NOC_MESSAGE_HH
