// Router is header-only; this translation unit anchors the vtable-free
// class for build-system symmetry and future non-inline additions.
#include "noc/router.hh"
