#include "noc/message.hh"

#include <bit>
#include <sstream>

#include "sim/log.hh"

namespace cbsim {

const char*
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::GetS: return "GetS";
      case MsgType::GetX: return "GetX";
      case MsgType::PutM: return "PutM";
      case MsgType::Inv: return "Inv";
      case MsgType::InvAck: return "InvAck";
      case MsgType::FwdGetS: return "FwdGetS";
      case MsgType::FwdGetX: return "FwdGetX";
      case MsgType::LdThrough: return "LdThrough";
      case MsgType::StThrough: return "StThrough";
      case MsgType::StCb1: return "StCb1";
      case MsgType::StCb0: return "StCb0";
      case MsgType::GetCB: return "GetCB";
      case MsgType::AtomicReq: return "AtomicReq";
      case MsgType::WtFlush: return "WtFlush";
      case MsgType::Data: return "Data";
      case MsgType::DataWord: return "DataWord";
      case MsgType::WakeUp: return "WakeUp";
      case MsgType::Ack: return "Ack";
      default: return "?";
    }
}

bool
carriesLine(MsgType t)
{
    return t == MsgType::PutM || t == MsgType::Data;
}

std::string
Message::toString() const
{
    std::ostringstream os;
    os << msgTypeName(type) << " src=" << src << " dst=" << dst
       << (dstPort == Port::Core ? ":core" : ":bank") << " addr=0x"
       << std::hex << addr << std::dec << " val=" << value
       << " txn=" << txn;
    return os.str();
}

} // namespace cbsim
