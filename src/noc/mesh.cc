#include "noc/mesh.hh"

#include <bit>
#include <string>

#include "debug/fault_injection.hh"
#include "debug/noc_tracker.hh"
#include "sim/log.hh"
#include "sim/trace.hh"

namespace cbsim {

Mesh::Mesh(EventQueue& eq, const NocConfig& cfg, const StatsScope& scope)
    : eq_(eq), cfg_(cfg),
      widthPow2_(std::has_single_bit(cfg.width)),
      widthShift_(static_cast<unsigned>(std::countr_zero(cfg.width))),
      routers_(cfg.nodes()), coreHandlers_(cfg.nodes()),
      bankHandlers_(cfg.nodes())
{
    if (cfg_.width == 0 || cfg_.height == 0)
        fatal("mesh dimensions must be non-zero");
    scope.add("packets", packets_);
    scope.add("flit_hops", flitHops_);
    scope.add("local_deliveries", localDeliveries_);
    const StatsScope byType = scope.scope("packets");
    for (std::size_t t = 0; t < packetsByType_.size(); ++t)
        byType.add(msgTypeName(static_cast<MsgType>(t)), packetsByType_[t]);
    scope.add("hop_distance", hopDistance_);
}

void
Mesh::attach(NodeId node, Port port, MessageHandler handler)
{
    CBSIM_ASSERT(node < cfg_.nodes(), "attach: node out of range");
    auto& slot = port == Port::Core ? coreHandlers_[node]
                                    : bankHandlers_[node];
    slot = std::move(handler);
}

unsigned
Mesh::hopCount(NodeId from, NodeId to) const
{
    const int dx = static_cast<int>(xOf(to)) - static_cast<int>(xOf(from));
    const int dy = static_cast<int>(yOf(to)) - static_cast<int>(yOf(from));
    return static_cast<unsigned>((dx < 0 ? -dx : dx) +
                                 (dy < 0 ? -dy : dy));
}

Tick
Mesh::minLatency(const Message& msg) const
{
    if (msg.src == msg.dst)
        return cfg_.localLatency;
    const unsigned hops = hopCount(msg.src, msg.dst);
    const unsigned flits =
        msg.flits(cfg_.flitBytes, cfg_.headerBytes, cfg_.lineBytes);
    return hops * cfg_.switchLatency + (flits - 1);
}

std::pair<NodeId, Direction>
Mesh::nextHop(NodeId at, NodeId dst) const
{
    const unsigned ax = xOf(at), ay = yOf(at);
    const unsigned dx = xOf(dst), dy = yOf(dst);
    // Deterministic X-Y: fully resolve X, then Y.
    if (dx > ax)
        return {nodeAt(ax + 1, ay), Direction::East};
    if (dx < ax)
        return {nodeAt(ax - 1, ay), Direction::West};
    if (dy > ay)
        return {nodeAt(ax, ay + 1), Direction::South};
    CBSIM_ASSERT(dy < ay, "nextHop called at destination");
    return {nodeAt(ax, ay - 1), Direction::North};
}

void
Mesh::send(Message msg)
{
    CBSIM_ASSERT(msg.src < cfg_.nodes() && msg.dst < cfg_.nodes(),
                 "send: node out of range");
    packets_.inc();
    packetsByType_[static_cast<std::size_t>(msg.type)].inc();
    CBSIM_TRACE(TraceCategory::Noc, eq_.now(), msg.addr,
                "inject " << msg.toString());

    if (tracker_ != nullptr || faults_ != nullptr) {
        sendDebug(std::move(msg));
        return;
    }
    if (msg.src == msg.dst) {
        // Same-node core<->bank traffic never enters the network.
        localDeliveries_.inc();
        eq_.schedule(cfg_.localLatency,
                     [this, msg = std::move(msg)] { deliver(msg); });
        return;
    }
    const unsigned flits =
        msg.flits(cfg_.flitBytes, cfg_.headerBytes, cfg_.lineBytes);
    hopDistance_.sample(hopCount(msg.src, msg.dst));
    const NodeId src = msg.src;
    hop(std::move(msg), src, flits);
}

void
Mesh::hop(Message msg, NodeId at, unsigned flits)
{
    auto [next, dir] = nextHop(at, msg.dst);
    const Tick start = routers_[at].reserve(dir, eq_.now(), flits);
    flitHops_.inc(flits);
    const Tick wait = start - eq_.now();

    if (next == msg.dst) {
        // Final hop: account tail serialization on delivery.
        eq_.schedule(wait + cfg_.switchLatency + (flits - 1),
                     [this, msg = std::move(msg)] { deliver(msg); });
    } else {
        eq_.schedule(wait + cfg_.switchLatency,
                     [this, msg = std::move(msg), next, flits]() mutable {
                         hop(std::move(msg), next, flits);
                     });
    }
}

void
Mesh::sendDebug(Message msg)
{
    // Mirrors send()'s tail, threading a tracker slot through every hop
    // closure and front-loading any injected fault delay. Lives off the
    // hot path so the untracked send() stays unchanged.
    const std::uint32_t slot =
        tracker_ != nullptr ? tracker_->onInject(msg, eq_.now()) : 0;
    const Tick extra = faults_ != nullptr ? faults_->nocDelay() : 0;

    if (msg.src == msg.dst) {
        localDeliveries_.inc();
        eq_.schedule(cfg_.localLatency + extra,
                     [this, msg = std::move(msg), slot] {
                         if (tracker_ != nullptr)
                             tracker_->onDeliver(slot);
                         deliver(msg);
                     });
        return;
    }
    const unsigned flits =
        msg.flits(cfg_.flitBytes, cfg_.headerBytes, cfg_.lineBytes);
    hopDistance_.sample(hopCount(msg.src, msg.dst));
    const NodeId src = msg.src;
    if (extra == 0) {
        hopDebug(std::move(msg), src, flits, slot);
    } else {
        eq_.schedule(extra,
                     [this, msg = std::move(msg), src, flits,
                      slot]() mutable {
                         hopDebug(std::move(msg), src, flits, slot);
                     });
    }
}

void
Mesh::hopDebug(Message msg, NodeId at, unsigned flits, std::uint32_t slot)
{
    if (tracker_ != nullptr)
        tracker_->onHop(slot, at);
    auto [next, dir] = nextHop(at, msg.dst);
    const Tick start = routers_[at].reserve(dir, eq_.now(), flits);
    flitHops_.inc(flits);
    const Tick wait = start - eq_.now();

    if (next == msg.dst) {
        eq_.schedule(wait + cfg_.switchLatency + (flits - 1),
                     [this, msg = std::move(msg), slot] {
                         if (tracker_ != nullptr)
                             tracker_->onDeliver(slot);
                         deliver(msg);
                     });
    } else {
        eq_.schedule(wait + cfg_.switchLatency,
                     [this, msg = std::move(msg), next, flits,
                      slot]() mutable {
                         hopDebug(std::move(msg), next, flits, slot);
                     });
    }
}

void
Mesh::deliver(const Message& msg)
{
    const auto& handler = msg.dstPort == Port::Core
                              ? coreHandlers_[msg.dst]
                              : bankHandlers_[msg.dst];
    if (!handler) {
        panic("message delivered to unattached endpoint: ",
              msg.toString());
    }
    handler(msg);
}

} // namespace cbsim
