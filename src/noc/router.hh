/**
 * @file
 * Per-node router with output-link reservation.
 *
 * Contention model: each output link is a resource that a packet of F
 * flits occupies for F cycles. A packet arriving while the link is busy
 * waits until the link frees (FCFS). This captures serialization and
 * hot-spot queueing without modelling virtual channels.
 */

#ifndef CBSIM_NOC_ROUTER_HH
#define CBSIM_NOC_ROUTER_HH

#include <array>
#include <cstdint>

#include "sim/types.hh"

namespace cbsim {

/** Output directions of a 2-D mesh router. */
enum class Direction : std::uint8_t
{
    East,
    West,
    North,
    South,
    Local,
    NumDirections
};

/** A mesh router: tracks when each output link next becomes free. */
class Router
{
  public:
    Router() { nextFree_.fill(0); }

    /**
     * Reserve output @p dir for a packet of @p flits flits arriving at
     * @p arrival.
     * @return the cycle at which the packet starts crossing the link.
     */
    Tick
    reserve(Direction dir, Tick arrival, unsigned flits)
    {
        auto& free_at = nextFree_[static_cast<std::size_t>(dir)];
        const Tick start = arrival > free_at ? arrival : free_at;
        free_at = start + flits;
        return start;
    }

    /** When output @p dir next becomes free (for tests). */
    Tick
    nextFree(Direction dir) const
    {
        return nextFree_[static_cast<std::size_t>(dir)];
    }

  private:
    std::array<Tick, static_cast<std::size_t>(Direction::NumDirections)>
        nextFree_;
};

} // namespace cbsim

#endif // CBSIM_NOC_ROUTER_HH
