/**
 * @file
 * 2-D mesh interconnect with deterministic X-Y routing (GARNET-inspired).
 *
 * Nodes are numbered row-major: node = y * width + x. Each node hosts a
 * core endpoint and an LLC-bank endpoint; delivery dispatches on
 * Message::dstPort. Traffic is accounted in flit-hops (the metric behind
 * the paper's "network traffic" figures) and per-message-type packets.
 */

#ifndef CBSIM_NOC_MESH_HH
#define CBSIM_NOC_MESH_HH

#include <array>
#include <functional>
#include <vector>

#include "noc/message.hh"
#include "noc/router.hh"
#include "obs/registry.hh"
#include "sim/event_queue.hh"
#include "stats/stats.hh"

namespace cbsim {

class NocTracker;
class FaultInjector;

/** Static mesh parameters (paper Table 2 defaults). */
struct NocConfig
{
    unsigned width = 8;           ///< mesh columns
    unsigned height = 8;          ///< mesh rows
    unsigned flitBytes = 16;      ///< flit size
    unsigned headerBytes = 8;     ///< control/header size
    unsigned lineBytes = 64;      ///< cache-line payload size
    Tick switchLatency = 6;       ///< switch-to-switch time (cycles)
    Tick localLatency = 1;        ///< same-node core<->bank delivery

    unsigned nodes() const { return width * height; }
};

/** Receives messages delivered to an endpoint. */
using MessageHandler = std::function<void(const Message&)>;

/** The mesh network. */
class Mesh
{
  public:
    Mesh(EventQueue& eq, const NocConfig& cfg, const StatsScope& scope);

    /** Attach the handler for @p port of node @p node. */
    void attach(NodeId node, Port port, MessageHandler handler);

    /**
     * Inject @p msg at its source node; it is delivered to the handler of
     * (msg.dst, msg.dstPort) after routing latency + contention.
     */
    void send(Message msg);

    /** X-Y route hop count between two nodes (for tests/analysis). */
    unsigned hopCount(NodeId from, NodeId to) const;

    /** Minimum (contention-free) latency for a message. */
    Tick minLatency(const Message& msg) const;

    const NocConfig& config() const { return cfg_; }

    /** Total flit-hops so far (the traffic metric). */
    std::uint64_t flitHops() const { return flitHops_.value(); }

    /**
     * Install debug hooks (either may be null). With both null — the
     * default — send() takes the original untracked path after two
     * pointer compares, so production runs stay byte-identical.
     * @p tracker records in-flight messages for forensics/leak checks;
     * @p faults adds bounded injection delays (FaultPlan::nocDelay*).
     */
    void
    setDebug(NocTracker* tracker, FaultInjector* faults)
    {
        tracker_ = tracker;
        faults_ = faults;
    }

    const NocTracker* tracker() const { return tracker_; }

  private:
    // X-Y decomposition runs twice per routed hop (millions of times
    // per run), and a division by the runtime mesh width costs tens of
    // cycles; mask/shift when the width is a power of two (all
    // power-of-four core counts — 9/25/49-core meshes keep the
    // div/mod).
    unsigned
    xOf(NodeId n) const
    {
        return widthPow2_ ? (n & (cfg_.width - 1)) : (n % cfg_.width);
    }
    unsigned
    yOf(NodeId n) const
    {
        return widthPow2_ ? (n >> widthShift_) : (n / cfg_.width);
    }
    NodeId nodeAt(unsigned x, unsigned y) const
    {
        return y * cfg_.width + x;
    }

    /** Next hop (node, output direction) along the X-Y route. */
    std::pair<NodeId, Direction> nextHop(NodeId at, NodeId dst) const;

    void hop(Message msg, NodeId at, unsigned flits);
    void deliver(const Message& msg);

    /** Cold path of send(): tracking and/or fault delay enabled. */
    void sendDebug(Message msg);
    void hopDebug(Message msg, NodeId at, unsigned flits,
                  std::uint32_t slot);

    EventQueue& eq_;
    NocConfig cfg_;
    bool widthPow2_;      ///< mesh width is a power of two
    unsigned widthShift_; ///< log2(width), widthPow2_ only
    std::vector<Router> routers_;
    std::vector<MessageHandler> coreHandlers_;
    std::vector<MessageHandler> bankHandlers_;
    NocTracker* tracker_ = nullptr;
    FaultInjector* faults_ = nullptr;

    Counter packets_;
    Counter flitHops_;
    Counter localDeliveries_;
    std::array<Counter, static_cast<std::size_t>(MsgType::NumTypes)>
        packetsByType_;
    /** X-Y route length of each remote packet (locality indicator). */
    Histogram hopDistance_;
};

} // namespace cbsim

#endif // CBSIM_NOC_MESH_HH
