/**
 * @file
 * Lightweight named-statistics package (counters, histograms, registry).
 *
 * Components own Counter/Histogram members and register them in a StatSet
 * so that a run can be dumped, diffed, or aggregated by the harness. The
 * observability layer (src/obs) builds on this: StatsRegistry adds
 * hierarchical scoping and mergeable snapshots, the epoch sampler and
 * trace exporter read live values through the same registry.
 */

#ifndef CBSIM_STATS_STATS_HH
#define CBSIM_STATS_STATS_HH

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace cbsim {

/** A monotonically increasing scalar statistic. */
class Counter
{
  public:
    Counter() = default;

    void inc(std::uint64_t n = 1) { value_ += n; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * The plain-data state of a histogram: moments plus power-of-two
 * buckets. Separated from the live Histogram so distributions can be
 * snapshotted, serialized, and *merged* across independent simulations
 * (sweep jobs): merge is associative and commutative, so aggregating
 * per-job distributions gives identical bytes regardless of job order
 * or worker count (tests/obs/histogram_test.cpp asserts this).
 */
struct HistogramData
{
    static constexpr unsigned numBuckets = 64;

    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0; ///< meaningful only when count > 0
    std::uint64_t max = 0;
    std::array<std::uint64_t, numBuckets> buckets{};

    /** Deterministic bucket index: highest set bit (0 for v <= 1). */
    static unsigned bucketOf(std::uint64_t v);

    void sample(std::uint64_t v);

    /** Fold @p other into this (associative and commutative). */
    void merge(const HistogramData& other);

    double mean() const;

    /**
     * Approximate p-th percentile (p in [0, 100]) from log2 buckets;
     * exact to within a factor of 2 (linear interpolation within the
     * bucket). Returns 0 for an empty histogram.
     */
    double percentile(double p) const;

    double p50() const { return percentile(50.0); }
    double p95() const { return percentile(95.0); }
    double p99() const { return percentile(99.0); }

    bool operator==(const HistogramData&) const = default;
};

/**
 * Samples a distribution: count, sum, min, max, mean, and approximate
 * percentiles via power-of-two buckets. Used for per-operation
 * latencies (e.g., lock-acquire latency), where the tail quantifies
 * fairness: a FIFO hand-off (CLH, CB-One round-robin) has a tight
 * p99/mean ratio while an unfair T&T&S under invalidation does not.
 */
class Histogram
{
  public:
    Histogram() = default;

    void sample(std::uint64_t v) { data_.sample(v); }
    void reset() { data_ = HistogramData{}; }

    /** Fold another histogram's samples into this one. */
    void merge(const Histogram& other) { data_.merge(other.data_); }

    /** Snapshot of the full distribution state (mergeable). */
    const HistogramData& data() const { return data_; }

    std::uint64_t count() const { return data_.count; }
    std::uint64_t sum() const { return data_.sum; }
    std::uint64_t min() const { return data_.count ? data_.min : 0; }
    std::uint64_t max() const { return data_.max; }
    double mean() const { return data_.mean(); }

    /** See HistogramData::percentile. */
    double percentile(double p) const { return data_.percentile(p); }

  private:
    HistogramData data_;
};

// Attribution shards (src/obs/attribution.hh) register alongside
// counters; StatSet stores only pointers so src/stats stays below
// src/obs in the layering.
class AttributionTable;

/**
 * A registry mapping dotted stat names ("llc.accesses") to live counters
 * and histograms owned by components.
 */
class StatSet
{
  public:
    /** Register a counter under @p name; the counter must outlive the set. */
    void add(const std::string& name, Counter& c);
    /** Register a histogram under @p name. */
    void add(const std::string& name, Histogram& h);
    /** Register a contention attribution shard under @p name. */
    void add(const std::string& name, AttributionTable& t);

    /** Value of a registered counter; fatal if missing. */
    std::uint64_t counter(const std::string& name) const;
    /** Access a registered histogram; fatal if missing. */
    const Histogram& histogram(const std::string& name) const;

    bool hasCounter(const std::string& name) const;

    /** Sum of all counters whose name starts with @p prefix. */
    std::uint64_t sumByPrefix(const std::string& prefix) const;

    /**
     * Sum of every counter named "<prefix>...<suffix>" — the scalar
     * aggregation behind RunResult ("llc.", ".accesses" sums every
     * bank's access counter).
     */
    std::uint64_t sumWhere(const std::string& prefix,
                           const std::string& suffix) const;

    /**
     * Merged distribution of every histogram named
     * "<prefix>...<suffix>" (e.g. per-core wake latencies folded into
     * one chip-wide distribution). Empty data if none match.
     */
    HistogramData mergeWhere(const std::string& prefix,
                             const std::string& suffix) const;

    /** Reset every registered statistic to zero. */
    void resetAll();

    /** Human-readable dump, sorted by name. */
    void dump(std::ostream& os) const;

    std::vector<std::string> counterNames() const;
    std::vector<std::string> histogramNames() const;

    /**
     * Every registered attribution shard, in name order. Chip folds
     * these into RunResult::contention after a run; resetAll() does not
     * touch them (shards are recreated per run by their owner).
     */
    const std::map<std::string, AttributionTable*>&
    attributionShards() const
    {
        return attributions_;
    }

  protected:
    // The observability registry (src/obs) extends this class with
    // scoped registration and snapshotting over the same maps.
    std::map<std::string, Counter*> counters_;
    std::map<std::string, Histogram*> histograms_;
    std::map<std::string, AttributionTable*> attributions_;
};

/** Geometric mean of @p values; values must be positive. */
double geomean(const std::vector<double>& values);

} // namespace cbsim

#endif // CBSIM_STATS_STATS_HH
