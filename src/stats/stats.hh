/**
 * @file
 * Lightweight named-statistics package (counters, histograms, registry).
 *
 * Components own Counter/Histogram members and register them in a StatSet
 * so that a run can be dumped, diffed, or aggregated by the harness.
 */

#ifndef CBSIM_STATS_STATS_HH
#define CBSIM_STATS_STATS_HH

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace cbsim {

/** A monotonically increasing scalar statistic. */
class Counter
{
  public:
    Counter() = default;

    void inc(std::uint64_t n = 1) { value_ += n; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Samples a distribution: count, sum, min, max, mean, and approximate
 * percentiles via power-of-two buckets. Used for per-operation
 * latencies (e.g., lock-acquire latency), where the tail quantifies
 * fairness: a FIFO hand-off (CLH, CB-One round-robin) has a tight
 * p99/mean ratio while an unfair T&T&S under invalidation does not.
 */
class Histogram
{
  public:
    Histogram() = default;

    void sample(std::uint64_t v);
    void reset();

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    double mean() const;

    /**
     * Approximate p-th percentile (p in [0, 100]) from log2 buckets;
     * exact to within a factor of 2 (linear interpolation within the
     * bucket). Returns 0 for an empty histogram.
     */
    double percentile(double p) const;

  private:
    static constexpr unsigned numBuckets = 64;

    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
    std::array<std::uint64_t, numBuckets> buckets_{};
};

/**
 * A registry mapping dotted stat names ("llc.accesses") to live counters
 * and histograms owned by components.
 */
class StatSet
{
  public:
    /** Register a counter under @p name; the counter must outlive the set. */
    void add(const std::string& name, Counter& c);
    /** Register a histogram under @p name. */
    void add(const std::string& name, Histogram& h);

    /** Value of a registered counter; fatal if missing. */
    std::uint64_t counter(const std::string& name) const;
    /** Access a registered histogram; fatal if missing. */
    const Histogram& histogram(const std::string& name) const;

    bool hasCounter(const std::string& name) const;

    /** Sum of all counters whose name starts with @p prefix. */
    std::uint64_t sumByPrefix(const std::string& prefix) const;

    /** Reset every registered statistic to zero. */
    void resetAll();

    /** Human-readable dump, sorted by name. */
    void dump(std::ostream& os) const;

    std::vector<std::string> counterNames() const;

  private:
    std::map<std::string, Counter*> counters_;
    std::map<std::string, Histogram*> histograms_;
};

/** Geometric mean of @p values; values must be positive. */
double geomean(const std::vector<double>& values);

} // namespace cbsim

#endif // CBSIM_STATS_STATS_HH
