#include "stats/stats.hh"

#include <bit>
#include <cmath>

#include "sim/log.hh"

namespace cbsim {

unsigned
HistogramData::bucketOf(std::uint64_t v)
{
    // Bucket index = position of the highest set bit (0 for v <= 1).
    return v <= 1 ? 0
                  : 64 - static_cast<unsigned>(std::countl_zero(v)) - 1;
}

void
HistogramData::sample(std::uint64_t v)
{
    if (count == 0 || v < min)
        min = v;
    if (v > max)
        max = v;
    ++count;
    sum += v;
    ++buckets[bucketOf(v)];
}

void
HistogramData::merge(const HistogramData& other)
{
    if (other.count == 0)
        return;
    if (count == 0 || other.min < min)
        min = other.min;
    if (other.max > max)
        max = other.max;
    count += other.count;
    sum += other.sum;
    for (unsigned b = 0; b < numBuckets; ++b)
        buckets[b] += other.buckets[b];
}

double
HistogramData::percentile(double p) const
{
    if (count == 0)
        return 0.0;
    if (p <= 0.0)
        return static_cast<double>(min);
    if (p >= 100.0)
        return static_cast<double>(max);
    const double target = p / 100.0 * static_cast<double>(count);
    std::uint64_t seen = 0;
    for (unsigned b = 0; b < numBuckets; ++b) {
        if (buckets[b] == 0)
            continue;
        if (static_cast<double>(seen + buckets[b]) >= target) {
            // Interpolate within [2^b, 2^(b+1)).
            const double lo = b == 0 ? 0.0 : std::pow(2.0, b);
            const double hi = std::pow(2.0, b + 1);
            const double frac =
                (target - static_cast<double>(seen)) /
                static_cast<double>(buckets[b]);
            return lo + frac * (hi - lo);
        }
        seen += buckets[b];
    }
    return static_cast<double>(max);
}

double
HistogramData::mean() const
{
    return count ? static_cast<double>(sum) / static_cast<double>(count)
                 : 0.0;
}

void
StatSet::add(const std::string& name, Counter& c)
{
    auto [it, inserted] = counters_.emplace(name, &c);
    (void)it;
    if (!inserted)
        panic("duplicate counter registration: ", name);
}

void
StatSet::add(const std::string& name, Histogram& h)
{
    auto [it, inserted] = histograms_.emplace(name, &h);
    (void)it;
    if (!inserted)
        panic("duplicate histogram registration: ", name);
}

void
StatSet::add(const std::string& name, AttributionTable& t)
{
    auto [it, inserted] = attributions_.emplace(name, &t);
    (void)it;
    if (!inserted)
        panic("duplicate attribution registration: ", name);
}

std::uint64_t
StatSet::counter(const std::string& name) const
{
    auto it = counters_.find(name);
    if (it == counters_.end())
        fatal("unknown counter: ", name);
    return it->second->value();
}

bool
StatSet::hasCounter(const std::string& name) const
{
    return counters_.count(name) != 0;
}

const Histogram&
StatSet::histogram(const std::string& name) const
{
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        fatal("unknown histogram: ", name);
    return *it->second;
}

std::uint64_t
StatSet::sumByPrefix(const std::string& prefix) const
{
    std::uint64_t total = 0;
    for (auto it = counters_.lower_bound(prefix); it != counters_.end();
         ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        total += it->second->value();
    }
    return total;
}

namespace {

bool
matchesWhere(const std::string& name, const std::string& prefix,
             const std::string& suffix)
{
    if (name.size() < prefix.size() + suffix.size())
        return false;
    if (name.compare(0, prefix.size(), prefix) != 0)
        return false;
    return name.compare(name.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

} // namespace

std::uint64_t
StatSet::sumWhere(const std::string& prefix, const std::string& suffix) const
{
    std::uint64_t total = 0;
    for (auto it = counters_.lower_bound(prefix); it != counters_.end();
         ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        if (matchesWhere(it->first, prefix, suffix))
            total += it->second->value();
    }
    return total;
}

HistogramData
StatSet::mergeWhere(const std::string& prefix,
                    const std::string& suffix) const
{
    HistogramData merged;
    for (auto it = histograms_.lower_bound(prefix); it != histograms_.end();
         ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        if (matchesWhere(it->first, prefix, suffix))
            merged.merge(it->second->data());
    }
    return merged;
}

void
StatSet::resetAll()
{
    for (auto& [name, c] : counters_)
        c->reset();
    for (auto& [name, h] : histograms_)
        h->reset();
}

void
StatSet::dump(std::ostream& os) const
{
    for (const auto& [name, c] : counters_)
        os << name << " = " << c->value() << '\n';
    for (const auto& [name, h] : histograms_) {
        os << name << " = {count=" << h->count() << " mean=" << h->mean()
           << " min=" << h->min() << " max=" << h->max() << "}\n";
    }
}

std::vector<std::string>
StatSet::counterNames() const
{
    std::vector<std::string> names;
    names.reserve(counters_.size());
    for (const auto& [name, c] : counters_)
        names.push_back(name);
    return names;
}

std::vector<std::string>
StatSet::histogramNames() const
{
    std::vector<std::string> names;
    names.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_)
        names.push_back(name);
    return names;
}

double
geomean(const std::vector<double>& values)
{
    if (values.empty())
        return 0.0;
    double logSum = 0.0;
    for (double v : values) {
        CBSIM_ASSERT(v > 0.0, "geomean of non-positive value");
        logSum += std::log(v);
    }
    return std::exp(logSum / static_cast<double>(values.size()));
}

} // namespace cbsim
