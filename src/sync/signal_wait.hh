/**
 * @file
 * Signal/wait synchronization on a counting flag (paper Figures 18-19).
 *
 * signal() atomically increments the counter C and (in the callback
 * flavours) wakes all or one waiter; wait() spins until C > 0 and then
 * consumes one token with a Test&Decrement whose write half is st_cb0.
 */

#ifndef CBSIM_SYNC_SIGNAL_WAIT_HH
#define CBSIM_SYNC_SIGNAL_WAIT_HH

#include "sync/locks.hh"

namespace cbsim {

/** A signal/wait counter in simulated memory. */
struct SignalHandle
{
    /** Symbol stem for attribution ("signal0"); see LockHandle::name. */
    std::string name;

    Addr counter = 0;
};

/** Allocate a signal/wait counter initialized to zero. */
SignalHandle makeSignal(SyncLayout& layout);

/** Emit the signal side (fetch&increment; Fig. 18/19 "sig:"). */
void emitSignal(Assembler& a, const SignalHandle& s, SyncFlavor flavor,
                bool record = true);

/** Emit the wait side (spin + test&decrement; Fig. 18/19 "spn:/tad:"). */
void emitWait(Assembler& a, const SignalHandle& s, SyncFlavor flavor,
              bool record = true);

} // namespace cbsim

#endif // CBSIM_SYNC_SIGNAL_WAIT_HH
