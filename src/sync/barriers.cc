#include "sync/barriers.hh"

#include <string>

#include "sim/log.hh"

namespace cbsim {

const char*
barrierAlgoName(BarrierAlgo a)
{
    return a == BarrierAlgo::SenseReversing ? "SR" : "TreeSR";
}

namespace {

std::string
uniq(const Assembler& a, const char* stem)
{
    return std::string(stem) + "_" + std::to_string(a.size());
}

bool
fenced(SyncFlavor f)
{
    return f != SyncFlavor::Mesi;
}

/** Racy store of an immediate, in the flavour's idiom (wake-all). */
void
emitRacyStoreImm(Assembler& a, SyncFlavor flavor, Word value, Reg base,
                 std::int64_t off = 0)
{
    if (fenced(flavor))
        a.stThroughImm(value, base, off);
    else
        a.stImm(value, base, off).sync = true;
}

void
emitRacyStoreReg(Assembler& a, SyncFlavor flavor, Reg src, Reg base,
                 std::int64_t off = 0)
{
    if (fenced(flavor))
        a.stThrough(src, base, off);
    else
        a.st(src, base, off).sync = true;
}

/** Spin until mem[base] == 0 (TreeSR arrival flags). */
void
emitSpinUntilZero(Assembler& a, SyncFlavor flavor, Reg base)
{
    const auto spn = uniq(a, "spn");
    const auto out = uniq(a, "out");
    switch (flavor) {
      case SyncFlavor::Mesi: {
        a.label(spn);
        auto& spin_ld = a.ld(sreg::val, base);
        spin_ld.sync = true;
        spin_ld.spin = true;
        a.bnez(sreg::val, spn);
        break;
      }
      case SyncFlavor::VipsBackoff:
        a.label(spn);
        a.ldThrough(sreg::val, base).spin = true;
        a.bnez(sreg::val, spn);
        break;
      case SyncFlavor::CbAll:
      case SyncFlavor::CbOne:
        a.ldThrough(sreg::val, base);
        a.beqz(sreg::val, out);
        a.label(spn);
        a.ldCb(sreg::val, base);
        a.bnez(sreg::val, spn);
        a.label(out);
        break;
    }
}

/** Spin until mem[base] == regs[want] (sense waits). */
void
emitSpinUntilEqual(Assembler& a, SyncFlavor flavor, Reg base, Reg want)
{
    const auto spn = uniq(a, "spn");
    const auto out = uniq(a, "out");
    switch (flavor) {
      case SyncFlavor::Mesi: {
        a.label(spn);
        auto& spin_ld = a.ld(sreg::val, base);
        spin_ld.sync = true;
        spin_ld.spin = true;
        a.bne(sreg::val, want, spn);
        break;
      }
      case SyncFlavor::VipsBackoff:
        a.label(spn);
        a.ldThrough(sreg::val, base).spin = true;
        a.bne(sreg::val, want, spn);
        break;
      case SyncFlavor::CbAll:
      case SyncFlavor::CbOne:
        // Fig. 15/17: guard ld_through, then the ld_cb spin loop.
        a.ldThrough(sreg::val, base);
        a.beq(sreg::val, want, out);
        a.label(spn);
        a.ldCb(sreg::val, base);
        a.bne(sreg::val, want, spn);
        a.label(out);
        break;
    }
}

void
emitSrBarrier(Assembler& a, const BarrierHandle& b, SyncFlavor flavor,
              CoreId tid, bool record)
{
    if (record)
        a.recordStart(SyncKind::Barrier);
    if (fenced(flavor))
        a.selfDown(); // Fig. 15: publish my writes before arriving

    // Flip the local sense (thread-private line; Fig. 14 "not $s, $s").
    a.movImm(sreg::tmp, b.localSense.at(tid));
    a.ld(sreg::sense, sreg::tmp, 0);
    a.notOp(sreg::sense, sreg::sense);
    a.st(sreg::sense, sreg::tmp, 0);

    const auto last = uniq(a, "last");
    const auto bcast = uniq(a, "bcast");
    const auto end = uniq(a, "end");

    if (b.atomicCounter) {
        // Fig. 14: a single fetch&decrement on the counter.
        a.movImm(sreg::addr, b.counter);
        a.atomic(sreg::val, sreg::addr, 0, AtomicFunc::FetchAndAdd,
                 static_cast<Word>(-1), 0, false,
                 fenced(flavor) ? WakePolicy::All : WakePolicy::None);
        // Last arrival read 1.
        a.addImm(sreg::val, sreg::val, static_cast<Word>(-1));
        a.beqz(sreg::val, last);
    } else {
        // Splash-2 POSIX style (§5.2): counter under the companion lock.
        emitAcquire(a, b.counterLock, flavor, tid, /*record=*/false);
        a.movImm(sreg::addr, b.counter);
        a.ld(sreg::val, sreg::addr, 0);
        a.addImm(sreg::val, sreg::val, static_cast<Word>(-1));
        a.beqz(sreg::val, last);
        a.st(sreg::val, sreg::addr, 0);
        emitRelease(a, b.counterLock, flavor, tid, /*record=*/false);
    }

    // Non-last threads spin until the global sense flips.
    a.movImm(sreg::addr, b.senseWord);
    emitSpinUntilEqual(a, flavor, sreg::addr, sreg::sense);
    a.jump(end);

    a.label(last);
    // Reset the counter for the next episode, then flip the sense.
    a.movImm(sreg::addr, b.counter);
    if (b.atomicCounter) {
        emitRacyStoreImm(a, flavor, b.numThreads, sreg::addr);
    } else {
        a.movImm(sreg::val, b.numThreads);
        a.st(sreg::val, sreg::addr, 0);
        emitRelease(a, b.counterLock, flavor, tid, /*record=*/false);
    }
    a.label(bcast);
    a.movImm(sreg::addr, b.senseWord);
    // Barrier release is a broadcast: st_through/st_cbA in both callback
    // flavours (Fig. 15).
    emitRacyStoreReg(a, flavor, sreg::sense, sreg::addr);

    a.label(end);
    if (fenced(flavor))
        a.selfInvl();
    if (record)
        a.recordEnd(SyncKind::Barrier);
}

void
emitTreeBarrier(Assembler& a, const BarrierHandle& b, SyncFlavor flavor,
                CoreId tid, bool record)
{
    const unsigned n = b.numThreads;
    const unsigned c0 = 2 * tid + 1;
    const unsigned c1 = 2 * tid + 2;
    const bool has_c0 = c0 < n;
    const bool has_c1 = c1 < n;

    if (record)
        a.recordStart(SyncKind::Barrier);
    if (fenced(flavor))
        a.selfDown(); // Fig. 17: "bar: self-down"

    // Load the local sense (flipped at the end, as in Fig. 16).
    a.movImm(sreg::tmp, b.localSense.at(tid));
    a.ld(sreg::sense, sreg::tmp, 0);

    // Arrival: wait for both children, reset their flags.
    if (has_c0) {
        a.movImm(sreg::addr, b.childNotReady0.at(tid));
        emitSpinUntilZero(a, flavor, sreg::addr);
        emitRacyStoreImm(a, flavor, 1, sreg::addr); // "st R, $h"
    }
    if (has_c1) {
        a.movImm(sreg::addr, b.childNotReady1.at(tid));
        emitSpinUntilZero(a, flavor, sreg::addr);
        emitRacyStoreImm(a, flavor, 1, sreg::addr);
    }

    if (tid != 0) {
        // Tell the parent this subtree arrived ("st 0($p), 0").
        const unsigned parent = (tid - 1) / 2;
        const Addr slot = (tid % 2 == 1) ? b.childNotReady0.at(parent)
                                         : b.childNotReady1.at(parent);
        a.movImm(sreg::addr, slot);
        emitRacyStoreImm(a, flavor, 0, sreg::addr);

        // Wait for the wake-up wave from the parent.
        a.movImm(sreg::addr, b.wakeSense.at(tid));
        emitSpinUntilEqual(a, flavor, sreg::addr, sreg::sense);
    }

    if (fenced(flavor))
        a.selfInvl(); // Fig. 17: "sen: self-invl"

    // Wake the children ("st 0($c), $s; st 1($c), $s").
    if (has_c0) {
        a.movImm(sreg::addr, b.wakeSense.at(c0));
        emitRacyStoreReg(a, flavor, sreg::sense, sreg::addr);
    }
    if (has_c1) {
        a.movImm(sreg::addr, b.wakeSense.at(c1));
        emitRacyStoreReg(a, flavor, sreg::sense, sreg::addr);
    }

    // Flip and persist the local sense ("not $s, $s").
    a.notOp(sreg::sense, sreg::sense);
    a.movImm(sreg::tmp, b.localSense.at(tid));
    a.st(sreg::sense, sreg::tmp, 0);

    if (record)
        a.recordEnd(SyncKind::Barrier);
}

} // namespace

BarrierHandle
makeSrBarrier(SyncLayout& layout, unsigned num_threads,
              LockAlgo counter_lock_algo)
{
    BarrierHandle b;
    b.algo = BarrierAlgo::SenseReversing;
    b.numThreads = num_threads;
    b.name = layout.autoName("barrier");
    b.counter = layout.allocLine();
    b.senseWord = layout.allocLine();
    layout.init(b.counter, num_threads);
    layout.init(b.senseWord, 0);
    b.counterLock = makeLock(layout, counter_lock_algo, num_threads);
    b.counterLock.name = b.name + ".lock";
    b.localSense.reserve(num_threads);
    for (CoreId t = 0; t < num_threads; ++t) {
        const Addr ls = layout.allocPrivateLine(t);
        layout.init(ls, 0); // flipped to 1 on first arrival
        b.localSense.push_back(ls);
    }
    return b;
}

BarrierHandle
makeSrBarrierAtomic(SyncLayout& layout, unsigned num_threads)
{
    BarrierHandle b = makeSrBarrier(layout, num_threads,
                                    LockAlgo::TestAndTestAndSet);
    b.atomicCounter = true;
    return b;
}

BarrierHandle
makeTreeBarrier(SyncLayout& layout, unsigned num_threads)
{
    BarrierHandle b;
    b.algo = BarrierAlgo::TreeSenseReversing;
    b.numThreads = num_threads;
    b.name = layout.autoName("barrier");
    for (CoreId t = 0; t < num_threads; ++t) {
        const unsigned c0 = 2 * t + 1;
        const unsigned c1 = 2 * t + 2;
        b.childNotReady0.push_back(layout.allocLine());
        b.childNotReady1.push_back(layout.allocLine());
        b.wakeSense.push_back(layout.allocLine());
        layout.init(b.childNotReady0.back(), c0 < num_threads ? 1 : 0);
        layout.init(b.childNotReady1.back(), c1 < num_threads ? 1 : 0);
        layout.init(b.wakeSense.back(), 0);
        const Addr ls = layout.allocPrivateLine(t);
        layout.init(ls, 1); // first wake-up wave carries sense 1
        b.localSense.push_back(ls);
    }
    return b;
}

void
emitBarrier(Assembler& a, const BarrierHandle& barrier, SyncFlavor flavor,
            CoreId tid, bool record)
{
    if (!barrier.name.empty()) {
        if (barrier.algo == BarrierAlgo::SenseReversing) {
            a.dataSymbol(barrier.name + ".counter", barrier.counter);
            a.dataSymbol(barrier.name + ".sense", barrier.senseWord);
        } else {
            for (std::size_t t = 0; t < barrier.wakeSense.size(); ++t) {
                const std::string n = std::to_string(t);
                a.dataSymbol(barrier.name + ".cnr0." + n,
                             barrier.childNotReady0[t]);
                a.dataSymbol(barrier.name + ".cnr1." + n,
                             barrier.childNotReady1[t]);
                a.dataSymbol(barrier.name + ".wake." + n,
                             barrier.wakeSense[t]);
            }
        }
    }
    if (barrier.algo == BarrierAlgo::SenseReversing)
        emitSrBarrier(a, barrier, flavor, tid, record);
    else
        emitTreeBarrier(a, barrier, flavor, tid, record);
}

} // namespace cbsim
