#include "sync/signal_wait.hh"

#include <string>

namespace cbsim {

namespace {

std::string
uniq(const Assembler& a, const char* stem)
{
    return std::string(stem) + "_" + std::to_string(a.size());
}

bool
fenced(SyncFlavor f)
{
    return f != SyncFlavor::Mesi;
}

} // namespace

SignalHandle
makeSignal(SyncLayout& layout)
{
    SignalHandle s;
    s.name = layout.autoName("signal");
    s.counter = layout.allocLine();
    layout.init(s.counter, 0);
    return s;
}

namespace {

void
registerSignalSymbol(Assembler& a, const SignalHandle& s)
{
    if (!s.name.empty())
        a.dataSymbol(s.name, s.counter);
}

} // namespace

void
emitSignal(Assembler& a, const SignalHandle& s, SyncFlavor flavor,
           bool record)
{
    registerSignalSymbol(a, s);
    if (record)
        a.recordStart(SyncKind::Signal);
    if (fenced(flavor))
        a.selfDown(); // Fig. 18/19: "sig: self_down"
    a.movImm(sreg::addr, s.counter);

    WakePolicy wake = WakePolicy::None;
    switch (flavor) {
      case SyncFlavor::Mesi:
        wake = WakePolicy::None;
        break;
      case SyncFlavor::VipsBackoff:
      case SyncFlavor::CbAll:
        wake = WakePolicy::All; // ld&stA (Fig. 19 left)
        break;
      case SyncFlavor::CbOne:
        wake = WakePolicy::One; // ld&st1: each signal wakes one waiter
        break;
    }
    a.atomic(sreg::val, sreg::addr, 0, AtomicFunc::FetchAndAdd, 1, 0,
             false, wake);
    if (record)
        a.recordEnd(SyncKind::Signal);
}

void
emitWait(Assembler& a, const SignalHandle& s, SyncFlavor flavor,
         bool record)
{
    registerSignalSymbol(a, s);
    if (record)
        a.recordStart(SyncKind::Wait);
    a.movImm(sreg::addr, s.counter);
    const auto spn = uniq(a, "spn");
    const auto tad = uniq(a, "tad");

    const WakePolicy consume_wake =
        fenced(flavor) ? (flavor == SyncFlavor::VipsBackoff
                              ? WakePolicy::All
                              : WakePolicy::Zero) // ld&st0 (Fig. 19)
                       : WakePolicy::None;

    switch (flavor) {
      case SyncFlavor::Mesi: {
        a.label(spn);
        auto& spin_ld = a.ld(sreg::val, sreg::addr);
        spin_ld.sync = true;
        spin_ld.spin = true;
        a.beqz(sreg::val, spn);
        a.label(tad);
        a.atomic(sreg::val, sreg::addr, 0, AtomicFunc::TestAndDec, 0, 0,
                 false, consume_wake);
        a.beqz(sreg::val, spn);
        break;
      }

      case SyncFlavor::VipsBackoff:
        a.label(spn);
        a.ldThrough(sreg::val, sreg::addr).spin = true;
        a.beqz(sreg::val, spn);
        a.label(tad);
        a.atomic(sreg::val, sreg::addr, 0, AtomicFunc::TestAndDec, 0, 0,
                 false, consume_wake);
        a.beqz(sreg::val, spn);
        break;

      case SyncFlavor::CbAll:
      case SyncFlavor::CbOne:
        // Fig. 19: guard ld_through, ld_cb spin, ld&st0 consume.
        a.ldThrough(sreg::val, sreg::addr);
        a.bnez(sreg::val, tad);
        a.label(spn);
        a.ldCb(sreg::val, sreg::addr);
        a.beqz(sreg::val, spn);
        a.label(tad);
        a.atomic(sreg::val, sreg::addr, 0, AtomicFunc::TestAndDec, 0, 0,
                 false, consume_wake);
        a.beqz(sreg::val, spn);
        break;
    }
    if (fenced(flavor))
        a.selfInvl();
    if (record)
        a.recordEnd(SyncKind::Wait);
}

} // namespace cbsim
