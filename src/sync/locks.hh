/**
 * @file
 * Lock algorithms of the paper (Figures 8-13): Test&Set,
 * Test-and-Test&Set, and the CLH queue lock — each encoded for the four
 * synchronization flavours (MESI, VIPS with LLC spinning/back-off,
 * callback-all, callback-one).
 *
 * Register convention: emitters use r10..r15 as scratch; workload code
 * owns r0..r9. Per-thread persistent lock state (CLH node/pred pointers,
 * barrier senses) lives in thread-private memory, which first-touch
 * classification keeps out of self-invalidation.
 */

#ifndef CBSIM_SYNC_LOCKS_HH
#define CBSIM_SYNC_LOCKS_HH

#include <vector>

#include "isa/assembler.hh"
#include "sync/layout.hh"
#include "system/chip_config.hh"

namespace cbsim {

/** How a program encodes its synchronization (paper §3.4). */
enum class SyncFlavor : std::uint8_t
{
    Mesi,        ///< unfenced, cached spinning (Figs. 8/10/12/14/16/18 left)
    VipsBackoff, ///< fenced, LLC spinning with back-off (right columns)
    CbAll,       ///< callback-all encodings (Figs. 9/11/13/15/17/19)
    CbOne,       ///< callback-one encodings
};

/** The flavour a given evaluated technique runs. */
SyncFlavor syncFlavorFor(Technique t);

const char* syncFlavorName(SyncFlavor f);

/**
 * Lock algorithm selector. The paper evaluates T&T&S (naive) and CLH
 * (scalable); Ticket and MCS come from the same scalable-synchronization
 * collection ([1], Mellor-Crummey & Scott) and are provided as
 * extensions with callback encodings derived by the paper's rules.
 */
enum class LockAlgo : std::uint8_t
{
    TestAndSet,
    TestAndTestAndSet,
    Clh,
    Ticket,
    Mcs,
};

const char* lockAlgoName(LockAlgo a);

/** Scratch registers reserved for sync emitters. */
namespace sreg {
inline constexpr Reg val = 14;   ///< loaded/spun values
inline constexpr Reg addr = 15;  ///< current sync address
inline constexpr Reg tmp = 13;
inline constexpr Reg node = 12;  ///< CLH: my node pointer
inline constexpr Reg pred = 11;  ///< CLH: predecessor pointer
inline constexpr Reg sense = 10; ///< barriers: local sense
} // namespace sreg

/**
 * A lock instance in simulated memory. For CLH, per-thread queue nodes
 * and the private I/prev words are pre-allocated for every thread.
 */
struct LockHandle
{
    LockAlgo algo = LockAlgo::TestAndTestAndSet;

    /**
     * Symbol stem for attribution ("lock0", "barrier0.lock"); the
     * emitters bind it (and derived names like "lock0.next_ticket") to
     * the handle's addresses via Assembler::dataSymbol.
     */
    std::string name;

    Addr lockWord = 0; ///< flag, CLH/MCS tail pointer, or now_serving

    /** Ticket: the next_ticket counter (its own line). */
    Addr aux = 0;

    // CLH only:
    std::vector<Addr> privateState; ///< per-thread line: [I, prev]

    /**
     * Queue node lines. MCS: one per thread ([locked, next]), indexed
     * by tid. CLH: the initial released node followed by one node per
     * thread — emitters never index these (CLH reaches nodes through
     * privateState); they exist so attribution symbols can be bound to
     * the lines threads spin on.
     */
    std::vector<Addr> nodes;
};

/**
 * Allocate and initialize a lock. CLH allocates numThreads+1 nodes and
 * initializes the tail to a released node.
 */
LockHandle makeLock(SyncLayout& layout, LockAlgo algo,
                    unsigned num_threads);

/**
 * Emit the acquire sequence for @p lock into @p a, for thread @p tid.
 * @param record wrap in Record(Acquire) markers (off for barrier-internal
 *        locks so lock and barrier statistics stay separable)
 */
void emitAcquire(Assembler& a, const LockHandle& lock, SyncFlavor flavor,
                 CoreId tid, bool record = true);

/** Emit the release sequence (including the self-down fence). */
void emitRelease(Assembler& a, const LockHandle& lock, SyncFlavor flavor,
                 CoreId tid, bool record = true);

/**
 * Bind @p lock's attribution symbols (name, name.next_ticket,
 * name.nodeI) into @p a's data-symbol table. Called by the emitters;
 * no-op for an unnamed handle.
 */
void registerLockSymbols(Assembler& a, const LockHandle& lock);

} // namespace cbsim

#endif // CBSIM_SYNC_LOCKS_HH
