/**
 * @file
 * Barrier algorithms of the paper (Figures 14-17): the centralized
 * sense-reversing (SR) barrier and the tree sense-reversing (TreeSR)
 * barrier, encoded for all four synchronization flavours.
 *
 * Per the paper's §5.2, the evaluated SR barrier follows the Splash-2
 * POSIX implementation: the counter is updated under a lock (the
 * companion lock algorithm) rather than with a single atomic. The pure
 * fetch&decrement variant of Fig. 14/15 is also available (atomicCounter).
 *
 * The TreeSR barrier uses a binary arrival/wake-up tree. The paper packs
 * per-child "not-ready" flags into one word (byte stores); our simulated
 * memory is word-granular, so each child flag is its own word and the
 * parent spins on each in turn — the single-writer/single-spinner
 * behaviour per word that makes the algorithm callback-friendly is
 * identical (see DESIGN.md).
 */

#ifndef CBSIM_SYNC_BARRIERS_HH
#define CBSIM_SYNC_BARRIERS_HH

#include "sync/locks.hh"

namespace cbsim {

/** Which barrier algorithm a handle encodes. */
enum class BarrierAlgo : std::uint8_t
{
    SenseReversing,
    TreeSenseReversing,
};

const char* barrierAlgoName(BarrierAlgo a);

/** A barrier instance in simulated memory. */
struct BarrierHandle
{
    BarrierAlgo algo = BarrierAlgo::SenseReversing;
    unsigned numThreads = 0;

    /** Symbol stem for attribution ("barrier0"); see LockHandle::name. */
    std::string name;

    // SR barrier:
    Addr counter = 0;         ///< arrivals remaining
    Addr senseWord = 0;       ///< global sense
    bool atomicCounter = false; ///< Fig. 14 single-atomic variant
    LockHandle counterLock;   ///< Splash-2-style lock-protected counter

    // TreeSR barrier (per thread):
    std::vector<Addr> childNotReady0; ///< child-0 arrival flag
    std::vector<Addr> childNotReady1; ///< child-1 arrival flag
    std::vector<Addr> wakeSense;      ///< written by the parent

    // Both: per-thread private line holding the local sense.
    std::vector<Addr> localSense;
};

/**
 * Allocate an SR barrier whose counter is protected by a fresh lock of
 * @p counter_lock_algo (the paper's naive/scalable pairing: T&T&S or CLH).
 */
BarrierHandle makeSrBarrier(SyncLayout& layout, unsigned num_threads,
                            LockAlgo counter_lock_algo);

/** Allocate the Fig. 14 variant with a single atomic fetch&decrement. */
BarrierHandle makeSrBarrierAtomic(SyncLayout& layout,
                                  unsigned num_threads);

/** Allocate a TreeSR barrier over a binary tree of @p num_threads. */
BarrierHandle makeTreeBarrier(SyncLayout& layout, unsigned num_threads);

/** Emit a full barrier episode for thread @p tid. */
void emitBarrier(Assembler& a, const BarrierHandle& barrier,
                 SyncFlavor flavor, CoreId tid, bool record = true);

} // namespace cbsim

#endif // CBSIM_SYNC_BARRIERS_HH
