#include "sync/layout.hh"

#include "mem/data_store.hh"

namespace cbsim {

Addr
SyncLayout::allocLine()
{
    next_ = (next_ + AddrLayout::lineBytes - 1) &
            ~Addr(AddrLayout::lineBytes - 1);
    const Addr a = next_;
    next_ += AddrLayout::lineBytes;
    return a;
}

Addr
SyncLayout::allocLines(unsigned lines)
{
    const Addr a = allocLine();
    next_ = a + static_cast<Addr>(lines) * AddrLayout::lineBytes;
    return a;
}

Addr
SyncLayout::allocPage()
{
    const Addr a = nextPage_;
    nextPage_ += AddrLayout::pageBytes;
    return a;
}

Addr
SyncLayout::allocPrivateLine(CoreId tid)
{
    if (privates_.size() <= tid)
        privates_.resize(tid + 1);
    auto& region = privates_[tid];
    if (region.next + AddrLayout::lineBytes > region.end) {
        region.next = allocPage();
        region.end = region.next + AddrLayout::pageBytes;
    }
    const Addr a = region.next;
    region.next += AddrLayout::lineBytes;
    return a;
}

std::string
SyncLayout::autoName(const std::string& stem)
{
    return stem + std::to_string(nameCounts_[stem]++);
}

void
SyncLayout::init(Addr addr, Word value)
{
    inits_.emplace_back(addr, value);
}

void
SyncLayout::apply(DataStore& store) const
{
    for (const auto& [addr, value] : inits_)
        store.write(addr, value);
}

} // namespace cbsim
