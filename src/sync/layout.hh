/**
 * @file
 * Simulated-memory layout allocator for synchronization structures and
 * workload data, plus the initial-value list applied before a run.
 */

#ifndef CBSIM_SYNC_LAYOUT_HH
#define CBSIM_SYNC_LAYOUT_HH

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "mem/addr.hh"
#include "sim/types.hh"

namespace cbsim {

class DataStore;

/**
 * Hands out non-overlapping simulated addresses. Synchronization
 * variables get a full cache line each (no false sharing); per-thread
 * private state gets a page per thread so first-touch classification
 * keeps it Private.
 */
class SyncLayout
{
  public:
    /**
     * Lines are carved from @p base upward; whole pages (private
     * regions) come from a disjoint region above @p page_base so that
     * page-aligned allocations do not force subsequent sync lines onto
     * page boundaries (which would home them all on bank 0).
     */
    explicit SyncLayout(Addr base = 0x4000'0000ULL,
                        Addr page_base = 0x8000'0000ULL)
        : next_(base), nextPage_(page_base)
    {
    }

    /** One fresh, line-aligned cache line; returns its address. */
    Addr allocLine();

    /** @p lines consecutive lines (shared data arrays). */
    Addr allocLines(unsigned lines);

    /** One fresh page (4 KB), page-aligned. */
    Addr allocPage();

    /**
     * Thread-private line inside thread @p tid's private page region.
     * Lines for the same tid share pages; different tids never do.
     */
    Addr allocPrivateLine(CoreId tid);

    /**
     * Next instance name for @p stem: "lock0", "lock1", "barrier0" —
     * one counter per stem, so names are stable and unique within a
     * layout. Used by the sync make* builders to name handles; the
     * emitters register those names as data symbols for attribution.
     */
    std::string autoName(const std::string& stem);

    /** Record an initial word value, applied by apply(). */
    void init(Addr addr, Word value);

    /** Write all recorded initial values into @p store. */
    void apply(DataStore& store) const;

    const std::vector<std::pair<Addr, Word>>& initWrites() const
    {
        return inits_;
    }

  private:
    Addr next_;
    Addr nextPage_;
    std::vector<std::pair<Addr, Word>> inits_;
    std::map<std::string, unsigned> nameCounts_;

    struct PrivateRegion
    {
        Addr next = 0;
        Addr end = 0;
    };
    std::vector<PrivateRegion> privates_;
};

} // namespace cbsim

#endif // CBSIM_SYNC_LAYOUT_HH
