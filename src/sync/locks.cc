#include "sync/locks.hh"

#include <string>

#include "sim/log.hh"

namespace cbsim {

SyncFlavor
syncFlavorFor(Technique t)
{
    switch (t) {
      case Technique::Invalidation:
        return SyncFlavor::Mesi;
      case Technique::BackOff0:
      case Technique::BackOff5:
      case Technique::BackOff10:
      case Technique::BackOff15:
        return SyncFlavor::VipsBackoff;
      case Technique::CbAll:
        return SyncFlavor::CbAll;
      case Technique::CbOne:
        return SyncFlavor::CbOne;
      default:
        fatal("bad technique");
    }
}

const char*
syncFlavorName(SyncFlavor f)
{
    switch (f) {
      case SyncFlavor::Mesi: return "mesi";
      case SyncFlavor::VipsBackoff: return "vips";
      case SyncFlavor::CbAll: return "cb-all";
      case SyncFlavor::CbOne: return "cb-one";
      default: return "?";
    }
}

const char*
lockAlgoName(LockAlgo a)
{
    switch (a) {
      case LockAlgo::TestAndSet: return "T&S";
      case LockAlgo::TestAndTestAndSet: return "T&T&S";
      case LockAlgo::Clh: return "CLH";
      case LockAlgo::Ticket: return "Ticket";
      case LockAlgo::Mcs: return "MCS";
      default: return "?";
    }
}

namespace {

/** Unique label suffix from the emission point. */
std::string
uniq(const Assembler& a, const char* stem)
{
    return std::string(stem) + "_" + std::to_string(a.size());
}

bool
fenced(SyncFlavor f)
{
    return f != SyncFlavor::Mesi;
}

/** The write-half policy of a successful lock-taking RMW. */
WakePolicy
takePolicy(SyncFlavor f)
{
    switch (f) {
      case SyncFlavor::Mesi:
        return WakePolicy::None;
      case SyncFlavor::VipsBackoff:
      case SyncFlavor::CbAll:
        // Fig. 9/11 left: the T&S write is a plain store-through (cbA).
        return WakePolicy::All;
      case SyncFlavor::CbOne:
        // Fig. 9/11 right: st_cb0 — taking the lock wakes nobody (§2.5).
        return WakePolicy::Zero;
    }
    return WakePolicy::None;
}

void
emitTasAcquire(Assembler& a, const LockHandle& lock, SyncFlavor flavor,
               bool record)
{
    if (record)
        a.recordStart(SyncKind::Acquire);
    a.movImm(sreg::addr, lock.lockWord);
    const auto acq = uniq(a, "acq");
    const auto spn = uniq(a, "spn");
    const auto cs = uniq(a, "cs");

    switch (flavor) {
      case SyncFlavor::Mesi:
        // Fig. 8 left: spin directly on the atomic.
        a.label(acq);
        a.atomic(sreg::val, sreg::addr, 0, AtomicFunc::TestAndSet, 1, 0,
                 false, WakePolicy::None)
            .spin = true;
        a.bnez(sreg::val, acq);
        break;

      case SyncFlavor::VipsBackoff:
        // Fig. 8 right: the atomic goes to the LLC; back-off throttles it.
        a.label(acq);
        a.atomic(sreg::val, sreg::addr, 0, AtomicFunc::TestAndSet, 1, 0,
                 false, WakePolicy::All)
            .spin = true;
        a.bnez(sreg::val, acq);
        break;

      case SyncFlavor::CbAll:
      case SyncFlavor::CbOne: {
        // Fig. 9: a non-callback T&S guard (§3.3), then a callback T&S
        // spin loop that is held in the callback directory.
        const WakePolicy wp = takePolicy(flavor);
        a.atomic(sreg::val, sreg::addr, 0, AtomicFunc::TestAndSet, 1, 0,
                 false, wp);
        a.beqz(sreg::val, cs);
        a.label(spn);
        a.atomic(sreg::val, sreg::addr, 0, AtomicFunc::TestAndSet, 1, 0,
                 true, wp);
        a.bnez(sreg::val, spn);
        a.label(cs);
        break;
      }
    }
    if (fenced(flavor))
        a.selfInvl();
    if (record)
        a.recordEnd(SyncKind::Acquire);
}

void
emitTtasAcquire(Assembler& a, const LockHandle& lock, SyncFlavor flavor,
                bool record)
{
    if (record)
        a.recordStart(SyncKind::Acquire);
    a.movImm(sreg::addr, lock.lockWord);
    const auto acq = uniq(a, "acq");
    const auto spn = uniq(a, "spn");
    const auto tas = uniq(a, "tas");
    const auto cs = uniq(a, "cs");

    switch (flavor) {
      case SyncFlavor::Mesi: {
        // Fig. 10 left: the first Test spins on the cached copy.
        a.label(acq);
        auto& test = a.ld(sreg::val, sreg::addr);
        test.sync = true;
        test.spin = true;
        a.bnez(sreg::val, acq);
        a.atomic(sreg::val, sreg::addr, 0, AtomicFunc::TestAndSet, 1, 0,
                 false, WakePolicy::None);
        a.bnez(sreg::val, acq);
        break;
      }

      case SyncFlavor::VipsBackoff:
        // Fig. 10 right: ld_through spin with back-off.
        a.label(acq);
        a.ldThrough(sreg::val, sreg::addr).spin = true;
        a.bnez(sreg::val, acq);
        a.atomic(sreg::val, sreg::addr, 0, AtomicFunc::TestAndSet, 1, 0,
                 false, WakePolicy::All);
        a.bnez(sreg::val, acq);
        break;

      case SyncFlavor::CbAll:
      case SyncFlavor::CbOne: {
        // Fig. 11: guard ld_through, ld_cb spin as the first Test, and a
        // non-callback T&S whose write is cbA (all) or cb0 (one).
        const WakePolicy wp = takePolicy(flavor);
        a.ldThrough(sreg::val, sreg::addr);
        a.beqz(sreg::val, tas);
        a.label(spn);
        a.ldCb(sreg::val, sreg::addr);
        a.bnez(sreg::val, spn);
        a.label(tas);
        a.atomic(sreg::val, sreg::addr, 0, AtomicFunc::TestAndSet, 1, 0,
                 false, wp);
        a.bnez(sreg::val, spn);
        a.label(cs);
        break;
      }
    }
    if (fenced(flavor))
        a.selfInvl();
    if (record)
        a.recordEnd(SyncKind::Acquire);
}

void
emitFlagRelease(Assembler& a, const LockHandle& lock, SyncFlavor flavor,
                bool record)
{
    if (record)
        a.recordStart(SyncKind::Release);
    if (fenced(flavor))
        a.selfDown();
    a.movImm(sreg::addr, lock.lockWord);
    switch (flavor) {
      case SyncFlavor::Mesi:
        a.stImm(0, sreg::addr).sync = true;
        break;
      case SyncFlavor::VipsBackoff:
      case SyncFlavor::CbAll:
        a.stThroughImm(0, sreg::addr);
        break;
      case SyncFlavor::CbOne:
        // Fig. 9/11 right: the release wakes exactly one waiter.
        a.stCb1Imm(0, sreg::addr);
        break;
    }
    if (record)
        a.recordEnd(SyncKind::Release);
}

void
emitClhAcquire(Assembler& a, const LockHandle& lock, SyncFlavor flavor,
               CoreId tid, bool record)
{
    // Private per-thread line: [0] = I (my node), [8] = saved pred.
    const Addr priv = lock.privateState.at(tid);
    if (record)
        a.recordStart(SyncKind::Acquire);

    a.movImm(sreg::tmp, priv);
    a.ld(sreg::node, sreg::tmp, 0); // I

    // succ_wait(I) = 1, then swap my node into the tail.
    const bool f = fenced(flavor);
    if (f)
        a.stThroughImm(1, sreg::node, 0);
    else {
        a.stImm(1, sreg::node, 0).sync = true;
    }
    a.movImm(sreg::addr, lock.lockWord);
    a.atomicReg(sreg::pred, sreg::addr, 0, AtomicFunc::FetchAndStore,
                sreg::node, 0, false, f ? WakePolicy::All
                                        : WakePolicy::None);
    // Save pred for the release ($i->prev in Fig. 12).
    a.st(sreg::pred, sreg::tmp, 8);

    const auto spn = uniq(a, "spn");
    const auto cs = uniq(a, "cs");
    switch (flavor) {
      case SyncFlavor::Mesi: {
        a.label(spn);
        auto& spin_ld = a.ld(sreg::val, sreg::pred, 0);
        spin_ld.sync = true;
        spin_ld.spin = true;
        a.bnez(sreg::val, spn);
        break;
      }
      case SyncFlavor::VipsBackoff:
        a.label(spn);
        a.ldThrough(sreg::val, sreg::pred, 0).spin = true;
        a.bnez(sreg::val, spn);
        break;
      case SyncFlavor::CbAll:
      case SyncFlavor::CbOne:
        // Fig. 13: guard ld_through, then the ld_cb spin loop.
        a.ldThrough(sreg::val, sreg::pred, 0);
        a.beqz(sreg::val, cs);
        a.label(spn);
        a.ldCb(sreg::val, sreg::pred, 0);
        a.bnez(sreg::val, spn);
        a.label(cs);
        break;
    }
    if (f)
        a.selfInvl();
    if (record)
        a.recordEnd(SyncKind::Acquire);
}

void
emitClhRelease(Assembler& a, const LockHandle& lock, SyncFlavor flavor,
               CoreId tid, bool record)
{
    const Addr priv = lock.privateState.at(tid);
    if (record)
        a.recordStart(SyncKind::Release);
    if (fenced(flavor))
        a.selfDown();

    a.movImm(sreg::tmp, priv);
    a.ld(sreg::node, sreg::tmp, 0); // I
    a.ld(sreg::pred, sreg::tmp, 8); // saved pred

    // succ_wait(I) = 0 hands the lock to the successor; recycle pred.
    switch (flavor) {
      case SyncFlavor::Mesi:
        a.stImm(0, sreg::node, 0).sync = true;
        break;
      case SyncFlavor::VipsBackoff:
      case SyncFlavor::CbAll:
        a.stThroughImm(0, sreg::node, 0);
        break;
      case SyncFlavor::CbOne:
        // Only one thread ever spins on this word; waking "one" and
        // waking "all" coincide (paper §3.4.3).
        a.stCb1Imm(0, sreg::node, 0);
        break;
    }
    a.st(sreg::pred, sreg::tmp, 0); // I = pred
    if (record)
        a.recordEnd(SyncKind::Release);
}

/** Racy spin until mem[base] equals regs[want] (flavour idiom). */
void
emitLockSpinUntilEqual(Assembler& a, SyncFlavor flavor, Reg base,
                       Reg want, std::int64_t off = 0)
{
    const auto spn = uniq(a, "spn");
    const auto out = uniq(a, "out");
    switch (flavor) {
      case SyncFlavor::Mesi: {
        a.label(spn);
        auto& spin_ld = a.ld(sreg::val, base, off);
        spin_ld.sync = true;
        spin_ld.spin = true;
        a.bne(sreg::val, want, spn);
        break;
      }
      case SyncFlavor::VipsBackoff:
        a.label(spn);
        a.ldThrough(sreg::val, base, off).spin = true;
        a.bne(sreg::val, want, spn);
        break;
      case SyncFlavor::CbAll:
      case SyncFlavor::CbOne:
        a.ldThrough(sreg::val, base, off); // §3.3 guard
        a.beq(sreg::val, want, out);
        a.label(spn);
        a.ldCb(sreg::val, base, off);
        a.bne(sreg::val, want, spn);
        a.label(out);
        break;
    }
}

/** Racy spin until mem[base] == 0. Leaves the last value in sreg::val. */
void
emitLockSpinUntilZero(Assembler& a, SyncFlavor flavor, Reg base,
                      std::int64_t off = 0)
{
    const auto spn = uniq(a, "spn");
    const auto out = uniq(a, "out");
    switch (flavor) {
      case SyncFlavor::Mesi: {
        a.label(spn);
        auto& spin_ld = a.ld(sreg::val, base, off);
        spin_ld.sync = true;
        spin_ld.spin = true;
        a.bnez(sreg::val, spn);
        break;
      }
      case SyncFlavor::VipsBackoff:
        a.label(spn);
        a.ldThrough(sreg::val, base, off).spin = true;
        a.bnez(sreg::val, spn);
        break;
      case SyncFlavor::CbAll:
      case SyncFlavor::CbOne:
        a.ldThrough(sreg::val, base, off);
        a.beqz(sreg::val, out);
        a.label(spn);
        a.ldCb(sreg::val, base, off);
        a.bnez(sreg::val, spn);
        a.label(out);
        break;
    }
}

/** Racy spin until mem[base] != 0 (MCS wait-for-successor link). */
void
emitLockSpinUntilNonZero(Assembler& a, SyncFlavor flavor, Reg base,
                         std::int64_t off = 0)
{
    const auto spn = uniq(a, "spn");
    const auto out = uniq(a, "out");
    switch (flavor) {
      case SyncFlavor::Mesi: {
        a.label(spn);
        auto& spin_ld = a.ld(sreg::val, base, off);
        spin_ld.sync = true;
        spin_ld.spin = true;
        a.beqz(sreg::val, spn);
        break;
      }
      case SyncFlavor::VipsBackoff:
        a.label(spn);
        a.ldThrough(sreg::val, base, off).spin = true;
        a.beqz(sreg::val, spn);
        break;
      case SyncFlavor::CbAll:
      case SyncFlavor::CbOne:
        a.ldThrough(sreg::val, base, off);
        a.bnez(sreg::val, out);
        a.label(spn);
        a.ldCb(sreg::val, base, off);
        a.beqz(sreg::val, spn);
        a.label(out);
        break;
    }
}

/**
 * Ticket lock (extension). Acquire: my = fetch&inc(next_ticket); spin
 * until now_serving == my. Release: now_serving = my + 1. The release
 * must wake ALL waiters even in the callback-one flavour — waiters spin
 * for *different* ticket values, so waking one (possibly the wrong one)
 * would strand the rightful owner; st_cbA is the correct encoding.
 * The ticket is held in sreg::node across the critical section, so
 * Ticket/MCS critical sections must not nest.
 */
void
emitTicketAcquire(Assembler& a, const LockHandle& lock, SyncFlavor flavor,
                  bool record)
{
    const bool f = fenced(flavor);
    if (record)
        a.recordStart(SyncKind::Acquire);
    a.movImm(sreg::addr, lock.aux); // next_ticket
    a.atomic(sreg::node, sreg::addr, 0, AtomicFunc::FetchAndAdd, 1, 0,
             false, f ? WakePolicy::All : WakePolicy::None);
    a.movImm(sreg::addr, lock.lockWord); // now_serving
    emitLockSpinUntilEqual(a, flavor, sreg::addr, sreg::node);
    if (f)
        a.selfInvl();
    if (record)
        a.recordEnd(SyncKind::Acquire);
}

void
emitTicketRelease(Assembler& a, const LockHandle& lock, SyncFlavor flavor,
                  bool record)
{
    if (record)
        a.recordStart(SyncKind::Release);
    if (fenced(flavor))
        a.selfDown();
    a.movImm(sreg::addr, lock.lockWord);
    a.addImm(sreg::val, sreg::node, 1); // my ticket + 1
    if (fenced(flavor))
        a.stThrough(sreg::val, sreg::addr); // broadcast: see doc above
    else
        a.st(sreg::val, sreg::addr).sync = true;
    if (record)
        a.recordEnd(SyncKind::Release);
}

/**
 * MCS queue lock (extension). Per-thread node [0]=locked, [8]=next.
 * Exactly one thread spins on any word, so callback-all and
 * callback-one coincide; the hand-off uses st_cb1 in the CB-One
 * flavour like CLH. The release CAS uses T&S with the node address as
 * the compare value (a generation-time constant).
 */
void
emitMcsAcquire(Assembler& a, const LockHandle& lock, SyncFlavor flavor,
               CoreId tid, bool record)
{
    const bool f = fenced(flavor);
    const Addr my_node = lock.nodes.at(tid);
    const auto have_lock = uniq(a, "got");
    if (record)
        a.recordStart(SyncKind::Acquire);

    a.movImm(sreg::node, my_node);
    if (f) {
        a.stThroughImm(0, sreg::node, 8); // next = nil
        a.stThroughImm(1, sreg::node, 0); // locked = 1
    } else {
        a.stImm(0, sreg::node, 8).sync = true;
        a.stImm(1, sreg::node, 0).sync = true;
    }
    a.movImm(sreg::addr, lock.lockWord); // tail
    a.atomicReg(sreg::pred, sreg::addr, 0, AtomicFunc::FetchAndStore,
                sreg::node, 0, false,
                f ? WakePolicy::All : WakePolicy::None);
    a.beqz(sreg::pred, have_lock); // empty queue: lock acquired

    // Link behind the predecessor; this write may wake a releaser
    // blocked on its "next" word, so it is a wake-all store-through.
    if (f)
        a.stThrough(sreg::node, sreg::pred, 8);
    else
        a.st(sreg::node, sreg::pred, 8).sync = true;

    // Spin on my own locked flag until the predecessor hands off.
    emitLockSpinUntilZero(a, flavor, sreg::node);

    a.label(have_lock);
    if (f)
        a.selfInvl();
    if (record)
        a.recordEnd(SyncKind::Acquire);
}

void
emitMcsRelease(Assembler& a, const LockHandle& lock, SyncFlavor flavor,
               CoreId tid, bool record)
{
    const bool f = fenced(flavor);
    const Addr my_node = lock.nodes.at(tid);
    const auto handoff = uniq(a, "handoff");
    const auto done = uniq(a, "done");
    if (record)
        a.recordStart(SyncKind::Release);
    if (f)
        a.selfDown();

    a.movImm(sreg::node, my_node);
    // Known successor?
    if (f)
        a.ldThrough(sreg::val, sreg::node, 8);
    else
        a.ld(sreg::val, sreg::node, 8).sync = true;
    a.bnez(sreg::val, handoff);

    // No successor visible: CAS(tail, my_node, 0).
    a.movImm(sreg::addr, lock.lockWord);
    a.atomic(sreg::tmp, sreg::addr, 0, AtomicFunc::TestAndSet, 0,
             /*compare=*/my_node, false,
             f ? WakePolicy::All : WakePolicy::None);
    a.movImm(sreg::val, my_node);
    a.beq(sreg::tmp, sreg::val, done); // CAS succeeded: queue empty

    // A successor is enqueuing: wait for its link write.
    emitLockSpinUntilNonZero(a, flavor, sreg::node, 8);

    a.label(handoff);
    // sreg::val holds the successor's node pointer.
    switch (flavor) {
      case SyncFlavor::Mesi:
        a.stImm(0, sreg::val, 0).sync = true;
        break;
      case SyncFlavor::VipsBackoff:
      case SyncFlavor::CbAll:
        a.stThroughImm(0, sreg::val, 0);
        break;
      case SyncFlavor::CbOne:
        a.stCb1Imm(0, sreg::val, 0);
        break;
    }
    a.label(done);
    if (record)
        a.recordEnd(SyncKind::Release);
}

} // namespace

void
registerLockSymbols(Assembler& a, const LockHandle& lock)
{
    if (lock.name.empty())
        return;
    a.dataSymbol(lock.name, lock.lockWord);
    if (lock.aux != 0)
        a.dataSymbol(lock.name + ".next_ticket", lock.aux);
    for (std::size_t i = 0; i < lock.nodes.size(); ++i)
        a.dataSymbol(lock.name + ".node" + std::to_string(i),
                     lock.nodes[i]);
}

LockHandle
makeLock(SyncLayout& layout, LockAlgo algo, unsigned num_threads)
{
    LockHandle h;
    h.algo = algo;
    h.name = layout.autoName("lock");
    h.lockWord = layout.allocLine();

    if (algo == LockAlgo::Ticket) {
        layout.init(h.lockWord, 0); // now_serving
        h.aux = layout.allocLine();
        layout.init(h.aux, 0); // next_ticket
    } else if (algo == LockAlgo::Mcs) {
        layout.init(h.lockWord, 0); // tail: empty queue
        h.nodes.reserve(num_threads);
        for (CoreId t = 0; t < num_threads; ++t) {
            const Addr node = layout.allocLine();
            layout.init(node + 0, 0); // locked
            layout.init(node + 8, 0); // next
            h.nodes.push_back(node);
        }
    } else if (algo != LockAlgo::Clh) {
        layout.init(h.lockWord, 0); // flag lock starts free
    } else {
        // Tail starts pointing at a released node. Node lines are also
        // recorded in h.nodes (as for MCS) so the emitters can bind
        // attribution symbols to the lines threads actually spin on.
        const Addr initial_node = layout.allocLine();
        layout.init(initial_node, 0); // succ_wait = 0
        layout.init(h.lockWord, initial_node);
        h.nodes.reserve(num_threads + 1);
        h.nodes.push_back(initial_node);
        h.privateState.reserve(num_threads);
        for (CoreId t = 0; t < num_threads; ++t) {
            const Addr node = layout.allocLine();
            layout.init(node, 0);
            h.nodes.push_back(node);
            const Addr priv = layout.allocPrivateLine(t);
            layout.init(priv + 0, node); // I
            layout.init(priv + 8, 0);    // prev
            h.privateState.push_back(priv);
        }
    }
    return h;
}

void
emitAcquire(Assembler& a, const LockHandle& lock, SyncFlavor flavor,
            CoreId tid, bool record)
{
    registerLockSymbols(a, lock);
    switch (lock.algo) {
      case LockAlgo::TestAndSet:
        emitTasAcquire(a, lock, flavor, record);
        break;
      case LockAlgo::TestAndTestAndSet:
        emitTtasAcquire(a, lock, flavor, record);
        break;
      case LockAlgo::Clh:
        emitClhAcquire(a, lock, flavor, tid, record);
        break;
      case LockAlgo::Ticket:
        emitTicketAcquire(a, lock, flavor, record);
        break;
      case LockAlgo::Mcs:
        emitMcsAcquire(a, lock, flavor, tid, record);
        break;
    }
}

void
emitRelease(Assembler& a, const LockHandle& lock, SyncFlavor flavor,
            CoreId tid, bool record)
{
    registerLockSymbols(a, lock);
    switch (lock.algo) {
      case LockAlgo::TestAndSet:
      case LockAlgo::TestAndTestAndSet:
        emitFlagRelease(a, lock, flavor, record);
        break;
      case LockAlgo::Clh:
        emitClhRelease(a, lock, flavor, tid, record);
        break;
      case LockAlgo::Ticket:
        emitTicketRelease(a, lock, flavor, record);
        break;
      case LockAlgo::Mcs:
        emitMcsRelease(a, lock, flavor, tid, record);
        break;
    }
}

} // namespace cbsim
