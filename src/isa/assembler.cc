#include "isa/assembler.hh"

#include <sstream>

#include "sim/log.hh"

namespace cbsim {

std::string
Program::listing() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < code_.size(); ++i)
        os << i << ": " << code_[i].toString() << '\n';
    return os.str();
}

void
Assembler::label(const std::string& name)
{
    auto [it, inserted] = labels_.emplace(name, code_.size());
    (void)it;
    if (!inserted)
        fatal("duplicate label: ", name);
}

void
Assembler::dataSymbol(const std::string& name, Addr addr)
{
    symbols_.emplace(addr, name); // first binding wins
}

Instruction&
Assembler::emit(Instruction ins)
{
    // Programs run tens to hundreds of instructions; one up-front
    // reservation replaces the doubling cascade from capacity 1.
    if (code_.capacity() == 0)
        code_.reserve(128);
    code_.push_back(ins);
    return code_.back();
}

Instruction&
Assembler::movImm(Reg rd, std::uint64_t imm)
{
    Instruction i;
    i.op = Opcode::MovImm;
    i.rd = rd;
    i.imm = imm;
    return emit(i);
}

Instruction&
Assembler::mov(Reg rd, Reg rs)
{
    Instruction i;
    i.op = Opcode::Mov;
    i.rd = rd;
    i.rs1 = rs;
    return emit(i);
}

Instruction&
Assembler::add(Reg rd, Reg rs1, Reg rs2)
{
    Instruction i;
    i.op = Opcode::Add;
    i.rd = rd;
    i.rs1 = rs1;
    i.rs2 = rs2;
    return emit(i);
}

Instruction&
Assembler::addImm(Reg rd, Reg rs1, std::uint64_t imm)
{
    Instruction i;
    i.op = Opcode::AddImm;
    i.rd = rd;
    i.rs1 = rs1;
    i.imm = imm;
    return emit(i);
}

Instruction&
Assembler::sub(Reg rd, Reg rs1, Reg rs2)
{
    Instruction i;
    i.op = Opcode::Sub;
    i.rd = rd;
    i.rs1 = rs1;
    i.rs2 = rs2;
    return emit(i);
}

Instruction&
Assembler::notOp(Reg rd, Reg rs1)
{
    Instruction i;
    i.op = Opcode::Not;
    i.rd = rd;
    i.rs1 = rs1;
    return emit(i);
}

Instruction&
Assembler::branch(Opcode op, Reg rs1, Reg rs2, const std::string& target)
{
    Instruction i;
    i.op = op;
    i.rs1 = rs1;
    i.rs2 = rs2;
    fixups_.emplace_back(code_.size(), target);
    return emit(i);
}

Instruction&
Assembler::beq(Reg rs1, Reg rs2, const std::string& target)
{
    return branch(Opcode::Beq, rs1, rs2, target);
}

Instruction&
Assembler::bne(Reg rs1, Reg rs2, const std::string& target)
{
    return branch(Opcode::Bne, rs1, rs2, target);
}

Instruction&
Assembler::blt(Reg rs1, Reg rs2, const std::string& target)
{
    return branch(Opcode::Blt, rs1, rs2, target);
}

Instruction&
Assembler::beqz(Reg rs1, const std::string& target)
{
    return branch(Opcode::Beqz, rs1, 0, target);
}

Instruction&
Assembler::bnez(Reg rs1, const std::string& target)
{
    return branch(Opcode::Bnez, rs1, 0, target);
}

Instruction&
Assembler::jump(const std::string& target)
{
    return branch(Opcode::Jump, 0, 0, target);
}

Instruction&
Assembler::workImm(std::uint64_t cycles)
{
    Instruction i;
    i.op = Opcode::Work;
    i.useImm = true;
    i.imm = cycles;
    return emit(i);
}

Instruction&
Assembler::workReg(Reg cycles_reg)
{
    Instruction i;
    i.op = Opcode::Work;
    i.rs1 = cycles_reg;
    return emit(i);
}

Instruction&
Assembler::recordStart(SyncKind kind)
{
    Instruction i;
    i.op = Opcode::Record;
    i.record = kind;
    i.recordStart = true;
    return emit(i);
}

Instruction&
Assembler::recordEnd(SyncKind kind)
{
    Instruction i;
    i.op = Opcode::Record;
    i.record = kind;
    i.recordStart = false;
    return emit(i);
}

Instruction&
Assembler::done()
{
    Instruction i;
    i.op = Opcode::Done;
    return emit(i);
}

Instruction&
Assembler::ld(Reg rd, Reg base, std::int64_t off)
{
    Instruction i;
    i.op = Opcode::Ld;
    i.rd = rd;
    i.addrReg = base;
    i.offset = off;
    return emit(i);
}

Instruction&
Assembler::st(Reg rs, Reg base, std::int64_t off)
{
    Instruction i;
    i.op = Opcode::St;
    i.rs1 = rs;
    i.addrReg = base;
    i.offset = off;
    return emit(i);
}

Instruction&
Assembler::stImm(std::uint64_t value, Reg base, std::int64_t off)
{
    Instruction i;
    i.op = Opcode::St;
    i.useImm = true;
    i.imm = value;
    i.addrReg = base;
    i.offset = off;
    return emit(i);
}

Instruction&
Assembler::ldThrough(Reg rd, Reg base, std::int64_t off)
{
    Instruction i;
    i.op = Opcode::LdThrough;
    i.rd = rd;
    i.addrReg = base;
    i.offset = off;
    i.sync = true;
    return emit(i);
}

Instruction&
Assembler::ldCb(Reg rd, Reg base, std::int64_t off)
{
    Instruction i;
    i.op = Opcode::LdCb;
    i.rd = rd;
    i.addrReg = base;
    i.offset = off;
    i.sync = true;
    return emit(i);
}

Instruction&
Assembler::stThrough(Reg rs, Reg base, std::int64_t off)
{
    Instruction i;
    i.op = Opcode::StThrough;
    i.rs1 = rs;
    i.addrReg = base;
    i.offset = off;
    i.sync = true;
    return emit(i);
}

Instruction&
Assembler::stThroughImm(std::uint64_t v, Reg base, std::int64_t off)
{
    auto& i = stThrough(0, base, off);
    i.useImm = true;
    i.imm = v;
    return i;
}

Instruction&
Assembler::stCb1Imm(std::uint64_t v, Reg base, std::int64_t off)
{
    Instruction i;
    i.op = Opcode::StCb1;
    i.useImm = true;
    i.imm = v;
    i.addrReg = base;
    i.offset = off;
    i.sync = true;
    return emit(i);
}

Instruction&
Assembler::stCb0Imm(std::uint64_t v, Reg base, std::int64_t off)
{
    Instruction i;
    i.op = Opcode::StCb0;
    i.useImm = true;
    i.imm = v;
    i.addrReg = base;
    i.offset = off;
    i.sync = true;
    return emit(i);
}

Instruction&
Assembler::atomic(Reg rd, Reg base, std::int64_t off, AtomicFunc func,
                  std::uint64_t operand, std::uint64_t compare, bool ld_cb,
                  WakePolicy wake)
{
    Instruction i;
    i.op = Opcode::Atomic;
    i.rd = rd;
    i.addrReg = base;
    i.offset = off;
    i.func = func;
    i.useImm = true;
    i.imm = operand;
    i.compare = compare;
    i.ldCb = ld_cb;
    i.wake = wake;
    i.sync = true;
    return emit(i);
}

Instruction&
Assembler::atomicReg(Reg rd, Reg base, std::int64_t off, AtomicFunc func,
                     Reg operand_reg, std::uint64_t compare, bool ld_cb,
                     WakePolicy wake)
{
    auto& i =
        atomic(rd, base, off, func, 0, compare, ld_cb, wake);
    i.useImm = false;
    i.rs1 = operand_reg;
    return i;
}

Instruction&
Assembler::selfInvl()
{
    Instruction i;
    i.op = Opcode::SelfInvl;
    return emit(i);
}

Instruction&
Assembler::selfDown()
{
    Instruction i;
    i.op = Opcode::SelfDown;
    return emit(i);
}

Program
Assembler::assemble()
{
    for (const auto& [index, name] : fixups_) {
        auto it = labels_.find(name);
        if (it == labels_.end())
            fatal("undefined label: ", name);
        code_[index].imm = it->second;
    }
    if (code_.empty() || code_.back().op != Opcode::Done)
        done();
    return Program(std::move(code_), std::move(symbols_));
}

} // namespace cbsim
