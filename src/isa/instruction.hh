/**
 * @file
 * The synchronization mini-ISA.
 *
 * Cores execute programs in a small RISC-flavoured ISA containing exactly
 * the racy-access instructions of the paper's Table 1 (ld_through, ld_cb,
 * st_through/st_cbA, st_cb1, st_cb0, and atomics composed as
 * {ld|ld_cb}&{st|st_cb0|st_cb1|st_cbA}), the two fences (self_invl,
 * self_down), ordinary DRF loads/stores, and enough ALU/branch/work
 * support to encode the paper's Figures 8-19 verbatim.
 */

#ifndef CBSIM_ISA_INSTRUCTION_HH
#define CBSIM_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "coherence/mem_request.hh"
#include "noc/message.hh"
#include "sim/types.hh"

namespace cbsim {

/** Architectural register index; each thread has 16 registers. */
using Reg = std::uint8_t;
inline constexpr unsigned numRegs = 16;

/** Synchronization phases instrumented for latency statistics. */
enum class SyncKind : std::uint8_t
{
    None,
    Acquire,  ///< lock acquire (start of acq -> entry to CS)
    Release,  ///< lock release
    Barrier,  ///< barrier arrival -> exit
    Wait,     ///< the wait side of signal/wait
    Signal,   ///< the signal side of signal/wait
    NumKinds
};

const char* syncKindName(SyncKind k);

/** Opcodes of the mini-ISA. */
enum class Opcode : std::uint8_t
{
    // ALU and control
    MovImm,  ///< rd = imm
    Mov,     ///< rd = rs1
    Add,     ///< rd = rs1 + rs2
    AddImm,  ///< rd = rs1 + imm
    Sub,     ///< rd = rs1 - rs2
    Not,     ///< rd = !rs1 (logical: sense-reversal flips 0/1)
    Beq,     ///< if (rs1 == rs2) goto imm
    Bne,     ///< if (rs1 != rs2) goto imm
    Blt,     ///< if (rs1 < rs2) goto imm (unsigned)
    Beqz,    ///< if (rs1 == 0) goto imm
    Bnez,    ///< if (rs1 != 0) goto imm
    Jump,    ///< goto imm
    Work,    ///< consume rs1-register (or imm) cycles of local compute
    Record,  ///< statistics marker: start/end of a SyncKind region
    SelfInvl, ///< self-invalidation fence (acquire side)
    SelfDown, ///< self-downgrade fence (release side)
    Done,    ///< thread terminates

    // Memory. Effective address = regs[addrReg] + offset.
    Ld,        ///< DRF load:  rd = mem[ea]
    St,        ///< DRF store: mem[ea] = rs1 (or imm if useImm)
    LdThrough, ///< racy load, never blocks (guard, §3.3)
    LdCb,      ///< racy load, blocks in the callback directory if empty
    StThrough, ///< racy store, wakes all callbacks (st_cbA)
    StCb1,     ///< racy store, wakes one callback
    StCb0,     ///< racy store, wakes none
    Atomic,    ///< RMW at the LLC; see func/wake/ldCb fields
};

/** Mnemonic of @p op (docs/ISA.md names); "?" for invalid values. */
const char* opcodeName(Opcode op);

/**
 * True if the opcode issues a memory request. Inline: consulted once
 * per executed instruction in the core's dispatch loop.
 */
inline bool
isMemory(Opcode op)
{
    switch (op) {
      case Opcode::Ld:
      case Opcode::St:
      case Opcode::LdThrough:
      case Opcode::LdCb:
      case Opcode::StThrough:
      case Opcode::StCb1:
      case Opcode::StCb0:
      case Opcode::Atomic:
        return true;
      default:
        return false;
    }
}

/**
 * One decoded instruction. A flat POD keeps the interpreter simple; not
 * every field is meaningful for every opcode.
 */
struct Instruction
{
    Opcode op = Opcode::Done;
    Reg rd = 0;   ///< destination register
    Reg rs1 = 0;  ///< first source
    Reg rs2 = 0;  ///< second source
    std::uint64_t imm = 0; ///< immediate / resolved branch target / cycles

    // Memory addressing: ea = regs[addrReg] + offset.
    Reg addrReg = 0;
    std::int64_t offset = 0;

    bool useImm = false; ///< store value / atomic operand comes from imm

    // Atomic payload.
    AtomicFunc func = AtomicFunc::None;
    WakePolicy wake = WakePolicy::None;
    bool ldCb = false;      ///< atomic's read half is a callback read
    std::uint64_t compare = 0; ///< T&S "free" value

    // Instrumentation.
    bool sync = false;      ///< LLC access attribution
    bool spin = false;      ///< back-off applies to consecutive re-issues
    SyncKind record = SyncKind::None;
    bool recordStart = false;

    std::string toString() const;
};

} // namespace cbsim

#endif // CBSIM_ISA_INSTRUCTION_HH
