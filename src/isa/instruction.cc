#include "isa/instruction.hh"

#include <sstream>

namespace cbsim {

const char*
syncKindName(SyncKind k)
{
    switch (k) {
      case SyncKind::None: return "none";
      case SyncKind::Acquire: return "acquire";
      case SyncKind::Release: return "release";
      case SyncKind::Barrier: return "barrier";
      case SyncKind::Wait: return "wait";
      case SyncKind::Signal: return "signal";
      default: return "?";
    }
}

const char*
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::MovImm: return "movi";
      case Opcode::Mov: return "mov";
      case Opcode::Add: return "add";
      case Opcode::AddImm: return "addi";
      case Opcode::Sub: return "sub";
      case Opcode::Not: return "not";
      case Opcode::Beq: return "beq";
      case Opcode::Bne: return "bne";
      case Opcode::Blt: return "blt";
      case Opcode::Beqz: return "beqz";
      case Opcode::Bnez: return "bnez";
      case Opcode::Jump: return "j";
      case Opcode::Work: return "work";
      case Opcode::Record: return "record";
      case Opcode::Done: return "done";
      case Opcode::Ld: return "ld";
      case Opcode::St: return "st";
      case Opcode::LdThrough: return "ld_through";
      case Opcode::LdCb: return "ld_cb";
      case Opcode::StThrough: return "st_through";
      case Opcode::StCb1: return "st_cb1";
      case Opcode::StCb0: return "st_cb0";
      case Opcode::Atomic: return "atomic";
      default: return "?";
    }
}

std::string
Instruction::toString() const
{
    std::ostringstream os;
    os << opcodeName(op) << " rd=r" << unsigned(rd) << " rs1=r"
       << unsigned(rs1) << " rs2=r" << unsigned(rs2) << " imm=" << imm;
    if (isMemory(op))
        os << " [r" << unsigned(addrReg) << (offset >= 0 ? "+" : "")
           << offset << "]";
    return os.str();
}

} // namespace cbsim
