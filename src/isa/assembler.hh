/**
 * @file
 * Program container and label-resolving assembler for the mini-ISA.
 *
 * Sync-algorithm builders (src/sync) and the workload generator
 * (src/workload) use the Assembler's fluent emitters to encode the
 * paper's Figures 8-19 and the benchmark skeletons.
 */

#ifndef CBSIM_ISA_ASSEMBLER_HH
#define CBSIM_ISA_ASSEMBLER_HH

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/instruction.hh"
#include "sim/log.hh"

namespace cbsim {

/** An immutable, fully-resolved instruction sequence for one thread. */
class Program
{
  public:
    Program() = default;
    explicit Program(std::vector<Instruction> code,
                     std::map<Addr, std::string> symbols = {})
        : code_(std::move(code)), symbols_(std::move(symbols))
    {
    }

    const Instruction&
    at(std::uint64_t pc) const
    {
        CBSIM_ASSERT(pc < code_.size(), "pc out of range");
        return code_[pc];
    }

    std::size_t size() const { return code_.size(); }
    bool empty() const { return code_.empty(); }

    /** Disassembly listing (for debugging and docs). */
    std::string listing() const;

    /**
     * Data symbols declared via Assembler::dataSymbol, address-ordered.
     * Attribution (src/obs/attribution.hh) resolves contended line
     * addresses against this map so reports print "lock0" /
     * "barrier0.counter" instead of raw hex.
     */
    const std::map<Addr, std::string>& symbols() const { return symbols_; }

  private:
    std::vector<Instruction> code_;
    std::map<Addr, std::string> symbols_;
};

/**
 * Builder that emits instructions and resolves textual labels into
 * branch-target immediates at assemble() time.
 *
 * Every emitter returns a reference to the emitted instruction so call
 * sites can adjust instrumentation flags, e.g.:
 * @code
 *   a.ldThrough(r1, rL).spin = true;  // back-off applies to this load
 * @endcode
 */
class Assembler
{
  public:
    /** Bind @p name to the next emitted instruction's address. */
    void label(const std::string& name);

    /**
     * Bind @p name to data address @p addr in the emitted Program's
     * symbol table. First binding wins (sync emitters re-register on
     * every episode); an address may carry only one name.
     */
    void dataSymbol(const std::string& name, Addr addr);

    // --- ALU / control -------------------------------------------------
    Instruction& movImm(Reg rd, std::uint64_t imm);
    Instruction& mov(Reg rd, Reg rs);
    Instruction& add(Reg rd, Reg rs1, Reg rs2);
    Instruction& addImm(Reg rd, Reg rs1, std::uint64_t imm);
    Instruction& sub(Reg rd, Reg rs1, Reg rs2);
    Instruction& notOp(Reg rd, Reg rs1);
    Instruction& beq(Reg rs1, Reg rs2, const std::string& target);
    Instruction& bne(Reg rs1, Reg rs2, const std::string& target);
    Instruction& blt(Reg rs1, Reg rs2, const std::string& target);
    Instruction& beqz(Reg rs1, const std::string& target);
    Instruction& bnez(Reg rs1, const std::string& target);
    Instruction& jump(const std::string& target);
    Instruction& workImm(std::uint64_t cycles);
    Instruction& workReg(Reg cycles_reg);
    Instruction& recordStart(SyncKind kind);
    Instruction& recordEnd(SyncKind kind);
    Instruction& done();

    // --- Memory ---------------------------------------------------------
    /** DRF load: rd = mem[base + off]. */
    Instruction& ld(Reg rd, Reg base, std::int64_t off = 0);
    /** DRF store: mem[base + off] = rs. */
    Instruction& st(Reg rs, Reg base, std::int64_t off = 0);
    /** DRF store of an immediate. */
    Instruction& stImm(std::uint64_t value, Reg base, std::int64_t off = 0);

    /** Racy guard load (never blocks); sync-marked by default. */
    Instruction& ldThrough(Reg rd, Reg base, std::int64_t off = 0);
    /** Callback load (blocks when empty); sync-marked by default. */
    Instruction& ldCb(Reg rd, Reg base, std::int64_t off = 0);
    /** Racy store waking all callbacks (st_through / st_cbA). */
    Instruction& stThrough(Reg rs, Reg base, std::int64_t off = 0);
    Instruction& stThroughImm(std::uint64_t v, Reg base,
                              std::int64_t off = 0);
    /** Racy store waking one callback (st_cb1). */
    Instruction& stCb1Imm(std::uint64_t v, Reg base, std::int64_t off = 0);
    /** Racy store waking no callback (st_cb0). */
    Instruction& stCb0Imm(std::uint64_t v, Reg base, std::int64_t off = 0);

    /**
     * Atomic RMW: rd = old value of mem[base+off].
     * @param func     the RMW function
     * @param operand  swap/add/set value (immediate)
     * @param compare  T&S "free" value
     * @param ld_cb    the read half is a callback read
     * @param wake     the write half's wake policy
     */
    Instruction& atomic(Reg rd, Reg base, std::int64_t off,
                        AtomicFunc func, std::uint64_t operand,
                        std::uint64_t compare, bool ld_cb,
                        WakePolicy wake);

    /** Atomic whose operand comes from a register (CLH fetch&store). */
    Instruction& atomicReg(Reg rd, Reg base, std::int64_t off,
                           AtomicFunc func, Reg operand_reg,
                           std::uint64_t compare, bool ld_cb,
                           WakePolicy wake);

    /** Fences (paper §3.1); encoded as Work-free special opcodes. */
    Instruction& selfInvl();
    Instruction& selfDown();

    /** Number of instructions emitted so far. */
    std::size_t size() const { return code_.size(); }

    /** Resolve labels and produce the Program; fatal on undefined label. */
    Program assemble();

  private:
    Instruction& emit(Instruction ins);
    Instruction& branch(Opcode op, Reg rs1, Reg rs2,
                        const std::string& target);

    std::vector<Instruction> code_;
    std::unordered_map<std::string, std::uint64_t> labels_;
    std::vector<std::pair<std::size_t, std::string>> fixups_;
    std::map<Addr, std::string> symbols_;
};

} // namespace cbsim

#endif // CBSIM_ISA_ASSEMBLER_HH
