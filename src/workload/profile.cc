#include "workload/profile.hh"

namespace cbsim {

std::uint64_t
Profile::approxWorkPerThread() const
{
    const std::uint64_t per_phase =
        workMean + lockAcqPerPhase * (csWork + 50) +
        dataOpsPerUnit * 4 + privOpsPerUnit * 2;
    return phases * per_phase;
}

} // namespace cbsim
