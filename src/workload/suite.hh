/**
 * @file
 * The 19-benchmark suite evaluated in the paper (§5.1): the entire
 * Splash-2 suite plus seven PARSEC benchmarks, as synchronization
 * skeletons (see DESIGN.md for the substitution rationale).
 */

#ifndef CBSIM_WORKLOAD_SUITE_HH
#define CBSIM_WORKLOAD_SUITE_HH

#include <vector>

#include "workload/profile.hh"

namespace cbsim {

/** All 19 benchmark profiles, Splash-2 first, then PARSEC. */
const std::vector<Profile>& benchmarkSuite();

/** Look up a profile by name; fatal if unknown. */
const Profile& benchmark(const std::string& name);

/** A reduced subset for quick tests and ablations. */
std::vector<Profile> quickSuite();

/** Scale a profile's volume by @p factor (for fast test runs). */
Profile scaled(const Profile& p, double factor);

} // namespace cbsim

#endif // CBSIM_WORKLOAD_SUITE_HH
