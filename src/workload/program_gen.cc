#include "workload/program_gen.hh"

#include <algorithm>
#include <array>

#include "sim/log.hh"
#include "sim/rng.hh"

namespace cbsim {

namespace {

/** Workload-owned registers (sync emitters own r10..r15). */
namespace wreg {
constexpr Reg addr = 0;
constexpr Reg val = 1;
} // namespace wreg

struct SharedArray
{
    Addr base = 0;
    unsigned lines = 0;
    unsigned linesPerThread = 0;
    unsigned threads = 0;

    /** A random word address inside @p owner's region. */
    Addr
    pick(Rng& rng, unsigned owner) const
    {
        const unsigned line =
            owner * linesPerThread +
            static_cast<unsigned>(rng.below(linesPerThread));
        const unsigned word = static_cast<unsigned>(
            rng.below(AddrLayout::wordsPerLine));
        return base + Addr(line) * AddrLayout::lineBytes +
               Addr(word) * AddrLayout::wordBytes;
    }
};

} // namespace

WorkloadBuild
buildWorkload(const Profile& profile, unsigned threads, SyncFlavor flavor,
              LockAlgo lock_algo, BarrierAlgo barrier_algo)
{
    CBSIM_ASSERT(threads >= 1, "need at least one thread");
    WorkloadBuild w;
    auto& layout = w.layout;

    // --- Shared structures ---------------------------------------------
    const unsigned num_locks = std::max(1u, profile.numLocks);
    w.locks.reserve(num_locks);
    w.guardWords.reserve(num_locks);
    w.expectedGuardCounts.assign(num_locks, 0);
    for (unsigned l = 0; l < num_locks; ++l) {
        w.locks.push_back(makeLock(layout, lock_algo, threads));
        const Addr guard = layout.allocLine();
        layout.init(guard, 0);
        w.guardWords.push_back(guard);
    }

    w.barrier = barrier_algo == BarrierAlgo::SenseReversing
                    ? makeSrBarrier(layout, threads, lock_algo)
                    : makeTreeBarrier(layout, threads);
    w.phasesRun = profile.phases;

    if (profile.pipeline) {
        w.signals.reserve(threads);
        for (unsigned t = 0; t < threads; ++t)
            w.signals.push_back(makeSignal(layout));
    }

    SharedArray shared;
    shared.threads = threads;
    shared.linesPerThread =
        std::max(1u, profile.sharedLines / std::max(1u, threads));
    shared.lines = shared.linesPerThread * threads;
    shared.base = layout.allocLines(shared.lines);

    // Per-thread phase counters (progress check), thread-private.
    w.phaseWords.resize(threads);
    for (unsigned t = 0; t < threads; ++t) {
        w.phaseWords[t] = layout.allocPrivateLine(t);
        layout.init(w.phaseWords[t], 0);
    }

    // Per-thread private scratch lines (classified Private at runtime).
    std::vector<std::array<Addr, 4>> priv(threads);
    for (unsigned t = 0; t < threads; ++t) {
        for (auto& line : priv[t])
            line = layout.allocPrivateLine(t);
    }

    // --- Per-thread programs -------------------------------------------
    w.programs.reserve(threads);
    for (CoreId t = 0; t < threads; ++t) {
        // Structure randomness is independent of the flavour under test.
        Rng rng(profile.seed ^ (0x9e3779b97f4a7c15ULL * (t + 1)));
        Assembler a;

        // Desynchronize thread start-up slightly.
        a.workImm(rng.below(64));

        const unsigned chunks = std::max(1u, profile.lockAcqPerPhase);
        for (unsigned phase = 0; phase < profile.phases; ++phase) {
            for (unsigned chunk = 0; chunk < chunks; ++chunk) {
                // Compute segment.
                const std::uint64_t work = rng.jitter(
                    std::max<std::uint64_t>(1,
                                            profile.workMean / chunks),
                    profile.workImbalance);
                a.workImm(work);

                // DRF shared-data traffic: reads from the (possibly
                // rotated) producer region, writes to our own region.
                const unsigned reader_src =
                    profile.neighborSharing ? (t + phase + 1) % threads
                                            : t;
                const unsigned ops =
                    std::max(1u, profile.dataOpsPerUnit / chunks);
                for (unsigned i = 0; i < ops; ++i) {
                    if (rng.uniform() < profile.storeFraction) {
                        a.movImm(wreg::addr, shared.pick(rng, t));
                        a.stImm(rng.next() & 0xffff, wreg::addr);
                    } else {
                        a.movImm(wreg::addr,
                                 shared.pick(rng, reader_src));
                        a.ld(wreg::val, wreg::addr);
                    }
                }
                // Private traffic (exempt from self-invalidation).
                for (unsigned i = 0; i < profile.privOpsPerUnit; ++i) {
                    const Addr pa = priv[t][i % priv[t].size()] +
                                    (i % AddrLayout::wordsPerLine) *
                                        AddrLayout::wordBytes;
                    a.movImm(wreg::addr, pa);
                    if (i % 2 == 0)
                        a.ld(wreg::val, wreg::addr);
                    else
                        a.st(wreg::val, wreg::addr);
                }

                // Critical section.
                if (profile.lockAcqPerPhase > 0) {
                    const unsigned lock_id =
                        rng.uniform() < profile.hotLockFraction
                            ? 0
                            : static_cast<unsigned>(
                                  rng.below(num_locks));
                    ++w.expectedGuardCounts[lock_id];
                    emitAcquire(a, w.locks[lock_id], flavor, t);
                    a.workImm(rng.jitter(std::max<std::uint64_t>(
                                             1, profile.csWork),
                                         0.2));
                    if (profile.lockedSharedData) {
                        // Guarded counter increment: the final value is
                        // the mutual-exclusion invariant.
                        a.movImm(wreg::addr, w.guardWords[lock_id]);
                        a.ld(wreg::val, wreg::addr);
                        a.addImm(wreg::val, wreg::val, 1);
                        a.st(wreg::val, wreg::addr);
                    }
                    emitRelease(a, w.locks[lock_id], flavor, t);
                }
            }

            // Pipeline hand-off (dedup/x264-style stages).
            if (profile.pipeline) {
                if (t > 0)
                    emitWait(a, w.signals[t], flavor);
                if (t + 1 < threads)
                    emitSignal(a, w.signals[t + 1], flavor);
            }

            // Phase-progress record (private; checked by tests).
            a.movImm(wreg::addr, w.phaseWords[t]);
            a.ld(wreg::val, wreg::addr);
            a.addImm(wreg::val, wreg::val, 1);
            a.st(wreg::val, wreg::addr);

            emitBarrier(a, w.barrier, flavor, t);
        }
        a.done();
        w.programs.push_back(a.assemble());
    }
    return w;
}

} // namespace cbsim
