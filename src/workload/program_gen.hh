/**
 * @file
 * Expands a workload Profile into per-thread mini-ISA programs for a
 * given synchronization flavour and lock/barrier algorithm choice.
 *
 * The random structure (lock choices, work jitter, data-access patterns)
 * is a pure function of the profile seed and thread id, so the *same*
 * workload is replayed across all evaluated techniques — only the
 * synchronization encodings differ (paper §5.2 methodology).
 */

#ifndef CBSIM_WORKLOAD_PROGRAM_GEN_HH
#define CBSIM_WORKLOAD_PROGRAM_GEN_HH

#include <vector>

#include "sync/barriers.hh"
#include "sync/layout.hh"
#include "sync/locks.hh"
#include "sync/signal_wait.hh"
#include "workload/profile.hh"

namespace cbsim {

/** A fully generated workload: memory layout + one program per thread. */
struct WorkloadBuild
{
    SyncLayout layout;
    std::vector<Program> programs;

    std::vector<LockHandle> locks;
    BarrierHandle barrier;
    std::vector<SignalHandle> signals; ///< pipeline stage handoffs

    /** Lock-guarded counter words (mutual-exclusion invariant). */
    std::vector<Addr> guardWords;
    /** Expected final value of each guard word. */
    std::vector<std::uint64_t> expectedGuardCounts;

    /** Barrier-phase counter words, one per thread (private pages). */
    std::vector<Addr> phaseWords;
    unsigned phasesRun = 0;
};

/**
 * Generate the workload.
 *
 * @param threads  number of threads (== cores)
 * @param flavor   synchronization encoding under test
 * @param lock_algo   naive (T&T&S) or scalable (CLH) locks (§5.2)
 * @param barrier_algo SR (naive) or TreeSR (scalable) barrier
 */
WorkloadBuild buildWorkload(const Profile& profile, unsigned threads,
                            SyncFlavor flavor, LockAlgo lock_algo,
                            BarrierAlgo barrier_algo);

} // namespace cbsim

#endif // CBSIM_WORKLOAD_PROGRAM_GEN_HH
