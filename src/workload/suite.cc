#include "workload/suite.hh"

#include <algorithm>

#include "sim/log.hh"

namespace cbsim {

namespace {

Profile
base(const char* name, const char* suite)
{
    Profile p;
    p.name = name;
    p.suite = suite;
    p.seed = 0xC0FFEEULL ^ std::hash<std::string>{}(name);
    return p;
}

std::vector<Profile>
buildSuite()
{
    std::vector<Profile> v;

    // ---------------- Splash-2 (entire suite, §5.1) ----------------
    {
        // N-body: per-phase tree build, many cell locks with a hot root.
        Profile p = base("barnes", "splash2");
        p.phases = 6;
        p.numLocks = 32;
        p.lockAcqPerPhase = 6;
        p.hotLockFraction = 0.15;
        p.csWork = 120;
        p.workMean = 1800;
        p.workImbalance = 0.4;
        p.sharedLines = 512;
        v.push_back(p);
    }
    {
        // Sparse factorization driven by a contended task-queue lock.
        Profile p = base("cholesky", "splash2");
        p.phases = 3;
        p.numLocks = 4;
        p.lockAcqPerPhase = 10;
        p.hotLockFraction = 0.4;
        p.csWork = 90;
        p.workMean = 1400;
        p.workImbalance = 0.5;
        v.push_back(p);
    }
    {
        // Barrier-only kernel with all-to-all transpose traffic.
        Profile p = base("fft", "splash2");
        p.phases = 8;
        p.lockAcqPerPhase = 0;
        p.numLocks = 1;
        p.workMean = 2200;
        p.workImbalance = 0.15;
        p.sharedLines = 1024;
        p.dataOpsPerUnit = 18;
        p.storeFraction = 0.45;
        v.push_back(p);
    }
    {
        // Adaptive fast multipole: locks + barriers, mild contention.
        Profile p = base("fmm", "splash2");
        p.phases = 8;
        p.numLocks = 24;
        p.lockAcqPerPhase = 4;
        p.hotLockFraction = 0.1;
        p.csWork = 140;
        p.workMean = 1700;
        p.workImbalance = 0.45;
        v.push_back(p);
    }
    {
        // Blocked dense LU: a long chain of barriers, pivot-row sharing.
        Profile p = base("lu", "splash2");
        p.phases = 16;
        p.lockAcqPerPhase = 0;
        p.numLocks = 1;
        p.workMean = 1100;
        p.workImbalance = 0.3;
        p.dataOpsPerUnit = 14;
        v.push_back(p);
    }
    {
        // Regular grid solver: many barriers, neighbour exchanges.
        Profile p = base("ocean", "splash2");
        p.phases = 20;
        p.numLocks = 2;
        p.lockAcqPerPhase = 1;
        p.csWork = 60;
        p.workMean = 900;
        p.workImbalance = 0.2;
        p.dataOpsPerUnit = 12;
        v.push_back(p);
    }
    {
        // Task-stealing radiosity: the most lock-intensive Splash-2 app.
        Profile p = base("radiosity", "splash2");
        p.phases = 3;
        p.numLocks = 8;
        p.lockAcqPerPhase = 14;
        p.hotLockFraction = 0.45;
        p.csWork = 70;
        p.workMean = 1000;
        p.workImbalance = 0.5;
        v.push_back(p);
    }
    {
        // Radix sort: barrier phases with permutation (all-to-all) writes.
        Profile p = base("radix", "splash2");
        p.phases = 10;
        p.lockAcqPerPhase = 0;
        p.numLocks = 1;
        p.workMean = 1300;
        p.workImbalance = 0.15;
        p.storeFraction = 0.6;
        p.dataOpsPerUnit = 16;
        v.push_back(p);
    }
    {
        // Ray tracing from a central work-queue lock.
        Profile p = base("raytrace", "splash2");
        p.phases = 2;
        p.numLocks = 4;
        p.lockAcqPerPhase = 16;
        p.hotLockFraction = 0.5;
        p.csWork = 50;
        p.workMean = 1200;
        p.workImbalance = 0.6;
        v.push_back(p);
    }
    {
        // Volume rendering: work-queue locks + a few barriers.
        Profile p = base("volrend", "splash2");
        p.phases = 4;
        p.numLocks = 8;
        p.lockAcqPerPhase = 10;
        p.hotLockFraction = 0.35;
        p.csWork = 60;
        p.workMean = 1100;
        p.workImbalance = 0.45;
        v.push_back(p);
    }
    {
        // Water n-squared: per-molecule locks, low contention + barriers.
        Profile p = base("water-nsq", "splash2");
        p.phases = 6;
        p.numLocks = 64;
        p.lockAcqPerPhase = 8;
        p.hotLockFraction = 0.05;
        p.csWork = 80;
        p.workMean = 1600;
        p.workImbalance = 0.3;
        v.push_back(p);
    }
    {
        // Water spatial: fewer locks, more barriers than n-squared.
        Profile p = base("water-sp", "splash2");
        p.phases = 10;
        p.numLocks = 16;
        p.lockAcqPerPhase = 3;
        p.hotLockFraction = 0.1;
        p.csWork = 80;
        p.workMean = 1500;
        p.workImbalance = 0.3;
        v.push_back(p);
    }

    // ---------------- PARSEC (simmedium-style skeletons) -------------
    {
        // Embarrassingly parallel; a single join barrier.
        Profile p = base("blackscholes", "parsec");
        p.phases = 2;
        p.lockAcqPerPhase = 0;
        p.numLocks = 1;
        p.workMean = 16000;
        p.workImbalance = 0.1;
        p.dataOpsPerUnit = 8;
        p.neighborSharing = false;
        v.push_back(p);
    }
    {
        // Per-frame barriers plus a few queue locks.
        Profile p = base("bodytrack", "parsec");
        p.phases = 12;
        p.numLocks = 6;
        p.lockAcqPerPhase = 2;
        p.hotLockFraction = 0.3;
        p.csWork = 90;
        p.workMean = 1400;
        p.workImbalance = 0.4;
        v.push_back(p);
    }
    {
        // Lock-per-element annealing moves: many tiny critical sections.
        Profile p = base("canneal", "parsec");
        p.phases = 4;
        p.numLocks = 64;
        p.lockAcqPerPhase = 14;
        p.hotLockFraction = 0.0;
        p.csWork = 30;
        p.workMean = 900;
        p.workImbalance = 0.25;
        v.push_back(p);
    }
    {
        // Pipeline stages hand off buffers via signal/wait + queue locks.
        Profile p = base("dedup", "parsec");
        p.phases = 6;
        p.numLocks = 8;
        p.lockAcqPerPhase = 4;
        p.hotLockFraction = 0.4;
        p.csWork = 70;
        p.workMean = 1200;
        p.workImbalance = 0.5;
        p.pipeline = true;
        v.push_back(p);
    }
    {
        // Fine-grain cell locks, very high acquisition rate + barriers.
        Profile p = base("fluidanimate", "parsec");
        p.phases = 8;
        p.numLocks = 64;
        p.lockAcqPerPhase = 16;
        p.hotLockFraction = 0.02;
        p.csWork = 25;
        p.workMean = 1000;
        p.workImbalance = 0.2;
        v.push_back(p);
    }
    {
        // Barrier storm (the PARSEC barrier stress case; simsmall input).
        Profile p = base("streamcluster", "parsec");
        p.phases = 40;
        p.numLocks = 2;
        p.lockAcqPerPhase = 1;
        p.csWork = 40;
        p.workMean = 500;
        p.workImbalance = 0.25;
        p.dataOpsPerUnit = 6;
        v.push_back(p);
    }
    {
        // Independent swaption pricing; almost synchronization-free.
        Profile p = base("swaptions", "parsec");
        p.phases = 1;
        p.lockAcqPerPhase = 0;
        p.numLocks = 1;
        p.workMean = 14000;
        p.workImbalance = 0.2;
        p.neighborSharing = false;
        v.push_back(p);
    }

    // Global wait-duration scaling: the back-off trade-off of the paper
    // lives in the regime where spin waits are roughly an order of
    // magnitude longer than the BackOff-10 ceiling (see EXPERIMENTS.md);
    // stretch compute segments and critical sections accordingly.
    for (auto& p : v) {
        p.workMean *= 48;
        p.csWork *= 6;
        p.dataOpsPerUnit *= 6;
        p.privOpsPerUnit *= 6;
        p.sharedLines *= 2;
    }
    return v;
}

} // namespace

const std::vector<Profile>&
benchmarkSuite()
{
    static const std::vector<Profile> suite = buildSuite();
    return suite;
}

const Profile&
benchmark(const std::string& name)
{
    for (const auto& p : benchmarkSuite()) {
        if (p.name == name)
            return p;
    }
    fatal("unknown benchmark: ", name);
}

std::vector<Profile>
quickSuite()
{
    return {benchmark("radiosity"), benchmark("ocean"),
            benchmark("streamcluster"), benchmark("fft")};
}

Profile
scaled(const Profile& p, double factor)
{
    Profile q = p;
    q.phases = std::max(1u, static_cast<unsigned>(p.phases * factor));
    q.workMean = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(p.workMean * factor));
    q.lockAcqPerPhase =
        std::max(p.lockAcqPerPhase > 0 ? 1u : 0u,
                 static_cast<unsigned>(p.lockAcqPerPhase * factor));
    return q;
}

} // namespace cbsim
