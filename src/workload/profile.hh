/**
 * @file
 * Workload profiles: the synchronization skeleton + DRF data traffic of
 * one benchmark (see DESIGN.md §5 for the substitution rationale).
 *
 * A profile captures what the paper's metrics are sensitive to: how many
 * barrier-separated phases a benchmark has, how contended its locks are,
 * how long its critical sections run, how imbalanced the inter-sync work
 * is, and how much race-free shared data moves between threads. The
 * program generator expands a profile into one mini-ISA program per
 * thread, parameterized by the synchronization flavour under test.
 */

#ifndef CBSIM_WORKLOAD_PROFILE_HH
#define CBSIM_WORKLOAD_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace cbsim {

/** One benchmark's synchronization skeleton. */
struct Profile
{
    std::string name;
    std::string suite; ///< "splash2" or "parsec"

    // Phase structure: phases are separated by a global barrier.
    unsigned phases = 8;

    // Inter-sync compute, in cycles, jittered per thread/phase.
    std::uint64_t workMean = 1500;
    double workImbalance = 0.35; ///< uniform +/- fraction around the mean

    // Lock behaviour.
    unsigned numLocks = 8;          ///< distinct lock objects
    unsigned lockAcqPerPhase = 3;   ///< acquisitions per thread per phase
    std::uint64_t csWork = 120;     ///< critical-section compute (cycles)
    double hotLockFraction = 0.0;   ///< P(acquisition hits lock 0)
    bool lockedSharedData = true;   ///< touch a lock-guarded data word

    // DRF shared-data traffic per work quantum.
    unsigned sharedLines = 256;   ///< shared array footprint (lines)
    unsigned dataOpsPerUnit = 10; ///< loads+stores per quantum
    double storeFraction = 0.3;
    bool neighborSharing = true;  ///< phase-rotated producer/consumer

    // Thread-private data traffic (exempt from self-invalidation).
    unsigned privOpsPerUnit = 6;

    // Optional signal/wait pipeline (dedup/x264-style stages).
    bool pipeline = false;

    std::uint64_t seed = 0xC0FFEEULL;

    /** Rough per-thread dynamic instruction weight (for test sizing). */
    std::uint64_t approxWorkPerThread() const;
};

} // namespace cbsim

#endif // CBSIM_WORKLOAD_PROFILE_HH
