#include "report/report.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "harness/table.hh"

namespace cbsim {

namespace {

/** The per-figure pivot metrics, in render order. */
struct FigureMetric
{
    const char* field; ///< metrics key in the artifact
    const char* title; ///< table heading (paper figure it feeds)
};

constexpr FigureMetric kFigureMetrics[] = {
    {"cycles", "execution cycles (Figs. 20-23)"},
    {"llc_sync_accesses", "synchronization LLC accesses (Figs. 1, 20)"},
    {"flit_hops", "network flit-hops (traffic)"},
};

bool
isArtifact(const JsonValue& doc)
{
    return doc.isObject() && doc.get("schema_version").isNumber() &&
           doc.get("runs").isArray();
}

std::string
u64Str(double v)
{
    std::ostringstream os;
    os << static_cast<std::uint64_t>(v);
    return os.str();
}

/** Row label of one run: workload, plus cores when the sweep varies it. */
std::string
rowLabel(const JsonValue& run, bool multi_cores)
{
    const JsonValue& cfg = run.get("config");
    std::string label = cfg.getString("workload");
    if (label.empty())
        label = run.getString("key");
    if (multi_cores && cfg.get("cores").isNumber())
        label += "/" + u64Str(cfg.getNumber("cores"));
    return label;
}

} // namespace

bool
renderFigureTables(const JsonValue& doc, std::ostream& os)
{
    if (!isArtifact(doc)) {
        os << "error: not a cbsim results artifact (missing "
              "schema_version/runs)\n";
        return false;
    }
    os << "artifact: " << doc.getString("bench") << " (schema v"
       << u64Str(doc.getNumber("schema_version")) << ", "
       << doc.get("runs").items().size() << " runs)\n";

    // A partial artifact (crashed/failed/timed-out/skipped or
    // quarantined cells — e.g. published by a sweep that exhausted its
    // retries) must not be mistaken for a complete regeneration.
    std::size_t not_ok = 0;
    std::size_t quarantined = 0;
    for (const JsonValue& run : doc.get("runs").items()) {
        if (!run.get("ok").boolean())
            ++not_ok;
        if (run.get("quarantined").boolean())
            ++quarantined;
    }
    if (not_ok != 0) {
        os << "WARNING: partial artifact: " << not_ok << " of "
           << doc.get("runs").items().size() << " runs not ok";
        if (quarantined != 0)
            os << " (" << quarantined << " quarantined)";
        os << "\n";
    }

    // Pass 1: collect the pivot axes in first-seen order.
    std::vector<std::string> techniques;
    std::vector<std::string> rows;
    std::vector<const JsonValue*> custom;
    std::map<std::string, bool> seenCores; // workload -> >1 core count?
    std::map<std::string, double> firstCores;
    for (const JsonValue& run : doc.get("runs").items()) {
        const JsonValue& cfg = run.get("config");
        const std::string tech = cfg.getString("technique");
        if (tech.empty()) {
            custom.push_back(&run);
            continue;
        }
        const std::string wl = cfg.getString("workload");
        if (firstCores.count(wl) == 0)
            firstCores[wl] = cfg.getNumber("cores");
        else if (firstCores[wl] != cfg.getNumber("cores"))
            seenCores[wl] = true;
        if (std::find(techniques.begin(), techniques.end(), tech) ==
            techniques.end())
            techniques.push_back(tech);
    }

    // Pass 2: cell values keyed by (row, technique).
    std::map<std::pair<std::string, std::string>, const JsonValue*> cells;
    for (const JsonValue& run : doc.get("runs").items()) {
        const JsonValue& cfg = run.get("config");
        const std::string tech = cfg.getString("technique");
        if (tech.empty())
            continue;
        const std::string wl = cfg.getString("workload");
        const std::string label = rowLabel(run, seenCores.count(wl) != 0);
        if (std::find(rows.begin(), rows.end(), label) == rows.end())
            rows.push_back(label);
        cells[{label, tech}] = &run;
    }

    for (const FigureMetric& metric : kFigureMetrics) {
        if (rows.empty())
            break;
        os << "\n" << metric.title << "\n";
        std::vector<std::string> headers{"workload"};
        headers.insert(headers.end(), techniques.begin(),
                       techniques.end());
        TablePrinter t(os, headers, 20, 14);
        for (const std::string& row : rows) {
            std::vector<std::string> line{row};
            for (const std::string& tech : techniques) {
                auto it = cells.find({row, tech});
                if (it == cells.end() ||
                    !it->second->get("ok").boolean()) {
                    line.push_back("-");
                    continue;
                }
                line.push_back(u64Str(
                    it->second->get("metrics").getNumber(metric.field)));
            }
            t.row(line);
        }
    }

    if (!custom.empty()) {
        os << "\ncustom runs\n";
        TablePrinter t(os, {"key", "cycles", "llc_accesses", "flit_hops"},
                       28, 14);
        for (const JsonValue* run : custom) {
            if (!run->get("ok").boolean()) {
                t.row({run->getString("key"), "-", "-", "-"});
                continue;
            }
            const JsonValue& m = run->get("metrics");
            t.row({run->getString("key"), u64Str(m.getNumber("cycles")),
                   u64Str(m.getNumber("llc_accesses")),
                   u64Str(m.getNumber("flit_hops"))});
        }
    }
    return true;
}

bool
renderContention(const JsonValue& doc, std::ostream& os, std::size_t top_n)
{
    if (!isArtifact(doc)) {
        os << "error: not a cbsim results artifact (missing "
              "schema_version/runs)\n";
        return false;
    }
    bool any = false;
    for (const JsonValue& run : doc.get("runs").items()) {
        const JsonValue& rows = run.get("contention");
        if (!rows.isArray() || rows.items().empty())
            continue;
        any = true;
        os << "\ncontention: " << run.getString("key") << "\n";
        TablePrinter t(os,
                       {"object", "cycles", "inv", "reacq", "spin_rr",
                        "backoff", "parks", "wakes", "evict", "park_p95"},
                       20, 10);
        std::size_t printed = 0;
        for (const JsonValue& row : rows.items()) {
            if (printed++ >= top_n)
                break;
            std::string object = row.getString("symbol");
            if (object.empty())
                object = row.getString("addr");
            t.row({object, u64Str(row.getNumber("cycles")),
                   u64Str(row.getNumber("invalidations")),
                   u64Str(row.getNumber("reacquires")),
                   u64Str(row.getNumber("spin_rereads")),
                   u64Str(row.getNumber("backoff_iters")),
                   u64Str(row.getNumber("parks")),
                   u64Str(row.getNumber("wakes")),
                   u64Str(row.getNumber("wake_evictions")),
                   fmt(row.getNumber("park_ticks_p95"), 1)});
        }
    }
    if (!any)
        os << "\n(no contention data: artifact predates schema v4 or "
              "attribution was off)\n";
    return true;
}

DiffResult
diffArtifacts(const JsonValue& old_doc, const JsonValue& new_doc,
              double threshold)
{
    DiffResult d;
    if (!isArtifact(old_doc) || !isArtifact(new_doc)) {
        d.regressions.push_back("not a cbsim results artifact");
        return d;
    }
    if (old_doc.getNumber("schema_version") !=
        new_doc.getNumber("schema_version"))
        d.notes.push_back(
            "schema version changed: v" +
            u64Str(old_doc.getNumber("schema_version")) + " -> v" +
            u64Str(new_doc.getNumber("schema_version")));

    std::map<std::string, const JsonValue*> newRuns;
    for (const JsonValue& run : new_doc.get("runs").items())
        newRuns[run.getString("key")] = &run;

    std::map<std::string, bool> oldSeen;
    for (const JsonValue& oldRun : old_doc.get("runs").items()) {
        const std::string key = oldRun.getString("key");
        oldSeen[key] = true;
        auto it = newRuns.find(key);
        if (it == newRuns.end()) {
            d.regressions.push_back(key + ": missing from new artifact");
            continue;
        }
        const JsonValue& newRun = *it->second;
        const bool oldOk = oldRun.get("ok").boolean();
        const bool newOk = newRun.get("ok").boolean();
        // A quarantined cell failed every retry attempt — that is a
        // reproducible failure, never noise, whatever the baseline
        // said about the cell.
        const bool newQuarantined =
            newRun.get("quarantined").boolean();
        if (oldOk && !newOk) {
            d.regressions.push_back(
                key + ": was ok, now " + newRun.getString("status") +
                (newQuarantined ? " (quarantined)" : ""));
            continue;
        }
        if (!oldOk) {
            if (newOk)
                d.notes.push_back(key + ": was failing, now ok");
            else if (newQuarantined)
                d.regressions.push_back(
                    key + ": quarantined (" +
                    newRun.getString("status") +
                    " after exhausting retries)");
            continue;
        }

        // Every metric is a cost: increases are regressions.
        const JsonValue& newMetrics = newRun.get("metrics");
        for (const auto& [name, oldVal] : oldRun.get("metrics").members()) {
            if (!oldVal.isNumber() ||
                !newMetrics.get(name).isNumber())
                continue;
            const double ov = oldVal.number();
            const double nv = newMetrics.get(name).number();
            if (ov == nv)
                continue;
            const double rel = (nv - ov) / (ov == 0.0 ? 1.0 : ov);
            if (std::abs(rel) <= threshold)
                continue;
            std::ostringstream msg;
            msg << key << ": " << name << " " << oldVal.text() << " -> "
                << newMetrics.get(name).text() << " ("
                << (rel > 0 ? "+" : "") << fmt(rel * 100.0, 1) << "%)";
            if (rel > 0)
                d.regressions.push_back(msg.str());
            else
                d.improvements.push_back(msg.str());
        }
    }
    for (const auto& [key, run] : newRuns)
        if (oldSeen.count(key) == 0)
            d.notes.push_back(key + ": new run (no baseline)");
    return d;
}

namespace {

int
usage(std::ostream& err)
{
    err << "usage: cbsim-report <artifact.json> [--top N]\n"
           "       cbsim-report --diff <old.json> <new.json> "
           "[--threshold FRAC]\n"
           "\n"
           "Render a bench/results artifact (docs/RESULTS.md) as "
           "paper-style\n"
           "tables plus the per-run contention attribution breakdown, "
           "or diff\n"
           "two artifacts and fail (exit 1) on cost-metric regressions "
           "beyond\n"
           "the threshold (default 0.02 = 2%). Partial artifacts "
           "(failed,\n"
           "crashed, or quarantined cells) are flagged when rendered; "
           "--diff\n"
           "treats quarantined cells as regressions, not noise.\n";
    return 2;
}

} // namespace

int
reportMain(const std::vector<std::string>& args, std::ostream& os,
           std::ostream& err)
{
    bool diffMode = false;
    double threshold = 0.02;
    std::size_t topN = 10;
    std::vector<std::string> paths;

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string& a = args[i];
        if (a == "--help" || a == "-h") {
            usage(os);
            return 0;
        }
        if (a == "--diff") {
            diffMode = true;
        } else if (a == "--threshold" && i + 1 < args.size()) {
            threshold = std::strtod(args[++i].c_str(), nullptr);
        } else if (a == "--top" && i + 1 < args.size()) {
            topN = static_cast<std::size_t>(
                std::strtoul(args[++i].c_str(), nullptr, 10));
        } else if (!a.empty() && a[0] == '-') {
            err << "error: unknown option " << a << "\n";
            return usage(err);
        } else {
            paths.push_back(a);
        }
    }

    if (diffMode) {
        if (paths.size() != 2)
            return usage(err);
        std::string error;
        const JsonValue oldDoc = JsonValue::parseFile(paths[0], error);
        if (!error.empty()) {
            err << "error: " << error << "\n";
            return 2;
        }
        const JsonValue newDoc = JsonValue::parseFile(paths[1], error);
        if (!error.empty()) {
            err << "error: " << error << "\n";
            return 2;
        }
        const DiffResult d = diffArtifacts(oldDoc, newDoc, threshold);
        for (const std::string& n : d.notes)
            os << "note: " << n << "\n";
        for (const std::string& s : d.improvements)
            os << "improved: " << s << "\n";
        for (const std::string& r : d.regressions)
            os << "REGRESSION: " << r << "\n";
        os << (d.ok() ? "diff ok" : "diff FAILED") << ": "
           << d.regressions.size() << " regressions, "
           << d.improvements.size() << " improvements, " << d.notes.size()
           << " notes (threshold " << fmt(threshold * 100.0, 1) << "%)\n";
        return d.ok() ? 0 : 1;
    }

    if (paths.size() != 1)
        return usage(err);
    std::string error;
    const JsonValue doc = JsonValue::parseFile(paths[0], error);
    if (!error.empty()) {
        err << "error: " << error << "\n";
        return 2;
    }
    if (!renderFigureTables(doc, os))
        return 1;
    if (!renderContention(doc, os, topN))
        return 1;
    return 0;
}

} // namespace cbsim
