/**
 * @file
 * cbsim-report: render bench/results artifacts as paper-style tables
 * and contention breakdowns, or diff two artifacts for regressions.
 * All logic lives in report.{hh,cc} so tests drive it in-process.
 */

#include <iostream>
#include <string>
#include <vector>

#include "report/report.hh"

int
main(int argc, char** argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    return cbsim::reportMain(args, std::cout, std::cerr);
}
