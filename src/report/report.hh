/**
 * @file
 * Artifact reporting library behind the cbsim-report CLI
 * (docs/RESULTS.md §Reporting).
 *
 * Consumes the versioned JSON artifacts bench binaries write under
 * bench/results/ and renders them back into paper-shaped tables:
 * per-figure workload × technique pivots, the per-run contention
 * attribution breakdown (schema v4 "contention"), and an old-vs-new
 * artifact diff that flags cost-metric regressions beyond a relative
 * threshold. Library (not main) so tests can drive every mode
 * in-process.
 */

#ifndef CBSIM_REPORT_REPORT_HH
#define CBSIM_REPORT_REPORT_HH

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

#include "report/json_value.hh"

namespace cbsim {

/**
 * Paper-style pivot tables for one artifact: one table per figure
 * metric (cycles, sync LLC accesses, flit-hops), rows = workloads,
 * columns = techniques. Custom-kind runs render as a flat key table.
 * @return false (with a message on @p os) when @p doc is not a cbsim
 *         results artifact
 */
bool renderFigureTables(const JsonValue& doc, std::ostream& os);

/**
 * Top-@p top_n contended lines of every run carrying a "contention"
 * array: symbol, attributed cycles, and the per-technique columns
 * (invalidations/reacquires, spin re-reads/back-off, parks/wakes).
 * @return false when @p doc is not a cbsim results artifact
 */
bool renderContention(const JsonValue& doc, std::ostream& os,
                      std::size_t top_n);

/** Outcome of diffing two artifacts (old vs new). */
struct DiffResult
{
    /**
     * Cost metrics that worsened by more than the threshold, runs that
     * newly fail, and runs that disappeared — anything that should turn
     * CI red. One human-readable line each.
     */
    std::vector<std::string> regressions;

    /** Cost metrics that improved beyond the threshold (informational). */
    std::vector<std::string> improvements;

    /** Structural notes: new runs, schema version changes. */
    std::vector<std::string> notes;

    bool ok() const { return regressions.empty(); }
};

/**
 * Compare two artifacts run-by-run (matched on "key"). Every numeric
 * metric is treated as a cost: a relative increase beyond
 * @p threshold (e.g. 0.02 = 2%) is a regression, a decrease beyond it
 * an improvement. Runs failing in @p new_doc but ok in @p old_doc and
 * runs present only in @p old_doc are regressions.
 */
DiffResult diffArtifacts(const JsonValue& old_doc, const JsonValue& new_doc,
                         double threshold);

/** CLI entry point (argv past the program name). 0 ok, 1 regression/render failure, 2 usage or parse error. */
int reportMain(const std::vector<std::string>& args, std::ostream& os,
               std::ostream& err);

} // namespace cbsim

#endif // CBSIM_REPORT_REPORT_HH
