/**
 * @file
 * Minimal JSON parser for the report tool (docs/RESULTS.md consumers).
 *
 * The write side (harness/json.hh JsonWriter) is a streaming emitter;
 * this is its read-side complement: a recursive-descent parser into a
 * small DOM. Hand-rolled for the same reason the writer is — the
 * container carries no JSON library — and scoped to what cbsim
 * artifacts need: objects keep insertion order (artifacts are emitted
 * with deterministic key order, and reports echo it), numbers keep
 * their raw text next to the double so integers render exactly.
 */

#ifndef CBSIM_REPORT_JSON_VALUE_HH
#define CBSIM_REPORT_JSON_VALUE_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace cbsim {

/** One parsed JSON value; a tree of these is a parsed document. */
class JsonValue
{
  public:
    enum class Kind : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }

    bool boolean() const { return bool_; }
    double number() const { return num_; }
    std::uint64_t asU64() const { return static_cast<std::uint64_t>(num_); }

    /** String payload, or the raw numeric token for Number values. */
    const std::string& text() const { return str_; }

    const std::vector<JsonValue>& items() const { return items_; }

    /** Object members in document order. */
    const std::vector<std::pair<std::string, JsonValue>>&
    members() const
    {
        return members_;
    }

    /**
     * Member @p key of an object, or a shared Null value when absent
     * (or when this is not an object) — lets lookups chain safely.
     */
    const JsonValue& get(const std::string& key) const;

    /** get(), but the value's number (0.0 when absent / non-numeric). */
    double getNumber(const std::string& key) const;

    /** get(), but the value's string ("" when absent / non-string). */
    std::string getString(const std::string& key) const;

    /**
     * Parse @p text as one JSON document.
     * @param error receives a "line N: message" diagnostic on failure
     * @return the parsed value, or Null with @p error set
     */
    static JsonValue parse(const std::string& text, std::string& error);

    /** parse() over the contents of @p path (error covers I/O too). */
    static JsonValue parseFile(const std::string& path, std::string& error);

  private:
    friend class JsonParser;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

} // namespace cbsim

#endif // CBSIM_REPORT_JSON_VALUE_HH
