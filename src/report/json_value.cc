#include "report/json_value.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace cbsim {

namespace {

const JsonValue kNull;

} // namespace

const JsonValue&
JsonValue::get(const std::string& key) const
{
    if (kind_ == Kind::Object)
        for (const auto& [k, v] : members_)
            if (k == key)
                return v;
    return kNull;
}

double
JsonValue::getNumber(const std::string& key) const
{
    const JsonValue& v = get(key);
    return v.isNumber() ? v.number() : 0.0;
}

std::string
JsonValue::getString(const std::string& key) const
{
    const JsonValue& v = get(key);
    return v.isString() ? v.text() : std::string();
}

/** Recursive-descent parser over one in-memory document. */
class JsonParser
{
  public:
    JsonParser(const std::string& text, std::string& error)
        : text_(text), error_(error)
    {
    }

    JsonValue
    run()
    {
        JsonValue v = parseValue();
        if (!error_.empty())
            return JsonValue();
        skipWs();
        if (pos_ != text_.size()) {
            fail("trailing characters after document");
            return JsonValue();
        }
        return v;
    }

  private:
    void
    fail(const std::string& msg)
    {
        if (!error_.empty())
            return; // keep the first (innermost) diagnostic
        std::ostringstream os;
        os << "line " << line_ << ": " << msg;
        error_ = os.str();
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '\n')
                ++line_;
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char* word)
    {
        const std::size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    JsonValue
    parseValue()
    {
        skipWs();
        if (pos_ >= text_.size()) {
            fail("unexpected end of document");
            return JsonValue();
        }
        const char c = text_[pos_];
        switch (c) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return parseString();
          case 't':
          case 'f': return parseBool();
          case 'n': return parseNull();
          default: return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        JsonValue v;
        v.kind_ = JsonValue::Kind::Object;
        ++pos_; // '{'
        if (consume('}'))
            return v;
        while (true) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                fail("expected object key string");
                return JsonValue();
            }
            JsonValue key = parseString();
            if (!error_.empty())
                return JsonValue();
            if (!consume(':')) {
                fail("expected ':' after object key");
                return JsonValue();
            }
            JsonValue val = parseValue();
            if (!error_.empty())
                return JsonValue();
            v.members_.emplace_back(key.str_, std::move(val));
            if (consume(','))
                continue;
            if (consume('}'))
                return v;
            fail("expected ',' or '}' in object");
            return JsonValue();
        }
    }

    JsonValue
    parseArray()
    {
        JsonValue v;
        v.kind_ = JsonValue::Kind::Array;
        ++pos_; // '['
        if (consume(']'))
            return v;
        while (true) {
            JsonValue item = parseValue();
            if (!error_.empty())
                return JsonValue();
            v.items_.push_back(std::move(item));
            if (consume(','))
                continue;
            if (consume(']'))
                return v;
            fail("expected ',' or ']' in array");
            return JsonValue();
        }
    }

    JsonValue
    parseString()
    {
        JsonValue v;
        v.kind_ = JsonValue::Kind::String;
        ++pos_; // opening quote
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return v;
            if (c != '\\') {
                v.str_.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                break;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': v.str_.push_back('"'); break;
              case '\\': v.str_.push_back('\\'); break;
              case '/': v.str_.push_back('/'); break;
              case 'b': v.str_.push_back('\b'); break;
              case 'f': v.str_.push_back('\f'); break;
              case 'n': v.str_.push_back('\n'); break;
              case 'r': v.str_.push_back('\r'); break;
              case 't': v.str_.push_back('\t'); break;
              case 'u': {
                  // Artifacts never emit non-ASCII; decode the BMP
                  // escape as a raw byte when it fits, '?' otherwise.
                  if (pos_ + 4 > text_.size()) {
                      fail("truncated \\u escape");
                      return JsonValue();
                  }
                  const unsigned long cp =
                      std::strtoul(text_.substr(pos_, 4).c_str(), nullptr,
                                   16);
                  pos_ += 4;
                  v.str_.push_back(cp < 128
                                       ? static_cast<char>(cp)
                                       : '?');
                  break;
              }
              default:
                fail("unknown escape sequence");
                return JsonValue();
            }
        }
        fail("unterminated string");
        return JsonValue();
    }

    JsonValue
    parseBool()
    {
        JsonValue v;
        v.kind_ = JsonValue::Kind::Bool;
        if (literal("true")) {
            v.bool_ = true;
            return v;
        }
        if (literal("false")) {
            v.bool_ = false;
            return v;
        }
        fail("invalid literal");
        return JsonValue();
    }

    JsonValue
    parseNull()
    {
        if (literal("null"))
            return JsonValue();
        fail("invalid literal");
        return JsonValue();
    }

    JsonValue
    parseNumber()
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start) {
            fail("expected a value");
            return JsonValue();
        }
        JsonValue v;
        v.kind_ = JsonValue::Kind::Number;
        v.str_ = text_.substr(start, pos_ - start);
        char* end = nullptr;
        v.num_ = std::strtod(v.str_.c_str(), &end);
        if (end != v.str_.c_str() + v.str_.size()) {
            fail("malformed number '" + v.str_ + "'");
            return JsonValue();
        }
        return v;
    }

    const std::string& text_;
    std::string& error_;
    std::size_t pos_ = 0;
    unsigned line_ = 1;
};

JsonValue
JsonValue::parse(const std::string& text, std::string& error)
{
    error.clear();
    return JsonParser(text, error).run();
}

JsonValue
JsonValue::parseFile(const std::string& path, std::string& error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = "cannot open " + path;
        return JsonValue();
    }
    std::ostringstream os;
    os << in.rdbuf();
    JsonValue v = parse(os.str(), error);
    if (!error.empty())
        error = path + ": " + error;
    return v;
}

} // namespace cbsim
