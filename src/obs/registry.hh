/**
 * @file
 * Hierarchical stats registry (docs/OBSERVABILITY.md).
 *
 * StatsRegistry extends the flat StatSet with two things the harness
 * and observability layer need:
 *
 *  - *scoped registration*: a component receives a StatsScope naming
 *    its position in the hierarchy ("llc.3") and registers members
 *    relative to it — scope.add("accesses", c) yields "llc.3.accesses",
 *    scope.scope("cbdir") hands a child component its own sub-scope.
 *    Components no longer concatenate dotted prefixes by hand, and the
 *    naming scheme is uniform: <subsystem>.<instance>.<stat>.
 *
 *  - *snapshots*: an owning copy of every registered value
 *    (counters as integers, histograms as mergeable HistogramData).
 *    Snapshots outlive the Chip, merge across independent simulations
 *    deterministically (sweep jobs), and serialize to JSON.
 */

#ifndef CBSIM_OBS_REGISTRY_HH
#define CBSIM_OBS_REGISTRY_HH

#include <map>
#include <string>

#include "stats/stats.hh"

namespace cbsim {

class StatsRegistry;

/**
 * A registration handle for one level of the stat-name hierarchy.
 * Cheap to copy; valid as long as the registry it came from.
 */
class StatsScope
{
  public:
    /** Child scope: names gain "<name>." below this scope's prefix. */
    StatsScope scope(const std::string& name) const;

    void add(const std::string& name, Counter& c) const;
    void add(const std::string& name, Histogram& h) const;
    void add(const std::string& name, AttributionTable& t) const;

    /** Fully-qualified name of @p name under this scope. */
    std::string qualify(const std::string& name) const;

    const std::string& prefix() const { return prefix_; }

  private:
    friend class StatsRegistry;
    StatsScope(StatSet& set, std::string prefix)
        : set_(&set), prefix_(std::move(prefix))
    {}

    StatSet* set_;
    std::string prefix_; ///< "" at the root, else "llc.3." (trailing dot)
};

/** Owning, mergeable copy of a registry's values at one instant. */
struct StatsSnapshot
{
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, HistogramData> histograms;

    /**
     * Fold @p other in: counters add, histograms merge. Associative
     * and commutative, so folding per-job snapshots gives the same
     * aggregate regardless of job completion order or worker count.
     */
    void merge(const StatsSnapshot& other);

    bool operator==(const StatsSnapshot&) const = default;
};

class StatsRegistry : public StatSet
{
  public:
    /** The root scope (names registered verbatim). */
    StatsScope root() { return StatsScope(*this, ""); }

    /** A top-level scope, e.g. scope("core.0"). */
    StatsScope scope(const std::string& prefix)
    {
        return root().scope(prefix);
    }

    StatsSnapshot snapshot() const;
};

} // namespace cbsim

#endif // CBSIM_OBS_REGISTRY_HH
