/**
 * @file
 * Epoch time-series sampling (docs/OBSERVABILITY.md).
 *
 * The paper's arguments are about *when* traffic happens — an
 * invalidation-based spin hammers the LLC for the whole critical
 * section, a callback run is quiet between releases — but scalar
 * totals flatten that structure away. The EpochSampler cuts simulated
 * time into fixed windows (ObsConfig::epochTicks) and records one row
 * of per-window deltas per epoch, giving LLC-access / traffic /
 * blocked-core curves that land in the results artifacts (schema v3
 * "epochs" array) next to the totals.
 *
 * Sampling rides the EventQueue's epoch hook: boundaries are cut at
 * exact tick multiples between event buckets, so the series is a pure
 * function of the simulation and identical across sweep worker counts.
 */

#ifndef CBSIM_OBS_EPOCH_HH
#define CBSIM_OBS_EPOCH_HH

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/types.hh"

namespace cbsim {

class EventQueue;
class StatSet;
class TraceExporter;

/** One epoch window's activity (deltas unless noted). */
struct EpochRow
{
    Tick tick = 0; ///< window end (exclusive); windows are uniform
    std::uint64_t llcAccesses = 0;
    std::uint64_t flitHops = 0;
    std::uint64_t packets = 0;
    std::uint64_t blockedCores = 0; ///< instantaneous, at the boundary

    bool operator==(const EpochRow&) const = default;
};

class EpochSampler
{
  public:
    /**
     * Serialized field names of one epoch row, in emission order
     * (the single source of truth for the ResultSink and for
     * scripts/check_docs.sh's stat-name lint).
     */
    static const std::array<const char*, 5> kFieldNames;

    /**
     * @param stats         the chip's registry (read at boundaries)
     * @param blocked_cores probe counting cores blocked on memory
     */
    EpochSampler(const StatSet& stats,
                 std::function<std::uint64_t()> blocked_cores);

    /** Install the boundary hook on @p eq, cutting every @p epochTicks. */
    void install(EventQueue& eq, Tick epochTicks);

    /** Also mirror per-epoch deltas as trace counter tracks. */
    void setTrace(TraceExporter* trace) { trace_ = trace; }

    const std::vector<EpochRow>& rows() const { return rows_; }

  private:
    void onEpoch(Tick boundary);

    const StatSet& stats_;
    std::function<std::uint64_t()> blockedCores_;
    TraceExporter* trace_ = nullptr;
    std::vector<EpochRow> rows_;
    std::uint64_t lastLlc_ = 0;
    std::uint64_t lastFlitHops_ = 0;
    std::uint64_t lastPackets_ = 0;
};

} // namespace cbsim

#endif // CBSIM_OBS_EPOCH_HH
