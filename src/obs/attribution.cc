#include "obs/attribution.hh"

#include <algorithm>
#include <cstdio>

#include "mem/addr.hh"

namespace cbsim {

// One name per line so scripts/check_docs.sh can extract the list and
// enforce that docs/RESULTS.md documents every contention[] field.
const std::vector<std::string> kContentionFields = {
    "addr",
    "symbol",
    "cycles",
    "invalidations",
    "reacquires",
    "spin_rereads",
    "backoff_iters",
    "parks",
    "wakes",
    "wake_evictions",
    "park_ticks_p50",
    "park_ticks_p95",
    "park_ticks_p99",
};

std::uint64_t
AttributionRow::weight() const
{
    return cycles + invalidations + reacquires + spinRereads +
           backoffIters + parks + wakes + wakeEvictions +
           parkTicks.count;
}

void
AttributionRow::merge(const AttributionRow& other)
{
    cycles += other.cycles;
    invalidations += other.invalidations;
    reacquires += other.reacquires;
    spinRereads += other.spinRereads;
    backoffIters += other.backoffIters;
    parks += other.parks;
    wakes += other.wakes;
    wakeEvictions += other.wakeEvictions;
    parkTicks.merge(other.parkTicks);
}

AttributionRow&
AttributionTable::row(Addr line)
{
    line = AddrLayout::lineAlign(line);
    auto it = rows_.find(line);
    if (it != rows_.end())
        return it->second;
    if (rows_.size() >= capacity_) {
        // Victim = smallest (weight, address): a total order over rows,
        // so the choice is independent of hash iteration order and the
        // bounded table degrades identically run-to-run.
        auto victim = rows_.begin();
        for (auto cand = rows_.begin(); cand != rows_.end(); ++cand) {
            const std::uint64_t cw = cand->second.weight();
            const std::uint64_t vw = victim->second.weight();
            if (cw < vw || (cw == vw && cand->first < victim->first))
                victim = cand;
        }
        rows_.erase(victim);
        ++evictions_;
    }
    return rows_.emplace(line, AttributionRow{}).first->second;
}

void
AttributionTable::mergeInto(std::map<Addr, AttributionRow>& out) const
{
    for (const auto& [line, row] : rows_)
        out[line].merge(row);
}

std::string
contentionHexName(Addr addr)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(addr));
    return buf;
}

// Lowest labeled address within [line, line+64) names the line; a lock
// word and its same-line fields resolve to the word's own symbol.
std::string
contentionSymbolFor(Addr line, const std::map<Addr, std::string>& symbols)
{
    line = AddrLayout::lineAlign(line);
    auto it = symbols.lower_bound(line);
    if (it != symbols.end() && it->first < line + AddrLayout::lineBytes)
        return it->second;
    return contentionHexName(line);
}

std::vector<ContentionRow>
buildContention(const std::vector<const AttributionTable*>& shards,
                const std::map<Addr, std::string>& symbols,
                std::size_t top_n)
{
    std::map<Addr, AttributionRow> merged;
    for (const AttributionTable* shard : shards)
        if (shard)
            shard->mergeInto(merged);

    std::vector<ContentionRow> rows;
    rows.reserve(merged.size());
    for (const auto& [line, r] : merged) {
        ContentionRow out;
        out.addr = line;
        out.symbol = contentionSymbolFor(line, symbols);
        out.cycles = r.cycles;
        out.invalidations = r.invalidations;
        out.reacquires = r.reacquires;
        out.spinRereads = r.spinRereads;
        out.backoffIters = r.backoffIters;
        out.parks = r.parks;
        out.wakes = r.wakes;
        out.wakeEvictions = r.wakeEvictions;
        out.parkP50 = r.parkTicks.p50();
        out.parkP95 = r.parkTicks.p95();
        out.parkP99 = r.parkTicks.p99();
        rows.push_back(std::move(out));
    }
    std::stable_sort(rows.begin(), rows.end(),
                     [](const ContentionRow& a, const ContentionRow& b) {
                         if (a.cycles != b.cycles)
                             return a.cycles > b.cycles;
                         return a.addr < b.addr;
                     });
    if (rows.size() > top_n)
        rows.resize(top_n);
    return rows;
}

} // namespace cbsim
