#include "obs/epoch.hh"

#include "obs/trace_export.hh"
#include "sim/event_queue.hh"
#include "stats/stats.hh"

namespace cbsim {

// One name per line: scripts/check_docs.sh extracts these to enforce
// that docs/OBSERVABILITY.md documents every epoch field.
const std::array<const char*, 5> EpochSampler::kFieldNames = {
    "tick",
    "llc_accesses",
    "flit_hops",
    "packets",
    "blocked_cores",
};

EpochSampler::EpochSampler(const StatSet& stats,
                           std::function<std::uint64_t()> blocked_cores)
    : stats_(stats), blockedCores_(std::move(blocked_cores))
{}

void
EpochSampler::install(EventQueue& eq, Tick epochTicks)
{
    eq.setEpochHook(epochTicks,
                    [this](Tick boundary) { onEpoch(boundary); });
}

void
EpochSampler::onEpoch(Tick boundary)
{
    const std::uint64_t llc = stats_.sumWhere("llc.", ".accesses");
    const std::uint64_t flits = stats_.counter("noc.flit_hops");
    const std::uint64_t packets = stats_.counter("noc.packets");

    EpochRow row;
    row.tick = boundary;
    row.llcAccesses = llc - lastLlc_;
    row.flitHops = flits - lastFlitHops_;
    row.packets = packets - lastPackets_;
    row.blockedCores = blockedCores_();
    rows_.push_back(row);

    lastLlc_ = llc;
    lastFlitHops_ = flits;
    lastPackets_ = packets;

    if (trace_ != nullptr) {
        trace_->counter("llc_accesses", boundary, row.llcAccesses);
        trace_->counter("flit_hops", boundary, row.flitHops);
        trace_->counter("packets", boundary, row.packets);
        trace_->counter("blocked_cores", boundary, row.blockedCores);
    }
}

} // namespace cbsim
