/**
 * @file
 * Chrome trace-event / Perfetto exporter (docs/OBSERVABILITY.md).
 *
 * Renders one run as a `.trace.json` in the Chrome trace-event JSON
 * format, loadable in ui.perfetto.dev or chrome://tracing:
 *
 *  - process "cores": one track per core, with a duration slice per
 *    completed memory stall, named by what the core was doing — "mem"
 *    (plain miss), "spin" (spin-marked retry), "cbdir-blocked"
 *    (parked on a callback read — the paper's §2.1 pausable window);
 *  - process "callback-directory": one track per LLC bank, with
 *    instants for every park ("park") and wake ("wake" /
 *    "wake-evict" when a capacity eviction forced it);
 *  - process "noc": counter tracks of per-epoch deltas (LLC accesses,
 *    flit hops, packets, blocked cores) when epoch sampling is on.
 *
 * Timestamps are simulated ticks. Events are appended from inside the
 * single-threaded event loop in dispatch order, so for a given
 * configuration the export is byte-identical across runs and sweep
 * worker counts — traces diff like results artifacts do.
 */

#ifndef CBSIM_OBS_TRACE_EXPORT_HH
#define CBSIM_OBS_TRACE_EXPORT_HH

#include <cstdint>
#include <deque>
#include <map>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace cbsim {

class TraceExporter
{
  public:
    static constexpr const char* kSchema = "cbsim-trace-v1";

    // Trace process ids (fixed; the UI groups tracks by process).
    static constexpr std::uint32_t pidCores = 1;
    static constexpr std::uint32_t pidCbdir = 2;
    static constexpr std::uint32_t pidNoc = 3;
    static constexpr std::uint32_t pidLines = 4;

    TraceExporter(unsigned numCores, unsigned numBanks)
        : numCores_(numCores), numBanks_(numBanks)
    {}

    /** Duration slice on core @p core's track: [start, end). */
    void
    coreSlice(CoreId core, const char* state, Tick start, Tick end)
    {
        events_.push_back(TraceEvent{state, 'X', pidCores,
                                     static_cast<std::uint32_t>(core),
                                     start, end - start, 0, nullptr});
    }

    /** A core parked in bank @p bank's callback directory. */
    void
    park(BankId bank, CoreId core, Tick ts)
    {
        events_.push_back(TraceEvent{"park", 'i', pidCbdir,
                                     static_cast<std::uint32_t>(bank), ts,
                                     0, core, "core"});
    }

    /** A parked core woken (by a write, or evicted for capacity). */
    void
    wake(BankId bank, CoreId core, Tick ts, bool evicted)
    {
        events_.push_back(TraceEvent{evicted ? "wake-evict" : "wake", 'i',
                                     pidCbdir,
                                     static_cast<std::uint32_t>(bank), ts,
                                     0, core, "core"});
    }

    /** Counter-track sample (per-epoch NoC/LLC activity). */
    void
    counter(const char* name, Tick ts, std::uint64_t value)
    {
        events_.push_back(
            TraceEvent{name, 'C', pidNoc, 0, ts, 0, value, "value"});
    }

    /**
     * Data symbols for naming per-line tracks ("lock0" instead of hex);
     * must outlive the exporter. Null keeps the hex fallback.
     */
    void
    setSymbols(const std::map<Addr, std::string>* symbols)
    {
        symbols_ = symbols;
    }

    /**
     * Begin a per-line async slice: core @p core parked on @p word's
     * line. Pairs with lineWake on the "contended-lines" process, one
     * slice per (line, core) park episode.
     */
    void
    linePark(Addr word, CoreId core, Tick ts)
    {
        events_.push_back(TraceEvent{lineName(word), 'b', pidLines, 0,
                                     ts, 0, asyncId(word, core), nullptr});
    }

    /** End the per-line async slice opened by linePark. */
    void
    lineWake(Addr word, CoreId core, Tick ts)
    {
        events_.push_back(TraceEvent{lineName(word), 'e', pidLines, 0,
                                     ts, 0, asyncId(word, core), nullptr});
    }

    std::size_t eventCount() const { return events_.size(); }

    /** Serialize the full trace (metadata + events) as JSON. */
    void writeJson(std::ostream& os) const;

    /**
     * Write <dir>/<label>.trace.json (label made filesystem-safe).
     * @return the path written, or "" when @p dir is "-" (in-memory
     *         mode) or the write failed (warning on stderr).
     */
    std::string writeFile(const std::string& dir,
                          const std::string& label) const;

  private:
    /**
     * One trace event. Names are string literals at every call site —
     * storing the pointer keeps appends allocation-free.
     */
    struct TraceEvent
    {
        const char* name;
        char ph; ///< 'X' duration, 'i' instant, 'C' counter
        std::uint32_t pid;
        std::uint32_t tid;
        Tick ts;
        Tick dur;           ///< 'X' only
        std::uint64_t arg;  ///< meaning per argName
        const char* argName; ///< nullptr = no args object
    };

    /**
     * Async 'b'/'e' pairs match on (name, id): one park episode per
     * (line, core) gets a distinct id so concurrent waiters on the
     * same line render as parallel slices, not nested ones.
     */
    static std::uint64_t
    asyncId(Addr word, CoreId core)
    {
        return (static_cast<std::uint64_t>(core) << 48) ^ word;
    }

    /**
     * Interned display name of @p word's line (symbol when labeled,
     * hex otherwise). Stable storage: TraceEvent keeps const char*.
     */
    const char* lineName(Addr word);

    unsigned numCores_;
    unsigned numBanks_;
    std::vector<TraceEvent> events_;
    const std::map<Addr, std::string>* symbols_ = nullptr;
    std::deque<std::string> nameStore_;
    std::unordered_map<Addr, const char*> lineNames_;
};

} // namespace cbsim

#endif // CBSIM_OBS_TRACE_EXPORT_HH
