#include "obs/registry.hh"

namespace cbsim {

StatsScope
StatsScope::scope(const std::string& name) const
{
    return StatsScope(*set_, prefix_ + name + ".");
}

std::string
StatsScope::qualify(const std::string& name) const
{
    return prefix_ + name;
}

void
StatsScope::add(const std::string& name, Counter& c) const
{
    set_->add(qualify(name), c);
}

void
StatsScope::add(const std::string& name, Histogram& h) const
{
    set_->add(qualify(name), h);
}

void
StatsScope::add(const std::string& name, AttributionTable& t) const
{
    set_->add(qualify(name), t);
}

void
StatsSnapshot::merge(const StatsSnapshot& other)
{
    for (const auto& [name, value] : other.counters)
        counters[name] += value;
    for (const auto& [name, data] : other.histograms)
        histograms[name].merge(data);
}

StatsSnapshot
StatsRegistry::snapshot() const
{
    StatsSnapshot snap;
    for (const auto& [name, c] : counters_)
        snap.counters.emplace(name, c->value());
    for (const auto& [name, h] : histograms_)
        snap.histograms.emplace(name, h->data());
    return snap;
}

} // namespace cbsim
