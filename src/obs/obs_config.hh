/**
 * @file
 * Settings for the observability layer (docs/OBSERVABILITY.md): epoch
 * time-series sampling and Chrome trace-event export.
 *
 * ObsConfig rides inside DebugConfig so it inherits the same three-layer
 * resolution (environment → DebugScope → ChipConfig::debug): export
 * CBSIM_OBS_EPOCH=50000 / CBSIM_TRACE_DIR=traces to turn it on for a
 * whole process, or set ChipConfig::debug.obs for one chip. Everything
 * defaults off, and when off the simulator takes no observability
 * branches beyond one predicted-false compare per event-queue bucket —
 * results artifacts and smoke goldens are byte-identical either way.
 */

#ifndef CBSIM_OBS_OBS_CONFIG_HH
#define CBSIM_OBS_OBS_CONFIG_HH

#include <string>

#include "sim/types.hh"

namespace cbsim {

struct ObsConfig
{
    /**
     * Epoch window in ticks for time-series sampling; 0 = off. Each
     * epoch appends one row of per-window deltas (LLC accesses, flit
     * hops, packets, blocked cores) to RunResult::epochs, which the
     * ResultSink serializes as the "epochs" array (schema v3).
     */
    Tick epochTicks = 0;

    /**
     * Directory for Chrome trace-event exports; "" = off. Each run
     * writes <dir>/<label>.trace.json (label from DebugConfig, made
     * filesystem-safe), loadable in ui.perfetto.dev or
     * chrome://tracing. The special value "-" keeps the trace
     * in memory only (tests read it via Chip::traceExporter()).
     */
    std::string traceDir;

    /**
     * Per-line contention attribution (docs/OBSERVABILITY.md
     * §Attribution): every technique's sync activity accounted to the
     * line (and symbol) that caused it, surfaced as the contention[]
     * array of schema v4 artifacts. CBSIM_OBS_ATTR=1 turns it on for a
     * process; bench_all enables it for every job so artifacts always
     * carry attribution. Off by default: the simulator's only cost is
     * a null-pointer compare at each instrumentation site.
     */
    bool attribution = false;

    bool epochEnabled() const { return epochTicks != 0; }
    bool traceEnabled() const { return !traceDir.empty(); }
    bool attributionEnabled() const { return attribution; }
    bool enabled() const
    {
        return epochEnabled() || traceEnabled() || attributionEnabled();
    }
};

} // namespace cbsim

#endif // CBSIM_OBS_OBS_CONFIG_HH
