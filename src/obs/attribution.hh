/**
 * @file
 * Contention attribution: bounded, deterministic per-line accounting of
 * where synchronization time goes (docs/OBSERVABILITY.md §Attribution).
 *
 * Every technique feeds the same table: MESI records invalidation
 * fan-out and spin re-acquires per line, VIPS/back-off records LLC spin
 * re-reads and back-off iterations, the callback directory records
 * parks, wakes, wake-evictions and park-duration histograms. Components
 * each own an AttributionTable *shard* (registered through StatsScope
 * like counters); Chip folds the shards into one per-line map after the
 * run and attaches the top-N rows — tagged with assembler symbols when
 * the address is labeled — to RunResult::contention (schema v4).
 *
 * Determinism contract: a shard is bounded (kDefaultCapacity rows).
 * When a new line arrives at a full shard, the victim is the row with
 * the smallest (weight, address) pair — a total order, so the choice is
 * identical run-to-run and independent of hash iteration order. The
 * cross-shard fold is field-wise addition + histogram merge into an
 * address-ordered map: associative and commutative, so results are
 * byte-identical across sweep `--jobs` counts.
 */

#ifndef CBSIM_OBS_ATTRIBUTION_HH
#define CBSIM_OBS_ATTRIBUTION_HH

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"
#include "stats/stats.hh"

namespace cbsim {

/** Per-line attribution accumulators (one row per 64 B line address). */
struct AttributionRow
{
    std::uint64_t cycles = 0;        ///< stall cycles on sync/spin accesses
    std::uint64_t invalidations = 0; ///< MESI: invalidations fanned out
    std::uint64_t reacquires = 0;    ///< MESI: spin re-acquires after inv
    std::uint64_t spinRereads = 0;   ///< VIPS: LLC spin re-reads
    std::uint64_t backoffIters = 0;  ///< VIPS: back-off iterations
    std::uint64_t parks = 0;         ///< cbdir: waiters parked
    std::uint64_t wakes = 0;         ///< cbdir: waiters woken by stores
    std::uint64_t wakeEvictions = 0; ///< cbdir: waiters woken by eviction
    HistogramData parkTicks;         ///< cbdir: park duration per waiter

    /** Eviction weight: total recorded activity on the line. */
    std::uint64_t weight() const;

    /** Field-wise add + histogram merge (associative, commutative). */
    void merge(const AttributionRow& other);

    bool operator==(const AttributionRow&) const = default;
};

/**
 * One bounded shard of the per-line table. Each instrumented component
 * (core, L1, LLC bank) owns one; the hot-path cost with attribution off
 * is a single null-pointer compare at every call site.
 */
class AttributionTable
{
  public:
    static constexpr std::size_t kDefaultCapacity = 64;

    explicit AttributionTable(std::size_t capacity = kDefaultCapacity)
        : capacity_(capacity)
    {
    }

    /**
     * The row for @p line (line-aligned by the caller or not — the key
     * is aligned here). Inserts, evicting the smallest-(weight, addr)
     * row when the shard is full.
     */
    AttributionRow& row(Addr line);

    std::size_t size() const { return rows_.size(); }
    std::size_t capacity() const { return capacity_; }
    std::uint64_t evictions() const { return evictions_; }

    /** Fold every row into @p out (keyed by line address). */
    void mergeInto(std::map<Addr, AttributionRow>& out) const;

  private:
    std::size_t capacity_;
    std::uint64_t evictions_ = 0;
    std::unordered_map<Addr, AttributionRow> rows_;
};

/**
 * One serialization-ready contention row: a merged AttributionRow plus
 * its address, resolved symbol name, and park-duration percentiles.
 * Field names in the JSON artifact are listed in
 * AttributionTable-adjacent kContentionFields (attribution.cc), which
 * scripts/check_docs.sh parses to enforce docs/RESULTS.md coverage.
 */
struct ContentionRow
{
    Addr addr = 0;
    std::string symbol; ///< "lock0", "barrier0.counter", or hex fallback
    std::uint64_t cycles = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t reacquires = 0;
    std::uint64_t spinRereads = 0;
    std::uint64_t backoffIters = 0;
    std::uint64_t parks = 0;
    std::uint64_t wakes = 0;
    std::uint64_t wakeEvictions = 0;
    double parkP50 = 0.0;
    double parkP95 = 0.0;
    double parkP99 = 0.0;

    bool operator==(const ContentionRow&) const = default;
};

/** JSON field names of one contention[] row, serialization order. */
extern const std::vector<std::string> kContentionFields;

/**
 * Fold @p shards into per-line rows, resolve symbols (lowest labeled
 * address within each line wins; hex fallback), rank by (cycles desc,
 * addr asc) and keep the top @p top_n.
 */
std::vector<ContentionRow>
buildContention(const std::vector<const AttributionTable*>& shards,
                const std::map<Addr, std::string>& symbols,
                std::size_t top_n);

/** Render @p addr as the canonical hex fallback symbol ("0x40000040"). */
std::string contentionHexName(Addr addr);

/**
 * Symbolic name for the line containing @p line: the lowest labeled
 * address within [line, line+64) wins; hex fallback otherwise. Shared
 * by the contention table and the trace exporter's per-line tracks.
 */
std::string contentionSymbolFor(Addr line,
                                const std::map<Addr, std::string>& symbols);

} // namespace cbsim

#endif // CBSIM_OBS_ATTRIBUTION_HH
