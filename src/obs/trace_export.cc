#include "obs/trace_export.hh"

#include <filesystem>
#include <fstream>
#include <iostream>

#include "debug/forensics.hh"
#include "harness/json.hh"
#include "mem/addr.hh"
#include "obs/attribution.hh"

namespace cbsim {

namespace {

void
writeMeta(JsonWriter& w, const char* metaName, std::uint32_t pid,
          std::uint32_t tid, bool hasTid, const std::string& name)
{
    w.beginObject();
    w.field("name", metaName);
    w.field("ph", "M");
    w.field("pid", pid);
    if (hasTid)
        w.field("tid", tid);
    w.key("args");
    w.beginObject();
    w.field("name", name);
    w.endObject();
    w.endObject();
}

} // namespace

const char*
TraceExporter::lineName(Addr word)
{
    const Addr line = AddrLayout::lineAlign(word);
    auto it = lineNames_.find(line);
    if (it != lineNames_.end())
        return it->second;
    static const std::map<Addr, std::string> kNoSymbols;
    nameStore_.push_back(
        contentionSymbolFor(line, symbols_ != nullptr ? *symbols_
                                                      : kNoSymbols));
    const char* name = nameStore_.back().c_str();
    lineNames_.emplace(line, name);
    return name;
}

void
TraceExporter::writeJson(std::ostream& os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.key("otherData");
    w.beginObject();
    w.field("schema", kSchema);
    w.field("generator", "cbsim");
    w.endObject();
    w.field("displayTimeUnit", "ns");
    w.key("traceEvents");
    w.beginArray();

    // Metadata first: name the processes and their tracks so the UI
    // shows "core 3" instead of a bare tid.
    writeMeta(w, "process_name", pidCores, 0, false, "cores");
    writeMeta(w, "process_name", pidCbdir, 0, false, "callback-directory");
    writeMeta(w, "process_name", pidNoc, 0, false, "noc");
    writeMeta(w, "process_name", pidLines, 0, false, "contended-lines");
    for (unsigned c = 0; c < numCores_; ++c)
        writeMeta(w, "thread_name", pidCores, c, true,
                  "core " + std::to_string(c));
    for (unsigned b = 0; b < numBanks_; ++b)
        writeMeta(w, "thread_name", pidCbdir, b, true,
                  "cbdir bank " + std::to_string(b));

    for (const TraceEvent& ev : events_) {
        w.beginObject();
        w.field("name", ev.name);
        w.field("ph", std::string(1, ev.ph));
        w.field("pid", ev.pid);
        w.field("tid", ev.tid);
        w.field("ts", ev.ts);
        if (ev.ph == 'X')
            w.field("dur", ev.dur);
        if (ev.ph == 'i')
            w.field("s", "t"); // instant scope: thread
        if (ev.ph == 'b' || ev.ph == 'e') {
            // Async pair key: (cat, id, name) per the trace-event spec.
            w.field("cat", "contention");
            w.field("id", ev.arg);
        }
        if (ev.argName != nullptr) {
            w.key("args");
            w.beginObject();
            w.field(ev.argName, ev.arg);
            w.endObject();
        }
        w.endObject();
    }

    w.endArray();
    w.endObject();
}

std::string
TraceExporter::writeFile(const std::string& dir,
                         const std::string& label) const
{
    if (dir.empty() || dir == "-")
        return "";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const std::string path =
        dir + "/" + forensics::sanitizeLabel(label) + ".trace.json";
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        std::cerr << "warn: could not write trace file " << path
                  << std::endl;
        return "";
    }
    writeJson(out);
    out << "\n";
    return path;
}

} // namespace cbsim
