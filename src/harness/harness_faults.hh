/**
 * @file
 * Deterministic harness-level fault injection (docs/ROBUSTNESS.md
 * §Crash-safe sweeps). Extends the chip-level FaultInjector philosophy
 * (src/debug/fault_injection.hh) from the simulated machine to the
 * sweep harness itself: the recovery paths of the crash-safe execution
 * layer — child-crash classification, journal-write failure, whole-
 * process kill, transient-failure retry — are provoked on purpose by
 * tests instead of discovered in production sweeps.
 *
 * Faults are described by the CBSIM_HARNESS_FAULTS environment
 * variable, a comma-separated list of sites, each optionally pinned to
 * the Nth occurrence of its event:
 *
 *     CBSIM_HARNESS_FAULTS="kill-child@3,transient-once"
 *
 * Counting is per process and 1-based; with --jobs 1 every count is a
 * pure function of submission order, so a chaos run is reproducible.
 */

#ifndef CBSIM_HARNESS_HARNESS_FAULTS_HH
#define CBSIM_HARNESS_HARNESS_FAULTS_HH

#include <atomic>
#include <memory>
#include <string>
#include <vector>

namespace cbsim {

/** The injectable harness fault sites (names are load-bearing:
 * scripts/check_docs.sh requires each documented in ROBUSTNESS.md). */
extern const std::vector<std::string> kHarnessFaultSites;

/** Which harness faults fire, and at which occurrence (0 = off). */
struct HarnessFaultPlan
{
    /** SIGKILL the Nth forked --isolate child before it runs its job
     * (simulates a hard cell crash: segfault/OOM-kill). */
    unsigned killChildAt = 0;

    /** Fail the Nth journal append as if write(2) returned EIO. */
    unsigned journalEioAt = 0;

    /** SIGKILL the whole harness process right after the Nth journal
     * append is durably flushed (simulates operator ^C -9 / power cut
     * mid-sweep; the --resume path must recover from exactly this). */
    unsigned sweepKillAt = 0;

    /** Fail the first attempt of every sweep job with an injected
     * transient error, so --retries must recover each cell once. */
    bool transientOnce = false;

    bool
    enabled() const
    {
        return killChildAt != 0 || journalEioAt != 0 || sweepKillAt != 0 ||
               transientOnce;
    }

    /**
     * Parse a CBSIM_HARNESS_FAULTS spec ("site@N,site,...").
     * @param error receives a diagnostic on malformed specs
     * @return the plan; disabled (and @p error set) on parse failure
     */
    static HarnessFaultPlan parse(const std::string& spec,
                                  std::string& error);
};

/**
 * Turns a HarnessFaultPlan into per-site decisions. Counters are
 * atomic so a parallel sweep (--jobs N) can consult them from any
 * worker; each site counts its own events independently, mirroring the
 * per-site RNG streams of the chip-level injector.
 */
class HarnessFaultInjector
{
  public:
    explicit HarnessFaultInjector(const HarnessFaultPlan& plan)
        : plan_(plan)
    {}

    const HarnessFaultPlan& plan() const { return plan_; }

    /** Should the child forked for the next job kill itself? */
    bool
    killChildNow()
    {
        return plan_.killChildAt != 0 &&
               ++childSpawns_ == plan_.killChildAt;
    }

    /** Should this journal append fail with a simulated I/O error? */
    bool
    journalEioNow()
    {
        return plan_.journalEioAt != 0 &&
               ++journalWrites_ == plan_.journalEioAt;
    }

    /** Should the harness SIGKILL itself after this journal append? */
    bool
    sweepKillNow()
    {
        return plan_.sweepKillAt != 0 &&
               ++journalAppends_ == plan_.sweepKillAt;
    }

    /** Should attempt @p attempt (0-based) of a job fail transiently? */
    bool
    transientFailureNow(unsigned attempt) const
    {
        return plan_.transientOnce && attempt == 0;
    }

  private:
    HarnessFaultPlan plan_;
    std::atomic<unsigned> childSpawns_{0};
    std::atomic<unsigned> journalWrites_{0};
    std::atomic<unsigned> journalAppends_{0};
};

/**
 * The process-wide injector configured by CBSIM_HARNESS_FAULTS, or
 * nullptr when the variable is unset/empty (the production case: one
 * branch per site). A malformed spec is a user error: fatal().
 */
HarnessFaultInjector* harnessFaults();

/**
 * Test seam: replace the process-wide injector (pass nullptr to turn
 * all harness faults off). Unit tests use this instead of mutating the
 * environment, which harnessFaults() reads only once.
 */
void setHarnessFaultsForTest(std::unique_ptr<HarnessFaultInjector> injector);

} // namespace cbsim

#endif // CBSIM_HARNESS_HARNESS_FAULTS_HH
