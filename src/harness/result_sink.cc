#include "harness/result_sink.hh"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "harness/json.hh"
#include "harness/result_codec.hh"
#include "sim/log.hh"

namespace cbsim {

ResultSink::ResultSink(std::string bench_name)
    : benchName_(std::move(bench_name))
{
}

void
ResultSink::meta(const std::string& key, const std::string& value)
{
    meta_.emplace_back(key, value);
}

void
ResultSink::add(const SweepJob& job, const JobOutcome& outcome)
{
    Entry e;
    e.job = job;
    e.job.fn = nullptr; // config snapshot only
    e.outcome = outcome;
    // The workload build is only needed for in-process invariant checks;
    // dropping it keeps long sweeps from retaining every program.
    e.outcome.result.workload = WorkloadBuild();
    entries_.push_back(std::move(e));
}

void
ResultSink::addReplayed(const SweepJob& job, std::string raw_row,
                        const JobOutcome& outcome)
{
    Entry e;
    e.job = job;
    e.job.fn = nullptr;
    e.outcome = outcome;
    e.outcome.result.workload = WorkloadBuild();
    e.rawRow = std::move(raw_row);
    entries_.push_back(std::move(e));
}

bool
ResultSink::allOk() const
{
    for (const auto& e : entries_)
        if (!e.outcome.ok)
            return false;
    return true;
}

void
ResultSink::write(std::ostream& os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.field("schema_version", kSchemaVersion);
    w.field("generator", "cbsim");
    w.field("bench", benchName_);

    w.key("meta");
    w.beginObject();
    for (const auto& [k, v] : meta_)
        w.field(k, v);
    w.endObject();

    w.key("runs");
    w.beginArray();
    // One serialization path for fresh and replayed rows alike
    // (result_codec.hh): every row is a standalone root-depth string
    // spliced in via rawValue(), so a journal-replayed artifact cannot
    // diverge from a freshly produced one by even a byte.
    for (const auto& e : entries_) {
        if (!e.rawRow.empty())
            w.rawValue(e.rawRow);
        else
            w.rawValue(serializeRunRow(e.job, e.outcome));
    }
    w.endArray();
    w.endObject();
    os << '\n';
}

std::string
ResultSink::toJson() const
{
    std::ostringstream os;
    write(os);
    return os.str();
}

void
ResultSink::writeFile(const std::string& path) const
{
    const std::filesystem::path p(path);
    std::error_code ec;
    if (p.has_parent_path())
        std::filesystem::create_directories(p.parent_path(), ec);
    // Temp file + rename in the same directory: rename(2) is atomic, so
    // a crash mid-publish can never leave a torn artifact behind.
    const std::filesystem::path tmp(path + ".tmp");
    {
        std::ofstream os(tmp);
        if (!os)
            fatal("cannot open result file for writing: ", tmp.string());
        write(os);
        os.flush();
        if (!os)
            fatal("write failed: ", tmp.string());
    }
    std::filesystem::rename(tmp, p, ec);
    if (ec)
        fatal("cannot publish result file ", path, ": ", ec.message());
}

} // namespace cbsim
