#include "harness/result_sink.hh"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "harness/json.hh"
#include "sim/log.hh"

namespace cbsim {

namespace {

void
writeConfig(JsonWriter& w, const SweepJob& job)
{
    w.key("config");
    w.beginObject();
    w.field("kind", jobKindName(job.kind));
    switch (job.kind) {
      case JobKind::Profile:
        w.field("workload", job.profile.name);
        w.field("suite", job.profile.suite);
        w.field("technique", techniqueName(job.technique));
        w.field("cores", job.cores);
        w.field("lock", lockAlgoName(job.choice.lock));
        w.field("barrier", barrierAlgoName(job.choice.barrier));
        w.field("cb_entries_per_bank", job.cbEntriesPerBank);
        break;
      case JobKind::Micro:
        w.field("workload", syncMicroName(job.micro));
        w.field("technique", techniqueName(job.technique));
        w.field("cores", job.cores);
        w.field("iterations", job.iterations);
        w.field("work_between", job.workBetween);
        w.field("cb_entries_per_bank", job.cbEntriesPerBank);
        break;
      case JobKind::Custom:
        // A custom job's configuration lives in its function; only the
        // key identifies it.
        break;
    }
    w.endObject();
}

void
writeMetrics(JsonWriter& w, const RunResult& r)
{
    w.key("metrics");
    w.beginObject();
    for (const auto& [name, value] : r.scalarFields())
        w.field(name, value);
    w.endObject();

    w.key("sync");
    w.beginArray();
    // Kind 0 is SyncKind::None (never recorded); start at 1.
    for (std::size_t k = 1; k < SyncStats::numKinds; ++k) {
        const SyncKindResult& s = r.sync[k];
        w.beginObject();
        w.field("kind", syncKindName(static_cast<SyncKind>(k)));
        w.field("completions", s.completions);
        w.field("total_latency", s.totalLatency);
        w.field("mean_latency", s.meanLatency);
        w.field("max_latency", s.maxLatency);
        w.field("p50_latency", s.p50Latency);
        w.field("p95_latency", s.p95Latency);
        w.field("p99_latency", s.p99Latency);
        w.endObject();
    }
    w.endArray();

    // Present only when epoch sampling ran (CBSIM_OBS_EPOCH / ObsConfig)
    // — artifacts from plain runs stay byte-identical to obs-off runs.
    if (!r.epochs.empty()) {
        w.key("epochs");
        w.beginArray();
        for (const EpochRow& row : r.epochs) {
            w.beginObject();
            w.field(EpochSampler::kFieldNames[0], row.tick);
            w.field(EpochSampler::kFieldNames[1], row.llcAccesses);
            w.field(EpochSampler::kFieldNames[2], row.flitHops);
            w.field(EpochSampler::kFieldNames[3], row.packets);
            w.field(EpochSampler::kFieldNames[4], row.blockedCores);
            w.endObject();
        }
        w.endArray();
    }

    // Present only when contention attribution ran (CBSIM_OBS_ATTR /
    // ObsConfig::attribution). Field names come from kContentionFields
    // so docs/RESULTS.md and scripts/check_docs.sh stay in lock-step.
    if (!r.contention.empty()) {
        w.key("contention");
        w.beginArray();
        for (const ContentionRow& row : r.contention) {
            w.beginObject();
            w.field(kContentionFields[0], contentionHexName(row.addr));
            w.field(kContentionFields[1], row.symbol);
            w.field(kContentionFields[2], row.cycles);
            w.field(kContentionFields[3], row.invalidations);
            w.field(kContentionFields[4], row.reacquires);
            w.field(kContentionFields[5], row.spinRereads);
            w.field(kContentionFields[6], row.backoffIters);
            w.field(kContentionFields[7], row.parks);
            w.field(kContentionFields[8], row.wakes);
            w.field(kContentionFields[9], row.wakeEvictions);
            w.field(kContentionFields[10], row.parkP50);
            w.field(kContentionFields[11], row.parkP95);
            w.field(kContentionFields[12], row.parkP99);
            w.endObject();
        }
        w.endArray();
    }
}

void
writeEnergy(JsonWriter& w, const EnergyBreakdown& e)
{
    w.key("energy_nj");
    w.beginObject();
    w.field("l1", e.l1);
    w.field("llc", e.llc);
    w.field("network", e.network);
    w.field("cbdir", e.cbdir);
    w.field("memory", e.memory);
    w.field("on_chip", e.onChip());
    w.field("total", e.total());
    w.endObject();
}

} // namespace

ResultSink::ResultSink(std::string bench_name)
    : benchName_(std::move(bench_name))
{
}

void
ResultSink::meta(const std::string& key, const std::string& value)
{
    meta_.emplace_back(key, value);
}

void
ResultSink::add(const SweepJob& job, const JobOutcome& outcome)
{
    Entry e;
    e.job = job;
    e.job.fn = nullptr; // config snapshot only
    e.outcome = outcome;
    // The workload build is only needed for in-process invariant checks;
    // dropping it keeps long sweeps from retaining every program.
    e.outcome.result.workload = WorkloadBuild();
    entries_.push_back(std::move(e));
}

bool
ResultSink::allOk() const
{
    for (const auto& e : entries_)
        if (!e.outcome.ok)
            return false;
    return true;
}

void
ResultSink::write(std::ostream& os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.field("schema_version", kSchemaVersion);
    w.field("generator", "cbsim");
    w.field("bench", benchName_);

    w.key("meta");
    w.beginObject();
    for (const auto& [k, v] : meta_)
        w.field(k, v);
    w.endObject();

    w.key("runs");
    w.beginArray();
    for (const auto& e : entries_) {
        w.beginObject();
        w.field("key", e.job.key);
        writeConfig(w, e.job);
        w.field("ok", e.outcome.ok);
        w.field("status", jobStatusName(e.outcome.status));
        if (e.outcome.ok) {
            writeMetrics(w, e.outcome.result.run);
            writeEnergy(w, e.outcome.result.energy);
        } else {
            w.field("error", e.outcome.error);
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << '\n';
}

std::string
ResultSink::toJson() const
{
    std::ostringstream os;
    write(os);
    return os.str();
}

void
ResultSink::writeFile(const std::string& path) const
{
    const std::filesystem::path p(path);
    std::error_code ec;
    if (p.has_parent_path())
        std::filesystem::create_directories(p.parent_path(), ec);
    std::ofstream os(p);
    if (!os)
        fatal("cannot open result file for writing: ", path);
    write(os);
    if (!os)
        fatal("write failed: ", path);
}

} // namespace cbsim
