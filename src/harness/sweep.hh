/**
 * @file
 * Parallel experiment sweep runner.
 *
 * Every figure of the paper is a sweep over dozens of *independent*
 * simulations — each one a self-contained Chip with its own event queue
 * and seeded RNG, so runs are bit-identical regardless of which host
 * thread executes them or in which order. The SweepRunner exploits
 * that: jobs are described declaratively (so their configuration can be
 * serialized alongside their metrics), executed across a worker pool,
 * and collected in submission order. A job that fails (e.g., trips the
 * mutual-exclusion invariant, which fatal()s) is reported as a failed
 * outcome without taking down its siblings.
 */

#ifndef CBSIM_HARNESS_SWEEP_HH
#define CBSIM_HARNESS_SWEEP_HH

#include <functional>
#include <string>
#include <vector>

#include "harness/experiment.hh"

namespace cbsim {

/** How a sweep job builds its simulation. */
enum class JobKind : std::uint8_t
{
    Profile, ///< runExperiment over a workload Profile
    Micro,   ///< runSyncMicro over one synchronization construct
    Custom,  ///< caller-supplied function (config not serializable)
};

const char* jobKindName(JobKind k);

/**
 * One simulation to run: the full configuration tuple
 * (workload, technique, cores, sync choice, callback-directory size),
 * carried declaratively so the ResultSink can serialize it next to the
 * metrics it produced.
 */
struct SweepJob
{
    std::string key; ///< unique cell name, e.g. "fig20/CLH/CB-One"

    JobKind kind = JobKind::Custom;
    Technique technique = Technique::Invalidation;
    unsigned cores = 64;
    SyncChoice choice = SyncChoice::scalable();
    unsigned cbEntriesPerBank = 4;

    Profile profile; ///< Profile jobs (already scaled)

    SyncMicro micro = SyncMicro::TtasLock; ///< Micro jobs
    unsigned iterations = 0;
    std::uint64_t workBetween = 2500;

    std::function<ExperimentResult()> fn; ///< Custom jobs

    static SweepJob forProfile(std::string key, Profile profile,
                               Technique technique, unsigned cores,
                               SyncChoice choice = SyncChoice::scalable(),
                               unsigned cb_entries_per_bank = 4);

    static SweepJob forMicro(std::string key, SyncMicro micro,
                             Technique technique, unsigned cores,
                             unsigned iterations,
                             std::uint64_t work_between = 2500,
                             unsigned cb_entries_per_bank = 4);

    static SweepJob custom(std::string key,
                           std::function<ExperimentResult()> fn);

    /** Run the simulation this job describes (throws on failure). */
    ExperimentResult execute() const;
};

/** How a job ended (serialized as the results row's "status" field). */
enum class JobStatus : std::uint8_t
{
    Ok,       ///< completed; metrics are valid
    Failed,   ///< threw (fatal/panic/invariant violation); error set
    TimedOut, ///< tripped the per-job wall-clock budget (failed row)
    Skipped,  ///< never ran: the sweep's failure budget was exhausted
    Crashed,  ///< --isolate child died without delivering a payload
};

const char* jobStatusName(JobStatus s);

/** What one job produced. */
struct JobOutcome
{
    bool ok = false;
    JobStatus status = JobStatus::Failed;
    std::string error;       ///< failure message when !ok
    ExperimentResult result; ///< default-initialized when !ok
    double wallMs = 0.0;     ///< host wall-clock (never serialized)

    /** Execution attempts made (1 without --retries; 0 for skipped and
     * for journal-replayed cells, which carry their producing run's
     * count in the replayed row instead). */
    unsigned attempts = 0;

    /** Cell failed every attempt and a repro bundle was written under
     * the quarantine directory (docs/ROBUSTNESS.md). */
    bool quarantined = false;
};

/**
 * Runs a list of SweepJobs across a pool of host threads and returns
 * their outcomes in submission order.
 */
class SweepRunner
{
  public:
    /** @param jobs worker threads; 0 = all hardware threads. */
    explicit SweepRunner(unsigned jobs = 0);

    /**
     * Per-job wall-clock budget in seconds (0 = off, the default).
     * Installed as a thread-scoped DebugConfig override around each
     * job, so every chip the job builds polls it cooperatively
     * (watchdog); a tripped job is recorded as a TimedOut failed row.
     */
    void setJobTimeoutS(double s) { jobTimeoutS_ = s; }

    /**
     * Stop running jobs once this many have failed (0 = never, the
     * default). The set of cells reported Skipped is deterministic: it
     * depends only on submission order — walk the job list in order,
     * counting final failures; every job at or past the point where
     * the count reaches the budget is Skipped. Workers apply a
     * conservative claim-time check (provably a subset of that set) to
     * avoid wasted work, and a post-run reclassification pass makes the
     * reported outcomes exactly match the sequential definition, so
     * `--jobs 1` and `--jobs N` artifacts stay byte-identical even for
     * aborted sweeps (asserted in sweep_runner_test).
     */
    void setMaxFailures(unsigned n) { maxFailures_ = n; }

    /**
     * Run every job in a forked child (`--isolate`): crashes are
     * classified as Crashed rows instead of killing the sweep.
     */
    void setIsolate(bool on) { isolate_ = on; }

    /**
     * Re-run failed/timed-out/crashed cells up to @p n extra times
     * (`--retries N`), with a bounded deterministic backoff between
     * attempts. The final attempt's outcome is the row; `attempts`
     * records how many were made.
     */
    void setRetries(unsigned n) { retries_ = n; }

    /**
     * Quarantine cells that fail every attempt: write a self-contained
     * repro bundle under `<dir>/<sanitized key>/` (job config JSON,
     * forensic dump when one was written, one-line re-run command) and
     * mark the row `quarantined`. Off when @p dir is empty.
     */
    void setQuarantineDir(std::string dir) { quarantineDir_ = std::move(dir); }

    /**
     * Command prefix for the quarantine bundle's re-run line, e.g.
     * "./build/bench/bench_all --smoke --cores 16"; the runner appends
     * `--only-key '<key>'`.
     */
    void setRerunPrefix(std::string prefix)
    {
        rerunPrefix_ = std::move(prefix);
    }

    /** Append a job; returns its submission index. */
    std::size_t add(SweepJob job);

    std::size_t jobCount() const { return jobs_.size(); }
    const SweepJob& job(std::size_t i) const { return jobs_.at(i); }
    unsigned workers() const { return workers_; }

    /**
     * Execute every added job. @p on_done, if set, is called once per
     * job in *completion* order (serialized by an internal mutex) with
     * the submission index — hook for progress output.
     * @return outcomes, index-aligned with the submission order.
     */
    std::vector<JobOutcome>
    run(const std::function<void(std::size_t, const JobOutcome&)>& on_done =
            {});

  private:
    JobOutcome runAttempts(std::size_t i);
    void reclassifyForBudget(std::vector<JobOutcome>& outcomes) const;
    void quarantine(const SweepJob& job, JobOutcome& out) const;

    unsigned workers_;
    double jobTimeoutS_ = 0.0;
    unsigned maxFailures_ = 0;
    bool isolate_ = false;
    unsigned retries_ = 0;
    std::string quarantineDir_;
    std::string rerunPrefix_;
    std::vector<SweepJob> jobs_;
};

} // namespace cbsim

#endif // CBSIM_HARNESS_SWEEP_HH
