/**
 * @file
 * Minimal deterministic JSON emitter for machine-readable results.
 *
 * Hand-rolled on purpose: the container carries no JSON library, and the
 * results layer needs byte-stable output (a --jobs 1 and a --jobs N
 * sweep over the same job list must serialize identically, which the
 * tests assert). Keys are emitted in insertion order, doubles with
 * round-trip precision via a fixed "%.17g"-style format, and no
 * timestamps or environment-dependent fields are ever written by this
 * layer.
 */

#ifndef CBSIM_HARNESS_JSON_HH
#define CBSIM_HARNESS_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace cbsim {

/**
 * Streaming JSON writer with 2-space indentation. Scope must be
 * balanced by the caller; misuse (a value without a key inside an
 * object, unbalanced end*) panics.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream& os);
    ~JsonWriter();

    JsonWriter(const JsonWriter&) = delete;
    JsonWriter& operator=(const JsonWriter&) = delete;

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit the key of the next member (objects only). */
    void key(const std::string& k);

    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(int v) { value(static_cast<std::int64_t>(v)); }
    void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
    void value(double v);
    void value(bool v);
    void value(const std::string& v);
    void value(const char* v) { value(std::string(v)); }
    void null();

    // key+value in one call, the common case.
    template <typename T>
    void
    field(const std::string& k, const T& v)
    {
        key(k);
        value(v);
    }

    /**
     * Splice @p block — a complete JSON value serialized standalone at
     * root depth by another JsonWriter — as the next value, re-indenting
     * its continuation lines to this writer's current depth. This is the
     * byte-identity primitive of the crash-safe sweep layer: a run row
     * journaled by one process and replayed by another goes through the
     * exact same bytes as a freshly serialized one (result_codec.hh).
     */
    void rawValue(const std::string& block);

    /** Escape @p s as a JSON string literal (with quotes). */
    static std::string quote(const std::string& s);

    /** Round-trip-precision textual form of @p v ("null" for non-finite). */
    static std::string number(double v);

  private:
    enum class Scope : std::uint8_t { Root, Object, Array };

    void beforeValue();
    void indent();

    std::ostream& os_;
    std::vector<Scope> stack_;
    std::vector<bool> first_;   ///< first element of each open scope
    bool keyPending_ = false;
    bool rootWritten_ = false;
};

} // namespace cbsim

#endif // CBSIM_HARNESS_JSON_HH
