#include "harness/harness_faults.hh"

#include <cstdlib>
#include <memory>

#include "sim/log.hh"

namespace cbsim {

// One name per line so scripts/check_docs.sh can extract the list and
// require each site to be documented in docs/ROBUSTNESS.md.
const std::vector<std::string> kHarnessFaultSites = {
    "kill-child",
    "journal-eio",
    "sweep-kill",
    "transient-once",
};

namespace {

/** Split @p spec on commas, trimming nothing (sites contain no spaces). */
std::vector<std::string>
splitSpec(const std::string& spec)
{
    std::vector<std::string> parts;
    std::string::size_type start = 0;
    while (start <= spec.size()) {
        const auto comma = spec.find(',', start);
        const auto end = comma == std::string::npos ? spec.size() : comma;
        if (end > start)
            parts.push_back(spec.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return parts;
}

bool
parseCount(const std::string& s, unsigned& out)
{
    if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos)
        return false;
    out = static_cast<unsigned>(std::strtoul(s.c_str(), nullptr, 10));
    return out != 0;
}

} // namespace

HarnessFaultPlan
HarnessFaultPlan::parse(const std::string& spec, std::string& error)
{
    HarnessFaultPlan plan;
    error.clear();
    for (const std::string& part : splitSpec(spec)) {
        const auto at = part.find('@');
        const std::string site = part.substr(0, at);
        unsigned n = 0;
        const bool counted = at != std::string::npos;
        if (counted &&
            !parseCount(part.substr(at + 1), n)) {
            error = "harness fault site '" + part +
                    "': '@' must be followed by a positive count";
            return HarnessFaultPlan();
        }
        if (site == "kill-child" && counted) {
            plan.killChildAt = n;
        } else if (site == "journal-eio" && counted) {
            plan.journalEioAt = n;
        } else if (site == "sweep-kill" && counted) {
            plan.sweepKillAt = n;
        } else if (site == "transient-once" && !counted) {
            plan.transientOnce = true;
        } else {
            error = "unknown harness fault site '" + part +
                    "' (see docs/ROBUSTNESS.md §Harness chaos mode)";
            return HarnessFaultPlan();
        }
    }
    return plan;
}

namespace {

std::unique_ptr<HarnessFaultInjector>&
injectorSlot()
{
    static std::unique_ptr<HarnessFaultInjector> injector;
    return injector;
}

bool&
injectorInitialized()
{
    static bool initialized = false;
    return initialized;
}

} // namespace

HarnessFaultInjector*
harnessFaults()
{
    if (!injectorInitialized()) {
        injectorInitialized() = true;
        const char* spec = std::getenv("CBSIM_HARNESS_FAULTS");
        if (spec != nullptr && spec[0] != '\0') {
            std::string error;
            const HarnessFaultPlan plan =
                HarnessFaultPlan::parse(spec, error);
            if (!error.empty())
                fatal("CBSIM_HARNESS_FAULTS: ", error);
            if (plan.enabled())
                injectorSlot() =
                    std::make_unique<HarnessFaultInjector>(plan);
        }
    }
    return injectorSlot().get();
}

void
setHarnessFaultsForTest(std::unique_ptr<HarnessFaultInjector> injector)
{
    injectorInitialized() = true;
    injectorSlot() = std::move(injector);
}

} // namespace cbsim
