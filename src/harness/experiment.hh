/**
 * @file
 * Experiment harness: runs a workload profile under an evaluated
 * technique and returns the run's metrics; shared by the bench binaries,
 * examples, and integration tests.
 */

#ifndef CBSIM_HARNESS_EXPERIMENT_HH
#define CBSIM_HARNESS_EXPERIMENT_HH

#include "energy/energy_model.hh"
#include "sync/barriers.hh"
#include "system/chip.hh"
#include "workload/program_gen.hh"
#include "workload/suite.hh"

namespace cbsim {

/** Lock/barrier pairing (paper §5.2). */
struct SyncChoice
{
    LockAlgo lock = LockAlgo::Clh;
    BarrierAlgo barrier = BarrierAlgo::TreeSenseReversing;

    static SyncChoice
    scalable()
    {
        return {LockAlgo::Clh, BarrierAlgo::TreeSenseReversing};
    }
    static SyncChoice
    naive()
    {
        return {LockAlgo::TestAndTestAndSet, BarrierAlgo::SenseReversing};
    }
};

/** Everything one simulation produced. */
struct ExperimentResult
{
    RunResult run;
    EnergyBreakdown energy;
    WorkloadBuild workload; ///< for invariant checks in tests
};

/**
 * Build and run @p profile under @p technique on @p cores cores.
 * Verifies the mutual-exclusion invariant (guard counters) and fails
 * fatally on violation — every bench run is therefore also a check.
 */
ExperimentResult runExperiment(const Profile& profile, Technique technique,
                               unsigned cores,
                               SyncChoice choice = SyncChoice::scalable(),
                               unsigned cb_entries_per_bank = 4);

/**
 * Run an already-loaded @p chip to completion and package the metrics.
 * When @p check_guards is set, verifies the mutual-exclusion invariant
 * (every guard word in @p w must equal its expected count) and calls
 * fatal() on violation. Building block for runExperiment/runSyncMicro
 * and for custom jobs driven through the SweepRunner.
 */
ExperimentResult finishExperiment(Chip& chip, WorkloadBuild w,
                                  bool check_guards);

/**
 * Run a micro-workload that exercises exactly one synchronization
 * construct (for Figs. 1 and 20): @p iterations of acquire/CS/release on
 * one lock, or barrier episodes, or signal/wait pairs.
 */
enum class SyncMicro : std::uint8_t
{
    TtasLock,
    ClhLock,
    SrBarrier,
    TreeBarrier,
    SignalWait,
};

const char* syncMicroName(SyncMicro m);

ExperimentResult runSyncMicro(SyncMicro micro, Technique technique,
                              unsigned cores, unsigned iterations,
                              std::uint64_t work_between = 2500,
                              unsigned cb_entries_per_bank = 4);

} // namespace cbsim

#endif // CBSIM_HARNESS_EXPERIMENT_HH
