#include "harness/table.hh"

#include <iomanip>
#include <sstream>

#include "sim/log.hh"

namespace cbsim {

TablePrinter::TablePrinter(std::ostream& os,
                           std::vector<std::string> headers,
                           unsigned first_col_width, unsigned col_width)
    : os_(os), firstWidth_(first_col_width), width_(col_width),
      columns_(headers.size())
{
    row(headers);
    std::string rule(firstWidth_ + (columns_ - 1) * width_, '-');
    os_ << rule << '\n';
}

void
TablePrinter::row(const std::vector<std::string>& cells)
{
    CBSIM_ASSERT(cells.size() == columns_, "table row arity mismatch");
    std::ostringstream line;
    line << std::left << std::setw(firstWidth_) << cells[0];
    for (std::size_t i = 1; i < cells.size(); ++i)
        line << std::right << std::setw(width_) << cells[i];
    os_ << line.str() << '\n';
}

void
TablePrinter::gap()
{
    os_ << '\n';
}

std::string
fmt(double v, int prec)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(prec) << v;
    return os.str();
}

std::string
norm(double v)
{
    return fmt(v, 3);
}

} // namespace cbsim
