#include "harness/subprocess.hh"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <string>

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "harness/result_codec.hh"
#include "sim/log.hh"

// Coverage builds only: the forked child exits via _exit(2) (no static
// destructors, no stdio flush), which also skips libgcov's exit-time
// counter flush — making every child-side line look unexecuted. The
// reference must be strong (a weak one would not pull the libgcov
// archive member), so it is gated on the coverage build's define.
#ifdef CBSIM_COVERAGE_BUILD
extern "C" void __gcov_dump(void);
#endif

namespace cbsim {

namespace {

void
flushCoverageCounters()
{
#ifdef CBSIM_COVERAGE_BUILD
    __gcov_dump();
#endif
}

/** Stable names for the crash signals a cell realistically dies of
 * (strsignal(3) wording varies across libcs; artifacts must not). */
const char*
crashSignalName(int sig)
{
    switch (sig) {
      case SIGKILL: return "SIGKILL";
      case SIGSEGV: return "SIGSEGV";
      case SIGABRT: return "SIGABRT";
      case SIGBUS: return "SIGBUS";
      case SIGFPE: return "SIGFPE";
      case SIGILL: return "SIGILL";
      case SIGTERM: return "SIGTERM";
      default: return nullptr;
    }
}

/** Child side: run the job, stream the payload, _exit. Never returns.
 * The child must not touch the parent's streams or run static
 * destructors — hence write(2) + _exit(2) only. */
[[noreturn]] void
childMain(const SweepJob& job, const DebugConfig& dcfg, int fd,
          bool kill_child)
{
    if (kill_child) {
        // Chaos `kill-child`: die the way a segfaulting cell does —
        // abruptly, with no payload and no exit handler.
        ::kill(::getpid(), SIGKILL);
    }
    JobOutcome out;
    {
        // Same thread-scoped override the inline path installs: chips
        // inherit the job key as forensic label plus the wall budget.
        DebugScope scope(dcfg);
        try {
            out.result = job.execute();
            out.ok = true;
            out.status = JobStatus::Ok;
        } catch (const TimeoutError& e) {
            out.ok = false;
            out.status = JobStatus::TimedOut;
            out.error = e.what();
            out.result = ExperimentResult();
        } catch (const std::exception& e) {
            out.ok = false;
            out.status = JobStatus::Failed;
            out.error = e.what();
            out.result = ExperimentResult();
        }
    }
    const std::string payload = serializeChildPayload(out);
    std::size_t off = 0;
    while (off < payload.size()) {
        const ssize_t n =
            ::write(fd, payload.data() + off, payload.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            flushCoverageCounters();
            ::_exit(3); // parent is gone; payload undeliverable
        }
        off += static_cast<std::size_t>(n);
    }
    ::close(fd);
    flushCoverageCounters();
    ::_exit(0);
}

} // namespace

JobOutcome
runJobIsolated(const SweepJob& job, const DebugConfig& dcfg,
               double hard_timeout_s, bool kill_child)
{
    JobOutcome out;
    out.ok = false;
    out.status = JobStatus::Crashed;
    out.result = ExperimentResult();

    int fds[2];
    if (::pipe(fds) != 0)
        fatal("--isolate: pipe() failed: ", std::strerror(errno));

    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        fatal("--isolate: fork() failed: ", std::strerror(errno));
    }
    if (pid == 0) {
        ::close(fds[0]);
        childMain(job, dcfg, fds[1], kill_child); // never returns
    }
    ::close(fds[1]);

    // Read the payload to EOF, SIGKILLing the child if it outlives the
    // hard backstop (the cooperative watchdog inside the child should
    // fire long before this; the backstop covers a wedged child).
    std::string payload;
    bool hard_timed_out = false;
    const int timeout_ms = hard_timeout_s > 0.0
                               ? static_cast<int>(hard_timeout_s * 1000.0)
                               : -1;
    for (;;) {
        if (timeout_ms >= 0 && !hard_timed_out) {
            struct pollfd pfd = {fds[0], POLLIN, 0};
            int rc;
            do {
                rc = ::poll(&pfd, 1, timeout_ms);
            } while (rc < 0 && errno == EINTR);
            if (rc == 0) {
                ::kill(pid, SIGKILL);
                hard_timed_out = true;
                // fall through: drain whatever the pipe still holds
            }
        }
        char chunk[4096];
        const ssize_t n = ::read(fds[0], chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (n == 0)
            break;
        payload.append(chunk, static_cast<std::size_t>(n));
    }
    ::close(fds[0]);

    int wstatus = 0;
    pid_t waited;
    do {
        waited = ::waitpid(pid, &wstatus, 0);
    } while (waited < 0 && errno == EINTR);

    if (hard_timed_out) {
        out.status = JobStatus::TimedOut;
        out.error = "job '" + job.key +
                    "': hard timeout: isolated child exceeded the "
                    "parent-side backstop and was killed";
        return out;
    }
    // A complete payload wins even over a nonzero exit: the child
    // classified its own failure before dying.
    if (parseChildPayload(payload, out))
        return out;

    if (waited == pid && WIFSIGNALED(wstatus)) {
        const int sig = WTERMSIG(wstatus);
        const char* name = crashSignalName(sig);
        out.error = "job '" + job.key + "' crashed: killed by " +
                    (name != nullptr ? std::string(name)
                                     : "signal " + std::to_string(sig));
    } else if (waited == pid && WIFEXITED(wstatus) &&
               WEXITSTATUS(wstatus) != 0) {
        out.error = "job '" + job.key + "' crashed: child exited with "
                    "status " +
                    std::to_string(WEXITSTATUS(wstatus));
    } else {
        out.error = "job '" + job.key + "' crashed: child died without "
                    "delivering a result payload";
    }
    return out;
}

} // namespace cbsim
