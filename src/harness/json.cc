#include "harness/json.hh"

#include <cmath>
#include <cstdio>

#include "sim/log.hh"

namespace cbsim {

JsonWriter::JsonWriter(std::ostream& os) : os_(os)
{
    stack_.push_back(Scope::Root);
    first_.push_back(true);
}

JsonWriter::~JsonWriter()
{
    // Unbalanced scopes are a bug in the serializer, but destructors
    // must not throw; the panic surfaces on explicit end*() misuse.
}

std::string
JsonWriter::quote(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

std::string
JsonWriter::number(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    // Prefer the shortest representation that still round-trips, so the
    // common exact values ("1", "0.25") stay readable.
    for (int prec = 1; prec < 17; ++prec) {
        char probe[40];
        std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
        double back = 0.0;
        std::sscanf(probe, "%lf", &back);
        if (back == v)
            return probe;
    }
    return buf;
}

void
JsonWriter::indent()
{
    os_ << '\n';
    for (std::size_t i = 1; i < stack_.size(); ++i)
        os_ << "  ";
}

void
JsonWriter::beforeValue()
{
    const Scope top = stack_.back();
    if (top == Scope::Object && !keyPending_)
        panic("JsonWriter: value without a key inside an object");
    if (top == Scope::Root && rootWritten_)
        panic("JsonWriter: multiple root values");
    if (top == Scope::Array) {
        if (!first_.back())
            os_ << ',';
        indent();
    }
    if (top == Scope::Root)
        rootWritten_ = true;
    first_.back() = false;
    keyPending_ = false;
}

void
JsonWriter::key(const std::string& k)
{
    if (stack_.back() != Scope::Object)
        panic("JsonWriter: key() outside an object");
    if (keyPending_)
        panic("JsonWriter: consecutive keys");
    if (!first_.back())
        os_ << ',';
    indent();
    os_ << quote(k) << ": ";
    first_.back() = false;
    keyPending_ = true;
}

void
JsonWriter::beginObject()
{
    beforeValue();
    os_ << '{';
    stack_.push_back(Scope::Object);
    first_.push_back(true);
}

void
JsonWriter::endObject()
{
    if (stack_.back() != Scope::Object)
        panic("JsonWriter: endObject() without beginObject()");
    const bool empty = first_.back();
    stack_.pop_back();
    first_.pop_back();
    if (!empty)
        indent();
    os_ << '}';
}

void
JsonWriter::beginArray()
{
    beforeValue();
    os_ << '[';
    stack_.push_back(Scope::Array);
    first_.push_back(true);
}

void
JsonWriter::endArray()
{
    if (stack_.back() != Scope::Array)
        panic("JsonWriter: endArray() without beginArray()");
    const bool empty = first_.back();
    stack_.pop_back();
    first_.pop_back();
    if (!empty)
        indent();
    os_ << ']';
}

void
JsonWriter::value(std::uint64_t v)
{
    beforeValue();
    os_ << v;
}

void
JsonWriter::value(std::int64_t v)
{
    beforeValue();
    os_ << v;
}

void
JsonWriter::value(double v)
{
    beforeValue();
    os_ << number(v);
}

void
JsonWriter::value(bool v)
{
    beforeValue();
    os_ << (v ? "true" : "false");
}

void
JsonWriter::value(const std::string& v)
{
    beforeValue();
    os_ << quote(v);
}

void
JsonWriter::rawValue(const std::string& block)
{
    beforeValue();
    // beforeValue() has already positioned the first line (comma +
    // indent inside arrays); continuation lines carry their root-depth
    // relative indentation and only need the current depth prepended.
    std::string pad;
    for (std::size_t i = 1; i < stack_.size(); ++i)
        pad += "  ";
    for (const char c : block) {
        os_ << c;
        if (c == '\n')
            os_ << pad;
    }
}

void
JsonWriter::null()
{
    beforeValue();
    os_ << "null";
}

} // namespace cbsim
