#include "harness/result_codec.hh"

#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <sstream>

#include "harness/json.hh"
#include "isa/instruction.hh"
#include "report/json_value.hh"

namespace cbsim {

namespace {

/** Integer fields round-trip via their raw token text, not the parsed
 * double, so counters above 2^53 survive the pipe/journal exactly. */
std::uint64_t
u64Field(const JsonValue& obj, const char* name)
{
    const JsonValue& v = obj.get(name);
    if (!v.isNumber())
        return 0;
    return std::strtoull(v.text().c_str(), nullptr, 10);
}

double
doubleField(const JsonValue& obj, const char* name)
{
    return obj.getNumber(name);
}

void
writeSyncKinds(JsonWriter& w, const RunResult& r)
{
    w.key("sync");
    w.beginArray();
    // Kind 0 is SyncKind::None (never recorded); start at 1.
    for (std::size_t k = 1; k < SyncStats::numKinds; ++k) {
        const SyncKindResult& s = r.sync[k];
        w.beginObject();
        w.field("kind", syncKindName(static_cast<SyncKind>(k)));
        w.field("completions", s.completions);
        w.field("total_latency", s.totalLatency);
        w.field("mean_latency", s.meanLatency);
        w.field("max_latency", s.maxLatency);
        w.field("p50_latency", s.p50Latency);
        w.field("p95_latency", s.p95Latency);
        w.field("p99_latency", s.p99Latency);
        w.endObject();
    }
    w.endArray();
}

void
parseSyncKinds(const JsonValue& arr, RunResult& r)
{
    if (!arr.isArray())
        return;
    std::size_t k = 1;
    for (const JsonValue& row : arr.items()) {
        if (k >= SyncStats::numKinds)
            break;
        SyncKindResult& s = r.sync[k++];
        s.completions = u64Field(row, "completions");
        s.totalLatency = u64Field(row, "total_latency");
        s.meanLatency = doubleField(row, "mean_latency");
        s.maxLatency = u64Field(row, "max_latency");
        s.p50Latency = doubleField(row, "p50_latency");
        s.p95Latency = doubleField(row, "p95_latency");
        s.p99Latency = doubleField(row, "p99_latency");
    }
}

void
writeEpochs(JsonWriter& w, const RunResult& r)
{
    if (r.epochs.empty())
        return;
    w.key("epochs");
    w.beginArray();
    for (const EpochRow& row : r.epochs) {
        w.beginObject();
        w.field(EpochSampler::kFieldNames[0], row.tick);
        w.field(EpochSampler::kFieldNames[1], row.llcAccesses);
        w.field(EpochSampler::kFieldNames[2], row.flitHops);
        w.field(EpochSampler::kFieldNames[3], row.packets);
        w.field(EpochSampler::kFieldNames[4], row.blockedCores);
        w.endObject();
    }
    w.endArray();
}

void
parseEpochs(const JsonValue& arr, RunResult& r)
{
    if (!arr.isArray())
        return;
    for (const JsonValue& row : arr.items()) {
        EpochRow e;
        e.tick = u64Field(row, EpochSampler::kFieldNames[0]);
        e.llcAccesses = u64Field(row, EpochSampler::kFieldNames[1]);
        e.flitHops = u64Field(row, EpochSampler::kFieldNames[2]);
        e.packets = u64Field(row, EpochSampler::kFieldNames[3]);
        e.blockedCores = u64Field(row, EpochSampler::kFieldNames[4]);
        r.epochs.push_back(e);
    }
}

void
writeContention(JsonWriter& w, const RunResult& r)
{
    if (r.contention.empty())
        return;
    w.key("contention");
    w.beginArray();
    for (const ContentionRow& row : r.contention) {
        w.beginObject();
        w.field(kContentionFields[0], contentionHexName(row.addr));
        w.field(kContentionFields[1], row.symbol);
        w.field(kContentionFields[2], row.cycles);
        w.field(kContentionFields[3], row.invalidations);
        w.field(kContentionFields[4], row.reacquires);
        w.field(kContentionFields[5], row.spinRereads);
        w.field(kContentionFields[6], row.backoffIters);
        w.field(kContentionFields[7], row.parks);
        w.field(kContentionFields[8], row.wakes);
        w.field(kContentionFields[9], row.wakeEvictions);
        w.field(kContentionFields[10], row.parkP50);
        w.field(kContentionFields[11], row.parkP95);
        w.field(kContentionFields[12], row.parkP99);
        w.endObject();
    }
    w.endArray();
}

void
parseContention(const JsonValue& arr, RunResult& r)
{
    if (!arr.isArray())
        return;
    for (const JsonValue& row : arr.items()) {
        ContentionRow c;
        // The artifact form carries the address as hex text.
        const std::string addr = row.getString(kContentionFields[0]);
        c.addr = std::strtoull(addr.c_str(), nullptr, 0);
        c.symbol = row.getString(kContentionFields[1]);
        c.cycles = u64Field(row, kContentionFields[2].c_str());
        c.invalidations = u64Field(row, kContentionFields[3].c_str());
        c.reacquires = u64Field(row, kContentionFields[4].c_str());
        c.spinRereads = u64Field(row, kContentionFields[5].c_str());
        c.backoffIters = u64Field(row, kContentionFields[6].c_str());
        c.parks = u64Field(row, kContentionFields[7].c_str());
        c.wakes = u64Field(row, kContentionFields[8].c_str());
        c.wakeEvictions = u64Field(row, kContentionFields[9].c_str());
        c.parkP50 = doubleField(row, kContentionFields[10].c_str());
        c.parkP95 = doubleField(row, kContentionFields[11].c_str());
        c.parkP99 = doubleField(row, kContentionFields[12].c_str());
        r.contention.push_back(std::move(c));
    }
}

/** The raw (underived) RunResult counters, child-payload order. */
constexpr const char* kRawRunFields[] = {
    "cycles",          "llc_accesses",  "llc_sync_accesses",
    "l1_accesses",     "cbdir_accesses", "flit_hops",
    "packets",         "mem_reads",      "instructions",
    "invalidations_sent", "cb_wakeups",  "cbdir_evictions",
    "stall_cycles",    "cb_blocked_cycles",
};

void
writeRawRun(JsonWriter& w, const RunResult& r)
{
    const std::uint64_t values[] = {
        r.cycles,        r.llcAccesses, r.llcSyncAccesses,
        r.l1Accesses,    r.cbdirAccesses, r.flitHops,
        r.packets,       r.memReads,      r.instructions,
        r.invalidationsSent, r.cbWakeups, r.cbdirEvictions,
        r.stallCycles,   r.cbBlockedCycles,
    };
    w.key("run");
    w.beginObject();
    for (std::size_t i = 0; i < std::size(kRawRunFields); ++i)
        w.field(kRawRunFields[i], values[i]);
    w.field("events", r.events);
    w.field("sim_wall_ms", r.simWallMs);
    w.endObject();
}

void
parseRawRun(const JsonValue& obj, RunResult& r)
{
    std::uint64_t* slots[] = {
        &r.cycles,        &r.llcAccesses, &r.llcSyncAccesses,
        &r.l1Accesses,    &r.cbdirAccesses, &r.flitHops,
        &r.packets,       &r.memReads,      &r.instructions,
        &r.invalidationsSent, &r.cbWakeups, &r.cbdirEvictions,
        &r.stallCycles,   &r.cbBlockedCycles,
    };
    for (std::size_t i = 0; i < std::size(kRawRunFields); ++i)
        *slots[i] = u64Field(obj, kRawRunFields[i]);
    r.events = u64Field(obj, "events");
    r.simWallMs = doubleField(obj, "sim_wall_ms");
}

void
writeEnergyFields(JsonWriter& w, const EnergyBreakdown& e, bool derived)
{
    w.beginObject();
    w.field("l1", e.l1);
    w.field("llc", e.llc);
    w.field("network", e.network);
    w.field("cbdir", e.cbdir);
    w.field("memory", e.memory);
    if (derived) {
        w.field("on_chip", e.onChip());
        w.field("total", e.total());
    }
    w.endObject();
}

EnergyBreakdown
parseEnergy(const JsonValue& obj)
{
    EnergyBreakdown e;
    e.l1 = doubleField(obj, "l1");
    e.llc = doubleField(obj, "llc");
    e.network = doubleField(obj, "network");
    e.cbdir = doubleField(obj, "cbdir");
    e.memory = doubleField(obj, "memory");
    return e;
}

} // namespace

void
writeJobConfig(JsonWriter& w, const SweepJob& job)
{
    w.key("config");
    w.beginObject();
    w.field("kind", jobKindName(job.kind));
    switch (job.kind) {
      case JobKind::Profile:
        w.field("workload", job.profile.name);
        w.field("suite", job.profile.suite);
        w.field("technique", techniqueName(job.technique));
        w.field("cores", job.cores);
        w.field("lock", lockAlgoName(job.choice.lock));
        w.field("barrier", barrierAlgoName(job.choice.barrier));
        w.field("cb_entries_per_bank", job.cbEntriesPerBank);
        break;
      case JobKind::Micro:
        w.field("workload", syncMicroName(job.micro));
        w.field("technique", techniqueName(job.technique));
        w.field("cores", job.cores);
        w.field("iterations", job.iterations);
        w.field("work_between", job.workBetween);
        w.field("cb_entries_per_bank", job.cbEntriesPerBank);
        break;
      case JobKind::Custom:
        // A custom job's configuration lives in its function; only the
        // key identifies it.
        break;
    }
    w.endObject();
}

void
writeRunMetrics(JsonWriter& w, const RunResult& r)
{
    w.key("metrics");
    w.beginObject();
    for (const auto& [name, value] : r.scalarFields())
        w.field(name, value);
    w.endObject();

    writeSyncKinds(w, r);

    // Present only when epoch sampling ran (CBSIM_OBS_EPOCH / ObsConfig)
    // — artifacts from plain runs stay byte-identical to obs-off runs.
    writeEpochs(w, r);

    // Present only when contention attribution ran (CBSIM_OBS_ATTR /
    // ObsConfig::attribution). Field names come from kContentionFields
    // so docs/RESULTS.md and scripts/check_docs.sh stay in lock-step.
    writeContention(w, r);
}

void
writeEnergy(JsonWriter& w, const EnergyBreakdown& e)
{
    w.key("energy_nj");
    writeEnergyFields(w, e, /*derived=*/true);
}

std::string
serializeRunRow(const SweepJob& job, const JobOutcome& outcome)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.field("key", job.key);
    writeJobConfig(w, job);
    w.field("ok", outcome.ok);
    w.field("status", jobStatusName(outcome.status));
    w.field("attempts", outcome.attempts);
    w.field("quarantined", outcome.quarantined);
    if (outcome.ok) {
        writeRunMetrics(w, outcome.result.run);
        writeEnergy(w, outcome.result.energy);
    } else {
        w.field("error", outcome.error);
    }
    w.endObject();
    return os.str();
}

std::string
jobConfigHash(const SweepJob& job, unsigned schema_version,
              const std::string& sweep_meta)
{
    std::ostringstream os;
    {
        JsonWriter w(os);
        w.beginObject();
        w.field("key", job.key);
        w.field("schema_version", schema_version);
        w.field("sweep_meta", sweep_meta);
        writeJobConfig(w, job);
        w.endObject();
    }
    const std::string canonical = os.str();
    std::uint64_t h = 14695981039346656037ULL;
    for (const char c : canonical) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

std::string
serializeChildPayload(const JobOutcome& outcome)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.field("payload", "cbsim-child-v1");
    w.field("status", jobStatusName(outcome.status));
    if (!outcome.ok) {
        w.field("error", outcome.error);
    } else {
        writeRawRun(w, outcome.result.run);
        writeSyncKinds(w, outcome.result.run);
        writeEpochs(w, outcome.result.run);
        writeContention(w, outcome.result.run);
        w.key("energy_nj");
        writeEnergyFields(w, outcome.result.energy, /*derived=*/false);
    }
    w.endObject();
    return os.str();
}

bool
parseChildPayload(const std::string& text, JobOutcome& outcome)
{
    std::string error;
    const JsonValue doc = JsonValue::parse(text, error);
    if (!error.empty() || doc.getString("payload") != "cbsim-child-v1")
        return false;
    outcome.status = jobStatusFromName(doc.getString("status"));
    outcome.ok = outcome.status == JobStatus::Ok;
    outcome.error = doc.getString("error");
    outcome.result = ExperimentResult();
    if (outcome.ok) {
        parseRawRun(doc.get("run"), outcome.result.run);
        parseSyncKinds(doc.get("sync"), outcome.result.run);
        parseEpochs(doc.get("epochs"), outcome.result.run);
        parseContention(doc.get("contention"), outcome.result.run);
        outcome.result.energy = parseEnergy(doc.get("energy_nj"));
    }
    return true;
}

ExperimentResult
parseRowResult(const JsonValue& row)
{
    ExperimentResult res;
    // The artifact's metrics object carries the raw counters under the
    // same names the child payload uses, plus derived sync percentile
    // scalars that recompute from sync[] — parse the former, let the
    // latter fall out of parseSyncKinds.
    parseRawRun(row.get("metrics"), res.run);
    parseSyncKinds(row.get("sync"), res.run);
    parseEpochs(row.get("epochs"), res.run);
    parseContention(row.get("contention"), res.run);
    res.energy = parseEnergy(row.get("energy_nj"));
    return res;
}

JobStatus
jobStatusFromName(const std::string& name)
{
    if (name == "ok")
        return JobStatus::Ok;
    if (name == "timeout")
        return JobStatus::TimedOut;
    if (name == "skipped")
        return JobStatus::Skipped;
    if (name == "crashed")
        return JobStatus::Crashed;
    return JobStatus::Failed;
}

} // namespace cbsim
