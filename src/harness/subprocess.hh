/**
 * @file
 * Process isolation for sweep jobs (docs/ROBUSTNESS.md §Crash-safe
 * sweeps).
 *
 * Under `--isolate`, each SweepJob runs in a forked child that streams
 * its serialized ExperimentResult (result_codec.hh child payload) back
 * over a pipe and then _exit()s. Anything that would have taken the
 * whole sweep down — a segfault, an OOM kill, an abort() from a
 * corrupted invariant — now takes down one child, and the parent
 * classifies the loss as the `crashed` JobStatus while sibling cells
 * keep running. Failures the child can catch (fatal(), panic(),
 * watchdog TimeoutError) are classified *in the child* and travel back
 * in the payload, so an isolated sweep reports byte-identical rows to
 * an inline one.
 *
 * Forensic dumps need no special plumbing: the child shares the
 * filesystem, so a chip crash writes
 * `<forensicDir>/<label>.forensic.json` exactly as an inline job would
 * (src/debug/forensics.hh), and quarantine picks the file up from
 * there.
 */

#ifndef CBSIM_HARNESS_SUBPROCESS_HH
#define CBSIM_HARNESS_SUBPROCESS_HH

#include "debug/debug_config.hh"
#include "harness/sweep.hh"

namespace cbsim {

/**
 * Run @p job to completion in a forked child.
 *
 * @param job the sweep cell to execute
 * @param dcfg debug configuration the child installs as a DebugScope
 *        around the run (label = job key, per-job wall budget), exactly
 *        mirroring the inline execution path
 * @param hard_timeout_s parent-side backstop: if the child is still
 *        alive after this many seconds it is SIGKILLed and the cell is
 *        classified TimedOut (covers a child too wedged for the
 *        cooperative watchdog to fire). 0 disables the backstop.
 * @param kill_child chaos hook (`kill-child` fault site): the child
 *        SIGKILLs itself before running the job, simulating a hard
 *        crash. Decided in the parent so the fault counter lives in
 *        exactly one process.
 * @return the cell's outcome; `status == JobStatus::Crashed` when the
 *         child died without delivering a payload
 */
JobOutcome runJobIsolated(const SweepJob& job, const DebugConfig& dcfg,
                          double hard_timeout_s, bool kill_child);

} // namespace cbsim

#endif // CBSIM_HARNESS_SUBPROCESS_HH
