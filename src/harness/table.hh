/**
 * @file
 * Fixed-width table printing for bench binaries, mirroring the rows and
 * series of the paper's figures.
 */

#ifndef CBSIM_HARNESS_TABLE_HH
#define CBSIM_HARNESS_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace cbsim {

/** Prints aligned columns with a header row and a rule. */
class TablePrinter
{
  public:
    TablePrinter(std::ostream& os, std::vector<std::string> headers,
                 unsigned first_col_width = 16, unsigned col_width = 12);

    void row(const std::vector<std::string>& cells);

    /** Blank separator line. */
    void gap();

  private:
    std::ostream& os_;
    unsigned firstWidth_;
    unsigned width_;
    std::size_t columns_;
};

/** Format a double with @p prec decimals. */
std::string fmt(double v, int prec = 3);

/** Format a normalized value ("1.000", "0.127"). */
std::string norm(double v);

} // namespace cbsim

#endif // CBSIM_HARNESS_TABLE_HH
