/**
 * @file
 * Serialization shared by the crash-safe sweep layer (docs/RESULTS.md,
 * docs/ROBUSTNESS.md §Crash-safe sweeps).
 *
 * Three consumers need the same bytes:
 *  - the ResultSink, which serializes every run of a sweep into the
 *    versioned JSON artifact;
 *  - the ResultJournal, which appends each completed run's row so an
 *    interrupted sweep can be resumed without re-running it;
 *  - the --isolate subprocess pipe, over which a forked child streams
 *    its ExperimentResult back to the parent.
 *
 * The determinism contract hinges on one property: serializing a run
 * row is a pure function of (job config, outcome), and parsing a
 * serialized ExperimentResult back and re-serializing it reproduces the
 * identical bytes (integers verbatim via their raw token text, doubles
 * via JsonWriter::number's shortest-round-trip form). That is what
 * makes resumed and isolated sweeps byte-identical to plain ones.
 */

#ifndef CBSIM_HARNESS_RESULT_CODEC_HH
#define CBSIM_HARNESS_RESULT_CODEC_HH

#include <string>

#include "harness/sweep.hh"

namespace cbsim {

class JsonWriter;
class JsonValue;

/** Serialize @p job's declarative configuration as a "config" member. */
void writeJobConfig(JsonWriter& w, const SweepJob& job);

/** Serialize metrics + sync[] (+ epochs/contention when present). */
void writeRunMetrics(JsonWriter& w, const RunResult& r);

/** Serialize the energy breakdown as an "energy_nj" member. */
void writeEnergy(JsonWriter& w, const EnergyBreakdown& e);

/**
 * One complete artifact row for (job, outcome): the object the
 * ResultSink splices into the "runs" array, serialized standalone at
 * root depth (2-space inner indentation, re-indented on splice).
 */
std::string serializeRunRow(const SweepJob& job, const JobOutcome& outcome);

/**
 * Content hash identifying one sweep cell for the journal: FNV-1a 64
 * over the serialized job config, the artifact schema version, and the
 * sweep-level sizing annotations in @p sweep_meta (so a --smoke
 * journal can never satisfy a full-size sweep even when cell keys
 * match). Hex string, pure function of its inputs.
 */
std::string jobConfigHash(const SweepJob& job, unsigned schema_version,
                          const std::string& sweep_meta);

/**
 * Child→parent payload for one isolated job: status, error, and the
 * full ExperimentResult (raw RunResult fields, sync kinds, epochs,
 * contention, energy — everything the sink and the table printers
 * read).
 */
std::string serializeChildPayload(const JobOutcome& outcome);

/**
 * Parse a child payload back into @p outcome.
 * @return false (outcome untouched) when @p text is not a payload
 */
bool parseChildPayload(const std::string& text, JobOutcome& outcome);

/**
 * Best-effort reconstruction of an ExperimentResult from a serialized
 * artifact row (the journal replay path — feeds the bench table
 * printers; the artifact itself splices the journaled row verbatim).
 */
ExperimentResult parseRowResult(const JsonValue& row);

/** Inverse of jobStatusName(); Failed for unknown names. */
JobStatus jobStatusFromName(const std::string& name);

} // namespace cbsim

#endif // CBSIM_HARNESS_RESULT_CODEC_HH
