/**
 * @file
 * Append-only result journal for crash-safe sweeps (docs/ROBUSTNESS.md
 * §Crash-safe sweeps).
 *
 * While a sweep runs, every *successful* cell is appended to
 * `<artifact>.journal` as one self-contained JSON line:
 *
 *     {"cell": "<jobConfigHash>", "row": "<serialized run row>"}
 *
 * The row is the exact artifact-row string (result_codec.hh), stored as
 * a JSON string literal so the line survives any byte the row contains.
 * On `--resume`, cells whose hash matches a journal line are replayed
 * by splicing those bytes straight back into the artifact — which is
 * what makes an interrupted-then-resumed sweep byte-identical to an
 * uninterrupted one. Failed cells are deliberately NOT journaled: a
 * resume retries them, so transient breakage heals instead of being
 * replayed forever.
 *
 * Appends are flushed line-at-a-time so a SIGKILL between cells loses
 * at most the in-flight line; load() tolerates a torn tail by stopping
 * at the first malformed line.
 */

#ifndef CBSIM_HARNESS_JOURNAL_HH
#define CBSIM_HARNESS_JOURNAL_HH

#include <fstream>
#include <string>
#include <vector>

namespace cbsim {

/** One replayable journal line. */
struct JournalEntry
{
    std::string cell; ///< jobConfigHash of the producing job
    std::string row;  ///< verbatim serialized artifact row
};

class ResultJournal
{
  public:
    explicit ResultJournal(std::string path);

    const std::string& path() const { return path_; }

    /**
     * Append one completed cell and flush it to the OS (so the bytes
     * survive the process being SIGKILLed right after). Consults the
     * harness chaos injector: a `journal-eio` fault makes this append
     * fail exactly as a full disk would, and a `sweep-kill` fault
     * SIGKILLs the whole process after the flush (the scenario
     * `--resume` exists for).
     *
     * @return false when the append failed (injected or real I/O
     *         error); the journal disables itself — the sweep goes on,
     *         only resumability is lost.
     */
    bool append(const std::string& cell_hash, const std::string& row);

    /** Did any append fail? (Surfaced as a warning by the bench.) */
    bool degraded() const { return degraded_; }

    /**
     * Read every well-formed line of the journal at @p path; a torn or
     * corrupt tail ends the scan (everything before it is still good).
     * Missing file = empty journal.
     */
    static std::vector<JournalEntry> load(const std::string& path);

    /** Delete the journal file (after the artifact is published). */
    static void removeFile(const std::string& path);

  private:
    std::string path_;
    std::ofstream os_;
    bool opened_ = false;
    bool degraded_ = false;
};

} // namespace cbsim

#endif // CBSIM_HARNESS_JOURNAL_HH
