#include "harness/journal.hh"

#include <csignal>
#include <filesystem>
#include <unistd.h>

#include "harness/harness_faults.hh"
#include "harness/json.hh"
#include "report/json_value.hh"

namespace cbsim {

ResultJournal::ResultJournal(std::string path) : path_(std::move(path)) {}

bool
ResultJournal::append(const std::string& cell_hash, const std::string& row)
{
    if (degraded_)
        return false;
    HarnessFaultInjector* faults = harnessFaults();
    if (faults != nullptr && faults->journalEioNow()) {
        // Behave exactly as if write(2) returned EIO: this line is
        // lost and the journal can no longer be trusted to be
        // append-complete, so stop writing it.
        degraded_ = true;
        return false;
    }
    if (!opened_) {
        const std::filesystem::path p(path_);
        std::error_code ec;
        if (p.has_parent_path())
            std::filesystem::create_directories(p.parent_path(), ec);
        // Append mode: a resumed sweep extends the journal it loaded.
        os_.open(p, std::ios::app);
        opened_ = true;
    }
    if (!os_) {
        degraded_ = true;
        return false;
    }
    os_ << "{\"cell\": " << JsonWriter::quote(cell_hash)
        << ", \"row\": " << JsonWriter::quote(row) << "}\n";
    os_.flush();
    if (!os_) {
        degraded_ = true;
        return false;
    }
    // The flush above pushed the line into the kernel, so it survives
    // the process dying here — which is exactly what the `sweep-kill`
    // chaos fault now provokes to prove the --resume path works.
    if (faults != nullptr && faults->sweepKillNow())
        ::kill(::getpid(), SIGKILL);
    return true;
}

std::vector<JournalEntry>
ResultJournal::load(const std::string& path)
{
    std::vector<JournalEntry> entries;
    std::ifstream is(path);
    if (!is)
        return entries;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        std::string error;
        const JsonValue doc = JsonValue::parse(line, error);
        if (!error.empty())
            break; // torn tail: the line being written at kill time
        JournalEntry e;
        e.cell = doc.getString("cell");
        e.row = doc.getString("row");
        if (e.cell.empty() || e.row.empty())
            break;
        entries.push_back(std::move(e));
    }
    return entries;
}

void
ResultJournal::removeFile(const std::string& path)
{
    std::error_code ec;
    std::filesystem::remove(path, ec);
}

} // namespace cbsim
