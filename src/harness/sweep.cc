#include "harness/sweep.hh"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include "debug/debug_config.hh"
#include "debug/forensics.hh"
#include "harness/harness_faults.hh"
#include "harness/json.hh"
#include "harness/result_codec.hh"
#include "harness/subprocess.hh"
#include "sim/log.hh"

namespace cbsim {

const char*
jobKindName(JobKind k)
{
    switch (k) {
      case JobKind::Profile: return "profile";
      case JobKind::Micro: return "micro";
      case JobKind::Custom: return "custom";
      default: return "?";
    }
}

const char*
jobStatusName(JobStatus s)
{
    switch (s) {
      case JobStatus::Ok: return "ok";
      case JobStatus::Failed: return "failed";
      case JobStatus::TimedOut: return "timeout";
      case JobStatus::Skipped: return "skipped";
      case JobStatus::Crashed: return "crashed";
      default: return "?";
    }
}

SweepJob
SweepJob::forProfile(std::string key, Profile profile, Technique technique,
                     unsigned cores, SyncChoice choice,
                     unsigned cb_entries_per_bank)
{
    SweepJob j;
    j.key = std::move(key);
    j.kind = JobKind::Profile;
    j.profile = std::move(profile);
    j.technique = technique;
    j.cores = cores;
    j.choice = choice;
    j.cbEntriesPerBank = cb_entries_per_bank;
    return j;
}

SweepJob
SweepJob::forMicro(std::string key, SyncMicro micro, Technique technique,
                   unsigned cores, unsigned iterations,
                   std::uint64_t work_between, unsigned cb_entries_per_bank)
{
    SweepJob j;
    j.key = std::move(key);
    j.kind = JobKind::Micro;
    j.micro = micro;
    j.technique = technique;
    j.cores = cores;
    j.iterations = iterations;
    j.workBetween = work_between;
    j.cbEntriesPerBank = cb_entries_per_bank;
    return j;
}

SweepJob
SweepJob::custom(std::string key, std::function<ExperimentResult()> fn)
{
    SweepJob j;
    j.key = std::move(key);
    j.kind = JobKind::Custom;
    j.fn = std::move(fn);
    return j;
}

ExperimentResult
SweepJob::execute() const
{
    switch (kind) {
      case JobKind::Profile:
        return runExperiment(profile, technique, cores, choice,
                             cbEntriesPerBank);
      case JobKind::Micro:
        return runSyncMicro(micro, technique, cores, iterations,
                            workBetween, cbEntriesPerBank);
      case JobKind::Custom:
        if (!fn)
            fatal("custom sweep job '", key, "' has no function");
        return fn();
    }
    // Reaching here means the enum itself is corrupt — a simulator bug,
    // not a user/config error (log.hh contract).
    panic("corrupt sweep job kind");
}

SweepRunner::SweepRunner(unsigned jobs) : workers_(jobs)
{
    if (workers_ == 0) {
        workers_ = std::max(1u, std::thread::hardware_concurrency());
    }
}

std::size_t
SweepRunner::add(SweepJob job)
{
    jobs_.push_back(std::move(job));
    return jobs_.size() - 1;
}

JobOutcome
SweepRunner::runAttempts(std::size_t i)
{
    using Clock = std::chrono::steady_clock;
    const SweepJob& job = jobs_[i];

    // Thread-scoped debug override: every chip this job builds (inline
    // or in a forked child) inherits the job's key as its forensic
    // label and the sweep's per-job wall-clock budget.
    DebugConfig dcfg = DebugConfig::current();
    dcfg.label = job.key;
    if (jobTimeoutS_ > 0.0)
        dcfg.wallTimeoutS = jobTimeoutS_;

    HarnessFaultInjector* faults = harnessFaults();
    JobOutcome out;
    const auto start = Clock::now();
    for (unsigned attempt = 0;; ++attempt) {
        out = JobOutcome();
        if (faults != nullptr && faults->transientFailureNow(attempt)) {
            // Chaos `transient-once`: the attempt "fails" without
            // running — deterministic, and exactly what a flaky host
            // hiccup looks like to the retry loop.
            out.ok = false;
            out.status = JobStatus::Failed;
            out.error = "job '" + job.key +
                        "': injected transient failure (harness chaos "
                        "site transient-once)";
        } else if (isolate_) {
            const bool kill_child =
                faults != nullptr && faults->killChildNow();
            // Parent-side backstop well past the cooperative watchdog,
            // for children too wedged to poll it.
            const double hard =
                jobTimeoutS_ > 0.0 ? jobTimeoutS_ * 4.0 : 0.0;
            out = runJobIsolated(job, dcfg, hard, kill_child);
        } else {
            DebugScope scope(dcfg);
            try {
                out.result = job.execute();
                out.ok = true;
                out.status = JobStatus::Ok;
            } catch (const TimeoutError& e) {
                out.ok = false;
                out.status = JobStatus::TimedOut;
                out.error = e.what();
                out.result = ExperimentResult();
            } catch (const std::exception& e) {
                out.ok = false;
                out.status = JobStatus::Failed;
                out.error = e.what();
                out.result = ExperimentResult();
            }
        }
        out.attempts = attempt + 1;
        if (out.ok || attempt >= retries_)
            break;
        // Bounded deterministic backoff: a pure function of the attempt
        // number (50, 100, 200, ... capped at 1 s), so retried sweeps
        // stay reproducible.
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::min(50u << std::min(attempt, 15u), 1000u)));
    }
    out.wallMs =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    // Satellite of the crash-safe layer: every failed row names its
    // cell, so a timeout in a 500-cell grid is attributable from the
    // artifact alone (the watchdog already embeds the label; don't
    // double it).
    if (!out.ok && out.error.find(job.key) == std::string::npos)
        out.error = "job '" + job.key + "': " + out.error;
    return out;
}

void
SweepRunner::reclassifyForBudget(std::vector<JobOutcome>& outcomes) const
{
    if (maxFailures_ == 0)
        return;
    // The deterministic definition of an aborted sweep: walk the
    // submission order counting final failures; once the count reaches
    // the budget, every later cell is Skipped — regardless of which
    // cells some worker happened to run before the budget tripped.
    unsigned fail_count = 0;
    for (JobOutcome& out : outcomes) {
        if (fail_count >= maxFailures_) {
            out = JobOutcome();
            out.ok = false;
            out.status = JobStatus::Skipped;
            out.error = "sweep stopped: failure budget (" +
                        std::to_string(maxFailures_) + ") exhausted";
        } else if (!out.ok) {
            ++fail_count;
        }
    }
}

void
SweepRunner::quarantine(const SweepJob& job, JobOutcome& out) const
{
    namespace fs = std::filesystem;
    const std::string safe = forensics::sanitizeLabel(job.key);
    const fs::path dir = fs::path(quarantineDir_) / safe;
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
        return; // quarantine is best-effort; the row still says failed

    {
        std::ofstream os(dir / "job.json");
        JsonWriter w(os);
        w.beginObject();
        w.field("key", job.key);
        writeJobConfig(w, job);
        w.field("status", jobStatusName(out.status));
        w.field("attempts", out.attempts);
        w.field("error", out.error);
        w.endObject();
        os << '\n';
    }

    // The forensic dump the failing chip wrote (if forensics were on):
    // same label-derived name the debug layer uses.
    const std::string forensic_dir = DebugConfig::current().forensicDir;
    if (!forensic_dir.empty()) {
        const fs::path src =
            fs::path(forensic_dir) / (safe + ".forensic.json");
        if (fs::exists(src, ec))
            fs::copy_file(src, dir / "forensic.json",
                          fs::copy_options::overwrite_existing, ec);
    }

    {
        std::ofstream os(dir / "rerun.txt");
        os << (rerunPrefix_.empty() ? "bench_all" : rerunPrefix_.c_str())
           << " --only-key '" << job.key << "'\n";
    }
    out.quarantined = true;
}

std::vector<JobOutcome>
SweepRunner::run(
    const std::function<void(std::size_t, const JobOutcome&)>& on_done)
{
    std::vector<JobOutcome> outcomes(jobs_.size());

    std::atomic<std::size_t> next{0};
    std::mutex done_mutex;

    // Per-index completion state feeding the claim-time --max-failures
    // check (see setMaxFailures).
    enum : std::uint8_t { kPending = 0, kDone = 1, kDoneFailed = 2 };
    std::vector<std::atomic<std::uint8_t>> state(jobs_.size());

    // Workers claim jobs by submission index and write to disjoint
    // slots, so the only shared mutable state is the claim counter,
    // the completion states, and the progress callback.
    auto worker = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= jobs_.size())
                return;
            JobOutcome& out = outcomes[i];
            if (maxFailures_ != 0) {
                // Conservative claim check: skip only when jobs
                // *earlier in submission order* have already provided
                // enough failures — then the sequential walk in
                // reclassifyForBudget() provably skips this cell too,
                // whatever the remaining jobs do.
                unsigned failed_below = 0;
                for (std::size_t j = 0; j < i; ++j)
                    failed_below += state[j].load() == kDoneFailed;
                if (failed_below >= maxFailures_) {
                    out.ok = false;
                    out.status = JobStatus::Skipped;
                    out.error = "sweep stopped: failure budget (" +
                                std::to_string(maxFailures_) +
                                ") exhausted";
                    state[i].store(kDone);
                    if (on_done) {
                        std::lock_guard<std::mutex> lock(done_mutex);
                        on_done(i, out);
                    }
                    continue;
                }
            }
            out = runAttempts(i);
            state[i].store(out.ok ? kDone : kDoneFailed);
            if (on_done) {
                std::lock_guard<std::mutex> lock(done_mutex);
                on_done(i, out);
            }
        }
    };

    const unsigned n =
        static_cast<unsigned>(std::min<std::size_t>(workers_,
                                                    jobs_.size()));
    if (n <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(n);
        for (unsigned t = 0; t < n; ++t)
            pool.emplace_back(worker);
        for (auto& t : pool)
            t.join();
    }

    reclassifyForBudget(outcomes);

    // Quarantine after reclassification so cells the deterministic
    // budget walk skipped never leave bundles behind, then mark the
    // surviving finally-failed rows.
    if (!quarantineDir_.empty()) {
        for (std::size_t i = 0; i < jobs_.size(); ++i) {
            JobOutcome& out = outcomes[i];
            if (!out.ok && out.status != JobStatus::Skipped)
                quarantine(jobs_[i], out);
        }
    }
    return outcomes;
}

} // namespace cbsim
