#include "harness/sweep.hh"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "debug/debug_config.hh"
#include "sim/log.hh"

namespace cbsim {

const char*
jobKindName(JobKind k)
{
    switch (k) {
      case JobKind::Profile: return "profile";
      case JobKind::Micro: return "micro";
      case JobKind::Custom: return "custom";
      default: return "?";
    }
}

const char*
jobStatusName(JobStatus s)
{
    switch (s) {
      case JobStatus::Ok: return "ok";
      case JobStatus::Failed: return "failed";
      case JobStatus::TimedOut: return "timeout";
      case JobStatus::Skipped: return "skipped";
      default: return "?";
    }
}

SweepJob
SweepJob::forProfile(std::string key, Profile profile, Technique technique,
                     unsigned cores, SyncChoice choice,
                     unsigned cb_entries_per_bank)
{
    SweepJob j;
    j.key = std::move(key);
    j.kind = JobKind::Profile;
    j.profile = std::move(profile);
    j.technique = technique;
    j.cores = cores;
    j.choice = choice;
    j.cbEntriesPerBank = cb_entries_per_bank;
    return j;
}

SweepJob
SweepJob::forMicro(std::string key, SyncMicro micro, Technique technique,
                   unsigned cores, unsigned iterations,
                   std::uint64_t work_between, unsigned cb_entries_per_bank)
{
    SweepJob j;
    j.key = std::move(key);
    j.kind = JobKind::Micro;
    j.micro = micro;
    j.technique = technique;
    j.cores = cores;
    j.iterations = iterations;
    j.workBetween = work_between;
    j.cbEntriesPerBank = cb_entries_per_bank;
    return j;
}

SweepJob
SweepJob::custom(std::string key, std::function<ExperimentResult()> fn)
{
    SweepJob j;
    j.key = std::move(key);
    j.kind = JobKind::Custom;
    j.fn = std::move(fn);
    return j;
}

ExperimentResult
SweepJob::execute() const
{
    switch (kind) {
      case JobKind::Profile:
        return runExperiment(profile, technique, cores, choice,
                             cbEntriesPerBank);
      case JobKind::Micro:
        return runSyncMicro(micro, technique, cores, iterations,
                            workBetween, cbEntriesPerBank);
      case JobKind::Custom:
        if (!fn)
            fatal("custom sweep job '", key, "' has no function");
        return fn();
    }
    // Reaching here means the enum itself is corrupt — a simulator bug,
    // not a user/config error (log.hh contract).
    panic("corrupt sweep job kind");
}

SweepRunner::SweepRunner(unsigned jobs) : workers_(jobs)
{
    if (workers_ == 0) {
        workers_ = std::max(1u, std::thread::hardware_concurrency());
    }
}

std::size_t
SweepRunner::add(SweepJob job)
{
    jobs_.push_back(std::move(job));
    return jobs_.size() - 1;
}

std::vector<JobOutcome>
SweepRunner::run(
    const std::function<void(std::size_t, const JobOutcome&)>& on_done)
{
    using Clock = std::chrono::steady_clock;

    std::vector<JobOutcome> outcomes(jobs_.size());

    std::atomic<std::size_t> next{0};
    std::atomic<unsigned> failures{0};
    std::mutex done_mutex;

    // Workers claim jobs by submission index and write to disjoint
    // slots, so the only shared mutable state is the claim counter,
    // the failure count, and the progress callback.
    auto worker = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= jobs_.size())
                return;
            JobOutcome& out = outcomes[i];
            if (maxFailures_ != 0 && failures.load() >= maxFailures_) {
                out.ok = false;
                out.status = JobStatus::Skipped;
                out.error = "sweep stopped: failure budget (" +
                            std::to_string(maxFailures_) + ") exhausted";
                if (on_done) {
                    std::lock_guard<std::mutex> lock(done_mutex);
                    on_done(i, out);
                }
                continue;
            }
            // Thread-scoped debug override: every chip this job builds
            // inherits the job's key as its forensic label and the
            // sweep's per-job wall-clock budget.
            DebugConfig dcfg = DebugConfig::current();
            dcfg.label = jobs_[i].key;
            if (jobTimeoutS_ > 0.0)
                dcfg.wallTimeoutS = jobTimeoutS_;
            DebugScope scope(dcfg);
            const auto start = Clock::now();
            try {
                out.result = jobs_[i].execute();
                out.ok = true;
                out.status = JobStatus::Ok;
            } catch (const TimeoutError& e) {
                out.ok = false;
                out.status = JobStatus::TimedOut;
                out.error = e.what();
                out.result = ExperimentResult();
            } catch (const std::exception& e) {
                out.ok = false;
                out.status = JobStatus::Failed;
                out.error = e.what();
                out.result = ExperimentResult();
            }
            out.wallMs =
                std::chrono::duration<double, std::milli>(Clock::now() -
                                                          start)
                    .count();
            if (!out.ok)
                failures.fetch_add(1);
            if (on_done) {
                std::lock_guard<std::mutex> lock(done_mutex);
                on_done(i, out);
            }
        }
    };

    const unsigned n =
        static_cast<unsigned>(std::min<std::size_t>(workers_,
                                                    jobs_.size()));
    if (n <= 1) {
        worker();
        return outcomes;
    }
    std::vector<std::thread> pool;
    pool.reserve(n);
    for (unsigned t = 0; t < n; ++t)
        pool.emplace_back(worker);
    for (auto& t : pool)
        t.join();
    return outcomes;
}

} // namespace cbsim
