#include "harness/experiment.hh"

#include "sim/log.hh"
#include "sim/rng.hh"

namespace cbsim {

ExperimentResult
finishExperiment(Chip& chip, WorkloadBuild w, bool check_guards)
{
    ExperimentResult res;
    res.run = chip.run();

    if (check_guards) {
        for (std::size_t l = 0; l < w.guardWords.size(); ++l) {
            const Word actual = chip.dataStore().read(w.guardWords[l]);
            if (actual != w.expectedGuardCounts[l]) {
                fatal("mutual-exclusion violation on lock ", l,
                      ": guard=", actual,
                      " expected=", w.expectedGuardCounts[l]);
            }
        }
    }
    res.energy = computeEnergy(res.run);
    res.workload = std::move(w);
    return res;
}

ExperimentResult
runExperiment(const Profile& profile, Technique technique, unsigned cores,
              SyncChoice choice, unsigned cb_entries_per_bank)
{
    ChipConfig cfg = ChipConfig::forTechnique(technique, cores);
    cfg.cbEntriesPerBank = cb_entries_per_bank;
    const SyncFlavor flavor = syncFlavorFor(technique);

    WorkloadBuild w =
        buildWorkload(profile, cores, flavor, choice.lock, choice.barrier);

    Chip chip(cfg);
    w.layout.apply(chip.dataStore());
    for (CoreId t = 0; t < cores; ++t)
        chip.setProgram(t, w.programs[t]);

    const bool check = profile.lockedSharedData &&
                       profile.lockAcqPerPhase > 0;
    return finishExperiment(chip, std::move(w), check);
}

const char*
syncMicroName(SyncMicro m)
{
    switch (m) {
      case SyncMicro::TtasLock: return "T&T&S";
      case SyncMicro::ClhLock: return "CLH";
      case SyncMicro::SrBarrier: return "SR-barrier";
      case SyncMicro::TreeBarrier: return "TreeSR-barrier";
      case SyncMicro::SignalWait: return "signal/wait";
      default: return "?";
    }
}

ExperimentResult
runSyncMicro(SyncMicro micro, Technique technique, unsigned cores,
             unsigned iterations, std::uint64_t work_between,
             unsigned cb_entries_per_bank)
{
    ChipConfig cfg = ChipConfig::forTechnique(technique, cores);
    cfg.cbEntriesPerBank = cb_entries_per_bank;
    const SyncFlavor flavor = syncFlavorFor(technique);

    WorkloadBuild w;
    auto& layout = w.layout;

    const bool is_lock =
        micro == SyncMicro::TtasLock || micro == SyncMicro::ClhLock;

    if (is_lock) {
        const LockAlgo algo = micro == SyncMicro::TtasLock
                                  ? LockAlgo::TestAndTestAndSet
                                  : LockAlgo::Clh;
        w.locks.push_back(makeLock(layout, algo, cores));
        const Addr guard = layout.allocLine();
        layout.init(guard, 0);
        w.guardWords.push_back(guard);
        w.expectedGuardCounts.push_back(
            static_cast<std::uint64_t>(cores) * iterations);
    } else if (micro == SyncMicro::SrBarrier) {
        // Fig. 20 pairing: the SR barrier uses the T&T&S counter lock.
        w.barrier =
            makeSrBarrier(layout, cores, LockAlgo::TestAndTestAndSet);
    } else if (micro == SyncMicro::TreeBarrier) {
        w.barrier = makeTreeBarrier(layout, cores);
    } else {
        // Signal/wait pairs: even cores signal, odd cores wait.
        for (unsigned p = 0; p < (cores + 1) / 2; ++p)
            w.signals.push_back(makeSignal(layout));
    }

    for (CoreId t = 0; t < cores; ++t) {
        Rng rng(0xABCDEFULL ^ (t * 0x9e3779b97f4a7c15ULL));
        Assembler a;
        a.workImm(rng.below(64));
        for (unsigned i = 0; i < iterations; ++i) {
            // Signal/wait: the producer is the slow side, so the wait
            // side genuinely spin-waits (the case the paper optimizes).
            const std::uint64_t work =
                micro == SyncMicro::SignalWait && t % 2 == 0
                    ? work_between * 6
                    : work_between;
            a.workImm(rng.jitter(std::max<std::uint64_t>(1, work), 0.5));
            if (is_lock) {
                emitAcquire(a, w.locks[0], flavor, t);
                a.workImm(50);
                a.movImm(0, w.guardWords[0]);
                a.ld(1, 0);
                a.addImm(1, 1, 1);
                a.st(1, 0);
                emitRelease(a, w.locks[0], flavor, t);
            } else if (micro == SyncMicro::SrBarrier ||
                       micro == SyncMicro::TreeBarrier) {
                emitBarrier(a, w.barrier, flavor, t);
            } else {
                const unsigned pair = t / 2;
                if (t % 2 == 0)
                    emitSignal(a, w.signals[pair], flavor);
                else
                    emitWait(a, w.signals[pair], flavor);
            }
        }
        a.done();
        w.programs.push_back(a.assemble());
    }

    Chip chip(cfg);
    w.layout.apply(chip.dataStore());
    for (CoreId t = 0; t < cores; ++t)
        chip.setProgram(t, w.programs[t]);
    return finishExperiment(chip, std::move(w), is_lock);
}

} // namespace cbsim
