/**
 * @file
 * Structured results layer: serializes every run of a sweep (config +
 * RunResult + EnergyBreakdown + message/flit counters) to a versioned
 * JSON artifact under bench/results/, so paper regenerations can be
 * diffed, regressed against, and plotted instead of existing only as
 * pretty-printed tables. Field-by-field schema: docs/RESULTS.md.
 *
 * Determinism contract: the emitted JSON is a pure function of the job
 * list and the simulator — no timestamps, hostnames, wall-clock times,
 * or thread counts — so a --jobs 1 and a --jobs N sweep over the same
 * jobs serialize byte-identically (asserted by tests/harness).
 */

#ifndef CBSIM_HARNESS_RESULT_SINK_HH
#define CBSIM_HARNESS_RESULT_SINK_HH

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "harness/sweep.hh"

namespace cbsim {

/** Collects sweep outcomes and writes the versioned JSON artifact. */
class ResultSink
{
  public:
    /**
     * Bump when the JSON layout changes; emitted as schema_version.
     * v2: per-run "status" string ("ok"/"failed"/"timeout"/"skipped")
     *     next to the "ok" bool (docs/RESULTS.md).
     * v3: sync-latency percentiles (metrics sync_*_p50/p95/p99 and
     *     per-kind p50/p95 rows) and the optional per-run "epochs"
     *     time-series array (docs/OBSERVABILITY.md).
     * v4: the optional per-run "contention" array — top contended
     *     lines with per-technique attribution columns and symbolic
     *     names (docs/OBSERVABILITY.md §Attribution).
     * v5: crash-safe sweeps (docs/ROBUSTNESS.md §Crash-safe sweeps) —
     *     per-run "attempts" count and "quarantined" flag, and the
     *     "crashed" status for --isolate children that died without
     *     delivering a result.
     */
    static constexpr unsigned kSchemaVersion = 5;

    explicit ResultSink(std::string bench_name);

    /** Attach a sweep-level string annotation (emitted in order). */
    void meta(const std::string& key, const std::string& value);

    /** Record one finished job, in submission order. */
    void add(const SweepJob& job, const JobOutcome& outcome);

    /**
     * Record one journal-replayed job (`--resume`): @p raw_row is the
     * verbatim serialized row loaded from the journal and is spliced
     * into the artifact byte-for-byte; @p outcome is the best-effort
     * reconstruction (result_codec.hh) feeding allOk() and the bench
     * table printers.
     */
    void addReplayed(const SweepJob& job, std::string raw_row,
                     const JobOutcome& outcome);

    std::size_t size() const { return entries_.size(); }
    bool allOk() const;

    void write(std::ostream& os) const;
    std::string toJson() const;

    /**
     * Write to @p path atomically: serialize to `<path>.tmp` in the
     * same directory, then rename(2) over the target — a sweep killed
     * mid-publish leaves either the old artifact or the new one, never
     * a torn file. Creates parent directories as needed. Fatal on I/O
     * failure.
     */
    void writeFile(const std::string& path) const;

  private:
    struct Entry
    {
        SweepJob job; ///< fn stripped; config only
        JobOutcome outcome;
        std::string rawRow; ///< non-empty: replayed, splice verbatim
    };

    std::string benchName_;
    std::vector<std::pair<std::string, std::string>> meta_;
    std::vector<Entry> entries_;
};

} // namespace cbsim

#endif // CBSIM_HARNESS_RESULT_SINK_HH
