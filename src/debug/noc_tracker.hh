/**
 * @file
 * In-flight NoC message tracking for forensics and leak checking.
 *
 * The mesh itself keeps no per-message state — a message lives only in
 * the closures of its scheduled hop events — so when a run wedges there
 * is normally nothing to enumerate. When message tracking is enabled
 * (DebugConfig::trackMessagesEffective()), the mesh registers every
 * injected message here and reports each hop, letting the watchdog dump
 * "which messages are in flight and where" and the invariant checker
 * assert that nothing is still undelivered once the queue drains.
 *
 * Slot-based: onInject returns a slot id the mesh threads through its
 * hop closures; entries are recycled via a free list so steady state
 * allocates nothing.
 */

#ifndef CBSIM_DEBUG_NOC_TRACKER_HH
#define CBSIM_DEBUG_NOC_TRACKER_HH

#include <cstdint>
#include <vector>

#include "noc/message.hh"
#include "sim/log.hh"
#include "sim/types.hh"

namespace cbsim {

class NocTracker
{
  public:
    std::uint32_t
    onInject(const Message& msg, Tick now)
    {
        std::uint32_t slot;
        if (free_.empty()) {
            slot = static_cast<std::uint32_t>(entries_.size());
            entries_.push_back(Entry{});
        } else {
            slot = free_.back();
            free_.pop_back();
        }
        Entry& e = entries_[slot];
        e.msg = msg;
        e.at = msg.src;
        e.injectedAt = now;
        e.live = true;
        ++inFlight_;
        return slot;
    }

    void
    onHop(std::uint32_t slot, NodeId at)
    {
        entries_[slot].at = at;
    }

    void
    onDeliver(std::uint32_t slot)
    {
        CBSIM_ASSERT(entries_[slot].live,
                     "NocTracker: double delivery of slot ", slot);
        entries_[slot].live = false;
        free_.push_back(slot);
        --inFlight_;
    }

    std::size_t inFlight() const { return inFlight_; }

    /** Visit every undelivered message: fn(msg, currentNode, injectedAt). */
    template <typename Fn>
    void
    forEachInFlight(Fn&& fn) const
    {
        for (const Entry& e : entries_) {
            if (e.live)
                fn(e.msg, e.at, e.injectedAt);
        }
    }

  private:
    struct Entry
    {
        Message msg;
        NodeId at = 0;
        Tick injectedAt = 0;
        bool live = false;
    };

    std::vector<Entry> entries_;
    std::vector<std::uint32_t> free_;
    std::size_t inFlight_ = 0;
};

} // namespace cbsim

#endif // CBSIM_DEBUG_NOC_TRACKER_HH
