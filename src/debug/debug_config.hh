/**
 * @file
 * Configuration for the robustness subsystem (docs/ROBUSTNESS.md):
 * watchdog liveness detection, protocol invariant checking, and
 * deterministic fault injection.
 *
 * Defaults resolve in three layers so every entry point stays cheap and
 * deterministic:
 *  - process defaults, initialized once from the environment
 *    (CBSIM_CHECK_INVARIANTS=1 turns the invariant checker on — this is
 *    how ctest enables it for the whole suite without touching bench
 *    runs);
 *  - thread overrides, installed RAII-style by DebugScope (the sweep
 *    runner uses this to attach a per-job label and wall-clock timeout
 *    to whatever chips the job builds);
 *  - explicit per-chip settings, by assigning ChipConfig::debug.
 *
 * Everything here is off by default and none of it influences simulated
 * behaviour unless fault injection is enabled, so results artifacts
 * remain a pure function of the job list (docs/RESULTS.md contract).
 */

#ifndef CBSIM_DEBUG_DEBUG_CONFIG_HH
#define CBSIM_DEBUG_DEBUG_CONFIG_HH

#include <cstdint>
#include <string>

#include "obs/obs_config.hh"
#include "sim/types.hh"

namespace cbsim {

/**
 * Deterministic fault plan (paper §3: the callback directory is not
 * backed up, so eviction while cores are blocked must be survivable —
 * this provokes exactly those recovery paths on purpose).
 *
 * All injection decisions are drawn from per-site Rng streams seeded
 * from @c seed, inside the single-threaded event loop of one chip, so a
 * run under a fault plan is still a pure function of (config, seed):
 * identical seeds give byte-identical results.
 */
struct FaultPlan
{
    std::uint64_t seed = 0;

    /**
     * Callback-directory eviction storm: every @c cbEvictPeriod-th
     * directory operation force-evicts an entry that has live waiters
     * (victimizing them exactly as a capacity replacement would).
     * 0 = off. Combines with @c cbEvictChance (either trigger fires).
     */
    unsigned cbEvictPeriod = 0;
    double cbEvictChance = 0.0; ///< per-directory-op probability

    /** Bounded random extra delay on NoC message injection. */
    double nocDelayChance = 0.0;
    Tick nocDelayMax = 0;

    /** Bounded random perturbation of L1 self-invalidation timing. */
    double selfInvlChance = 0.0;
    Tick selfInvlDelayMax = 0;

    bool
    enabled() const
    {
        return cbEvictPeriod != 0 || cbEvictChance > 0.0 ||
               nocDelayChance > 0.0 || selfInvlChance > 0.0;
    }
};

/** Per-chip robustness settings (see file comment for default layers). */
struct DebugConfig
{
    /** Run the protocol invariant checker (panics on violation). */
    bool checkInvariants = false;

    /** Events between watchdog polls / interval invariant checks. */
    std::uint64_t checkIntervalEvents = 200'000;

    /**
     * No-progress window: trip the watchdog when this many ticks elapse
     * with zero instructions retired chip-wide. 0 = off. Long Work
     * instructions legitimately retire nothing for their whole duration,
     * so keep this well above the longest Work in the workload.
     */
    Tick noProgressWindow = 0;

    /**
     * Track in-flight NoC messages for forensics and the end-of-run
     * leak invariant. Enabled implicitly with invariant checking.
     */
    bool trackMessages = false;

    /**
     * Per-chip wall-clock budget in seconds (0 = off). Checked
     * cooperatively at watchdog polls; trips as TimeoutError. The sweep
     * runner's --job-timeout-s installs this via DebugScope.
     */
    double wallTimeoutS = 0.0;

    /**
     * Directory for forensic JSON dumps ("" = stderr only). The bench
     * driver points this at its --out-dir so dumps land next to the
     * run's results artifacts.
     */
    std::string forensicDir;

    /** Label naming this run in forensic dumps and file names. */
    std::string label = "run";

    FaultPlan faults;

    /**
     * Observability settings (epoch sampling, trace export — see
     * docs/OBSERVABILITY.md). Carried here so they resolve through the
     * same env → DebugScope → ChipConfig layering as everything else.
     */
    ObsConfig obs;

    bool
    trackMessagesEffective() const
    {
        return trackMessages || checkInvariants || faults.enabled();
    }

    bool
    wantsPolling() const
    {
        return checkInvariants || noProgressWindow != 0 ||
               wallTimeoutS > 0.0;
    }

    /** Mutable process-wide defaults (first use reads the environment). */
    static DebugConfig& processDefaults();

    /** Effective defaults for this thread (overrides, else process). */
    static const DebugConfig& current();
};

/**
 * RAII thread-scoped override of DebugConfig::current(). Nests; the
 * previous override (or the process defaults) is restored on
 * destruction.
 */
class DebugScope
{
  public:
    explicit DebugScope(DebugConfig cfg);
    ~DebugScope();

    DebugScope(const DebugScope&) = delete;
    DebugScope& operator=(const DebugScope&) = delete;

  private:
    const DebugConfig* saved_;
    DebugConfig cfg_;
};

} // namespace cbsim

#endif // CBSIM_DEBUG_DEBUG_CONFIG_HH
