/**
 * @file
 * Forensic-report emission (docs/ROBUSTNESS.md §Forensic dumps).
 *
 * The Chip composes the report JSON (it owns every component worth
 * dumping); this module owns the delivery: every report goes to stderr,
 * and — when DebugConfig::forensicDir is set — to a machine-readable
 * file next to the run's results artifacts, named after the run label.
 */

#ifndef CBSIM_DEBUG_FORENSICS_HH
#define CBSIM_DEBUG_FORENSICS_HH

#include <string>

#include "debug/debug_config.hh"

namespace cbsim {
namespace forensics {

/** Current forensic-report schema tag (the report's "schema" field). */
inline constexpr const char* kSchema = "cbsim-forensic-v1";

/**
 * Filesystem-safe form of a run label: characters outside
 * [A-Za-z0-9._-] become '_'; empty labels become "run". When any
 * character was substituted, a "-xxxxxxxx" FNV-1a hash of the original
 * label is appended so distinct labels ("a/b" vs "a_b") cannot collide
 * on the same file. Deterministic: a pure function of the label.
 */
std::string sanitizeLabel(const std::string& label);

/**
 * Deliver a composed report: write @p json (plus a trailing newline)
 * to stderr, and to `<cfg.forensicDir>/<label>.forensic.json` when a
 * directory is configured. Never throws — a failing dump must not mask
 * the error that triggered it.
 *
 * @return the file path written, or "" if stderr-only.
 */
std::string emitReport(const DebugConfig& cfg, const std::string& json);

} // namespace forensics
} // namespace cbsim

#endif // CBSIM_DEBUG_FORENSICS_HH
