/**
 * @file
 * Runtime protocol invariant checker (docs/ROBUSTNESS.md §Invariants).
 *
 * Validates cross-component protocol state at event-count intervals
 * (from the watchdog's poll hook, i.e. between events — never inside
 * one, so single-event-atomic transients are invisible by design) and
 * at quiesce. Each check is named; violations are formatted as
 * "[name] detail" strings and enforced via panic() — the Chip attaches
 * the forensic dump on the way out.
 *
 * Checked invariants (names are load-bearing: scripts/check_docs.sh
 * requires each to be documented in docs/ROBUSTNESS.md):
 *
 *  - "mesi-single-owner":    at most one L1 holds a line in E/M, and the
 *                            home directory's owner field names it.
 *  - "mesi-sharer-tracking": every line cached by an L1 is tracked by
 *                            the home directory (a cached-but-untracked
 *                            line would miss invalidations — the stale-
 *                            sharer bug class). Lines with an open
 *                            directory transaction or a pending L1 miss
 *                            are skipped as legitimately transient.
 *  - "vips-page-private":    an L1 line marked private-page belongs to a
 *                            page the classifier still considers Private
 *                            to that core (a stale private mark would
 *                            escape self-invalidation, paper §3.1).
 *  - "cb-waiter-live":       callback-directory CB bits name exactly the
 *                            cores that are alive, blocked on a callback
 *                            read, and parked at the owning bank
 *                            (paper §2: CB bit set ⟺ blocked ld_cb).
 *  - "cb-fe-consistent":     F/E discipline (paper §2.3): a core never
 *                            has its CB and F/E bits both set (every
 *                            transition preserves disjointness — note
 *                            st_cb0 legally carries a partial All-mode
 *                            F/E mask into One mode, where reads treat
 *                            F/E as a boolean); no bits beyond the core
 *                            count.
 *  - "mshr-no-leak":         (quiesce) every bank's line-lock table is
 *                            empty — a held lock means a lost unlock.
 *  - "txn-no-leak":          (quiesce) no MESI directory transaction is
 *                            still open.
 *  - "waiter-no-leak":       (quiesce) no callback waiter is still
 *                            parked after all cores finished.
 *  - "noc-no-leak":          (quiesce) no tracked NoC message is still
 *                            undelivered.
 */

#ifndef CBSIM_DEBUG_INVARIANT_CHECKER_HH
#define CBSIM_DEBUG_INVARIANT_CHECKER_HH

#include <string>
#include <vector>

#include "sim/types.hh"

namespace cbsim {

class Core;
class MesiL1;
class MesiLlcBank;
class VipsL1;
class VipsLlcBank;
class PageClassifier;
class NocTracker;

class InvariantChecker
{
  public:
    /** Names of all checked invariants (docs coverage + tests). */
    static const std::vector<const char*>& invariantNames();

    /**
     * Non-owning views of the chip's components. Vectors are indexed
     * by CoreId/BankId (Chip construction order). Exactly one protocol
     * family is populated; the other stays empty.
     */
    struct Sources
    {
        std::vector<const Core*> cores;
        std::vector<const MesiL1*> mesiL1s;
        std::vector<const MesiLlcBank*> mesiBanks;
        std::vector<const VipsL1*> vipsL1s;
        std::vector<const VipsLlcBank*> vipsBanks;
        const PageClassifier* classifier = nullptr;
        const NocTracker* noc = nullptr;
    };

    explicit InvariantChecker(Sources src) : src_(std::move(src)) {}

    /** Interval pass (between events): protocol-state invariants. */
    std::vector<std::string> checkInterval() const;

    /** Quiesce pass: interval invariants + end-of-run leak checks. */
    std::vector<std::string> checkQuiesce() const;

    /** panic() with all violations if @p violations is non-empty. */
    static void enforce(const char* when,
                        const std::vector<std::string>& violations);

  private:
    void checkMesi(std::vector<std::string>& out) const;
    void checkVips(std::vector<std::string>& out) const;
    void checkCallbacks(std::vector<std::string>& out) const;
    void checkLeaks(std::vector<std::string>& out) const;

    Sources src_;
};

} // namespace cbsim

#endif // CBSIM_DEBUG_INVARIANT_CHECKER_HH
