/**
 * @file
 * Deterministic fault injection (docs/ROBUSTNESS.md §Fault injection).
 *
 * A FaultInjector turns a FaultPlan into per-site decisions. Each
 * injection site draws from its own Rng stream (seeded seed ^ site tag)
 * so enabling one fault class does not shift the random sequence seen
 * by another, and the decision sequence at a site is a pure function of
 * (plan, site, call count) — the soak tests assert byte-identical
 * results for identical seeds on the strength of this.
 *
 * Components hold a FaultInjector* that is null unless the chip's
 * DebugConfig carries an enabled plan, so the production hot paths pay
 * one null check per site.
 */

#ifndef CBSIM_DEBUG_FAULT_INJECTION_HH
#define CBSIM_DEBUG_FAULT_INJECTION_HH

#include <cstdint>

#include "debug/debug_config.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace cbsim {

class FaultInjector
{
  public:
    explicit FaultInjector(const FaultPlan& plan)
        : plan_(plan),
          cbRng_(plan.seed ^ 0xcb01cb01cb01cb01ULL),
          nocRng_(plan.seed ^ 0x0c0c0c0c0c0c0c0cULL),
          invlRng_(plan.seed ^ 0x51e1f51e1f51e1f5ULL)
    {}

    const FaultPlan& plan() const { return plan_; }

    /**
     * Callback-directory eviction storm: should this directory
     * operation force-evict a live-waiter entry first? (Paper §3: the
     * directory is not backed up, so eviction under waiters must
     * resolve them with the current value — this provokes that path.)
     */
    bool
    cbEvictNow()
    {
        ++cbOps_;
        if (plan_.cbEvictPeriod != 0 && cbOps_ % plan_.cbEvictPeriod == 0)
            return true;
        return plan_.cbEvictChance > 0.0 &&
               cbRng_.chance(plan_.cbEvictChance);
    }

    /** Extra injection delay (ticks) for a NoC message; usually 0. */
    Tick
    nocDelay()
    {
        if (plan_.nocDelayChance <= 0.0 || plan_.nocDelayMax == 0 ||
            !nocRng_.chance(plan_.nocDelayChance)) {
            return 0;
        }
        return nocRng_.range(1, plan_.nocDelayMax);
    }

    /** Extra delay (ticks) before an L1 self-invalidation; usually 0. */
    Tick
    selfInvlDelay()
    {
        if (plan_.selfInvlChance <= 0.0 || plan_.selfInvlDelayMax == 0 ||
            !invlRng_.chance(plan_.selfInvlChance)) {
            return 0;
        }
        return invlRng_.range(1, plan_.selfInvlDelayMax);
    }

    std::uint64_t cbForcedEvictions() const { return cbForcedEvictions_; }
    void noteCbForcedEviction() { ++cbForcedEvictions_; }

  private:
    FaultPlan plan_;
    Rng cbRng_;
    Rng nocRng_;
    Rng invlRng_;
    std::uint64_t cbOps_ = 0;
    std::uint64_t cbForcedEvictions_ = 0;
};

} // namespace cbsim

#endif // CBSIM_DEBUG_FAULT_INJECTION_HH
