#include "debug/debug_config.hh"

#include <cstdlib>

namespace cbsim {

namespace {

bool
envFlag(const char* name)
{
    const char* v = std::getenv(name);
    return v != nullptr && v[0] != '\0' && v[0] != '0';
}

DebugConfig
fromEnvironment()
{
    DebugConfig cfg;
    if (envFlag("CBSIM_CHECK_INVARIANTS"))
        cfg.checkInvariants = true;
    if (const char* dir = std::getenv("CBSIM_FORENSIC_DIR"))
        cfg.forensicDir = dir;
    if (const char* epoch = std::getenv("CBSIM_OBS_EPOCH")) {
        char* end = nullptr;
        const unsigned long long ticks = std::strtoull(epoch, &end, 10);
        if (end != epoch)
            cfg.obs.epochTicks = static_cast<Tick>(ticks);
    }
    if (const char* dir = std::getenv("CBSIM_TRACE_DIR"))
        cfg.obs.traceDir = dir;
    if (envFlag("CBSIM_OBS_ATTR"))
        cfg.obs.attribution = true;
    return cfg;
}

thread_local const DebugConfig* tlsOverride = nullptr;

} // namespace

DebugConfig&
DebugConfig::processDefaults()
{
    static DebugConfig defaults = fromEnvironment();
    return defaults;
}

const DebugConfig&
DebugConfig::current()
{
    return tlsOverride != nullptr ? *tlsOverride : processDefaults();
}

DebugScope::DebugScope(DebugConfig cfg)
    : saved_(tlsOverride), cfg_(std::move(cfg))
{
    tlsOverride = &cfg_;
}

DebugScope::~DebugScope()
{
    tlsOverride = saved_;
}

} // namespace cbsim
