#include "debug/watchdog.hh"

#include "sim/log.hh"

namespace cbsim {

void
Watchdog::poll()
{
    if (cfg_.wallTimeoutS > 0.0) {
        const double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - startWall_)
                .count();
        if (elapsed > cfg_.wallTimeoutS) {
            throw TimeoutError(detail::format(
                "watchdog: run '", cfg_.label, "' exceeded wall-clock "
                "budget of ", cfg_.wallTimeoutS, " s (", elapsed,
                " s elapsed at tick ", eq_.now(), ")"));
        }
    }

    if (cfg_.noProgressWindow != 0 && hooks_.progressCounter) {
        const std::uint64_t cur = hooks_.progressCounter();
        if (cur != lastProgress_) {
            lastProgress_ = cur;
            lastProgressTick_ = eq_.now();
        } else if (eq_.now() - lastProgressTick_ > cfg_.noProgressWindow) {
            fatal("watchdog: no instructions retired for ",
                  eq_.now() - lastProgressTick_, " ticks (window ",
                  cfg_.noProgressWindow, "); likely deadlock or ",
                  "livelock at tick ", eq_.now());
        }
    }

    if (hooks_.checkInvariants)
        hooks_.checkInvariants();
}

} // namespace cbsim
