/**
 * @file
 * Liveness watchdog (docs/ROBUSTNESS.md §Watchdog).
 *
 * Rides the event queue's poll hook — it never schedules events of its
 * own, because a self-rescheduling check event would keep the queue
 * from draining and defeat quiesce detection. At each poll (every
 * DebugConfig::checkIntervalEvents executed events) it:
 *
 *  - trips on a no-progress window: noProgressWindow > 0 ticks elapsed
 *    with zero instructions retired chip-wide (FatalError — spinning
 *    hardware with a wedged workload);
 *  - trips on wall-clock timeout: wallTimeoutS exceeded (TimeoutError,
 *    the cooperative mechanism behind the sweep runner's
 *    --job-timeout-s);
 *  - runs the interval protocol invariant check (panics on violation).
 *
 * The watchdog only throws; the Chip catches anything escaping the
 * event loop, attaches the forensic dump, and rethrows — so every trip
 * reaches the user with the full machine state.
 */

#ifndef CBSIM_DEBUG_WATCHDOG_HH
#define CBSIM_DEBUG_WATCHDOG_HH

#include <chrono>
#include <cstdint>
#include <functional>

#include "debug/debug_config.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace cbsim {

class Watchdog
{
  public:
    struct Hooks
    {
        /** Chip-wide instructions-retired counter (monotonic). */
        std::function<std::uint64_t()> progressCounter;
        /** Interval invariant check; panics on violation. May be null. */
        std::function<void()> checkInvariants;
    };

    Watchdog(EventQueue& eq, const DebugConfig& cfg, Hooks hooks)
        : eq_(eq), cfg_(cfg), hooks_(std::move(hooks))
    {}

    /**
     * Arm the watchdog: installs the poll hook if the config wants any
     * polling duty, else leaves the queue untouched (zero cost).
     */
    void
    install()
    {
        if (!cfg_.wantsPolling())
            return;
        startWall_ = std::chrono::steady_clock::now();
        lastProgressTick_ = eq_.now();
        if (hooks_.progressCounter)
            lastProgress_ = hooks_.progressCounter();
        eq_.setPollHook(cfg_.checkIntervalEvents, [this] { poll(); });
    }

    /** One poll pass; public so tests can drive it directly. */
    void poll();

  private:
    EventQueue& eq_;
    DebugConfig cfg_;
    Hooks hooks_;

    std::chrono::steady_clock::time_point startWall_{};
    Tick lastProgressTick_ = 0;
    std::uint64_t lastProgress_ = 0;
};

} // namespace cbsim

#endif // CBSIM_DEBUG_WATCHDOG_HH
