#include "debug/invariant_checker.hh"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "coherence/mesi/mesi_l1.hh"
#include "coherence/mesi/mesi_llc.hh"
#include "coherence/vips/page_classifier.hh"
#include "coherence/vips/vips_l1.hh"
#include "coherence/vips/vips_llc.hh"
#include "core/core.hh"
#include "debug/noc_tracker.hh"
#include "mem/addr.hh"
#include "sim/log.hh"

namespace cbsim {

namespace {

template <typename... Args>
std::string
violation(const char* name, Args&&... args)
{
    std::ostringstream os;
    os << "[" << name << "] ";
    (os << ... << args);
    return os.str();
}

std::string
hex(Addr a)
{
    std::ostringstream os;
    os << "0x" << std::hex << a;
    return os.str();
}

} // namespace

const std::vector<const char*>&
InvariantChecker::invariantNames()
{
    static const std::vector<const char*> names = {
        "mesi-single-owner", "mesi-sharer-tracking", "vips-page-private",
        "cb-waiter-live",    "cb-fe-consistent",     "mshr-no-leak",
        "txn-no-leak",       "waiter-no-leak",       "noc-no-leak",
    };
    return names;
}

void
InvariantChecker::checkMesi(std::vector<std::string>& out) const
{
    if (src_.mesiBanks.empty())
        return;
    const unsigned num_banks =
        static_cast<unsigned>(src_.mesiBanks.size());

    // Lines that are legitimately mid-transaction: an open directory
    // transaction at any bank, or a pending miss at any L1. Sharer and
    // owner state for these is transient (invalidations or data still
    // on the wire) and is not checked.
    std::unordered_set<Addr> transient;
    for (const MesiLlcBank* bank : src_.mesiBanks) {
        for (Addr a : bank->openTxnAddrs())
            transient.insert(a);
    }
    for (const MesiL1* l1 : src_.mesiL1s) {
        if (auto line = l1->pendingLine())
            transient.insert(*line);
    }

    std::unordered_map<Addr, CoreId> owners; // line -> E/M holder seen
    for (CoreId c = 0; c < src_.mesiL1s.size(); ++c) {
        for (const auto& [line, state] : src_.mesiL1s[c]->cachedLines()) {
            if (transient.count(line))
                continue;
            const MesiLlcBank* home =
                src_.mesiBanks[AddrLayout::bankOf(line, num_banks)];
            if (state == MesiState::S) {
                if ((home->sharersOf(line) & (1ULL << c)) == 0) {
                    out.push_back(violation(
                        "mesi-sharer-tracking", "core ", c,
                        " caches line ", hex(line),
                        " in S but the home directory does not track "
                        "it (sharers=",
                        home->sharersOf(line), ")"));
                }
                continue;
            }
            // E or M: exclusive ownership.
            auto [it, fresh] = owners.emplace(line, c);
            if (!fresh) {
                out.push_back(violation(
                    "mesi-single-owner", "cores ", it->second, " and ",
                    c, " both hold line ", hex(line), " in E/M"));
            }
            if (home->ownerOf(line) != c) {
                out.push_back(violation(
                    "mesi-single-owner", "core ", c, " holds line ",
                    hex(line), " in E/M but the home directory names ",
                    "owner ", home->ownerOf(line)));
            }
        }
    }
}

void
InvariantChecker::checkVips(std::vector<std::string>& out) const
{
    if (src_.vipsL1s.empty() || src_.classifier == nullptr)
        return;
    for (CoreId c = 0; c < src_.vipsL1s.size(); ++c) {
        src_.vipsL1s[c]->forEachCachedLine(
            [&](Addr line, bool private_page, std::uint32_t) {
                if (!private_page)
                    return;
                const CoreId owner = src_.classifier->privateOwner(line);
                if (owner != c) {
                    out.push_back(violation(
                        "vips-page-private", "core ", c, " caches line ",
                        hex(line),
                        " marked private-page, but the classifier's ",
                        "owner is ", owner,
                        " (stale mark escapes self-invalidation)"));
                }
            });
    }
}

void
InvariantChecker::checkCallbacks(std::vector<std::string>& out) const
{
    if (src_.vipsBanks.empty())
        return;
    const unsigned num_cores = static_cast<unsigned>(src_.cores.size());
    const std::uint64_t all_mask =
        num_cores == 64 ? ~0ULL : ((1ULL << num_cores) - 1);

    for (const VipsLlcBank* bank : src_.vipsBanks) {
        // Parked waiters, for the CB bit <-> parked request biconditional.
        std::unordered_set<std::uint64_t> parked; // (word<<6)|core
        for (const auto& [word, core] : bank->parkedWaiterList()) {
            parked.insert((static_cast<std::uint64_t>(word) << 6) | core);
            if (!bank->directory().hasCallback(word, core)) {
                out.push_back(violation(
                    "cb-waiter-live", "core ", core,
                    " is parked on word ", hex(word),
                    " but its CB bit is clear"));
            }
        }

        for (const auto& e : bank->directory().entryStates()) {
            if ((e.cb & ~all_mask) != 0 || (e.fe & ~all_mask) != 0) {
                out.push_back(violation(
                    "cb-fe-consistent", "entry ", hex(e.word),
                    " has bits beyond the core count (cb=", e.cb,
                    " fe=", e.fe, ")"));
            }
            // Both modes: a core never has a pending callback and a
            // full bit at once. (One mode reads F/E as a boolean, and
            // st_cb0 carries a partial All-mode mask into One mode
            // undisturbed, so all-or-nothing does NOT hold there —
            // only disjointness is preserved by every transition.)
            if ((e.cb & e.fe) != 0) {
                out.push_back(violation(
                    "cb-fe-consistent", "entry ", hex(e.word),
                    " has cores with both CB and F/E set (cb=", e.cb,
                    " fe=", e.fe, ")"));
            }

            for (CoreId c = 0; c < num_cores; ++c) {
                if ((e.cb & (1ULL << c)) == 0)
                    continue;
                const Core* core = src_.cores[c];
                if (core->finished()) {
                    out.push_back(violation(
                        "cb-waiter-live", "CB bit of finished core ", c,
                        " is set for word ", hex(e.word)));
                } else if (!core->blockedOnCallback()) {
                    out.push_back(violation(
                        "cb-waiter-live", "CB bit of core ", c,
                        " is set for word ", hex(e.word),
                        " but the core is not blocked on a callback ",
                        "read"));
                }
                if (!parked.count(
                        (static_cast<std::uint64_t>(e.word) << 6) | c)) {
                    out.push_back(violation(
                        "cb-waiter-live", "CB bit of core ", c,
                        " is set for word ", hex(e.word),
                        " but no request is parked at the bank"));
                }
            }
        }
    }
}

void
InvariantChecker::checkLeaks(std::vector<std::string>& out) const
{
    for (std::size_t b = 0; b < src_.mesiBanks.size(); ++b) {
        const MesiLlcBank* bank = src_.mesiBanks[b];
        if (bank->lockTable().lockedLines() != 0) {
            out.push_back(violation(
                "mshr-no-leak", "MESI bank ", b, " still holds ",
                bank->lockTable().lockedLines(),
                " line locks at end of run"));
        }
        if (const auto open = bank->openTxnAddrs(); !open.empty()) {
            out.push_back(violation(
                "txn-no-leak", "MESI bank ", b, " still has ",
                open.size(), " open directory transactions, first on ",
                hex(open.front())));
        }
    }
    for (std::size_t b = 0; b < src_.vipsBanks.size(); ++b) {
        const VipsLlcBank* bank = src_.vipsBanks[b];
        if (bank->lockTable().lockedLines() != 0) {
            out.push_back(violation(
                "mshr-no-leak", "VIPS bank ", b, " still holds ",
                bank->lockTable().lockedLines(),
                " line locks at end of run"));
        }
        if (bank->parkedWaiters() != 0) {
            out.push_back(violation(
                "waiter-no-leak", "VIPS bank ", b, " still has ",
                bank->parkedWaiters(),
                " parked callback waiters at end of run"));
        }
    }
    if (src_.noc != nullptr && src_.noc->inFlight() != 0) {
        std::size_t listed = 0;
        std::ostringstream os;
        src_.noc->forEachInFlight(
            [&](const Message& m, NodeId at, Tick injected) {
                if (listed++ < 4) {
                    os << " {" << m.toString() << " at node " << at
                       << " since tick " << injected << "}";
                }
            });
        out.push_back(violation(
            "noc-no-leak", src_.noc->inFlight(),
            " messages still in flight at end of run:", os.str()));
    }
}

std::vector<std::string>
InvariantChecker::checkInterval() const
{
    std::vector<std::string> out;
    checkMesi(out);
    checkVips(out);
    checkCallbacks(out);
    return out;
}

std::vector<std::string>
InvariantChecker::checkQuiesce() const
{
    std::vector<std::string> out = checkInterval();
    checkLeaks(out);
    return out;
}

void
InvariantChecker::enforce(const char* when,
                          const std::vector<std::string>& violations)
{
    if (violations.empty())
        return;
    std::ostringstream os;
    os << violations.size() << " protocol invariant violation"
       << (violations.size() == 1 ? "" : "s") << " (" << when << "):";
    for (const auto& v : violations)
        os << "\n  " << v;
    panic(os.str());
}

} // namespace cbsim
