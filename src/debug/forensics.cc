#include "debug/forensics.hh"

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>

namespace cbsim {
namespace forensics {

std::string
sanitizeLabel(const std::string& label)
{
    if (label.empty())
        return "run";
    std::string out;
    out.reserve(label.size());
    bool substituted = false;
    for (char c : label) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                        c == '-';
        if (!ok)
            substituted = true;
        out.push_back(ok ? c : '_');
    }
    // Substitution is lossy ("a/b" and "a_b" collapse to the same
    // stem), and colliding labels silently overwrite each other's
    // trace/forensic files. Disambiguate with a short FNV-1a hash of
    // the original label — a pure function, so filenames stay
    // deterministic across runs and worker counts.
    if (substituted) {
        std::uint32_t h = 2166136261u;
        for (char c : label) {
            h ^= static_cast<unsigned char>(c);
            h *= 16777619u;
        }
        char suffix[12];
        std::snprintf(suffix, sizeof(suffix), "-%08x", h);
        out += suffix;
    }
    return out;
}

std::string
emitReport(const DebugConfig& cfg, const std::string& json)
{
    std::string path;
    try {
        std::cerr << "=== cbsim forensic report ===\n"
                  << json << "\n"
                  << "=== end forensic report ===" << std::endl;
        if (!cfg.forensicDir.empty()) {
            // A dump can precede the run's results artifacts (the bench
            // driver points forensicDir at --out-dir, which ResultSink
            // only creates at sweep end).
            std::error_code ec;
            std::filesystem::create_directories(cfg.forensicDir, ec);
            path = cfg.forensicDir + "/" + sanitizeLabel(cfg.label) +
                   ".forensic.json";
            std::ofstream out(path, std::ios::trunc);
            if (out) {
                out << json << "\n";
            } else {
                std::cerr << "warn: could not write forensic file "
                          << path << std::endl;
                path.clear();
            }
        }
    } catch (...) {
        // Swallow everything: the dump rides on an error path already.
    }
    return path;
}

} // namespace forensics
} // namespace cbsim
