/**
 * @file
 * Aggregated per-run metrics extracted from a finished simulation —
 * the quantities behind every figure in the paper's evaluation.
 */

#ifndef CBSIM_SYSTEM_RUN_RESULT_HH
#define CBSIM_SYSTEM_RUN_RESULT_HH

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/core.hh"
#include "obs/attribution.hh"
#include "obs/epoch.hh"
#include "stats/stats.hh"

namespace cbsim {

/** One synchronization kind's latency summary. */
struct SyncKindResult
{
    std::uint64_t completions = 0;
    double meanLatency = 0.0;
    std::uint64_t totalLatency = 0;
    std::uint64_t maxLatency = 0;
    double p50Latency = 0.0; ///< median per-operation latency
    double p95Latency = 0.0;
    double p99Latency = 0.0; ///< tail latency (fairness indicator)
};

/** Metrics of one simulation run. */
struct RunResult
{
    Tick cycles = 0;            ///< parallel-section execution time
    std::uint64_t llcAccesses = 0;
    std::uint64_t llcSyncAccesses = 0; ///< Fig. 1 / Fig. 20 metric
    std::uint64_t l1Accesses = 0;
    std::uint64_t cbdirAccesses = 0;
    std::uint64_t flitHops = 0;        ///< network traffic metric
    std::uint64_t packets = 0;
    std::uint64_t memReads = 0;
    std::uint64_t instructions = 0;
    std::uint64_t invalidationsSent = 0;
    std::uint64_t cbWakeups = 0;
    std::uint64_t cbdirEvictions = 0;
    std::uint64_t stallCycles = 0;     ///< total core memory-stall cycles
    std::uint64_t cbBlockedCycles = 0; ///< stalls in blocking callbacks

    /**
     * Kernel events executed by the run's EventQueue, and the host wall
     * time spent inside the event loop (Chip::run's dispatch window,
     * excluding chip construction, workload build, and stats
     * extraction). Host-performance instrumentation only
     * (bench_perf_kernel, bench_all --profile) — deliberately NOT part
     * of scalarFields(), so neither ever enters the deterministic JSON
     * artifacts (docs/RESULTS.md contract).
     */
    std::uint64_t events = 0;
    double simWallMs = 0.0;

    std::array<SyncKindResult, SyncStats::numKinds> sync{};

    /**
     * Per-epoch activity time series; empty unless epoch sampling was
     * enabled (ObsConfig::epochTicks). Serialized as the "epochs"
     * array of schema-v3 artifacts.
     */
    std::vector<EpochRow> epochs;

    /**
     * Top contended lines by attributed stall cycles; empty unless
     * contention attribution was enabled (ObsConfig::attribution).
     * Serialized as the "contention" array of schema-v4 artifacts.
     */
    std::vector<ContentionRow> contention;

    /** Rows kept in `contention` (ranked by cycles desc, addr asc). */
    static constexpr std::size_t kContentionTopN = 16;

    /** Sum counters named "<any prefix>.<suffix>" starting with prefix. */
    static std::uint64_t sumWhere(const StatSet& stats,
                                  const std::string& prefix,
                                  const std::string& suffix);

    /** Extract every metric from a finished run's stats. */
    static RunResult fromStats(const StatSet& stats, const SyncStats& sync,
                               Tick cycles);

    /**
     * Every scalar counter as a (snake_case name, value) pair, in a
     * fixed order. The single source of truth for serializers (the
     * harness ResultSink) and diff tools — extend this when adding a
     * counter so downstream artifacts pick it up automatically.
     */
    std::vector<std::pair<const char*, std::uint64_t>> scalarFields() const;

    std::string summary() const;
};

} // namespace cbsim

#endif // CBSIM_SYSTEM_RUN_RESULT_HH
