/**
 * @file
 * Top-level system builder: wires cores, L1s, LLC banks, the mesh, the
 * memory model, and (for VIPS) the page classifier and the per-bank
 * callback directories into a runnable chip.
 */

#ifndef CBSIM_SYSTEM_CHIP_HH
#define CBSIM_SYSTEM_CHIP_HH

#include <memory>
#include <vector>

#include "coherence/mesi/mesi_l1.hh"
#include "coherence/mesi/mesi_llc.hh"
#include "coherence/vips/page_classifier.hh"
#include "coherence/vips/vips_l1.hh"
#include "coherence/vips/vips_llc.hh"
#include "core/core.hh"
#include "mem/data_store.hh"
#include "mem/memory_model.hh"
#include "system/chip_config.hh"
#include "system/run_result.hh"

namespace cbsim {

/** A complete simulated CMP. Build, load programs, run once. */
class Chip
{
  public:
    explicit Chip(const ChipConfig& cfg);

    /** Load @p program onto core @p core (before run()). */
    void setProgram(CoreId core, Program program);

    /**
     * Run to completion (all cores executed Done).
     * @return aggregated metrics
     */
    RunResult run();

    // --- introspection (tests, examples) -------------------------------
    const ChipConfig& config() const { return cfg_; }
    EventQueue& eventQueue() { return eq_; }
    DataStore& dataStore() { return data_; }
    StatSet& stats() { return stats_; }
    SyncStats& syncStats() { return syncStats_; }
    Core& core(CoreId i) { return *cores_.at(i); }
    L1Controller& l1(CoreId i) { return *l1s_.at(i); }
    LlcBank& bank(BankId i) { return *banks_.at(i); }

    /** VIPS-only: the callback directory of bank @p i (for tests). */
    const CallbackDirectory& callbackDirectory(BankId i) const;

    unsigned finishedCores() const { return finished_; }

  private:
    ChipConfig cfg_;
    EventQueue eq_;
    StatSet stats_;
    DataStore data_;
    Mesh mesh_;
    MemoryModel memory_;
    PageClassifier classifier_;
    SyncStats syncStats_;

    std::vector<std::unique_ptr<L1Controller>> l1s_;
    std::vector<std::unique_ptr<LlcBank>> banks_;
    std::vector<std::unique_ptr<Core>> cores_;
    std::vector<VipsL1*> vipsL1s_; ///< non-owning, VIPS only

    unsigned finished_ = 0;
    bool ran_ = false;
};

} // namespace cbsim

#endif // CBSIM_SYSTEM_CHIP_HH
