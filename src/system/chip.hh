/**
 * @file
 * Top-level system builder: wires cores, L1s, LLC banks, the mesh, the
 * memory model, and (for VIPS) the page classifier and the per-bank
 * callback directories into a runnable chip.
 */

#ifndef CBSIM_SYSTEM_CHIP_HH
#define CBSIM_SYSTEM_CHIP_HH

#include <memory>
#include <string>
#include <vector>

#include "coherence/mesi/mesi_l1.hh"
#include "coherence/mesi/mesi_llc.hh"
#include "coherence/vips/page_classifier.hh"
#include "coherence/vips/vips_l1.hh"
#include "coherence/vips/vips_llc.hh"
#include "core/core.hh"
#include "mem/data_store.hh"
#include "mem/memory_model.hh"
#include "obs/registry.hh"
#include "system/chip_config.hh"
#include "system/run_result.hh"

namespace cbsim {

class Watchdog;
class InvariantChecker;
class FaultInjector;
class NocTracker;
class EpochSampler;
class TraceExporter;

/** A complete simulated CMP. Build, load programs, run once. */
class Chip
{
  public:
    explicit Chip(const ChipConfig& cfg);
    ~Chip(); // out-of-line: debug members are incomplete types here

    /** Load @p program onto core @p core (before run()). */
    void setProgram(CoreId core, Program program);

    /**
     * Run to completion (all cores executed Done).
     * @return aggregated metrics
     */
    RunResult run();

    // --- introspection (tests, examples) -------------------------------
    const ChipConfig& config() const { return cfg_; }
    EventQueue& eventQueue() { return eq_; }
    DataStore& dataStore() { return data_; }
    StatsRegistry& stats() { return stats_; }
    SyncStats& syncStats() { return syncStats_; }

    /** The trace exporter, or null when trace export is off. */
    const TraceExporter* traceExporter() const { return trace_.get(); }
    Core& core(CoreId i) { return *cores_.at(i); }
    L1Controller& l1(CoreId i) { return *l1s_.at(i); }
    LlcBank& bank(BankId i) { return *banks_.at(i); }

    /** VIPS-only: the callback directory of bank @p i (for tests). */
    const CallbackDirectory& callbackDirectory(BankId i) const;

    unsigned finishedCores() const { return finished_; }

    /**
     * Compose the forensic JSON report for the current machine state
     * (docs/ROBUSTNESS.md §Forensics) and emit it via
     * forensics::emitReport. Called automatically when run() fails;
     * public so tests can validate the schema directly.
     * @return the forensic file path, or "" if only stderr was written
     */
    std::string dumpForensics(const std::string& reason);

    /** Run the quiesce-time invariant pass now (empty = clean). */
    std::vector<std::string> checkInvariantsNow() const;

  private:
    void buildDebug();
    void buildObs();
    ChipConfig cfg_;
    EventQueue eq_;
    StatsRegistry stats_;
    DataStore data_;
    Mesh mesh_;
    MemoryModel memory_;
    PageClassifier classifier_;
    SyncStats syncStats_;

    std::vector<std::unique_ptr<L1Controller>> l1s_;
    std::vector<std::unique_ptr<LlcBank>> banks_;
    std::vector<std::unique_ptr<Core>> cores_;
    std::vector<VipsL1*> vipsL1s_;         ///< non-owning, VIPS only
    std::vector<VipsLlcBank*> vipsBanks_;  ///< non-owning, VIPS only
    std::vector<MesiL1*> mesiL1s_;         ///< non-owning, MESI only
    std::vector<MesiLlcBank*> mesiBanks_;  ///< non-owning, MESI only

    /** Robustness subsystem; all null when the debug config is off. */
    std::unique_ptr<FaultInjector> faults_;
    std::unique_ptr<NocTracker> nocTracker_;
    std::unique_ptr<InvariantChecker> checker_;
    std::unique_ptr<Watchdog> watchdog_;

    /** Observability subsystem; null when the obs config is off. */
    std::unique_ptr<EpochSampler> epochSampler_;
    std::unique_ptr<TraceExporter> trace_;

    /**
     * Contention attribution shards (one per instrumented component,
     * registered as "<scope>.attr"); empty when attribution is off.
     */
    std::vector<std::unique_ptr<AttributionTable>> attrShards_;

    /**
     * Data symbols merged from every loaded program (first binding
     * wins), resolved against contended line addresses after the run.
     */
    std::map<Addr, std::string> symbols_;

    unsigned finished_ = 0;
    bool ran_ = false;
};

} // namespace cbsim

#endif // CBSIM_SYSTEM_CHIP_HH
