#include "system/chip.hh"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "debug/fault_injection.hh"
#include "debug/forensics.hh"
#include "debug/invariant_checker.hh"
#include "debug/noc_tracker.hh"
#include "debug/watchdog.hh"
#include "harness/json.hh"
#include "obs/attribution.hh"
#include "obs/epoch.hh"
#include "obs/trace_export.hh"
#include "sim/log.hh"

namespace cbsim {

Chip::Chip(const ChipConfig& cfg)
    : cfg_(cfg), mesh_(eq_, cfg.noc, stats_.scope("noc")),
      memory_(eq_, cfg.memLatency, stats_.scope("mem"))
{
    cfg_.validate();
    // LLC banks see only their own residue class of line numbers; index
    // sets on the post-interleaving bits so the whole bank is usable.
    cfg_.llcBank.indexDivisor = cfg_.numCores;
    syncStats_.registerStats(stats_.scope("sync"));
    classifier_.registerStats(stats_.scope("pages"));

    const unsigned n = cfg_.numCores;
    l1s_.reserve(n);
    banks_.reserve(n);
    cores_.reserve(n);

    for (CoreId i = 0; i < n; ++i) {
        const auto node = static_cast<NodeId>(i);
        if (cfg_.protocol == ProtocolKind::Mesi) {
            auto l1 = std::make_unique<MesiL1>(
                i, node, eq_, mesh_, data_, cfg_.l1, cfg_.l1Latency, n,
                cfg_.backoff.pauseDelay);
            l1->registerStats(stats_.scope("l1." + std::to_string(i)));
            mesiL1s_.push_back(l1.get());
            auto bank = std::make_unique<MesiLlcBank>(
                static_cast<BankId>(i), eq_, mesh_, data_, memory_,
                cfg_.llcBank, cfg_.llc);
            bank->registerStats(stats_.scope("llc." + std::to_string(i)));
            mesiBanks_.push_back(bank.get());
            l1s_.push_back(std::move(l1));
            banks_.push_back(std::move(bank));
        } else {
            auto l1 = std::make_unique<VipsL1>(
                i, node, eq_, mesh_, data_, classifier_, cfg_.l1,
                cfg_.l1Latency, n);
            l1->registerStats(stats_.scope("l1." + std::to_string(i)));
            vipsL1s_.push_back(l1.get());
            auto bank = std::make_unique<VipsLlcBank>(
                static_cast<BankId>(i), eq_, mesh_, data_, memory_,
                cfg_.llcBank, cfg_.llc, cfg_.cbEntriesPerBank,
                cfg_.cbDirLatency, n);
            bank->registerStats(stats_.scope("llc." + std::to_string(i)));
            vipsBanks_.push_back(bank.get());
            l1s_.push_back(std::move(l1));
            banks_.push_back(std::move(bank));
        }

        mesh_.attach(node, Port::Core,
                     [l1 = l1s_.back().get()](const Message& m) {
                         l1->handleMessage(m);
                     });
        mesh_.attach(node, Port::Bank,
                     [bank = banks_.back().get()](const Message& m) {
                         bank->handleMessage(m);
                     });

        auto core = std::make_unique<Core>(
            i, eq_, *l1s_.back(), cfg_.backoff, syncStats_,
            [this] { ++finished_; });
        core->registerStats(stats_.scope("core." + std::to_string(i)));
        cores_.push_back(std::move(core));
    }

    if (cfg_.protocol == ProtocolKind::Vips) {
        classifier_.setTransitionHook(
            [this](CoreId prev_owner, Addr page_base) {
                vipsL1s_.at(prev_owner)->reclassifyPage(page_base);
            });
    }

    buildDebug();
    buildObs();
}

/**
 * Construct whichever observability components the obs config asks
 * for. Like buildDebug, everything-off (the default) creates nothing:
 * the hot paths see only null-pointer compares and one tick compare
 * per dispatched event-queue bucket.
 */
void
Chip::buildObs()
{
    const ObsConfig& obs = cfg_.debug.obs;

    if (obs.traceEnabled()) {
        trace_ = std::make_unique<TraceExporter>(cfg_.numCores,
                                                 cfg_.numCores);
        for (auto& core : cores_)
            core->setTrace(trace_.get());
        for (VipsLlcBank* bank : vipsBanks_)
            bank->setTrace(trace_.get());
    }

    if (obs.attributionEnabled()) {
        // One bounded shard per instrumented component, registered as
        // "<scope>.attr". Shards for components without attribution
        // sites (VIPS L1s) are not created.
        auto shard = [this](const std::string& scope) {
            attrShards_.push_back(std::make_unique<AttributionTable>());
            stats_.scope(scope).add("attr", *attrShards_.back());
            return attrShards_.back().get();
        };
        for (CoreId i = 0; i < cfg_.numCores; ++i)
            cores_[i]->setAttribution(shard("core." + std::to_string(i)));
        for (std::size_t i = 0; i < mesiL1s_.size(); ++i)
            mesiL1s_[i]->setAttribution(
                shard("l1." + std::to_string(i)));
        for (std::size_t i = 0; i < mesiBanks_.size(); ++i)
            mesiBanks_[i]->setAttribution(
                shard("llc." + std::to_string(i)));
        for (std::size_t i = 0; i < vipsBanks_.size(); ++i)
            vipsBanks_[i]->setAttribution(
                shard("llc." + std::to_string(i)));
    }

    if (trace_ != nullptr)
        trace_->setSymbols(&symbols_);

    if (obs.epochEnabled()) {
        epochSampler_ = std::make_unique<EpochSampler>(stats_, [this] {
            std::uint64_t blocked = 0;
            for (const auto& core : cores_)
                blocked += core->blockedOnMemory() ? 1 : 0;
            return blocked;
        });
        epochSampler_->setTrace(trace_.get());
        epochSampler_->install(eq_, obs.epochTicks);
    }
}

/**
 * Construct whichever robustness components the debug config asks for.
 * With everything off (the default) this creates nothing and installs
 * nothing — the hot paths see only null-pointer compares.
 */
void
Chip::buildDebug()
{
    const DebugConfig& dbg = cfg_.debug;

    if (dbg.faults.enabled()) {
        faults_ = std::make_unique<FaultInjector>(dbg.faults);
        // Protocol-level injection sites exist only on VIPS (callback
        // directory, self-invalidation); a MESI chip under a fault plan
        // still gets the NoC delay perturbation below.
        for (VipsL1* l1 : vipsL1s_)
            l1->setFaultInjector(faults_.get());
        for (VipsLlcBank* bank : vipsBanks_)
            bank->setFaultInjector(faults_.get());
    }

    if (dbg.trackMessagesEffective()) {
        nocTracker_ = std::make_unique<NocTracker>();
        mesh_.setDebug(nocTracker_.get(), faults_.get());
    }

    if (dbg.checkInvariants) {
        InvariantChecker::Sources src;
        for (const auto& core : cores_)
            src.cores.push_back(core.get());
        src.mesiL1s = {mesiL1s_.begin(), mesiL1s_.end()};
        src.mesiBanks = {mesiBanks_.begin(), mesiBanks_.end()};
        src.vipsL1s = {vipsL1s_.begin(), vipsL1s_.end()};
        src.vipsBanks = {vipsBanks_.begin(), vipsBanks_.end()};
        if (cfg_.protocol == ProtocolKind::Vips)
            src.classifier = &classifier_;
        src.noc = nocTracker_.get();
        checker_ = std::make_unique<InvariantChecker>(std::move(src));
    }

    if (dbg.wantsPolling()) {
        Watchdog::Hooks hooks;
        hooks.progressCounter = [this] {
            std::uint64_t sum = 0;
            for (const auto& core : cores_)
                sum += core->instructionsRetired();
            return sum;
        };
        if (checker_ != nullptr) {
            hooks.checkInvariants = [this] {
                InvariantChecker::enforce("interval",
                                          checker_->checkInterval());
            };
        }
        watchdog_ =
            std::make_unique<Watchdog>(eq_, dbg, std::move(hooks));
        watchdog_->install();
    }
}

Chip::~Chip() = default;

void
Chip::setProgram(CoreId core, Program program)
{
    // Merge the thread's data symbols chip-wide; emitters register the
    // same handle names on every thread, so first binding wins.
    for (const auto& [addr, name] : program.symbols())
        symbols_.emplace(addr, name);
    cores_.at(core)->setProgram(std::move(program));
}

RunResult
Chip::run()
{
    CBSIM_ASSERT(!ran_, "Chip::run called twice");
    ran_ = true;
    // Time only the event-loop window: this is the kernel-throughput
    // number bench_perf_kernel compares across kernel versions, so it
    // must exclude construction, program loading, and stats extraction
    // (identical work on both sides of any comparison).
    const auto t0 = std::chrono::steady_clock::now();
    for (auto& core : cores_)
        core->start();
    try {
        eq_.run(cfg_.maxTicks);
    } catch (const std::exception& e) {
        // Tick-budget exhaustion, watchdog trips, and invariant panics
        // all surface here; attach the machine state before rethrowing.
        dumpForensics(e.what());
        throw;
    }
    const double sim_wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    if (finished_ != cfg_.numCores) {
        dumpForensics("quiesce failure: event queue drained with "
                      "unfinished cores");
        fatal("deadlock: only ", finished_, " of ", cfg_.numCores,
              " cores finished");
    }
    if (checker_ != nullptr) {
        const auto violations = checker_->checkQuiesce();
        if (!violations.empty()) {
            dumpForensics("quiesce invariant violations");
            InvariantChecker::enforce("quiesce", violations);
        }
    }
    // Execution time is the last core's completion; the queue may drain
    // later due to harmless residual events (e.g., spin-watch timeouts).
    Tick end = 0;
    for (const auto& core : cores_)
        end = std::max(end, core->doneTick());
    RunResult result = RunResult::fromStats(stats_, syncStats_, end);
    result.events = eq_.executedEvents();
    result.simWallMs = sim_wall_ms;
    if (epochSampler_ != nullptr)
        result.epochs = epochSampler_->rows();
    if (!attrShards_.empty()) {
        std::vector<const AttributionTable*> shards;
        shards.reserve(attrShards_.size());
        for (const auto& s : attrShards_)
            shards.push_back(s.get());
        result.contention =
            buildContention(shards, symbols_, RunResult::kContentionTopN);
    }
    if (trace_ != nullptr)
        trace_->writeFile(cfg_.debug.obs.traceDir, cfg_.debug.label);
    return result;
}

std::vector<std::string>
Chip::checkInvariantsNow() const
{
    if (checker_ == nullptr)
        return {};
    return checker_->checkQuiesce();
}

std::string
Chip::dumpForensics(const std::string& reason)
{
    std::ostringstream os;
    {
        JsonWriter w(os);
        w.beginObject();
        w.field("schema", forensics::kSchema);
        w.field("reason", reason);
        w.field("label", cfg_.debug.label);
        w.field("protocol",
                cfg_.protocol == ProtocolKind::Mesi ? "mesi" : "vips");
        w.field("num_cores", cfg_.numCores);
        w.field("finished_cores", finished_);
        w.field("now", eq_.now());

        const EventQueue::DebugSnapshot snap = eq_.debugSnapshot();
        w.key("event_queue");
        w.beginObject();
        w.field("executed", snap.executed);
        w.field("pending", static_cast<std::uint64_t>(snap.pending));
        w.field("far_pending",
                static_cast<std::uint64_t>(snap.farPending));
        w.field("far_min", snap.farMin);
        w.key("head_window");
        w.beginArray();
        for (const auto& [when, count] : snap.headWindow) {
            w.beginObject();
            w.field("tick", when);
            w.field("events", static_cast<std::uint64_t>(count));
            w.endObject();
        }
        w.endArray();
        w.endObject();

        w.key("cores");
        w.beginArray();
        for (const auto& core : cores_)
            core->dumpDebug(w);
        w.endArray();

        w.key("l1s");
        w.beginArray();
        for (const auto& l1 : l1s_)
            l1->dumpDebug(w);
        w.endArray();

        w.key("banks");
        w.beginArray();
        for (const auto& bank : banks_)
            bank->dumpDebug(w);
        w.endArray();

        w.key("noc_in_flight");
        if (nocTracker_ != nullptr) {
            w.beginArray();
            nocTracker_->forEachInFlight(
                [&w](const Message& m, NodeId at, Tick injected) {
                    w.beginObject();
                    w.field("message", m.toString());
                    w.field("at_node", static_cast<unsigned>(at));
                    w.field("injected_at", injected);
                    w.endObject();
                });
            w.endArray();
        } else {
            w.null();
        }

        if (checker_ != nullptr) {
            // Best effort: the dump may itself be reporting a violation.
            w.key("invariant_violations");
            w.beginArray();
            for (const std::string& v : checker_->checkQuiesce())
                w.value(v);
            w.endArray();
        }
        w.endObject();
    }
    return forensics::emitReport(cfg_.debug, os.str());
}

const CallbackDirectory&
Chip::callbackDirectory(BankId i) const
{
    const auto* bank = dynamic_cast<const VipsLlcBank*>(banks_.at(i).get());
    if (!bank)
        fatal("callbackDirectory: not a VIPS chip");
    return bank->directory();
}

} // namespace cbsim
