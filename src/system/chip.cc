#include "system/chip.hh"

#include <algorithm>
#include <chrono>

#include "sim/log.hh"

namespace cbsim {

Chip::Chip(const ChipConfig& cfg)
    : cfg_(cfg), mesh_(eq_, cfg.noc, stats_),
      memory_(eq_, cfg.memLatency, stats_)
{
    cfg_.validate();
    // LLC banks see only their own residue class of line numbers; index
    // sets on the post-interleaving bits so the whole bank is usable.
    cfg_.llcBank.indexDivisor = cfg_.numCores;
    syncStats_.registerStats(stats_);
    classifier_.registerStats(stats_, "pages");

    const unsigned n = cfg_.numCores;
    l1s_.reserve(n);
    banks_.reserve(n);
    cores_.reserve(n);

    for (CoreId i = 0; i < n; ++i) {
        const auto node = static_cast<NodeId>(i);
        if (cfg_.protocol == ProtocolKind::Mesi) {
            auto l1 = std::make_unique<MesiL1>(
                i, node, eq_, mesh_, data_, cfg_.l1, cfg_.l1Latency, n,
                cfg_.backoff.pauseDelay);
            l1->registerStats(stats_, "l1." + std::to_string(i));
            auto bank = std::make_unique<MesiLlcBank>(
                static_cast<BankId>(i), eq_, mesh_, data_, memory_,
                cfg_.llcBank, cfg_.llc);
            bank->registerStats(stats_, "llc." + std::to_string(i));
            l1s_.push_back(std::move(l1));
            banks_.push_back(std::move(bank));
        } else {
            auto l1 = std::make_unique<VipsL1>(
                i, node, eq_, mesh_, data_, classifier_, cfg_.l1,
                cfg_.l1Latency, n);
            l1->registerStats(stats_, "l1." + std::to_string(i));
            vipsL1s_.push_back(l1.get());
            auto bank = std::make_unique<VipsLlcBank>(
                static_cast<BankId>(i), eq_, mesh_, data_, memory_,
                cfg_.llcBank, cfg_.llc, cfg_.cbEntriesPerBank,
                cfg_.cbDirLatency, n);
            bank->registerStats(stats_, "llc." + std::to_string(i));
            l1s_.push_back(std::move(l1));
            banks_.push_back(std::move(bank));
        }

        mesh_.attach(node, Port::Core,
                     [l1 = l1s_.back().get()](const Message& m) {
                         l1->handleMessage(m);
                     });
        mesh_.attach(node, Port::Bank,
                     [bank = banks_.back().get()](const Message& m) {
                         bank->handleMessage(m);
                     });

        auto core = std::make_unique<Core>(
            i, eq_, *l1s_.back(), cfg_.backoff, syncStats_,
            [this] { ++finished_; });
        core->registerStats(stats_, "core." + std::to_string(i));
        cores_.push_back(std::move(core));
    }

    if (cfg_.protocol == ProtocolKind::Vips) {
        classifier_.setTransitionHook(
            [this](CoreId prev_owner, Addr page_base) {
                vipsL1s_.at(prev_owner)->reclassifyPage(page_base);
            });
    }
}

void
Chip::setProgram(CoreId core, Program program)
{
    cores_.at(core)->setProgram(std::move(program));
}

RunResult
Chip::run()
{
    CBSIM_ASSERT(!ran_, "Chip::run called twice");
    ran_ = true;
    // Time only the event-loop window: this is the kernel-throughput
    // number bench_perf_kernel compares across kernel versions, so it
    // must exclude construction, program loading, and stats extraction
    // (identical work on both sides of any comparison).
    const auto t0 = std::chrono::steady_clock::now();
    for (auto& core : cores_)
        core->start();
    eq_.run(cfg_.maxTicks);
    const double sim_wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    if (finished_ != cfg_.numCores) {
        fatal("deadlock: only ", finished_, " of ", cfg_.numCores,
              " cores finished");
    }
    // Execution time is the last core's completion; the queue may drain
    // later due to harmless residual events (e.g., spin-watch timeouts).
    Tick end = 0;
    for (const auto& core : cores_)
        end = std::max(end, core->doneTick());
    RunResult result = RunResult::fromStats(stats_, syncStats_, end);
    result.events = eq_.executedEvents();
    result.simWallMs = sim_wall_ms;
    return result;
}

const CallbackDirectory&
Chip::callbackDirectory(BankId i) const
{
    const auto* bank = dynamic_cast<const VipsLlcBank*>(banks_.at(i).get());
    if (!bank)
        fatal("callbackDirectory: not a VIPS chip");
    return bank->directory();
}

} // namespace cbsim
