/**
 * @file
 * Whole-chip configuration (paper Table 2 defaults) and the evaluated
 * technique enumeration (paper §5.2).
 */

#ifndef CBSIM_SYSTEM_CHIP_CONFIG_HH
#define CBSIM_SYSTEM_CHIP_CONFIG_HH

#include <string>

#include "coherence/backoff/backoff.hh"
#include "coherence/mesi/mesi_llc.hh"
#include "debug/debug_config.hh"
#include "mem/cache_array.hh"
#include "noc/mesh.hh"

namespace cbsim {

/** Which coherence protocol the chip runs. */
enum class ProtocolKind : std::uint8_t
{
    Mesi, ///< invalidation-based directory MESI ("Invalidation")
    Vips, ///< self-invalidation/self-downgrade (VIPS-M-like)
};

/**
 * The seven configurations of the paper's evaluation (§5.2): the MESI
 * baseline, four exponential back-off variants of the self-invalidation
 * protocol, and the two callback flavours.
 */
enum class Technique : std::uint8_t
{
    Invalidation,
    BackOff0,
    BackOff5,
    BackOff10,
    BackOff15,
    CbAll,
    CbOne,
    NumTechniques
};

const char* techniqueName(Technique t);

/** All techniques, in the order the paper's figures list them. */
inline constexpr Technique allTechniques[] = {
    Technique::Invalidation, Technique::BackOff0,  Technique::BackOff5,
    Technique::BackOff10,    Technique::BackOff15, Technique::CbAll,
    Technique::CbOne,
};

/** Full system parameters (Table 2). */
struct ChipConfig
{
    unsigned numCores = 64;

    NocConfig noc{};                           ///< 8x8 mesh, 16 B flits
    CacheGeometry l1{32 * 1024, 4, 64};        ///< 32 KB, 4-way
    CacheGeometry llcBank{256 * 1024, 16, 64}; ///< 256 KB/bank, 16-way
    LlcTiming llc{};                           ///< tag 6, tag+data 12
    Tick l1Latency = 1;
    Tick memLatency = 160;

    unsigned cbEntriesPerBank = 4; ///< callback directory size (Table 2)
    Tick cbDirLatency = 1;

    ProtocolKind protocol = ProtocolKind::Vips;
    BackoffConfig backoff = BackoffConfig::off();

    /** Deadlock/livelock guard for EventQueue::run. */
    Tick maxTicks = 4'000'000'000ULL;

    /**
     * Robustness settings (watchdog, invariant checker, fault
     * injection). Defaults to the resolved process/thread configuration
     * at the moment the ChipConfig is constructed (see debug_config.hh).
     */
    DebugConfig debug = DebugConfig::current();

    /**
     * Build the configuration for one of the paper's techniques with a
     * square mesh sized for @p cores (must be a perfect square <= 64).
     */
    static ChipConfig forTechnique(Technique t, unsigned cores = 64);

    /** Validate internal consistency; fatal on error. */
    void validate() const;
};

} // namespace cbsim

#endif // CBSIM_SYSTEM_CHIP_CONFIG_HH
