#include "system/chip_config.hh"

#include <cmath>

#include "sim/log.hh"

namespace cbsim {

const char*
techniqueName(Technique t)
{
    switch (t) {
      case Technique::Invalidation: return "Invalidation";
      case Technique::BackOff0: return "BackOff-0";
      case Technique::BackOff5: return "BackOff-5";
      case Technique::BackOff10: return "BackOff-10";
      case Technique::BackOff15: return "BackOff-15";
      case Technique::CbAll: return "CB-All";
      case Technique::CbOne: return "CB-One";
      default: return "?";
    }
}

ChipConfig
ChipConfig::forTechnique(Technique t, unsigned cores)
{
    ChipConfig cfg;
    cfg.numCores = cores;
    const auto side = static_cast<unsigned>(std::lround(std::sqrt(cores)));
    if (side * side != cores)
        fatal("core count must be a perfect square, got ", cores);
    cfg.noc.width = side;
    cfg.noc.height = side;

    switch (t) {
      case Technique::Invalidation:
        cfg.protocol = ProtocolKind::Mesi;
        // Local spin loops re-check the cached copy at a PAUSE-style
        // interval; invalidation wakes them, so the interval only
        // bounds the exit latency.
        cfg.backoff = BackoffConfig::pause(12);
        break;
      case Technique::BackOff0:
        cfg.protocol = ProtocolKind::Vips;
        cfg.backoff = BackoffConfig::off();
        break;
      case Technique::BackOff5:
        cfg.protocol = ProtocolKind::Vips;
        cfg.backoff = BackoffConfig::capped(5);
        break;
      case Technique::BackOff10:
        cfg.protocol = ProtocolKind::Vips;
        cfg.backoff = BackoffConfig::capped(10);
        break;
      case Technique::BackOff15:
        cfg.protocol = ProtocolKind::Vips;
        cfg.backoff = BackoffConfig::capped(15);
        break;
      case Technique::CbAll:
      case Technique::CbOne:
        cfg.protocol = ProtocolKind::Vips;
        cfg.backoff = BackoffConfig::off();
        break;
      default:
        fatal("bad technique");
    }
    return cfg;
}

void
ChipConfig::validate() const
{
    if (numCores == 0 || numCores > 64)
        fatal("numCores must be 1..64 (callback masks are 64-bit)");
    if (noc.nodes() != numCores)
        fatal("mesh must have one node per core: ", noc.nodes(), " vs ",
              numCores);
    if (cbEntriesPerBank == 0)
        fatal("callback directory needs >= 1 entry per bank");
}

} // namespace cbsim
