#include "system/run_result.hh"

#include <sstream>

namespace cbsim {

std::uint64_t
RunResult::sumWhere(const StatSet& stats, const std::string& prefix,
                    const std::string& suffix)
{
    std::uint64_t total = 0;
    for (const auto& name : stats.counterNames()) {
        if (name.size() < prefix.size() + suffix.size())
            continue;
        if (name.compare(0, prefix.size(), prefix) != 0)
            continue;
        if (name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) != 0)
            continue;
        total += stats.counter(name);
    }
    return total;
}

RunResult
RunResult::fromStats(const StatSet& stats, const SyncStats& sync_stats,
                     Tick cycles)
{
    RunResult r;
    r.cycles = cycles;
    r.llcAccesses = sumWhere(stats, "llc.", ".accesses");
    r.llcSyncAccesses = sumWhere(stats, "llc.", ".sync_accesses");
    r.l1Accesses = sumWhere(stats, "l1.", ".accesses");
    r.cbdirAccesses = sumWhere(stats, "llc.", ".cbdir_accesses");
    r.flitHops = stats.counter("noc.flit_hops");
    r.packets = stats.counter("noc.packets");
    r.memReads = stats.counter("mem.reads");
    r.instructions = sumWhere(stats, "core.", ".instructions");
    r.invalidationsSent = sumWhere(stats, "llc.", ".invs_sent");
    r.cbWakeups = sumWhere(stats, "llc.", ".wakes_sent");
    r.cbdirEvictions = sumWhere(stats, "llc.", ".cbdir.evictions");
    r.stallCycles = sumWhere(stats, "core.", ".stall_cycles");
    r.cbBlockedCycles = sumWhere(stats, "core.", ".cb_blocked_cycles");

    for (std::size_t k = 0; k < SyncStats::numKinds; ++k) {
        const auto& h = sync_stats.latency[k];
        r.sync[k].completions = h.count();
        r.sync[k].meanLatency = h.mean();
        r.sync[k].totalLatency = h.sum();
        r.sync[k].maxLatency = h.max();
        r.sync[k].p99Latency = h.percentile(99.0);
    }
    return r;
}

std::vector<std::pair<const char*, std::uint64_t>>
RunResult::scalarFields() const
{
    return {
        {"cycles", cycles},
        {"llc_accesses", llcAccesses},
        {"llc_sync_accesses", llcSyncAccesses},
        {"l1_accesses", l1Accesses},
        {"cbdir_accesses", cbdirAccesses},
        {"flit_hops", flitHops},
        {"packets", packets},
        {"mem_reads", memReads},
        {"instructions", instructions},
        {"invalidations_sent", invalidationsSent},
        {"cb_wakeups", cbWakeups},
        {"cbdir_evictions", cbdirEvictions},
        {"stall_cycles", stallCycles},
        {"cb_blocked_cycles", cbBlockedCycles},
    };
}

std::string
RunResult::summary() const
{
    std::ostringstream os;
    os << "cycles=" << cycles << " llc=" << llcAccesses
       << " llc_sync=" << llcSyncAccesses << " l1=" << l1Accesses
       << " flit_hops=" << flitHops << " packets=" << packets
       << " mem_reads=" << memReads;
    return os.str();
}

} // namespace cbsim
