#include "system/run_result.hh"

#include <cmath>
#include <sstream>

namespace cbsim {

std::uint64_t
RunResult::sumWhere(const StatSet& stats, const std::string& prefix,
                    const std::string& suffix)
{
    return stats.sumWhere(prefix, suffix);
}

RunResult
RunResult::fromStats(const StatSet& stats, const SyncStats& sync_stats,
                     Tick cycles)
{
    RunResult r;
    r.cycles = cycles;
    r.llcAccesses = sumWhere(stats, "llc.", ".accesses");
    r.llcSyncAccesses = sumWhere(stats, "llc.", ".sync_accesses");
    r.l1Accesses = sumWhere(stats, "l1.", ".accesses");
    r.cbdirAccesses = sumWhere(stats, "llc.", ".cbdir_accesses");
    r.flitHops = stats.counter("noc.flit_hops");
    r.packets = stats.counter("noc.packets");
    r.memReads = stats.counter("mem.reads");
    r.instructions = sumWhere(stats, "core.", ".instructions");
    r.invalidationsSent = sumWhere(stats, "llc.", ".invs_sent");
    r.cbWakeups = sumWhere(stats, "llc.", ".wakes_sent");
    r.cbdirEvictions = sumWhere(stats, "llc.", ".cbdir.evictions");
    r.stallCycles = sumWhere(stats, "core.", ".stall_cycles");
    r.cbBlockedCycles = sumWhere(stats, "core.", ".cb_blocked_cycles");

    for (std::size_t k = 0; k < SyncStats::numKinds; ++k) {
        const auto& h = sync_stats.latency[k];
        r.sync[k].completions = h.count();
        r.sync[k].meanLatency = h.mean();
        r.sync[k].totalLatency = h.sum();
        r.sync[k].maxLatency = h.max();
        r.sync[k].p50Latency = h.percentile(50.0);
        r.sync[k].p95Latency = h.percentile(95.0);
        r.sync[k].p99Latency = h.percentile(99.0);
    }
    return r;
}

namespace {

/** Percentile rounded to whole cycles for the scalar-field table. */
std::uint64_t
roundedLatency(double v)
{
    return static_cast<std::uint64_t>(std::llround(v));
}

} // namespace

std::vector<std::pair<const char*, std::uint64_t>>
RunResult::scalarFields() const
{
    const auto& acq = sync[static_cast<std::size_t>(SyncKind::Acquire)];
    const auto& bar = sync[static_cast<std::size_t>(SyncKind::Barrier)];
    const auto& wait = sync[static_cast<std::size_t>(SyncKind::Wait)];
    return {
        {"cycles", cycles},
        {"llc_accesses", llcAccesses},
        {"llc_sync_accesses", llcSyncAccesses},
        {"l1_accesses", l1Accesses},
        {"cbdir_accesses", cbdirAccesses},
        {"flit_hops", flitHops},
        {"packets", packets},
        {"mem_reads", memReads},
        {"instructions", instructions},
        {"invalidations_sent", invalidationsSent},
        {"cb_wakeups", cbWakeups},
        {"cbdir_evictions", cbdirEvictions},
        {"stall_cycles", stallCycles},
        {"cb_blocked_cycles", cbBlockedCycles},
        {"sync_acquire_p50", roundedLatency(acq.p50Latency)},
        {"sync_acquire_p95", roundedLatency(acq.p95Latency)},
        {"sync_acquire_p99", roundedLatency(acq.p99Latency)},
        {"sync_barrier_p50", roundedLatency(bar.p50Latency)},
        {"sync_barrier_p95", roundedLatency(bar.p95Latency)},
        {"sync_barrier_p99", roundedLatency(bar.p99Latency)},
        {"sync_wait_p50", roundedLatency(wait.p50Latency)},
        {"sync_wait_p95", roundedLatency(wait.p95Latency)},
        {"sync_wait_p99", roundedLatency(wait.p99Latency)},
    };
}

std::string
RunResult::summary() const
{
    std::ostringstream os;
    os << "cycles=" << cycles << " llc=" << llcAccesses
       << " llc_sync=" << llcSyncAccesses << " l1=" << l1Accesses
       << " flit_hops=" << flitHops << " packets=" << packets
       << " mem_reads=" << memReads;
    return os.str();
}

} // namespace cbsim
