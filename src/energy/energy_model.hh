/**
 * @file
 * Static energy model converting run metrics into the paper's Figure 22
 * breakdown (L1 / LLC / network energy).
 *
 * Per-event energies are CACTI-6.5-inspired constants for a 32 nm
 * process (the paper's methodology, §5.1). Only the *relative* weights
 * matter for the figure's shape; the paper notes that an L1 access is
 * relatively more expensive than an (interleaved, pipelined) LLC bank
 * access and that LLC spinning shifts energy into the LLC and network.
 */

#ifndef CBSIM_ENERGY_ENERGY_MODEL_HH
#define CBSIM_ENERGY_ENERGY_MODEL_HH

#include <string>

#include "system/run_result.hh"

namespace cbsim {

/** Per-event dynamic energies, in nanojoules. */
struct EnergyParams
{
    double l1Access = 0.025;   ///< 32 KB 4-way L1, read/write
    double llcAccess = 0.020;  ///< 256 KB bank, tag+data
    double cbDirAccess = 0.001; ///< 4-entry callback directory
    double flitHop = 0.012;    ///< one flit crossing one router+link
    double memAccess = 1.6;    ///< off-chip access (not in Fig. 22)

    // Core-activity energies for the §2.1 pause study (per cycle).
    double coreActive = 0.050; ///< core busy or actively spinning
    double corePaused = 0.005; ///< core in a low-power wait state
};

/** Energy totals per component, in nanojoules. */
struct EnergyBreakdown
{
    double l1 = 0.0;
    double llc = 0.0;
    double network = 0.0;
    double cbdir = 0.0;
    double memory = 0.0;

    /** On-chip total: the Figure 22 quantity (L1 + LLC + network). */
    double onChip() const { return l1 + llc + network + cbdir; }
    double total() const { return onChip() + memory; }

    std::string summary() const;
};

/** Convert a run's event counts into energy. */
EnergyBreakdown computeEnergy(const RunResult& r,
                              const EnergyParams& params = {});

/**
 * Core energy the paper's §2.1 pause optimization would save: a core
 * blocked on a callback (its CB bit set, no local activity) can enter a
 * low-power state until the wake-up arrives, unlike a core actively
 * spinning on a cached copy or the LLC. Returns the saving in nJ for
 * @p r if every callback-blocked cycle ran at corePaused instead of
 * coreActive. (The paper explicitly leaves demonstrating this to future
 * work; bench_ablation_pause quantifies it in this model.)
 */
double pauseSavings(const RunResult& r, const EnergyParams& params = {});

} // namespace cbsim

#endif // CBSIM_ENERGY_ENERGY_MODEL_HH
