#include "energy/energy_model.hh"

#include <sstream>

namespace cbsim {

std::string
EnergyBreakdown::summary() const
{
    std::ostringstream os;
    os << "l1=" << l1 << "nJ llc=" << llc << "nJ net=" << network
       << "nJ cbdir=" << cbdir << "nJ mem=" << memory << "nJ";
    return os.str();
}

double
pauseSavings(const RunResult& r, const EnergyParams& params)
{
    return (params.coreActive - params.corePaused) *
           static_cast<double>(r.cbBlockedCycles);
}

EnergyBreakdown
computeEnergy(const RunResult& r, const EnergyParams& params)
{
    EnergyBreakdown e;
    e.l1 = params.l1Access * static_cast<double>(r.l1Accesses);
    e.llc = params.llcAccess * static_cast<double>(r.llcAccesses);
    e.network = params.flitHop * static_cast<double>(r.flitHops);
    e.cbdir = params.cbDirAccess * static_cast<double>(r.cbdirAccesses);
    e.memory = params.memAccess * static_cast<double>(r.memReads);
    return e;
}

} // namespace cbsim
