/**
 * @file
 * Lock tournament: every lock algorithm (T&S, T&T&S, CLH) against every
 * technique (Invalidation, BackOff-0/10, CB-All, CB-One) on a contended
 * critical section — a self-serve version of the paper's §5.3 analysis.
 *
 * Shows the headline trade-off at a glance: invalidation spins locally
 * but pays on naive locks; LLC spinning floods the LLC; callbacks stay
 * quiet and fast on both naive and scalable locks.
 */

#include <iostream>

#include "harness/experiment.hh"
#include "harness/table.hh"

using namespace cbsim;

int
main(int argc, char** argv)
{
    const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
    const unsigned cores = quick ? 16 : 64;
    const unsigned iters = quick ? 6 : 20;

    const Technique techniques[] = {
        Technique::Invalidation, Technique::BackOff0,
        Technique::BackOff10, Technique::CbAll, Technique::CbOne,
    };
    const SyncMicro locks[] = {SyncMicro::TtasLock, SyncMicro::ClhLock};

    std::cout << "Lock tournament: " << cores << " cores, " << iters
              << " critical sections per core\n\n";
    TablePrinter table(std::cout,
                       {"lock/technique", "cycles", "llc-sync",
                        "flit-hops", "acq-lat", "acq-p99", "wakeups"},
                       26, 12);
    for (SyncMicro lock : locks) {
        for (Technique t : techniques) {
            auto res = runSyncMicro(lock, t, cores, iters);
            const auto acq =
                static_cast<std::size_t>(SyncKind::Acquire);
            table.row({std::string(syncMicroName(lock)) + " / " +
                           techniqueName(t),
                       std::to_string(res.run.cycles),
                       std::to_string(res.run.llcSyncAccesses),
                       std::to_string(res.run.flitHops),
                       fmt(res.run.sync[acq].meanLatency, 0),
                       fmt(res.run.sync[acq].p99Latency, 0),
                       std::to_string(res.run.cbWakeups)});
        }
        table.gap();
    }
    std::cout << "Note how CB-One's llc-sync column stays near the "
                 "Invalidation level while BackOff-0 explodes, and how "
                 "the T&T&S rows hurt Invalidation far more than the "
                 "callback rows (Fig. 23's point).\n";
    return 0;
}
