/**
 * @file
 * Interactive walkthrough of the paper's worked examples (Figures 3-6):
 * drives the callback directory directly and prints its CB/F/E/A-O
 * state after every step, so you can follow the mechanism exactly as
 * the paper presents it.
 */

#include <iostream>

#include "coherence/callback/callback_directory.hh"

using namespace cbsim;

namespace {

constexpr Addr kWord = 0x1000;

void
show(const CallbackDirectory& dir, const char* step)
{
    auto snap = dir.snapshot(kWord);
    std::cout << "  " << step << "\n    ";
    if (!snap) {
        std::cout << "(no entry)\n";
        return;
    }
    std::cout << "CB=[";
    for (int c = 3; c >= 0; --c)
        std::cout << ((snap->cb >> c) & 1);
    std::cout << "] F/E=[";
    for (int c = 3; c >= 0; --c)
        std::cout << ((snap->fe >> c) & 1);
    std::cout << "] A/O=" << (snap->aoOne ? "One" : "All") << "\n";
}

void
figure3()
{
    std::cout << "\n== Figure 3: callback-all ==\n";
    CallbackDirectory dir(4, 4);
    for (CoreId c = 0; c < 4; ++c)
        dir.ldCb(kWord, c);
    show(dir, "step 1: all four cores read -> all F/E consumed");

    dir.ldCb(kWord, 0);
    dir.ldCb(kWord, 2);
    show(dir, "step 2: cores 0 and 2 set callbacks and block");

    auto wr = dir.store(kWord, 3, WakePolicy::All);
    std::cout << "  step 3: core 3 writes -> wakes cores";
    for (CoreId c : wr.wake)
        std::cout << ' ' << c;
    std::cout << "\n";
    show(dir, "          F/E of the non-waiting cores becomes full");

    dir.ldCb(kWord, 1);
    show(dir, "step 4: core 1 reads immediately (its F/E was full)");
}

void
figure4()
{
    std::cout << "\n== Figure 4: callback-one (write_CB1) ==\n";
    CallbackDirectory dir(4, 4);
    dir.ldCb(kWord, 2);
    dir.store(kWord, 2, WakePolicy::One);
    show(dir, "step 1: One mode, F/E full in unison (free lock)");

    dir.ldCb(kWord, 2);
    show(dir, "step 2: core 2 takes the lock -> ALL F/E empty");

    dir.ldCb(kWord, 0);
    dir.ldCb(kWord, 1);
    dir.ldCb(kWord, 3);
    show(dir, "steps 3-5: cores 0, 1, 3 block with callbacks");

    auto wr = dir.store(kWord, 2, WakePolicy::One);
    std::cout << "  step 6: core 2 releases with write_CB1 -> wakes core "
              << wr.wake.at(0) << " (round-robin above the writer)\n";
    show(dir, "step 9: F/E stays empty (undisturbed)");

    std::cout << "  hand-off continues:";
    std::cout << " " << dir.store(kWord, 3, WakePolicy::One).wake.at(0);
    std::cout << " " << dir.store(kWord, 0, WakePolicy::One).wake.at(0);
    std::cout << "  => order 2,3,0,1 as in the paper\n";
}

void
figures5and6()
{
    std::cout << "\n== Figures 5/6: RMW with write_CB1 vs write_CB0 ==\n";
    // Common setup: a lock entry in One mode with F/E full (a prior
    // release), then core 2's RMW read consumes the value in unison and
    // cores 0, 1, 3 block.
    auto setup = [](CallbackDirectory& dir) {
        dir.ldCb(kWord, 2);
        dir.store(kWord, 2, WakePolicy::One); // One mode, full
        dir.ldCb(kWord, 2);                   // core 2's RMW read
        dir.ldCb(kWord, 0);
        dir.ldCb(kWord, 1);
        dir.ldCb(kWord, 3);
    };
    {
        CallbackDirectory dir(4, 4);
        setup(dir);
        auto wr = dir.store(kWord, 2, WakePolicy::One);
        std::cout << "  Fig. 5: core 2's RMW writes with write_CB1 -> "
                     "prematurely wakes core "
                  << wr.wake.at(0)
                  << ", whose T&S is doomed to fail (it re-blocks)\n";
    }
    {
        CallbackDirectory dir(4, 4);
        setup(dir);
        auto wr = dir.store(kWord, 2, WakePolicy::Zero);
        std::cout << "  Fig. 6: with write_CB0 the RMW wakes "
                  << wr.wake.size()
                  << " cores - the hand-off happens only at the real "
                     "release\n";
        auto rel = dir.store(kWord, 2, WakePolicy::One);
        std::cout << "          release (write_CB1) then wakes exactly "
                     "core "
                  << rel.wake.at(0) << "\n";
    }
}

void
replacement()
{
    std::cout << "\n== Fig. 3 steps 5-6: replacement ==\n";
    CallbackDirectory dir(1, 4);
    dir.ldCb(kWord, 1);
    dir.ldCb(kWord, 1); // blocks
    auto res = dir.ldCb(0x2000, 0); // evicts kWord's entry
    std::cout << "  a read to another word evicts the entry; its "
              << res.evictedWaiters.size()
              << " waiter(s) are satisfied with the current value\n";
    dir.ldCb(kWord, 2);
    show(dir, "re-created entry starts at the known state");
}

} // namespace

int
main()
{
    std::cout << "Callback directory walkthrough (paper Figs. 3-6)\n"
              << "Bits print core3..core0, left to right.\n";
    figure3();
    figure4();
    figures5and6();
    replacement();
    return 0;
}
