/**
 * @file
 * Barrier scaling study: SR (centralized, lock-based counter) vs TreeSR
 * barriers across core counts (4 -> 64) and techniques, reporting mean
 * barrier latency and sync LLC accesses per episode — the data behind
 * the barrier series of Figures 1 and 20.
 */

#include <iostream>

#include "harness/experiment.hh"
#include "harness/table.hh"

using namespace cbsim;

int
main(int argc, char** argv)
{
    const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
    const unsigned episodes = quick ? 4 : 10;
    const std::vector<unsigned> core_counts =
        quick ? std::vector<unsigned>{4, 16}
              : std::vector<unsigned>{4, 16, 64};

    std::cout << "Barrier scaling: " << episodes
              << " episodes, imbalanced arrival\n\n";
    TablePrinter table(std::cout,
                       {"barrier/technique", "cores", "bar-lat",
                        "llc-sync", "flit-hops"},
                       30, 12);
    for (SyncMicro micro :
         {SyncMicro::SrBarrier, SyncMicro::TreeBarrier}) {
        for (Technique t :
             {Technique::Invalidation, Technique::BackOff10,
              Technique::CbAll}) {
            for (unsigned cores : core_counts) {
                auto res = runSyncMicro(micro, t, cores, episodes,
                                        /*work_between=*/800);
                const auto bk =
                    static_cast<std::size_t>(SyncKind::Barrier);
                table.row({std::string(syncMicroName(micro)) + " / " +
                               techniqueName(t),
                           std::to_string(cores),
                           fmt(res.run.sync[bk].meanLatency, 0),
                           std::to_string(res.run.llcSyncAccesses),
                           std::to_string(res.run.flitHops)});
            }
            table.gap();
        }
    }
    std::cout << "The TreeSR rows scale gracefully for every "
                 "technique; the SR rows show the centralized counter "
                 "hurting Invalidation at 64 cores while the callback "
                 "rows stay flat (the paper's Fig. 20/23 story).\n";
    return 0;
}
