/**
 * @file
 * Quickstart: build a 16-core chip with the callback-one protocol, run
 * a T&T&S-guarded shared counter plus a TreeSR barrier, and print the
 * headline metrics.
 *
 * This is the 60-second tour of the public API:
 *   ChipConfig -> Chip -> (SyncLayout + emitters -> Program) -> run().
 */

#include <iostream>

#include "energy/energy_model.hh"
#include "sync/barriers.hh"
#include "system/chip.hh"

using namespace cbsim;

int
main()
{
    constexpr unsigned cores = 16;
    constexpr unsigned iters = 10;

    // 1. A chip configured for one of the paper's techniques.
    //    (Table 2 parameters; CB-One = callback directory + st_cb1.)
    ChipConfig cfg = ChipConfig::forTechnique(Technique::CbOne, cores);
    Chip chip(cfg);

    // 2. Allocate synchronization objects in simulated memory.
    SyncLayout layout;
    LockHandle lock =
        makeLock(layout, LockAlgo::TestAndTestAndSet, cores);
    BarrierHandle barrier = makeTreeBarrier(layout, cores);
    const Addr counter = layout.allocLine();
    layout.init(counter, 0);

    // 3. Write one mini-ISA program per core with the sync emitters.
    for (CoreId t = 0; t < cores; ++t) {
        Assembler a;
        a.movImm(2, counter);
        a.movImm(5, 0);
        a.movImm(6, iters);
        a.label("loop");
        a.workImm(200 + 37 * t); // "compute"
        emitAcquire(a, lock, SyncFlavor::CbOne, t);
        a.ld(4, 2); // critical section: counter++
        a.addImm(4, 4, 1);
        a.st(4, 2);
        emitRelease(a, lock, SyncFlavor::CbOne, t);
        a.addImm(5, 5, 1);
        a.bne(5, 6, "loop");
        emitBarrier(a, barrier, SyncFlavor::CbOne, t);
        chip.setProgram(t, a.assemble());
    }
    layout.apply(chip.dataStore());

    // 4. Run and inspect.
    RunResult r = chip.run();
    const EnergyBreakdown e = computeEnergy(r);

    std::cout << "cbsim quickstart (" << cores << " cores, CB-One)\n"
              << "  counter           = "
              << chip.dataStore().read(counter) << " (expected "
              << cores * iters << ")\n"
              << "  execution time    = " << r.cycles << " cycles\n"
              << "  LLC accesses      = " << r.llcAccesses << " ("
              << r.llcSyncAccesses << " from synchronization)\n"
              << "  network traffic   = " << r.flitHops << " flit-hops\n"
              << "  callback wake-ups = " << r.cbWakeups << "\n"
              << "  on-chip energy    = " << e.onChip() << " nJ ("
              << e.summary() << ")\n";

    const auto acq = static_cast<std::size_t>(SyncKind::Acquire);
    std::cout << "  acquire latency   = " << r.sync[acq].meanLatency
              << " cycles (mean over " << r.sync[acq].completions
              << " acquires)\n";
    return chip.dataStore().read(counter) == cores * iters ? 0 : 1;
}
