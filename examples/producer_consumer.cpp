/**
 * @file
 * Producer/consumer pipeline on signal/wait flags (paper Figs. 18-19):
 * a four-stage pipeline hands items down a chain of counting flags.
 * Compares LLC-spinning (BackOff-0) against the callback encodings and
 * prints per-stage wait latency — the "wait" series of Figure 20.
 */

#include <iostream>
#include <vector>

#include "harness/table.hh"
#include "sync/signal_wait.hh"
#include "system/chip.hh"

using namespace cbsim;

namespace {

RunResult
runPipeline(Technique tech, unsigned stages, unsigned items)
{
    ChipConfig cfg = ChipConfig::forTechnique(tech, 16);
    Chip chip(cfg);
    const SyncFlavor flavor = syncFlavorFor(tech);

    SyncLayout layout;
    std::vector<SignalHandle> stage_input;
    for (unsigned s = 0; s < stages; ++s)
        stage_input.push_back(makeSignal(layout));
    const Addr processed = layout.allocLine(); // per-stage work tallies

    for (CoreId t = 0; t < 16; ++t) {
        Assembler a;
        if (t < stages) {
            for (unsigned i = 0; i < items; ++i) {
                if (t > 0)
                    emitWait(a, stage_input[t], flavor);
                a.workImm(150 + 53 * t); // stage processing time
                // tally: processed[t]++
                a.movImm(1, processed + 8 * t);
                a.ld(2, 1);
                a.addImm(2, 2, 1);
                a.st(2, 1);
                if (t + 1 < stages)
                    emitSignal(a, stage_input[t + 1], flavor);
            }
        }
        chip.setProgram(t, a.assemble());
    }
    layout.apply(chip.dataStore());
    RunResult r = chip.run();

    // Sanity: every stage processed every item.
    for (unsigned s = 0; s < stages; ++s) {
        if (chip.dataStore().read(processed + 8 * s) != items)
            fatal("pipeline lost items at stage ", s);
    }
    return r;
}

} // namespace

int
main(int argc, char** argv)
{
    const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
    const unsigned stages = 4;
    const unsigned items = quick ? 10 : 40;

    std::cout << "Producer/consumer pipeline: " << stages
              << " stages, " << items << " items\n\n";
    TablePrinter table(std::cout,
                       {"technique", "cycles", "llc-sync", "flit-hops",
                        "wait-lat", "wakeups"},
                       16, 12);
    for (Technique t :
         {Technique::Invalidation, Technique::BackOff0,
          Technique::BackOff10, Technique::CbAll, Technique::CbOne}) {
        RunResult r = runPipeline(t, stages, items);
        const auto wk = static_cast<std::size_t>(SyncKind::Wait);
        table.row({techniqueName(t), std::to_string(r.cycles),
                   std::to_string(r.llcSyncAccesses),
                   std::to_string(r.flitHops),
                   fmt(r.sync[wk].meanLatency, 0),
                   std::to_string(r.cbWakeups)});
    }
    std::cout << "\nSignal/wait is where callback-one shines: each "
                 "signal wakes exactly the one consumer that needs it "
                 "(st_cb1), with no spinning and no invalidations.\n";
    return 0;
}
