file(REMOVE_RECURSE
  "CMakeFiles/sync_test.dir/sync/barriers_test.cpp.o"
  "CMakeFiles/sync_test.dir/sync/barriers_test.cpp.o.d"
  "CMakeFiles/sync_test.dir/sync/locks_test.cpp.o"
  "CMakeFiles/sync_test.dir/sync/locks_test.cpp.o.d"
  "CMakeFiles/sync_test.dir/sync/signal_wait_test.cpp.o"
  "CMakeFiles/sync_test.dir/sync/signal_wait_test.cpp.o.d"
  "sync_test"
  "sync_test.pdb"
  "sync_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
