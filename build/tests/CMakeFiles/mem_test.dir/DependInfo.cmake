
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mem/addr_test.cpp" "tests/CMakeFiles/mem_test.dir/mem/addr_test.cpp.o" "gcc" "tests/CMakeFiles/mem_test.dir/mem/addr_test.cpp.o.d"
  "/root/repo/tests/mem/cache_array_test.cpp" "tests/CMakeFiles/mem_test.dir/mem/cache_array_test.cpp.o" "gcc" "tests/CMakeFiles/mem_test.dir/mem/cache_array_test.cpp.o.d"
  "/root/repo/tests/mem/data_store_test.cpp" "tests/CMakeFiles/mem_test.dir/mem/data_store_test.cpp.o" "gcc" "tests/CMakeFiles/mem_test.dir/mem/data_store_test.cpp.o.d"
  "/root/repo/tests/mem/mshr_test.cpp" "tests/CMakeFiles/mem_test.dir/mem/mshr_test.cpp.o" "gcc" "tests/CMakeFiles/mem_test.dir/mem/mshr_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cbsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
