file(REMOVE_RECURSE
  "CMakeFiles/mem_test.dir/mem/addr_test.cpp.o"
  "CMakeFiles/mem_test.dir/mem/addr_test.cpp.o.d"
  "CMakeFiles/mem_test.dir/mem/cache_array_test.cpp.o"
  "CMakeFiles/mem_test.dir/mem/cache_array_test.cpp.o.d"
  "CMakeFiles/mem_test.dir/mem/data_store_test.cpp.o"
  "CMakeFiles/mem_test.dir/mem/data_store_test.cpp.o.d"
  "CMakeFiles/mem_test.dir/mem/mshr_test.cpp.o"
  "CMakeFiles/mem_test.dir/mem/mshr_test.cpp.o.d"
  "mem_test"
  "mem_test.pdb"
  "mem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
