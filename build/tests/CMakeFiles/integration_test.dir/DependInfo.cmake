
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/determinism_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/determinism_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/determinism_test.cpp.o.d"
  "/root/repo/tests/integration/fuzz_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/fuzz_test.cpp.o.d"
  "/root/repo/tests/integration/scale_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/scale_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/scale_test.cpp.o.d"
  "/root/repo/tests/integration/stress_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/stress_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/stress_test.cpp.o.d"
  "/root/repo/tests/integration/techniques_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/techniques_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/techniques_test.cpp.o.d"
  "/root/repo/tests/integration/workload_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/workload_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/workload_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cbsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
