# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/noc_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/callback_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_test[1]_include.cmake")
include("/root/repo/build/tests/sync_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
