file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_sync.dir/fig20_sync.cpp.o"
  "CMakeFiles/bench_fig20_sync.dir/fig20_sync.cpp.o.d"
  "bench_fig20_sync"
  "bench_fig20_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
