# Empty dependencies file for bench_fig20_sync.
# This may be replaced when dependencies are built.
