file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pause.dir/ablation_pause.cpp.o"
  "CMakeFiles/bench_ablation_pause.dir/ablation_pause.cpp.o.d"
  "bench_ablation_pause"
  "bench_ablation_pause.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pause.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
