# Empty compiler generated dependencies file for bench_ablation_pause.
# This may be replaced when dependencies are built.
