file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cbdir.dir/ablation_cbdir.cpp.o"
  "CMakeFiles/bench_ablation_cbdir.dir/ablation_cbdir.cpp.o.d"
  "bench_ablation_cbdir"
  "bench_ablation_cbdir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cbdir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
