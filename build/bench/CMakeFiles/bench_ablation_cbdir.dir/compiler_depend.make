# Empty compiler generated dependencies file for bench_ablation_cbdir.
# This may be replaced when dependencies are built.
