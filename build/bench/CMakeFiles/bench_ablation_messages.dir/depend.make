# Empty dependencies file for bench_ablation_messages.
# This may be replaced when dependencies are built.
