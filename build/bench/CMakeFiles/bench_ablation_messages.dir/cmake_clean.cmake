file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_messages.dir/ablation_messages.cpp.o"
  "CMakeFiles/bench_ablation_messages.dir/ablation_messages.cpp.o.d"
  "bench_ablation_messages"
  "bench_ablation_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
