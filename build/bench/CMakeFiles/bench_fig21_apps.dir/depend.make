# Empty dependencies file for bench_fig21_apps.
# This may be replaced when dependencies are built.
