file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_apps.dir/fig21_apps.cpp.o"
  "CMakeFiles/bench_fig21_apps.dir/fig21_apps.cpp.o.d"
  "bench_fig21_apps"
  "bench_fig21_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
