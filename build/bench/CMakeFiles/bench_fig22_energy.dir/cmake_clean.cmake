file(REMOVE_RECURSE
  "CMakeFiles/bench_fig22_energy.dir/fig22_energy.cpp.o"
  "CMakeFiles/bench_fig22_energy.dir/fig22_energy.cpp.o.d"
  "bench_fig22_energy"
  "bench_fig22_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig22_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
