file(REMOVE_RECURSE
  "CMakeFiles/callback_walkthrough.dir/callback_walkthrough.cpp.o"
  "CMakeFiles/callback_walkthrough.dir/callback_walkthrough.cpp.o.d"
  "callback_walkthrough"
  "callback_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/callback_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
