# Empty compiler generated dependencies file for callback_walkthrough.
# This may be replaced when dependencies are built.
