file(REMOVE_RECURSE
  "CMakeFiles/lock_tournament.dir/lock_tournament.cpp.o"
  "CMakeFiles/lock_tournament.dir/lock_tournament.cpp.o.d"
  "lock_tournament"
  "lock_tournament.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_tournament.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
