# Empty dependencies file for lock_tournament.
# This may be replaced when dependencies are built.
