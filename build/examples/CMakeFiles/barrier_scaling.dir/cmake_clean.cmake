file(REMOVE_RECURSE
  "CMakeFiles/barrier_scaling.dir/barrier_scaling.cpp.o"
  "CMakeFiles/barrier_scaling.dir/barrier_scaling.cpp.o.d"
  "barrier_scaling"
  "barrier_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/barrier_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
