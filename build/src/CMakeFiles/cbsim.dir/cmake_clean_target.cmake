file(REMOVE_RECURSE
  "libcbsim.a"
)
