
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coherence/backoff/backoff.cc" "src/CMakeFiles/cbsim.dir/coherence/backoff/backoff.cc.o" "gcc" "src/CMakeFiles/cbsim.dir/coherence/backoff/backoff.cc.o.d"
  "/root/repo/src/coherence/callback/callback_directory.cc" "src/CMakeFiles/cbsim.dir/coherence/callback/callback_directory.cc.o" "gcc" "src/CMakeFiles/cbsim.dir/coherence/callback/callback_directory.cc.o.d"
  "/root/repo/src/coherence/controller.cc" "src/CMakeFiles/cbsim.dir/coherence/controller.cc.o" "gcc" "src/CMakeFiles/cbsim.dir/coherence/controller.cc.o.d"
  "/root/repo/src/coherence/mem_request.cc" "src/CMakeFiles/cbsim.dir/coherence/mem_request.cc.o" "gcc" "src/CMakeFiles/cbsim.dir/coherence/mem_request.cc.o.d"
  "/root/repo/src/coherence/mesi/mesi_l1.cc" "src/CMakeFiles/cbsim.dir/coherence/mesi/mesi_l1.cc.o" "gcc" "src/CMakeFiles/cbsim.dir/coherence/mesi/mesi_l1.cc.o.d"
  "/root/repo/src/coherence/mesi/mesi_llc.cc" "src/CMakeFiles/cbsim.dir/coherence/mesi/mesi_llc.cc.o" "gcc" "src/CMakeFiles/cbsim.dir/coherence/mesi/mesi_llc.cc.o.d"
  "/root/repo/src/coherence/vips/page_classifier.cc" "src/CMakeFiles/cbsim.dir/coherence/vips/page_classifier.cc.o" "gcc" "src/CMakeFiles/cbsim.dir/coherence/vips/page_classifier.cc.o.d"
  "/root/repo/src/coherence/vips/vips_l1.cc" "src/CMakeFiles/cbsim.dir/coherence/vips/vips_l1.cc.o" "gcc" "src/CMakeFiles/cbsim.dir/coherence/vips/vips_l1.cc.o.d"
  "/root/repo/src/coherence/vips/vips_llc.cc" "src/CMakeFiles/cbsim.dir/coherence/vips/vips_llc.cc.o" "gcc" "src/CMakeFiles/cbsim.dir/coherence/vips/vips_llc.cc.o.d"
  "/root/repo/src/core/core.cc" "src/CMakeFiles/cbsim.dir/core/core.cc.o" "gcc" "src/CMakeFiles/cbsim.dir/core/core.cc.o.d"
  "/root/repo/src/energy/energy_model.cc" "src/CMakeFiles/cbsim.dir/energy/energy_model.cc.o" "gcc" "src/CMakeFiles/cbsim.dir/energy/energy_model.cc.o.d"
  "/root/repo/src/harness/experiment.cc" "src/CMakeFiles/cbsim.dir/harness/experiment.cc.o" "gcc" "src/CMakeFiles/cbsim.dir/harness/experiment.cc.o.d"
  "/root/repo/src/harness/table.cc" "src/CMakeFiles/cbsim.dir/harness/table.cc.o" "gcc" "src/CMakeFiles/cbsim.dir/harness/table.cc.o.d"
  "/root/repo/src/isa/assembler.cc" "src/CMakeFiles/cbsim.dir/isa/assembler.cc.o" "gcc" "src/CMakeFiles/cbsim.dir/isa/assembler.cc.o.d"
  "/root/repo/src/isa/instruction.cc" "src/CMakeFiles/cbsim.dir/isa/instruction.cc.o" "gcc" "src/CMakeFiles/cbsim.dir/isa/instruction.cc.o.d"
  "/root/repo/src/mem/cache_array.cc" "src/CMakeFiles/cbsim.dir/mem/cache_array.cc.o" "gcc" "src/CMakeFiles/cbsim.dir/mem/cache_array.cc.o.d"
  "/root/repo/src/mem/data_store.cc" "src/CMakeFiles/cbsim.dir/mem/data_store.cc.o" "gcc" "src/CMakeFiles/cbsim.dir/mem/data_store.cc.o.d"
  "/root/repo/src/mem/memory_model.cc" "src/CMakeFiles/cbsim.dir/mem/memory_model.cc.o" "gcc" "src/CMakeFiles/cbsim.dir/mem/memory_model.cc.o.d"
  "/root/repo/src/mem/mshr.cc" "src/CMakeFiles/cbsim.dir/mem/mshr.cc.o" "gcc" "src/CMakeFiles/cbsim.dir/mem/mshr.cc.o.d"
  "/root/repo/src/noc/mesh.cc" "src/CMakeFiles/cbsim.dir/noc/mesh.cc.o" "gcc" "src/CMakeFiles/cbsim.dir/noc/mesh.cc.o.d"
  "/root/repo/src/noc/message.cc" "src/CMakeFiles/cbsim.dir/noc/message.cc.o" "gcc" "src/CMakeFiles/cbsim.dir/noc/message.cc.o.d"
  "/root/repo/src/noc/router.cc" "src/CMakeFiles/cbsim.dir/noc/router.cc.o" "gcc" "src/CMakeFiles/cbsim.dir/noc/router.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/cbsim.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/cbsim.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/log.cc" "src/CMakeFiles/cbsim.dir/sim/log.cc.o" "gcc" "src/CMakeFiles/cbsim.dir/sim/log.cc.o.d"
  "/root/repo/src/sim/rng.cc" "src/CMakeFiles/cbsim.dir/sim/rng.cc.o" "gcc" "src/CMakeFiles/cbsim.dir/sim/rng.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/CMakeFiles/cbsim.dir/sim/trace.cc.o" "gcc" "src/CMakeFiles/cbsim.dir/sim/trace.cc.o.d"
  "/root/repo/src/stats/stats.cc" "src/CMakeFiles/cbsim.dir/stats/stats.cc.o" "gcc" "src/CMakeFiles/cbsim.dir/stats/stats.cc.o.d"
  "/root/repo/src/sync/barriers.cc" "src/CMakeFiles/cbsim.dir/sync/barriers.cc.o" "gcc" "src/CMakeFiles/cbsim.dir/sync/barriers.cc.o.d"
  "/root/repo/src/sync/layout.cc" "src/CMakeFiles/cbsim.dir/sync/layout.cc.o" "gcc" "src/CMakeFiles/cbsim.dir/sync/layout.cc.o.d"
  "/root/repo/src/sync/locks.cc" "src/CMakeFiles/cbsim.dir/sync/locks.cc.o" "gcc" "src/CMakeFiles/cbsim.dir/sync/locks.cc.o.d"
  "/root/repo/src/sync/signal_wait.cc" "src/CMakeFiles/cbsim.dir/sync/signal_wait.cc.o" "gcc" "src/CMakeFiles/cbsim.dir/sync/signal_wait.cc.o.d"
  "/root/repo/src/system/chip.cc" "src/CMakeFiles/cbsim.dir/system/chip.cc.o" "gcc" "src/CMakeFiles/cbsim.dir/system/chip.cc.o.d"
  "/root/repo/src/system/chip_config.cc" "src/CMakeFiles/cbsim.dir/system/chip_config.cc.o" "gcc" "src/CMakeFiles/cbsim.dir/system/chip_config.cc.o.d"
  "/root/repo/src/system/run_result.cc" "src/CMakeFiles/cbsim.dir/system/run_result.cc.o" "gcc" "src/CMakeFiles/cbsim.dir/system/run_result.cc.o.d"
  "/root/repo/src/workload/profile.cc" "src/CMakeFiles/cbsim.dir/workload/profile.cc.o" "gcc" "src/CMakeFiles/cbsim.dir/workload/profile.cc.o.d"
  "/root/repo/src/workload/program_gen.cc" "src/CMakeFiles/cbsim.dir/workload/program_gen.cc.o" "gcc" "src/CMakeFiles/cbsim.dir/workload/program_gen.cc.o.d"
  "/root/repo/src/workload/suite.cc" "src/CMakeFiles/cbsim.dir/workload/suite.cc.o" "gcc" "src/CMakeFiles/cbsim.dir/workload/suite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
