#!/usr/bin/env sh
# Documentation coverage linter, run as a ctest entry.
#
# Checks, in order:
#   1. Every top-level src/ subsystem directory is mentioned in
#      DESIGN.md or somewhere under docs/.
#   2. docs/ISA.md covers 100% of the opcodes declared in the Opcode
#      enum of src/isa/instruction.hh.
#   3. docs/ROBUSTNESS.md covers every invariant name declared in
#      src/debug/invariant_checker.cc (invariantNames()).
#   4. Every relative markdown link in the tracked *.md files points at
#      a file (or file#anchor) that exists.
#   5. Stat-name coverage: every RunResult::scalarFields() name from
#      src/system/run_result.cc appears backticked in docs/RESULTS.md,
#      and every EpochSampler::kFieldNames entry from src/obs/epoch.cc
#      appears backticked in docs/OBSERVABILITY.md.
#   6. Crash-safe sweeps: every harness fault site declared in
#      src/harness/harness_faults.cc (kHarnessFaultSites) and every
#      crash-safety flag of the bench driver is documented in
#      docs/ROBUSTNESS.md.
#
# Usage: scripts/check_docs.sh [repo-root]   (default: script's parent)

set -u

root=${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}
cd "$root" || exit 2

fail=0
err() { echo "check_docs: $*" >&2; fail=1; }

# ---- 1. subsystem coverage --------------------------------------------------
for dir in src/*/; do
    sub=$(basename "$dir")
    if ! grep -q "src/$sub" DESIGN.md docs/*.md 2>/dev/null; then
        err "subsystem src/$sub is not mentioned in DESIGN.md or docs/"
    fi
done

# ---- 2. opcode coverage of docs/ISA.md -------------------------------------
if [ ! -f docs/ISA.md ]; then
    err "docs/ISA.md is missing"
else
    # Extract enumerator names from the Opcode enum body: identifiers at
    # the start of a line, up to the closing brace.
    opcodes=$(sed -n '/^enum class Opcode/,/^};/p' src/isa/instruction.hh \
        | sed -n 's/^ *\([A-Z][A-Za-z0-9]*\),.*/\1/p')
    [ -n "$opcodes" ] || err "could not parse Opcode enum from src/isa/instruction.hh"
    for op in $opcodes; do
        # Opcodes appear in ISA.md as `MovImm` (backticked table cells).
        if ! grep -q "\`$op\`" docs/ISA.md; then
            err "opcode $op is not documented in docs/ISA.md"
        fi
    done
fi

# ---- 3. invariant coverage of docs/ROBUSTNESS.md ---------------------------
if [ ! -f docs/ROBUSTNESS.md ]; then
    err "docs/ROBUSTNESS.md is missing"
else
    # Invariant names are the double-quoted kebab-case strings in the
    # invariantNames() initializer list.
    invariants=$(sed -n '/invariantNames()/,/^}/p' \
                     src/debug/invariant_checker.cc \
        | grep -o '"[a-z][a-z-]*"' | tr -d '"' | sort -u)
    [ -n "$invariants" ] || \
        err "could not parse invariantNames() from src/debug/invariant_checker.cc"
    for inv in $invariants; do
        # Invariants appear in ROBUSTNESS.md as backticked list items.
        if ! grep -q "\`$inv\`" docs/ROBUSTNESS.md; then
            err "invariant $inv is not documented in docs/ROBUSTNESS.md"
        fi
    done
fi

# ---- 4. relative markdown links resolve ------------------------------------
# Collect the markdown files we keep honest (tracked docs, not build/).
md_files=$(ls ./*.md docs/*.md 2>/dev/null)
for md in $md_files; do
    base=$(dirname "$md")
    # Pull out (text)(target) link targets; one per line. Skip absolute
    # URLs and pure in-page anchors.
    grep -o '](\([^)]*\))' "$md" | sed 's/^](\(.*\))$/\1/' \
    | while IFS= read -r target; do
        case $target in
            http://*|https://*|mailto:*|\#*) continue ;;
        esac
        file=${target%%#*}
        [ -n "$file" ] || continue
        if [ ! -e "$base/$file" ] && [ ! -e "$file" ]; then
            echo "check_docs: broken link in $md -> $target" >&2
            echo broken > "${TMPDIR:-/tmp}/check_docs_broken.$$"
        fi
    done
done
if [ -f "${TMPDIR:-/tmp}/check_docs_broken.$$" ]; then
    rm -f "${TMPDIR:-/tmp}/check_docs_broken.$$"
    fail=1
fi

# ---- 5. stat-name coverage --------------------------------------------------
if [ ! -f docs/RESULTS.md ]; then
    err "docs/RESULTS.md is missing"
else
    # Metric names are the double-quoted strings in the scalarFields()
    # initializer list (one {"name", value} pair per line).
    fields=$(sed -n '/scalarFields() const/,/^}/p' \
                 src/system/run_result.cc \
        | grep -o '"[a-z][a-z0-9_]*"' | tr -d '"' | sort -u)
    [ -n "$fields" ] || \
        err "could not parse scalarFields() from src/system/run_result.cc"
    for f in $fields; do
        if ! grep -q "\`$f\`" docs/RESULTS.md; then
            err "metric $f is not documented in docs/RESULTS.md"
        fi
    done
fi
if [ ! -f docs/OBSERVABILITY.md ]; then
    err "docs/OBSERVABILITY.md is missing"
else
    # Epoch field names are declared one per line in the kFieldNames
    # initializer precisely so they can be extracted here.
    efields=$(sed -n '/kFieldNames = {/,/};/p' src/obs/epoch.cc \
        | grep -o '"[a-z][a-z0-9_]*"' | tr -d '"' | sort -u)
    [ -n "$efields" ] || \
        err "could not parse EpochSampler::kFieldNames from src/obs/epoch.cc"
    for f in $efields; do
        if ! grep -q "\`$f\`" docs/OBSERVABILITY.md; then
            err "epoch field $f is not documented in docs/OBSERVABILITY.md"
        fi
    done
fi
if [ -f docs/RESULTS.md ] && [ -f docs/OBSERVABILITY.md ]; then
    # Contention field names are declared one per line in the
    # kContentionFields initializer precisely so they can be extracted
    # here; every schema-v4 contention[] column must be documented in
    # both the schema reference and the attribution guide.
    cfields=$(sed -n '/kContentionFields = {/,/};/p' \
                  src/obs/attribution.cc \
        | grep -o '"[a-z][a-z0-9_]*"' | tr -d '"' | sort -u)
    [ -n "$cfields" ] || \
        err "could not parse kContentionFields from src/obs/attribution.cc"
    for f in $cfields; do
        if ! grep -q "\`$f\`" docs/RESULTS.md; then
            err "contention field $f is not documented in docs/RESULTS.md"
        fi
        if ! grep -q "\`$f\`" docs/OBSERVABILITY.md; then
            err "contention field $f is not documented in docs/OBSERVABILITY.md"
        fi
    done
fi

# ---- 6. crash-safe sweep coverage of docs/ROBUSTNESS.md --------------------
if [ -f docs/ROBUSTNESS.md ]; then
    # Fault sites are declared one per line in the kHarnessFaultSites
    # initializer precisely so they can be extracted here.
    sites=$(sed -n '/kHarnessFaultSites = {/,/};/p' \
                src/harness/harness_faults.cc \
        | grep -o '"[a-z][a-z-]*"' | tr -d '"' | sort -u)
    [ -n "$sites" ] || \
        err "could not parse kHarnessFaultSites from src/harness/harness_faults.cc"
    for s in $sites; do
        if ! grep -q "\`$s\`" docs/ROBUSTNESS.md; then
            err "harness fault site $s is not documented in docs/ROBUSTNESS.md"
        fi
    done
    # The crash-safe execution flags the bench driver grew must be
    # documented next to the machinery they drive.
    for flag in --isolate --resume --retries --quarantine-dir --only-key; do
        if ! grep -q -- "\`$flag" docs/ROBUSTNESS.md; then
            err "bench flag $flag is not documented in docs/ROBUSTNESS.md"
        fi
    done
fi

if [ "$fail" -eq 0 ]; then
    echo "check_docs: OK (subsystems, opcodes, invariants, links, stats," \
         "crash-safety)"
fi
exit $fail
