#!/usr/bin/env sh
# Crash-safe sweep round trip, run as a ctest chaos/soak entry
# (bench_crash_resume). Proves the ISSUE's headline acceptance claims
# end-to-end on a real bench module (fig01_motivation, --smoke), with
# the protocol invariant checker on:
#
#  1. kill/resume byte-identity: a sweep SIGKILLed mid-run by the
#     sweep-kill chaos fault, then re-run with --resume, publishes an
#     artifact byte-identical to an uninterrupted run's;
#  2. crash containment: a kill-child chaos fault crashes exactly one
#     --isolate cell; the sweep completes, the row is crashed +
#     quarantined with a self-contained repro bundle, and every sibling
#     row still matches the fault-free artifact;
#  3. retry healing: with transient-once + --retries 1 every cell
#     recovers on its second attempt ("attempts": 2) and the sweep
#     exits clean.
#
# Usage: check_crash_resume.sh <repo-root> <bench_all-binary> <scratch-dir>

set -u

root=${1:?usage: check_crash_resume.sh <repo-root> <bench_all> <scratch>}
bin=${2:?usage: check_crash_resume.sh <repo-root> <bench_all> <scratch>}
scratch=${3:?usage: check_crash_resume.sh <repo-root> <bench_all> <scratch>}

CBSIM_CHECK_INVARIANTS=1
export CBSIM_CHECK_INVARIANTS

module=fig01_motivation
run="$bin --only $module --smoke --isolate --jobs 1"

rm -rf "$scratch"
mkdir -p "$scratch"
status=0

# --- 1. Uninterrupted baseline -------------------------------------------
if ! $run --out-dir "$scratch/base" > "$scratch/base.log" 2>&1; then
    echo "check_crash_resume: baseline sweep failed:" >&2
    tail -n 20 "$scratch/base.log" >&2
    exit 1
fi
base="$scratch/base/$module.json"
[ -f "$base" ] || {
    echo "check_crash_resume: baseline produced no artifact" >&2
    exit 1
}

# --- 2. SIGKILL mid-sweep, then --resume ---------------------------------
CBSIM_HARNESS_FAULTS="sweep-kill@2" \
    $run --out-dir "$scratch/resume" > "$scratch/killed.log" 2>&1
rc=$?
if [ "$rc" -eq 0 ]; then
    echo "check_crash_resume: sweep-kill@2 run exited 0 (fault not taken)" >&2
    status=1
fi
journal="$scratch/resume/$module.json.journal"
if [ ! -f "$journal" ]; then
    echo "check_crash_resume: killed sweep left no journal at $journal" >&2
    status=1
fi
if ! $run --resume --out-dir "$scratch/resume" \
        > "$scratch/resume.log" 2>&1; then
    echo "check_crash_resume: --resume run failed:" >&2
    tail -n 20 "$scratch/resume.log" >&2
    status=1
fi
if ! grep -q "replayed from journal" "$scratch/resume.log"; then
    echo "check_crash_resume: --resume replayed nothing" >&2
    status=1
fi
if ! cmp -s "$base" "$scratch/resume/$module.json"; then
    echo "check_crash_resume: resumed artifact differs from baseline:" >&2
    diff -u "$base" "$scratch/resume/$module.json" | head -n 40 >&2
    status=1
fi
if [ -f "$journal" ]; then
    echo "check_crash_resume: journal not removed after clean publish" >&2
    status=1
fi

# --- 3. Crashed cell: contained, quarantined, siblings intact ------------
CBSIM_HARNESS_FAULTS="kill-child@2" \
    $run --out-dir "$scratch/crash" \
         --quarantine-dir "$scratch/crash/quarantine" \
         > "$scratch/crash.log" 2>&1
if [ $? -eq 0 ]; then
    echo "check_crash_resume: crashed sweep exited 0" >&2
    status=1
fi
crash="$scratch/crash/$module.json"
[ -f "$crash" ] || {
    echo "check_crash_resume: crashed sweep published no artifact" >&2
    exit 1
}
crashed_rows=$(grep -c '"status": "crashed"' "$crash")
if [ "$crashed_rows" -ne 1 ]; then
    echo "check_crash_resume: want exactly 1 crashed row, got" \
         "$crashed_rows" >&2
    status=1
fi
if ! grep -q '"quarantined": true' "$crash"; then
    echo "check_crash_resume: crashed row not quarantined" >&2
    status=1
fi
bundles=$(find "$scratch/crash/quarantine" -name rerun.txt 2>/dev/null |
          wc -l)
if [ "$bundles" -ne 1 ]; then
    echo "check_crash_resume: want 1 quarantine bundle, got $bundles" >&2
    status=1
else
    bundle=$(dirname "$(find "$scratch/crash/quarantine" -name rerun.txt)")
    [ -f "$bundle/job.json" ] || {
        echo "check_crash_resume: bundle missing job.json" >&2
        status=1
    }
    if ! grep -q -- "--only-key" "$bundle/rerun.txt"; then
        echo "check_crash_resume: rerun.txt has no --only-key line" >&2
        status=1
    fi
fi
# Sibling integrity: drop each artifact's crashed/ok rows' attempt-free
# diff — every line unique to the crashed artifact must belong to the
# single crashed row (its error/status members), never to a sibling.
ok_base=$(grep -c '"status": "ok"' "$base")
ok_crash=$(grep -c '"status": "ok"' "$crash")
if [ "$ok_crash" -ne $((ok_base - 1)) ]; then
    echo "check_crash_resume: sibling rows damaged: baseline $ok_base ok," \
         "crashed sweep $ok_crash ok (want one fewer)" >&2
    status=1
fi

# --- 4. Transient fault healed by one retry ------------------------------
CBSIM_HARNESS_FAULTS="transient-once" \
    $run --retries 1 --out-dir "$scratch/retry" \
         > "$scratch/retry.log" 2>&1
if [ $? -ne 0 ]; then
    echo "check_crash_resume: transient-once + --retries 1 failed:" >&2
    tail -n 20 "$scratch/retry.log" >&2
    status=1
fi
if ! grep -q '"attempts": 2' "$scratch/retry/$module.json"; then
    echo "check_crash_resume: retried rows do not record attempts=2" >&2
    status=1
fi

[ "$status" -eq 0 ] && echo "check_crash_resume: OK"
exit $status
