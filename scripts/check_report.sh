#!/usr/bin/env sh
# Reporting regression, run as a ctest tier-2 entry (report_smoke_golden).
#
# Drives cbsim-report end-to-end against the checked-in smoke goldens:
#  - every golden artifact must render (figure tables + contention);
#  - the fig20 render must show all three technique families with
#    symbolic object names (the schema-v4 attribution contract);
#  - an artifact diffed against itself must be clean (exit 0);
#  - a doctored regression must fail the diff (exit 1);
#  - garbage input must exit 2 (usage/parse).
#
# Usage: check_report.sh <repo-root> <cbsim-report-binary>

set -u

root=${1:?usage: check_report.sh <repo-root> <cbsim-report>}
bin=${2:?usage: check_report.sh <repo-root> <cbsim-report>}

golden_dir="$root/tests/golden/smoke"
[ -d "$golden_dir" ] || {
    echo "check_report: missing $golden_dir" >&2
    exit 1
}

scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT
status=0

for golden in "$golden_dir"/*.json; do
    name=$(basename "$golden")
    if ! "$bin" "$golden" > "$scratch/$name.out" 2>&1; then
        echo "check_report: render failed for $name:" >&2
        tail -n 10 "$scratch/$name.out" >&2
        status=1
    fi
done

# The sync-figure render must carry the per-technique contention
# breakdown with symbolic names, not hex.
out="$scratch/fig20_sync.json.out"
for want in "Invalidation" "BackOff" "CB-" "contention:" "lock0"; do
    if ! grep -q "$want" "$out"; then
        echo "check_report: fig20 render missing '$want'" >&2
        status=1
    fi
done

# Self-diff is clean.
if ! "$bin" --diff "$golden_dir/fig20_sync.json" \
        "$golden_dir/fig20_sync.json" > "$scratch/selfdiff.out" 2>&1; then
    echo "check_report: self-diff not clean:" >&2
    cat "$scratch/selfdiff.out" >&2
    status=1
fi

# A doctored +20% cycles regression must fail with exit 1.
sed 's/"cycles": \([0-9]*\)/"cycles": 9999999/' \
    "$golden_dir/fig20_sync.json" > "$scratch/worse.json"
"$bin" --diff "$golden_dir/fig20_sync.json" "$scratch/worse.json" \
    > "$scratch/worsediff.out" 2>&1
rc=$?
if [ "$rc" -ne 1 ]; then
    echo "check_report: doctored diff exited $rc, want 1" >&2
    status=1
fi
if ! grep -q "REGRESSION" "$scratch/worsediff.out"; then
    echo "check_report: doctored diff printed no REGRESSION line" >&2
    status=1
fi

# Partial-artifact golden (docs/ROBUSTNESS.md §Crash-safe sweeps): a
# checked-in artifact with one crashed + quarantined row, produced by a
# kill-child chaos run. The render must flag it, and diffing it against
# the fault-free smoke golden must report the quarantined cell as a
# regression (exit 1).
partial="$root/tests/golden/partial/fig01_motivation.json"
if [ ! -f "$partial" ]; then
    echo "check_report: missing partial golden $partial" >&2
    status=1
else
    "$bin" "$partial" > "$scratch/partial.out" 2>&1
    if ! grep -q "WARNING: partial artifact" "$scratch/partial.out"; then
        echo "check_report: partial render not flagged" >&2
        status=1
    fi
    if ! grep -q "quarantined" "$scratch/partial.out"; then
        echo "check_report: partial render does not count quarantined" >&2
        status=1
    fi
    "$bin" --diff "$golden_dir/fig01_motivation.json" "$partial" \
        > "$scratch/partialdiff.out" 2>&1
    rc=$?
    if [ "$rc" -ne 1 ]; then
        echo "check_report: partial diff exited $rc, want 1" >&2
        status=1
    fi
    if ! grep -qi "quarantined" "$scratch/partialdiff.out"; then
        echo "check_report: partial diff does not name the quarantined" \
             "cell" >&2
        status=1
    fi
fi

# Garbage input: exit 2.
echo "not json" > "$scratch/garbage.json"
"$bin" "$scratch/garbage.json" > /dev/null 2>&1
rc=$?
if [ "$rc" -ne 2 ]; then
    echo "check_report: garbage input exited $rc, want 2" >&2
    status=1
fi

[ "$status" -eq 0 ] && echo "check_report: OK"
exit $status
