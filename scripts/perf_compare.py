#!/usr/bin/env python3
"""Compare two cbsim host-perf artifacts (schema: docs/PERF.md).

Prints a per-cell and total events/sec comparison between a BEFORE and
an AFTER artifact produced by bench_perf_kernel (or any tool emitting
the cbsim-host-perf schema), e.g.:

    ./build/bench/bench_perf_kernel --out /tmp/before.json   # old kernel
    # ... apply the change, rebuild ...
    ./build/bench/bench_perf_kernel --out /tmp/after.json
    scripts/perf_compare.py /tmp/before.json /tmp/after.json

Exit status: 0 normally; with --min-speedup X, exits 1 when the total
events/sec ratio (after/before) is below X, so CI can enforce a floor.

Simulated-event counts are deterministic: if a cell's event count
changed between the two artifacts, the simulator's behaviour changed,
not just its speed — flagged loudly since it invalidates the
comparison (and usually the determinism contract).
"""

import argparse
import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "cbsim-host-perf":
        if "runs" in doc and "schema_version" in doc:
            sys.exit(f"{path}: this is a results artifact (schema "
                     f"v{doc['schema_version']}, docs/RESULTS.md), not "
                     "a host-perf artifact; produce inputs with "
                     "bench_perf_kernel --out")
        sys.exit(f"{path}: not a cbsim-host-perf artifact "
                 f"(schema={doc.get('schema')!r})")
    return doc


def fmt_eps(eps):
    return f"{eps / 1e6:8.2f} Mev/s"


def main():
    ap = argparse.ArgumentParser(
        description="Compare two cbsim host-perf artifacts.")
    ap.add_argument("before", help="baseline artifact (old kernel)")
    ap.add_argument("after", help="comparison artifact (new kernel)")
    ap.add_argument("--min-speedup", type=float, default=None,
                    help="fail (exit 1) if total events/sec ratio "
                         "after/before is below this")
    ap.add_argument("--cells", action="store_true",
                    help="print the per-cell table (default: totals "
                         "plus the extreme cells)")
    args = ap.parse_args()

    before = load(args.before)
    after = load(args.after)
    bv = before.get("schema_version")
    av = after.get("schema_version")
    if bv != av:
        if {bv, av} == {1, 2}:
            detail = ("events/sec denominators differ (v1 times the "
                      "full experiment, v2 the event loop) so ratios "
                      "are not comparable")
        elif {bv, av} == {2, 3}:
            detail = ("v3 runs may carry observability instrumentation "
                      "(epoch sampling / tracing, docs/OBSERVABILITY.md)"
                      " the v2 run did not; compare only artifacts "
                      "produced with identical obs settings")
        else:
            detail = ("field meanings may differ between versions; "
                      "treat ratios with suspicion")
        print("warning: artifacts use different schema versions "
              f"({bv} vs {av}); {detail}", file=sys.stderr)

    b_cells = {c["key"]: c for c in before["cells"]}
    a_cells = {c["key"]: c for c in after["cells"]}
    common = [k for k in b_cells if k in a_cells]
    if not common:
        sys.exit("no common cells between the two artifacts")
    only_b = sorted(set(b_cells) - set(a_cells))
    only_a = sorted(set(a_cells) - set(b_cells))
    for k in only_b:
        print(f"warning: cell only in before: {k}", file=sys.stderr)
    for k in only_a:
        print(f"warning: cell only in after:  {k}", file=sys.stderr)

    drift = False
    rows = []
    for key in common:
        b, a = b_cells[key], a_cells[key]
        if b["events"] != a["events"]:
            drift = True
            print(f"EVENT-COUNT DRIFT in {key}: {b['events']} -> "
                  f"{a['events']} (simulated behaviour changed!)",
                  file=sys.stderr)
        ratio = (a["events_per_sec"] / b["events_per_sec"]
                 if b["events_per_sec"] else float("inf"))
        rows.append((key, b["events_per_sec"], a["events_per_sec"],
                     ratio))

    rows.sort(key=lambda r: r[3])
    width = max(len(r[0]) for r in rows)
    header = (f"{'cell':<{width}}  {'before':>14}  {'after':>14}  "
              f"{'speedup':>8}")
    if args.cells:
        print(header)
        for key, b_eps, a_eps, ratio in rows:
            print(f"{key:<{width}}  {fmt_eps(b_eps)}  {fmt_eps(a_eps)}  "
                  f"{ratio:7.2f}x")
    else:
        print(header)
        for key, b_eps, a_eps, ratio in (rows[0], rows[-1]):
            tag = "slowest" if (key, b_eps, a_eps, ratio) == rows[0] \
                else "fastest"
            print(f"{key:<{width}}  {fmt_eps(b_eps)}  {fmt_eps(a_eps)}  "
                  f"{ratio:7.2f}x  ({tag} cell)")

    tb, ta = before["totals"], after["totals"]
    total_ratio = (ta["events_per_sec"] / tb["events_per_sec"]
                   if tb["events_per_sec"] else float("inf"))
    print(f"{'TOTAL':<{width}}  {fmt_eps(tb['events_per_sec'])}  "
          f"{fmt_eps(ta['events_per_sec'])}  {total_ratio:7.2f}x")
    if "sim_ms" in tb and "sim_ms" in ta:
        print(f"event-loop: {tb['sim_ms']:.0f} ms -> "
              f"{ta['sim_ms']:.0f} ms")
    print(f"wall: {tb['wall_ms']:.0f} ms -> {ta['wall_ms']:.0f} ms")

    if drift:
        print("note: event counts drifted; speedup numbers compare "
              "different simulations", file=sys.stderr)
    if args.min_speedup is not None and total_ratio < args.min_speedup:
        print(f"FAIL: total speedup {total_ratio:.2f}x < floor "
              f"{args.min_speedup:.2f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
