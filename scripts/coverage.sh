#!/usr/bin/env sh
# Line-coverage ratchet, run as a ctest entry (like check_docs.sh).
#
# Drives a nested -DCBSIM_COVERAGE=ON Debug build of the unit-test
# binaries, runs them, aggregates line coverage over src/, and fails
# when the percentage drops below the checked-in floor
# (scripts/coverage_floor.txt). Raise the floor when coverage improves —
# it only ratchets upward via review, never silently.
#
# Toolchain: uses gcovr when available, else falls back to parsing
# plain `gcov -n` summaries (no extra packages needed). Exits 77
# (ctest SKIP) when neither tool can run.
#
# Usage: scripts/coverage.sh [repo-root [build-dir]]

set -u

root=${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}
build=${2:-$root/build/coverage}
floor_file="$root/scripts/coverage_floor.txt"

if ! command -v gcov >/dev/null 2>&1 && ! command -v gcovr >/dev/null 2>&1
then
    echo "coverage: no gcov/gcovr in PATH; skipping" >&2
    exit 77
fi

# The unit-test binaries the ratchet measures (the cbsim_test targets
# plus the chaos-tier crash_safety_test, which is the only exerciser of
# the crash-safe sweep layer; soak and the nested-build ctest entries
# are excluded on purpose).
targets="sim_test noc_test mem_test isa_test callback_test protocol_test \
sync_test workload_test obs_test harness_test debug_test integration_test \
report_test crash_safety_test"

cmake -S "$root" -B "$build" -DCMAKE_BUILD_TYPE=Debug \
      -DCBSIM_COVERAGE=ON >/dev/null || exit 1
# shellcheck disable=SC2086  # target list is intentionally split
cmake --build "$build" -j "$(nproc)" --target $targets >/dev/null || exit 1

# Fresh counters per run: stale .gcda from a previous invocation would
# inflate the number and defeat the ratchet.
find "$build" -name '*.gcda' -delete

for t in $targets; do
    if ! "$build/tests/$t" --gtest_brief=1 >/dev/null; then
        echo "coverage: $t failed" >&2
        exit 1
    fi
done

if command -v gcovr >/dev/null 2>&1; then
    pct=$(gcovr --root "$root" --filter "$root/src/" --print-summary \
                "$build" 2>/dev/null \
          | sed -n 's/^lines: \([0-9.]*\)%.*/\1/p')
else
    # Plain-gcov fallback: emit per-file summaries ("File '...'" then
    # "Lines executed:P% of N") for every .gcda, keep files under src/,
    # and aggregate executed = sum(P/100 * N) over total = sum(N).
    pct=$(find "$build" -name '*.gcda' | while IFS= read -r gcda; do
              gcov -n -o "$(dirname "$gcda")" "$gcda" 2>/dev/null
          done | awk '
        /^File / {
            keep = index($0, "/src/") > 0 || index($0, "src/") == 7
        }
        keep && /^Lines executed:/ {
            split($0, a, ":")
            split(a[2], b, "% of ")
            exec_lines += b[1] / 100.0 * b[2]
            total_lines += b[2]
            keep = 0
        }
        END {
            if (total_lines == 0) { print "none" }
            else printf "%.2f", 100.0 * exec_lines / total_lines
        }')
fi

if [ -z "${pct:-}" ] || [ "$pct" = "none" ]; then
    echo "coverage: could not aggregate line coverage; skipping" >&2
    exit 77
fi

floor=$(cat "$floor_file" 2>/dev/null)
if [ -z "${floor:-}" ]; then
    echo "coverage: missing floor file $floor_file" >&2
    exit 1
fi

echo "coverage: src/ line coverage ${pct}% (floor ${floor}%)"
awk -v p="$pct" -v f="$floor" 'BEGIN { exit !(p + 0 >= f + 0) }' || {
    echo "coverage: FAILED — ${pct}% is below the checked-in floor" \
         "${floor}% (scripts/coverage_floor.txt)" >&2
    exit 1
}
exit 0
