#!/usr/bin/env sh
# Build and run the sim/noc unit tests plus the robustness/soak tier
# under AddressSanitizer + UndefinedBehaviorSanitizer, as a ctest
# tier-2 entry (sanitize_sim_noc).
#
# The allocation-free event path (sim/event.hh) manages object lifetimes
# by hand (placement-new, manual relocation/destruction); this catches
# use-after-move, buffer overruns, and alignment bugs mechanically. The
# soak tier additionally drives the fault-injection recovery paths
# (forced callback-directory evictions, delayed messages) under the
# sanitizers, and the chaos tier (crash_safety_test) covers the
# crash-safe sweep layer's fork + pipe teardown and journal I/O —
# see docs/ROBUSTNESS.md.
#
# Uses a nested build tree so the sanitizer flags never leak into the
# primary build; the tree is reused incrementally across runs.
#
# Usage: sanitize_tests.sh <source-root> <build-dir>
# Exit: 0 pass, 77 skipped (no sanitizer runtime), anything else fail.

set -u

src=${1:?usage: sanitize_tests.sh <source-root> <build-dir>}
bld=${2:?usage: sanitize_tests.sh <source-root> <build-dir>}

# Probe for a working ASan+UBSan toolchain; skip (ctest SKIP_RETURN_CODE
# 77) rather than fail where the runtime libraries are not installed.
probe_dir=$(mktemp -d) || exit 1
trap 'rm -rf "$probe_dir"' EXIT
printf 'int main(){return 0;}\n' > "$probe_dir/probe.cc"
if ! c++ -fsanitize=address,undefined "$probe_dir/probe.cc" \
        -o "$probe_dir/probe" 2> /dev/null || ! "$probe_dir/probe"; then
    echo "sanitize_tests: no usable ASan+UBSan toolchain; skipping" >&2
    exit 77
fi

cmake -S "$src" -B "$bld" \
      -DCBSIM_SANITIZE=address,undefined \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      > "$bld.configure.log" 2>&1 || {
    echo "sanitize_tests: configure failed; see $bld.configure.log" >&2
    exit 1
}
cmake --build "$bld" \
      --target sim_test noc_test debug_test soak_test \
               harness_test crash_safety_test \
      > "$bld.build.log" 2>&1 || {
    echo "sanitize_tests: build failed; see $bld.build.log" >&2
    tail -n 40 "$bld.build.log" >&2
    exit 1
}

ASAN_OPTIONS=${ASAN_OPTIONS:-detect_leaks=1}
UBSAN_OPTIONS=${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}
export ASAN_OPTIONS UBSAN_OPTIONS

status=0
for bin in "$bld/tests/sim_test" "$bld/tests/noc_test" \
           "$bld/tests/debug_test" "$bld/tests/soak_test" \
           "$bld/tests/harness_test" "$bld/tests/crash_safety_test"; do
    echo "sanitize_tests: running $bin"
    "$bin" || status=1
done
exit $status
