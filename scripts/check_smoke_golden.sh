#!/usr/bin/env sh
# Determinism regression, run as a ctest tier-2 entry (bench_smoke_golden).
#
# Runs bench_all --smoke and byte-compares every JSON artifact against
# the checked-in goldens under tests/golden/smoke/. The artifacts are a
# pure function of the job list and the simulator (docs/RESULTS.md), so
# ANY difference is a simulated-behaviour change — the test that proves
# a kernel rework preserved bit-exact determinism.
#
# Regenerate goldens after an *intentional* behaviour change with:
#   ./build/bench/bench_all --smoke --jobs 2 --out-dir tests/golden/smoke
#
# Usage: check_smoke_golden.sh <repo-root> <bench_all-binary> <scratch-dir>

set -u

root=${1:?usage: check_smoke_golden.sh <repo-root> <bench_all> <scratch>}
bin=${2:?usage: check_smoke_golden.sh <repo-root> <bench_all> <scratch>}
scratch=${3:?usage: check_smoke_golden.sh <repo-root> <bench_all> <scratch>}

golden_dir="$root/tests/golden/smoke"
[ -d "$golden_dir" ] || {
    echo "check_smoke_golden: missing $golden_dir" >&2
    exit 1
}

rm -rf "$scratch"
mkdir -p "$scratch"
"$bin" --smoke --jobs 2 --out-dir "$scratch" > "$scratch/stdout.log" 2>&1 || {
    echo "check_smoke_golden: bench_all --smoke failed:" >&2
    tail -n 20 "$scratch/stdout.log" >&2
    exit 1
}

status=0
for golden in "$golden_dir"/*.json; do
    name=$(basename "$golden")
    if [ ! -f "$scratch/$name" ]; then
        echo "check_smoke_golden: artifact not produced: $name" >&2
        status=1
        continue
    fi
    if ! cmp -s "$golden" "$scratch/$name"; then
        echo "check_smoke_golden: $name differs from golden:" >&2
        diff -u "$golden" "$scratch/$name" | head -n 40 >&2
        status=1
    fi
done
# Artifacts produced but not golden-tracked are a wiring error too.
for produced in "$scratch"/*.json; do
    name=$(basename "$produced")
    if [ ! -f "$golden_dir/$name" ]; then
        echo "check_smoke_golden: untracked artifact: $name" \
             "(add a golden under tests/golden/smoke/)" >&2
        status=1
    fi
done

[ "$status" -eq 0 ] && echo "check_smoke_golden: OK (byte-identical)"
exit $status
