/**
 * @file
 * Fault-injection soak harness (ctest label "soak"): every sync
 * microbenchmark under each evaluated technique and several fault-plan
 * seeds, with the protocol invariant checker on. The workloads' guard
 * verification is built into runSyncMicro, so "the run returned" already
 * means "the run terminated with correct results"; on top of that we
 * assert that the eviction storm really provoked callback-directory
 * forced evictions, and that a faulted run is still a pure function of
 * its (config, seed) — byte-identical metrics on a rerun.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "debug/debug_config.hh"
#include "harness/experiment.hh"
#include "sim/log.hh"

namespace cbsim {
namespace {

constexpr unsigned kCores = 4; // must be a perfect square <= 64
constexpr unsigned kIters = 6;

const std::vector<SyncMicro>&
allMicros()
{
    static const std::vector<SyncMicro> m = {
        SyncMicro::TtasLock, SyncMicro::ClhLock, SyncMicro::SrBarrier,
        SyncMicro::TreeBarrier, SyncMicro::SignalWait};
    return m;
}

const std::vector<Technique>&
soakTechniques()
{
    static const std::vector<Technique> t = {
        Technique::Invalidation, Technique::BackOff10, Technique::CbOne};
    return t;
}

/**
 * The eviction-storm plan from docs/ROBUSTNESS.md: periodic forced
 * callback-directory evictions plus low-probability random ones, bounded
 * NoC delays, and perturbed self-invalidation timing.
 */
FaultPlan
stormPlan(std::uint64_t seed)
{
    FaultPlan p;
    p.seed = seed;
    p.cbEvictPeriod = 7;
    p.cbEvictChance = 0.02;
    p.nocDelayChance = 0.05;
    p.nocDelayMax = 6;
    p.selfInvlChance = 0.25;
    p.selfInvlDelayMax = 12;
    return p;
}

DebugConfig
soakDebug(const FaultPlan& plan, const std::string& label)
{
    DebugConfig d = DebugConfig::current();
    d.checkInvariants = true;
    d.checkIntervalEvents = 5000;
    d.faults = plan;
    d.label = label;
    d.forensicDir.clear(); // stderr only if something does go wrong
    return d;
}

/** Canonical text form of a run's deterministic metrics. */
std::string
fingerprint(const ExperimentResult& r)
{
    std::ostringstream os;
    for (const auto& [name, value] : r.run.scalarFields())
        os << name << '=' << value << '\n';
    return os.str();
}

TEST(FaultSoak, EveryMicroSurvivesEveryTechniqueAndSeed)
{
    std::uint64_t cbEvictions = 0;
    for (const SyncMicro micro : allMicros()) {
        for (const Technique tech : soakTechniques()) {
            for (std::uint64_t seed = 1; seed <= 3; ++seed) {
                std::ostringstream label;
                label << "soak/" << syncMicroName(micro) << "/"
                      << techniqueName(tech) << "/s" << seed;
                DebugScope scope(
                    soakDebug(stormPlan(seed), label.str()));
                ExperimentResult r;
                ASSERT_NO_THROW(r = runSyncMicro(micro, tech, kCores,
                                                 kIters))
                    << label.str();
                EXPECT_GT(r.run.events, 0u) << label.str();
                if (tech == Technique::CbOne)
                    cbEvictions += r.run.cbdirEvictions;
            }
        }
    }
    // The storm must actually exercise the eviction-under-waiters
    // recovery path (paper Fig. 3 step 5), not just pass vacuously.
    EXPECT_GT(cbEvictions, 0u);
}

TEST(FaultSoak, FaultedRunsAreByteIdenticalPerSeed)
{
    const auto once = [] {
        DebugScope scope(soakDebug(stormPlan(2), "soak/repro"));
        return runSyncMicro(SyncMicro::ClhLock, Technique::CbOne,
                            kCores, kIters);
    };
    const ExperimentResult a = once();
    const ExperimentResult b = once();
    EXPECT_EQ(fingerprint(a), fingerprint(b));

    DebugScope scope(soakDebug(stormPlan(3), "soak/repro-alt"));
    const ExperimentResult c = runSyncMicro(
        SyncMicro::ClhLock, Technique::CbOne, kCores, kIters);
    EXPECT_NE(fingerprint(a), fingerprint(c))
        << "different fault seeds produced identical runs; the plan "
           "is probably not being applied";
}

TEST(FaultSoak, FaultFreeBaselineIsUnchangedByDebugScaffolding)
{
    // Invariant checking and message tracking observe; they must not
    // perturb simulated results (zero-cost-when-off contract).
    const auto run = [](bool checked) {
        DebugConfig d = DebugConfig::current();
        d.checkInvariants = checked;
        d.faults = FaultPlan();
        d.label = "soak/baseline";
        d.forensicDir.clear();
        DebugScope scope(d);
        return runSyncMicro(SyncMicro::SrBarrier, Technique::CbAll,
                            kCores, kIters);
    };
    EXPECT_EQ(fingerprint(run(false)), fingerprint(run(true)));
}

} // namespace
} // namespace cbsim
