/**
 * @file
 * Fault injector tests: decisions are a pure function of (plan, site,
 * call count), the eviction-storm period triggers exactly, delays stay
 * inside their configured bounds, and the per-site Rng streams are
 * independent of one another (enabling one fault class must not shift
 * the sequence another class sees).
 */

#include <gtest/gtest.h>

#include <vector>

#include "debug/fault_injection.hh"

namespace cbsim {
namespace {

FaultPlan
stormPlan(std::uint64_t seed)
{
    FaultPlan p;
    p.seed = seed;
    p.cbEvictPeriod = 7;
    p.cbEvictChance = 0.02;
    p.nocDelayChance = 0.05;
    p.nocDelayMax = 6;
    p.selfInvlChance = 0.25;
    p.selfInvlDelayMax = 12;
    return p;
}

TEST(FaultPlan, EnabledOnlyWhenSomeFaultIsConfigured)
{
    FaultPlan p;
    EXPECT_FALSE(p.enabled());
    p.cbEvictPeriod = 5;
    EXPECT_TRUE(p.enabled());
    p = FaultPlan();
    p.cbEvictChance = 0.1;
    EXPECT_TRUE(p.enabled());
    p = FaultPlan();
    p.nocDelayChance = 0.1;
    EXPECT_TRUE(p.enabled());
    p = FaultPlan();
    p.selfInvlChance = 0.1;
    EXPECT_TRUE(p.enabled());
}

TEST(FaultInjector, SamePlanGivesIdenticalDecisionSequences)
{
    FaultInjector a(stormPlan(42));
    FaultInjector b(stormPlan(42));
    for (int i = 0; i < 2000; ++i) {
        EXPECT_EQ(a.cbEvictNow(), b.cbEvictNow()) << "op " << i;
        EXPECT_EQ(a.nocDelay(), b.nocDelay()) << "op " << i;
        EXPECT_EQ(a.selfInvlDelay(), b.selfInvlDelay()) << "op " << i;
    }
}

TEST(FaultInjector, DifferentSeedsDiverge)
{
    FaultInjector a(stormPlan(1));
    FaultInjector b(stormPlan(2));
    bool diverged = false;
    for (int i = 0; i < 2000 && !diverged; ++i) {
        diverged = a.cbEvictNow() != b.cbEvictNow() ||
                   a.nocDelay() != b.nocDelay() ||
                   a.selfInvlDelay() != b.selfInvlDelay();
    }
    EXPECT_TRUE(diverged);
}

TEST(FaultInjector, EvictPeriodFiresOnExactlyEveryNthOp)
{
    FaultPlan p;
    p.seed = 7;
    p.cbEvictPeriod = 3; // chance 0: only the period can trigger
    FaultInjector fi(p);
    for (int op = 1; op <= 30; ++op)
        EXPECT_EQ(fi.cbEvictNow(), op % 3 == 0) << "op " << op;
}

TEST(FaultInjector, DelaysStayInsideTheConfiguredBounds)
{
    FaultPlan p;
    p.seed = 11;
    p.nocDelayChance = 1.0; // always fires: exercise the range
    p.nocDelayMax = 6;
    p.selfInvlChance = 0.5;
    p.selfInvlDelayMax = 12;
    FaultInjector fi(p);
    bool sawNonMax = false;
    for (int i = 0; i < 500; ++i) {
        const Tick d = fi.nocDelay();
        EXPECT_GE(d, 1u);
        EXPECT_LE(d, 6u);
        sawNonMax = sawNonMax || d < 6;
        const Tick s = fi.selfInvlDelay();
        EXPECT_LE(s, 12u); // 0 when the coin says no
    }
    EXPECT_TRUE(sawNonMax) << "range() never drew below the max";
}

TEST(FaultInjector, DisabledSitesNeverFire)
{
    FaultPlan p;
    p.seed = 3;
    p.cbEvictChance = 1.0; // only the callback site is armed
    FaultInjector fi(p);
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(fi.cbEvictNow());
        EXPECT_EQ(fi.nocDelay(), 0u);
        EXPECT_EQ(fi.selfInvlDelay(), 0u);
    }
}

TEST(FaultInjector, SitesDrawFromIndependentStreams)
{
    // Interleaving draws at one site must not change the sequence
    // another site produces.
    FaultInjector pure(stormPlan(99));
    std::vector<Tick> expected;
    for (int i = 0; i < 200; ++i)
        expected.push_back(pure.nocDelay());

    FaultInjector mixed(stormPlan(99));
    for (int i = 0; i < 200; ++i) {
        mixed.cbEvictNow();
        mixed.selfInvlDelay();
        EXPECT_EQ(mixed.nocDelay(), expected[static_cast<size_t>(i)])
            << "draw " << i;
    }
}

TEST(FaultInjector, ForcedEvictionCounterAccumulates)
{
    FaultInjector fi(stormPlan(1));
    EXPECT_EQ(fi.cbForcedEvictions(), 0u);
    fi.noteCbForcedEviction();
    fi.noteCbForcedEviction();
    EXPECT_EQ(fi.cbForcedEvictions(), 2u);
}

} // namespace
} // namespace cbsim
