/**
 * @file
 * Watchdog and forensic-dump tests: the event queue's poll hook, the
 * no-progress and wall-clock trips, tick-budget exhaustion (fatal, per
 * the log.hh contract), and the forensic JSON a failing run leaves
 * behind — including the acceptance scenario of a deliberately
 * deadlocked workload whose dump names the blocked core and the
 * callback-directory entry it is stuck on.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "../support/chip_helpers.hh"
#include "../support/json_lite.hh"
#include "debug/forensics.hh"
#include "debug/watchdog.hh"

namespace cbsim {
namespace {

constexpr Addr kFlag = 0x10000;

std::string
slurp(const std::string& path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

TEST(EventQueuePollHook, FiresEveryNEvents)
{
    EventQueue eq;
    unsigned polls = 0;
    eq.setPollHook(2, [&polls] { ++polls; });
    for (Tick t = 1; t <= 8; ++t)
        eq.schedule(t, [] {});
    eq.run(1000);
    EXPECT_EQ(polls, 4u);
}

TEST(EventQueuePollHook, OffByDefault)
{
    EventQueue eq;
    for (Tick t = 1; t <= 8; ++t)
        eq.schedule(t, [] {});
    eq.run(1000); // no hook installed: nothing to fire
    EXPECT_EQ(eq.executedEvents(), 8u);
}

TEST(Watchdog, TripsOnNoProgressWindow)
{
    EventQueue eq;
    DebugConfig cfg;
    cfg.noProgressWindow = 10;
    cfg.checkIntervalEvents = 1;
    Watchdog::Hooks hooks;
    hooks.progressCounter = [] { return std::uint64_t{42}; }; // stuck
    Watchdog wd(eq, cfg, std::move(hooks));
    wd.install();
    eq.schedule(100, [] {});
    EXPECT_THROW(eq.run(1000), FatalError);
}

TEST(Watchdog, ProgressResetsTheWindow)
{
    EventQueue eq;
    DebugConfig cfg;
    cfg.noProgressWindow = 10;
    cfg.checkIntervalEvents = 1;
    std::uint64_t retired = 0;
    Watchdog::Hooks hooks;
    hooks.progressCounter = [&retired] { return retired; };
    Watchdog wd(eq, cfg, std::move(hooks));
    wd.install();
    // Each event retires an instruction: never trips, however long the
    // tick gaps are.
    for (Tick t = 100; t <= 500; t += 100)
        eq.schedule(t, [&retired] { ++retired; });
    EXPECT_NO_THROW(eq.run(10'000));
}

TEST(Watchdog, WallClockBudgetTripsAsTimeoutError)
{
    ChipConfig cfg = testConfig(Technique::CbAll, 4);
    cfg.debug.wallTimeoutS = 1e-9; // any elapsed time trips
    cfg.debug.checkIntervalEvents = 1;
    cfg.debug.forensicDir.clear();
    Chip chip(cfg);
    idleAll(chip);
    Assembler a;
    a.workImm(500);
    chip.setProgram(0, a.assemble());
    EXPECT_THROW(chip.run(), TimeoutError);
}

TEST(Watchdog, TickBudgetExhaustionIsFatalAndDumpsForensics)
{
    const std::string dir = ::testing::TempDir();
    ChipConfig cfg = testConfig(Technique::CbAll, 4);
    cfg.maxTicks = 1000; // the endless store loop below blows this
    cfg.debug.forensicDir = dir;
    cfg.debug.label = "tick-budget-test";
    Chip chip(cfg);
    idleAll(chip);
    // An infinite loop of through-stores keeps scheduling NoC events at
    // ever-later ticks, so the queue must cross the budget.
    Assembler a;
    a.movImm(1, kFlag);
    a.label("fwd");
    a.stThroughImm(1, 1);
    a.jump("fwd");
    chip.setProgram(0, a.assemble());
    EXPECT_THROW(chip.run(), FatalError);

    const std::string path = dir + "/tick-budget-test.forensic.json";
    const std::string json = slurp(path);
    ASSERT_FALSE(json.empty()) << "no forensic dump at " << path;
    EXPECT_TRUE(jsonlite::wellFormed(json)) << json;
    EXPECT_NE(json.find("tick budget"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Watchdog, DeadlockedCallbackDumpNamesBlockedCoreAndEntry)
{
    const std::string dir = ::testing::TempDir();
    ChipConfig cfg = testConfig(Technique::CbAll, 4);
    cfg.debug.forensicDir = dir;
    cfg.debug.label = "deadlock-test";
    Chip chip(cfg);
    idleAll(chip);
    // ld_cb on a fresh entry returns immediately (F/E starts full); the
    // second consumes an Empty slot and blocks forever — nobody writes.
    Assembler a;
    a.movImm(1, kFlag);
    a.ldCb(2, 1);
    a.ldCb(2, 1);
    chip.setProgram(1, a.assemble());
    EXPECT_THROW(chip.run(), FatalError);
    EXPECT_EQ(chip.finishedCores(), 3u);

    const std::string json =
        slurp(dir + "/deadlock-test.forensic.json");
    ASSERT_FALSE(json.empty());
    EXPECT_TRUE(jsonlite::wellFormed(json)) << json;
    // The dump names the blocked core's op/address...
    EXPECT_NE(json.find("\"blocked_on\""), std::string::npos);
    EXPECT_NE(json.find("\"ld_cb\""), std::string::npos);
    // ...and the callback-directory entry/waiter it is stuck on.
    EXPECT_NE(json.find("\"parked_waiters\""), std::string::npos);
    std::ostringstream word;
    word << "\"word\": " << kFlag;
    EXPECT_NE(json.find(word.str()), std::string::npos) << json;
    std::remove((dir + "/deadlock-test.forensic.json").c_str());
}

TEST(Forensics, ReportIsWellFormedOnAHealthyChip)
{
    ChipConfig cfg = testConfig(Technique::CbOne, 4);
    cfg.debug.checkInvariants = true;
    cfg.debug.forensicDir.clear(); // stderr only; we use the return
    Chip chip(cfg);
    idleAll(chip);
    Assembler a;
    a.movImm(1, kFlag);
    a.stThroughImm(7, 1);
    a.ldThrough(2, 1);
    chip.setProgram(0, a.assemble());
    chip.run();
    // Compose the report directly (no failure needed) and validate it.
    testing::internal::CaptureStderr();
    chip.dumpForensics("unit test");
    const std::string err = testing::internal::GetCapturedStderr();
    const auto begin = err.find('{');
    const auto end = err.rfind('}');
    ASSERT_NE(begin, std::string::npos);
    ASSERT_NE(end, std::string::npos);
    const std::string json = err.substr(begin, end - begin + 1);
    EXPECT_TRUE(jsonlite::wellFormed(json)) << json;
    EXPECT_NE(json.find("\"schema\": \"cbsim-forensic-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"cores\""), std::string::npos);
    EXPECT_NE(json.find("\"event_queue\""), std::string::npos);
    EXPECT_NE(json.find("\"banks\""), std::string::npos);
}

TEST(Forensics, LabelSanitization)
{
    // Substituted labels carry a hash of the original so distinct
    // labels can never collide on one file ("a/b" vs "a_b").
    EXPECT_EQ(forensics::sanitizeLabel("fig20/CLH/CB-One"),
              "fig20_CLH_CB-One-6ccf597e");
    EXPECT_EQ(forensics::sanitizeLabel(""), "run");
    EXPECT_EQ(forensics::sanitizeLabel("a b\tc"), "a_b_c-4f5959e6");
    // Clean labels stay verbatim — no suffix churn for existing users.
    EXPECT_EQ(forensics::sanitizeLabel("smoke_run.1"), "smoke_run.1");
    EXPECT_NE(forensics::sanitizeLabel("a/b"), forensics::sanitizeLabel("a_b"));
}

} // namespace
} // namespace cbsim
