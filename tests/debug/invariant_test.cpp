/**
 * @file
 * Protocol invariant checker tests: clean runs stay silent under both
 * protocol families, a hand-corrupted callback directory is caught and
 * named, enforce() panics per the log.hh contract, and the corrupt
 * sweep-job-kind path is a panic (simulator bug), not a fatal.
 */

#include <gtest/gtest.h>

#include "../support/chip_helpers.hh"
#include "debug/invariant_checker.hh"
#include "harness/sweep.hh"

namespace cbsim {
namespace {

constexpr Addr kFlag = 0x10000;

ChipConfig
checkedConfig(Technique t)
{
    ChipConfig cfg = testConfig(t, 4);
    cfg.debug.checkInvariants = true;
    cfg.debug.checkIntervalEvents = 50; // check aggressively
    cfg.debug.forensicDir.clear();
    return cfg;
}

void
loadHandOff(Chip& chip)
{
    idleAll(chip);
    Assembler s;
    s.movImm(1, kFlag);
    s.label("spn");
    s.ldCb(2, 1).spin = true;
    s.beqz(2, "spn");
    chip.setProgram(1, s.assemble());
    Assembler w;
    w.workImm(4000);
    w.movImm(1, kFlag);
    w.stThroughImm(1, 1);
    chip.setProgram(0, w.assemble());
}

TEST(InvariantChecker, NamesAreStableAndCoverBothFamilies)
{
    const auto& names = InvariantChecker::invariantNames();
    ASSERT_GE(names.size(), 9u);
    EXPECT_EQ(names.front(), std::string("mesi-single-owner"));
}

TEST(InvariantChecker, CleanVipsRunHasNoViolations)
{
    Chip chip(checkedConfig(Technique::CbAll));
    loadHandOff(chip);
    chip.run(); // interval + quiesce checks run inside
    EXPECT_TRUE(chip.checkInvariantsNow().empty());
}

TEST(InvariantChecker, CleanMesiRunHasNoViolations)
{
    Chip chip(checkedConfig(Technique::Invalidation));
    idleAll(chip);
    // Shared flag: a spinner in S broken by the writer's invalidation.
    Assembler s;
    s.movImm(1, kFlag);
    s.label("spn");
    s.ld(2, 1).spin = true;
    s.beqz(2, "spn");
    chip.setProgram(1, s.assemble());
    Assembler w;
    w.workImm(4000);
    w.movImm(1, kFlag);
    w.movImm(3, 1);
    w.st(3, 1);
    chip.setProgram(0, w.assemble());
    chip.run();
    EXPECT_TRUE(chip.checkInvariantsNow().empty());
}

TEST(InvariantChecker, CatchesCorruptedCallbackDirectory)
{
    Chip chip(checkedConfig(Technique::CbAll));
    idleAll(chip);
    // One immediate ld_cb creates the entry and consumes core 1's F/E
    // bit, so the injected second read below is forced to block.
    Assembler a;
    a.movImm(1, kFlag);
    a.ldCb(2, 1);
    chip.setProgram(1, a.assemble());
    chip.run();

    // Inject a GetCB from the (now finished) core 1: its CB bit gets
    // set and the request parks — a waiter no live core owns.
    Message msg;
    msg.type = MsgType::GetCB;
    msg.addr = kFlag;
    msg.requester = 1;
    msg.src = 1;
    msg.sync = true;
    vipsBank(chip, AddrLayout::bankOf(kFlag, 4)).handleMessage(msg);

    const auto violations = chip.checkInvariantsNow();
    ASSERT_FALSE(violations.empty());
    bool named = false;
    for (const auto& v : violations)
        named = named || v.find("cb-waiter-live") != std::string::npos;
    EXPECT_TRUE(named) << violations.front();
    // And the leak pass sees the parked waiter that will never drain.
    bool leaked = false;
    for (const auto& v : violations)
        leaked = leaked || v.find("waiter-no-leak") != std::string::npos;
    EXPECT_TRUE(leaked);
}

TEST(InvariantChecker, EnforcePanicsWithEveryViolationListed)
{
    EXPECT_NO_THROW(InvariantChecker::enforce("quiesce", {}));
    try {
        InvariantChecker::enforce(
            "interval", {"[mesi-single-owner] two owners",
                         "[cb-fe-consistent] bad mask"});
        FAIL() << "enforce did not throw";
    } catch (const PanicError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("2 protocol invariant violations"),
                  std::string::npos);
        EXPECT_NE(what.find("mesi-single-owner"), std::string::npos);
        EXPECT_NE(what.find("cb-fe-consistent"), std::string::npos);
    }
}

TEST(SweepJobKind, CorruptKindIsAPanicNotAFatal)
{
    SweepJob j;
    j.key = "corrupt";
    j.kind = static_cast<JobKind>(99);
    EXPECT_THROW(j.execute(), PanicError);
}

} // namespace
} // namespace cbsim
