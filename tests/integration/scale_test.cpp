/**
 * @file
 * Full-scale (64-core, Table 2) integration checks and scaling
 * properties of the extension locks (Ticket, MCS) — the configurations
 * the bench binaries run, exercised with invariants in CI.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

namespace cbsim {
namespace {

TEST(FullScale, SixtyFourCoreWorkloadRunsAllKeyTechniques)
{
    Profile p = scaled(benchmark("water-sp"), 0.2);
    p.phases = 2;
    for (Technique t : {Technique::Invalidation, Technique::BackOff10,
                        Technique::CbOne}) {
        auto r = runExperiment(p, t, 64); // guard counters checked inside
        EXPECT_GT(r.run.cycles, 0u) << techniqueName(t);
        const auto bar = static_cast<std::size_t>(SyncKind::Barrier);
        EXPECT_EQ(r.run.sync[bar].completions, 64u * p.phases);
    }
}

TEST(FullScale, CallbackLatencyStaysFlatAcrossCoreCounts)
{
    // CLH acquire latency under CB-One is a queue hand-off: the mean
    // grows with queue depth but the per-hand-off cost must not blow up
    // with core count (no broadcast anywhere in the protocol).
    double per_core[2];
    int i = 0;
    for (unsigned cores : {16u, 64u}) {
        // Saturating contention (tiny inter-acquire work) so the queue
        // depth tracks the core count at both scales.
        auto r = runSyncMicro(SyncMicro::ClhLock, Technique::CbOne,
                              cores, 4, /*work_between=*/100);
        const auto acq = static_cast<std::size_t>(SyncKind::Acquire);
        per_core[i++] =
            r.run.sync[acq].meanLatency / static_cast<double>(cores);
    }
    EXPECT_LT(per_core[1], 2.0 * per_core[0]);
}

TEST(ExtensionLocks, TicketAndMcsAvoidLlcSpinningWithCallbacks)
{
    // The extension locks inherit the paper's property: their callback
    // encodings block in the directory instead of spinning on the LLC.
    for (LockAlgo algo : {LockAlgo::Ticket, LockAlgo::Mcs}) {
        auto spin = [&](Technique tech, SyncFlavor flavor) {
            Chip chip(ChipConfig::forTechnique(tech, 16));
            SyncLayout layout;
            LockHandle lock = makeLock(layout, algo, 16);
            for (CoreId t = 0; t < 16; ++t) {
                Assembler a;
                a.workImm(13 * t);
                for (int i = 0; i < 4; ++i) {
                    emitAcquire(a, lock, flavor, t);
                    a.workImm(400); // long critical section: queueing
                    emitRelease(a, lock, flavor, t);
                    a.workImm(50);
                }
                chip.setProgram(t, a.assemble());
            }
            layout.apply(chip.dataStore());
            return chip.run().llcSyncAccesses;
        };
        const auto backoff0 =
            spin(Technique::BackOff0, SyncFlavor::VipsBackoff);
        const auto cb = spin(Technique::CbOne, SyncFlavor::CbOne);
        EXPECT_GT(backoff0, 3 * cb) << lockAlgoName(algo);
    }
}

TEST(ExtensionLocks, TicketReleaseBroadcastsEvenUnderCbOne)
{
    // Regression for the ticket/st_cb1 deadlock hazard: waiters await
    // different ticket values, so waking one (possibly wrong) waiter
    // would strand the rightful owner. The encoding must broadcast.
    Chip chip(ChipConfig::forTechnique(Technique::CbOne, 16));
    SyncLayout layout;
    LockHandle lock = makeLock(layout, LockAlgo::Ticket, 16);
    const Addr guard = layout.allocLine();
    layout.init(guard, 0);
    for (CoreId t = 0; t < 16; ++t) {
        Assembler a;
        a.workImm(t); // near-simultaneous arrival: deep ticket queue
        emitAcquire(a, lock, SyncFlavor::CbOne, t);
        a.movImm(2, guard);
        a.ld(4, 2);
        a.addImm(4, 4, 1);
        a.st(4, 2);
        emitRelease(a, lock, SyncFlavor::CbOne, t);
        chip.setProgram(t, a.assemble());
    }
    layout.apply(chip.dataStore());
    chip.run(); // a stranded waiter would trip the tick guard
    EXPECT_EQ(chip.dataStore().read(guard), 16u);
    // The broadcast shows up as st_through packets, not st_cb1.
    EXPECT_EQ(chip.stats().counter("noc.packets.StCb1"), 0u);
    EXPECT_GT(chip.stats().counter("noc.packets.StThrough"), 0u);
}

} // namespace
} // namespace cbsim
