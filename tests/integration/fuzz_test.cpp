/**
 * @file
 * Randomized cross-protocol fuzzing.
 *
 * Commutative-atomic conservation: every technique executes the same
 * randomly generated program of fetch&add atomics (mixed with racy
 * loads, stores to private words, fences, and compute) against shared
 * counters. Whatever interleaving a protocol produces, the final
 * counter values must equal the sum of the addends — any protocol bug
 * that loses, duplicates, or tears an atomic shows up as a mismatch.
 * The racy loads additionally exercise ld_through/ld_cb paths under
 * concurrent writers (values are unchecked — they are racy — but the
 * runs must terminate and keep the counters exact).
 */

#include <gtest/gtest.h>

#include "../support/chip_helpers.hh"
#include "sim/rng.hh"
#include "sync/layout.hh"
#include "sync/locks.hh"

namespace cbsim {
namespace {

struct FuzzCase
{
    std::uint64_t seed;
    unsigned cores;
    unsigned words;
    unsigned opsPerCore;
};

class AtomicConservationFuzz : public ::testing::TestWithParam<FuzzCase>
{
};

TEST_P(AtomicConservationFuzz, AllTechniquesConserveSums)
{
    const FuzzCase fc = GetParam();

    SyncLayout layout;
    std::vector<Addr> words;
    for (unsigned w = 0; w < fc.words; ++w) {
        words.push_back(layout.allocLine());
        layout.init(words.back(), 0);
    }

    // Generate one program per core; track expected sums per word.
    std::vector<Word> expected(fc.words, 0);
    std::vector<Program> programs;
    for (CoreId t = 0; t < fc.cores; ++t) {
        Rng rng(fc.seed ^ (0x9e3779b97f4a7c15ULL * (t + 1)));
        Assembler a;
        const Addr priv = layout.allocPrivateLine(t);
        a.workImm(rng.below(100));
        for (unsigned i = 0; i < fc.opsPerCore; ++i) {
            const unsigned w = static_cast<unsigned>(rng.below(fc.words));
            a.movImm(1, words[w]);
            switch (rng.below(6)) {
              case 0:
              case 1: {
                const Word addend = 1 + rng.below(9);
                expected[w] += addend;
                // Random wake policy: must not affect atomicity.
                const WakePolicy wp =
                    rng.below(2) ? WakePolicy::All : WakePolicy::One;
                a.atomic(2, 1, 0, AtomicFunc::FetchAndAdd, addend, 0,
                         false, wp);
                break;
              }
              case 2:
                a.ldThrough(2, 1);
                break;
              case 3:
                // DRF private traffic (fills, flushes, classification).
                a.movImm(3, priv);
                a.stImm(rng.next() & 0xff, 3);
                break;
              case 4:
                a.workImm(rng.below(200));
                break;
              case 5:
                if (rng.below(2))
                    a.selfInvl();
                else
                    a.selfDown();
                break;
            }
        }
        programs.push_back(a.assemble());
    }

    for (Technique tech :
         {Technique::Invalidation, Technique::BackOff0,
          Technique::BackOff10, Technique::CbAll, Technique::CbOne}) {
        Chip chip(testConfig(tech, fc.cores));
        layout.apply(chip.dataStore());
        for (CoreId t = 0; t < fc.cores; ++t)
            chip.setProgram(t, programs[t]);
        chip.run();
        for (unsigned w = 0; w < fc.words; ++w) {
            EXPECT_EQ(chip.dataStore().read(words[w]), expected[w])
                << techniqueName(tech) << " word " << w << " seed "
                << fc.seed;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, AtomicConservationFuzz,
    ::testing::Values(FuzzCase{1, 4, 3, 40}, FuzzCase{2, 16, 2, 30},
                      FuzzCase{3, 16, 8, 25}, FuzzCase{4, 9, 1, 60},
                      FuzzCase{5, 16, 16, 20}),
    [](const ::testing::TestParamInfo<FuzzCase>& info) {
        return "seed" + std::to_string(info.param.seed);
    });

/**
 * Blocking-callback fuzz: random producer/consumer pairs where every
 * consumer ld_cb is eventually matched by a producer store. Checks
 * termination and that consumers always observe a producer-written
 * value (never a torn/garbage word).
 */
TEST(CallbackFuzz, RandomProducerConsumerPairsTerminate)
{
    for (std::uint64_t seed : {11ULL, 12ULL, 13ULL}) {
        Rng rng(seed);
        constexpr unsigned cores = 16;
        SyncLayout layout;
        std::vector<Addr> flags;
        for (unsigned p = 0; p < cores / 2; ++p) {
            flags.push_back(layout.allocLine());
            layout.init(flags.back(), 0);
        }
        Chip chip(testConfig(rng.below(2) ? Technique::CbAll
                                          : Technique::CbOne,
                             cores));
        for (CoreId t = 0; t < cores; ++t) {
            const unsigned pair = t / 2;
            Assembler a;
            if (t % 2 == 0) {
                a.workImm(rng.below(4000));
                a.movImm(1, flags[pair]);
                a.stThroughImm(7 + pair, 1);
            } else {
                a.movImm(1, flags[pair]);
                a.ldThrough(2, 1);
                a.bnez(2, "out");
                a.label("spn");
                a.ldCb(2, 1);
                a.beqz(2, "spn");
                a.label("out");
            }
            chip.setProgram(t, a.assemble());
        }
        layout.apply(chip.dataStore());
        chip.run();
        for (CoreId t = 1; t < cores; t += 2)
            EXPECT_EQ(chip.core(t).reg(2), 7u + t / 2) << "seed " << seed;
    }
}

} // namespace
} // namespace cbsim
