/**
 * @file
 * Determinism: a run is a pure function of its configuration — same
 * profile + technique => bit-identical metrics. This underpins every
 * cross-technique comparison in the benches.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

namespace cbsim {
namespace {

void
expectIdentical(const RunResult& a, const RunResult& b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.llcAccesses, b.llcAccesses);
    EXPECT_EQ(a.llcSyncAccesses, b.llcSyncAccesses);
    EXPECT_EQ(a.l1Accesses, b.l1Accesses);
    EXPECT_EQ(a.flitHops, b.flitHops);
    EXPECT_EQ(a.packets, b.packets);
    EXPECT_EQ(a.memReads, b.memReads);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cbWakeups, b.cbWakeups);
}

TEST(Determinism, RepeatedRunsAreBitIdentical)
{
    Profile p = scaled(benchmark("ocean"), 0.25);
    p.phases = 2;
    for (Technique t :
         {Technique::Invalidation, Technique::BackOff10,
          Technique::CbAll, Technique::CbOne}) {
        auto a = runExperiment(p, t, 16);
        auto b = runExperiment(p, t, 16);
        expectIdentical(a.run, b.run);
    }
}

TEST(Determinism, DifferentSeedsChangeTheWorkload)
{
    Profile p = scaled(benchmark("ocean"), 0.25);
    p.phases = 2;
    auto a = runExperiment(p, Technique::CbOne, 16);
    p.seed ^= 0x1234;
    auto b = runExperiment(p, Technique::CbOne, 16);
    EXPECT_NE(a.run.cycles, b.run.cycles);
}

TEST(Determinism, SyncMicroIsDeterministic)
{
    auto a = runSyncMicro(SyncMicro::ClhLock, Technique::CbOne, 16, 5);
    auto b = runSyncMicro(SyncMicro::ClhLock, Technique::CbOne, 16, 5);
    expectIdentical(a.run, b.run);
}

} // namespace
} // namespace cbsim
