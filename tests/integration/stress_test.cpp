/**
 * @file
 * Stress and regression tests for the protocol race conditions found
 * during bring-up (see DESIGN.md):
 *
 *  - IS_D race: an Inv overtaking an in-flight GetS fill left a stale
 *    S copy the directory no longer tracked, silently missing wake-ups.
 *  - Stale-owner race: a FwdGetS/FwdGetX overtaking the owner's own
 *    Data response made two cores believe they owned the line.
 *
 * Both manifested as spin-watch liveness timeouts (a parked spinner
 * whose wake-up never arrives). These tests run sync-dense workloads
 * and assert zero timeouts, plus functional invariants.
 */

#include <gtest/gtest.h>

#include "../support/chip_helpers.hh"
#include "../support/swmr_checker.hh"
#include "harness/experiment.hh"

namespace cbsim {
namespace {

std::uint64_t
watchTimeouts(Chip& chip)
{
    return RunResult::sumWhere(chip.stats(), "l1.",
                               ".spin_watch_timeouts");
}

/** Run a profile on MESI and return (chip stats checked inline). */
void
runMesiAndCheck(const Profile& p, unsigned cores)
{
    ChipConfig cfg = ChipConfig::forTechnique(Technique::Invalidation,
                                              cores);
    auto w = buildWorkload(p, cores, SyncFlavor::Mesi, LockAlgo::Clh,
                           BarrierAlgo::TreeSenseReversing);
    Chip chip(cfg);
    w.layout.apply(chip.dataStore());
    for (CoreId t = 0; t < cores; ++t)
        chip.setProgram(t, w.programs[t]);
    chip.run();
    // The spin watch must always be woken by a real invalidation: a
    // timeout means a protocol race dropped a wake-up.
    EXPECT_EQ(watchTimeouts(chip), 0u) << p.name;
    for (std::size_t l = 0; l < w.guardWords.size(); ++l) {
        EXPECT_EQ(chip.dataStore().read(w.guardWords[l]),
                  w.expectedGuardCounts[l])
            << p.name << " lock " << l;
    }
}

TEST(MesiRaceRegression, SyncDenseWorkloadsNeverTimeOut)
{
    // canneal (fine-grain CLH locks) and streamcluster (barrier storm)
    // reproduced the IS_D and stale-owner races reliably before the
    // fixes; run them scaled-down but sync-dense.
    for (const char* name : {"canneal", "streamcluster", "radiosity"}) {
        Profile p = scaled(benchmark(name), 0.15);
        runMesiAndCheck(p, 16);
    }
}

TEST(MesiRaceRegression, NaiveSyncAlsoCleans)
{
    Profile p = scaled(benchmark("canneal"), 0.15);
    ChipConfig cfg = ChipConfig::forTechnique(Technique::Invalidation, 16);
    auto w = buildWorkload(p, 16, SyncFlavor::Mesi,
                           LockAlgo::TestAndTestAndSet,
                           BarrierAlgo::SenseReversing);
    Chip chip(cfg);
    w.layout.apply(chip.dataStore());
    for (CoreId t = 0; t < 16; ++t)
        chip.setProgram(t, w.programs[t]);
    chip.run();
    EXPECT_EQ(watchTimeouts(chip), 0u);
}

TEST(MesiRaceRegression, HighContentionFlagPingPong)
{
    // Two cores alternate writes to a flag while 14 spin on it in
    // tight loops: maximizes Inv-vs-fill overlaps.
    Chip chip(testConfig(Technique::Invalidation, 16));
    idleAll(chip);
    constexpr Addr flag = 0x50000;
    constexpr unsigned rounds = 200;

    for (CoreId w = 0; w < 2; ++w) {
        Assembler a;
        for (unsigned i = 0; i < rounds; ++i) {
            a.workImm(37 + w * 13);
            a.movImm(1, flag);
            a.stImm(i * 2 + w, 1).sync = true;
        }
        chip.setProgram(w, a.assemble());
    }
    for (CoreId c = 2; c < 16; ++c) {
        Assembler a;
        a.movImm(1, flag);
        a.movImm(4, 0);
        a.movImm(5, 2 * rounds - 2);
        a.label("loop");
        auto& spin = a.ld(2, 1);
        spin.sync = true;
        spin.spin = true;
        a.beq(2, 4, "loop");
        a.mov(4, 2);
        a.blt(4, 5, "loop");
        chip.setProgram(c, a.assemble());
    }
    chip.run(); // termination under the tick guard is the assertion
    EXPECT_EQ(watchTimeouts(chip), 0u);
}

TEST(MesiRaceRegression, LlcSetIndexingUsesWholeBank)
{
    // Regression for the bank set-indexing bug: interleaved line
    // numbers must spread over all LLC sets, not collide in a few.
    CacheGeometry g{256 * 1024, 16, 64};
    g.indexDivisor = 64;
    CacheArray<int> bank(g);
    // Lines homed on bank 0: lineNumber = 64k. Install 1024 of them.
    for (unsigned k = 0; k < 1024; ++k) {
        const Addr addr = Addr(64 * k) * 64;
        auto* v = bank.victim(addr);
        bank.install(*v, addr);
    }
    // 256 sets x 16 ways = 4096 lines; 1024 distinct lines must all
    // still be resident (no conflict evictions).
    EXPECT_EQ(bank.validCount(), 1024u);
}

TEST(MesiRaceRegression, TinyLlcRecallsStayLive)
{
    // Force genuine LLC evictions (recalls) with a tiny LLC and check
    // the workload still completes with mutual exclusion intact.
    Profile p = scaled(benchmark("canneal"), 0.1);
    ChipConfig cfg = ChipConfig::forTechnique(Technique::Invalidation, 16);
    cfg.llcBank = CacheGeometry{4 * 1024, 4, 64}; // 64 lines per bank
    auto w = buildWorkload(p, 16, SyncFlavor::Mesi, LockAlgo::Clh,
                           BarrierAlgo::TreeSenseReversing);
    Chip chip(cfg);
    w.layout.apply(chip.dataStore());
    for (CoreId t = 0; t < 16; ++t)
        chip.setProgram(t, w.programs[t]);
    chip.run();
    for (std::size_t l = 0; l < w.guardWords.size(); ++l) {
        EXPECT_EQ(chip.dataStore().read(w.guardWords[l]),
                  w.expectedGuardCounts[l]);
    }
    EXPECT_GT(RunResult::sumWhere(chip.stats(), "llc.", ".recalls"), 0u);
}

TEST(MesiRaceRegression, SwmrInvariantHoldsUnderLoad)
{
    // Run the protocol checker every 200 cycles through a sync-dense
    // MESI workload: no line may ever have an exclusive holder plus
    // other valid copies (the signature of both bring-up races).
    Profile p = scaled(benchmark("canneal"), 0.15);
    ChipConfig cfg = ChipConfig::forTechnique(Technique::Invalidation, 16);
    auto w = buildWorkload(p, 16, SyncFlavor::Mesi, LockAlgo::Mcs,
                           BarrierAlgo::TreeSenseReversing);
    Chip chip(cfg);
    w.layout.apply(chip.dataStore());
    for (CoreId t = 0; t < 16; ++t)
        chip.setProgram(t, w.programs[t]);
    SwmrChecker checker(chip, 200);
    chip.run();
    EXPECT_GT(checker.checksRun(), 50u);
    EXPECT_EQ(checker.violations(), 0u) << checker.firstViolation();
}

TEST(VipsStress, TinyLlcStaysCorrect)
{
    Profile p = scaled(benchmark("radiosity"), 0.1);
    ChipConfig cfg = ChipConfig::forTechnique(Technique::CbOne, 16);
    cfg.llcBank = CacheGeometry{4 * 1024, 4, 64};
    auto w = buildWorkload(p, 16, SyncFlavor::CbOne, LockAlgo::Clh,
                           BarrierAlgo::TreeSenseReversing);
    Chip chip(cfg);
    w.layout.apply(chip.dataStore());
    for (CoreId t = 0; t < 16; ++t)
        chip.setProgram(t, w.programs[t]);
    chip.run();
    for (std::size_t l = 0; l < w.guardWords.size(); ++l) {
        EXPECT_EQ(chip.dataStore().read(w.guardWords[l]),
                  w.expectedGuardCounts[l]);
    }
}

TEST(VipsStress, SingleEntryDirectoryManyHotWords)
{
    // 16 spin flags all homed with 1-entry-per-bank callback
    // directories: constant eviction churn; everything must complete.
    ChipConfig cfg = testConfig(Technique::CbAll, 16);
    cfg.cbEntriesPerBank = 1;
    Chip chip(cfg);
    SyncLayout layout;
    std::vector<Addr> flags;
    for (int i = 0; i < 16; ++i) {
        flags.push_back(layout.allocLine());
        layout.init(flags.back(), 0);
    }
    // Core 0 sets all flags after a delay; others spin on theirs.
    Assembler w;
    w.workImm(20000);
    for (Addr f : flags) {
        w.movImm(1, f);
        w.stThroughImm(1, 1);
    }
    chip.setProgram(0, w.assemble());
    for (CoreId c = 1; c < 16; ++c) {
        Assembler a;
        a.movImm(1, flags[c]);
        a.ldThrough(2, 1);
        a.bnez(2, "out");
        a.label("spn");
        a.ldCb(2, 1);
        a.beqz(2, "spn");
        a.label("out");
        chip.setProgram(c, a.assemble());
    }
    layout.apply(chip.dataStore());
    chip.run();
    for (CoreId c = 1; c < 16; ++c)
        EXPECT_EQ(chip.core(c).reg(2), 1u);
}

} // namespace
} // namespace cbsim
