/**
 * @file
 * Cross-technique behavioural properties — the qualitative claims of the
 * paper's evaluation, asserted as inequalities on a contended micro
 * workload: LLC spinning floods the LLC, back-off trades LLC accesses
 * for latency, callbacks avoid both, MESI spins in the L1.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

namespace cbsim {
namespace {

struct MicroResults
{
    ExperimentResult backoff0, backoff15, cbAll, cbOne, inval;
};

MicroResults
runAll(SyncMicro micro, unsigned iterations,
       std::uint64_t work_between = 2500)
{
    MicroResults r;
    r.inval = runSyncMicro(micro, Technique::Invalidation, 16,
                           iterations, work_between);
    r.backoff0 = runSyncMicro(micro, Technique::BackOff0, 16, iterations,
                              work_between);
    r.backoff15 = runSyncMicro(micro, Technique::BackOff15, 16,
                               iterations, work_between);
    r.cbAll = runSyncMicro(micro, Technique::CbAll, 16, iterations,
                           work_between);
    r.cbOne = runSyncMicro(micro, Technique::CbOne, 16, iterations,
                           work_between);
    return r;
}

TEST(Techniques, LlcSpinningFloodsTheLlcOnLocks)
{
    // Short inter-acquire work => the lock saturates and waiters spend
    // most of their time spin-waiting (the paper's Figure 1 regime).
    auto ttas = runAll(SyncMicro::TtasLock, 6, /*work_between=*/300);
    // BackOff-0 spins on the LLC: far more sync LLC accesses than the
    // callback variants (Fig. 1 / Fig. 20 LLC-accesses panel).
    EXPECT_GT(ttas.backoff0.run.llcSyncAccesses,
              4 * ttas.cbOne.run.llcSyncAccesses);
    // Under a contended T&T&S, MESI pays its own storm of refetch GetS
    // per hand-off, so the margin over Invalidation is clearest on the
    // queue lock, where each hand-off invalidates exactly one spinner.
    auto clh = runAll(SyncMicro::ClhLock, 6, /*work_between=*/300);
    EXPECT_GT(clh.backoff0.run.llcSyncAccesses,
              4 * clh.inval.run.llcSyncAccesses);
    EXPECT_GT(ttas.backoff0.run.llcSyncAccesses,
              ttas.inval.run.llcSyncAccesses);
}

TEST(Techniques, BackoffTradesLlcAccessesForLatency)
{
    auto r = runAll(SyncMicro::TtasLock, 6);
    // More exponentiations => fewer LLC accesses but no faster finish.
    EXPECT_LT(r.backoff15.run.llcSyncAccesses,
              r.backoff0.run.llcSyncAccesses);
    EXPECT_GE(r.backoff15.run.cycles, r.backoff0.run.cycles);
}

TEST(Techniques, CallbacksMatchBackoffTimeWithoutTraffic)
{
    auto r = runAll(SyncMicro::ClhLock, 6);
    // Callbacks: execution time no worse than the best back-off, with
    // fewer sync LLC accesses than any spinning variant.
    EXPECT_LE(r.cbOne.run.cycles, r.backoff15.run.cycles);
    EXPECT_LT(r.cbOne.run.llcSyncAccesses,
              r.backoff0.run.llcSyncAccesses);
    EXPECT_LT(r.cbOne.run.llcSyncAccesses,
              r.backoff15.run.llcSyncAccesses);
}

TEST(Techniques, MesiSpinsInTheL1)
{
    auto r = runAll(SyncMicro::TreeBarrier, 4);
    // Invalidation's spin hits stay in the L1.
    EXPECT_GT(r.inval.run.l1Accesses, 4 * r.cbAll.run.l1Accesses);
    EXPECT_LT(r.inval.run.llcSyncAccesses,
              r.backoff0.run.llcSyncAccesses);
}

TEST(Techniques, CallbackOneAvoidsThunderingHerdOnLocks)
{
    auto r = runAll(SyncMicro::TtasLock, 6);
    // CB-All wakes every waiter on release; only one wins. CB-One hands
    // the lock to exactly one waiter (§2.4): fewer wake-ups and fewer
    // LLC accesses.
    EXPECT_LE(r.cbOne.run.cbWakeups, r.cbAll.run.cbWakeups);
    EXPECT_LE(r.cbOne.run.llcSyncAccesses,
              r.cbAll.run.llcSyncAccesses);
}

TEST(Techniques, CallbacksCutNetworkTrafficVsBackoff0)
{
    auto r = runAll(SyncMicro::SrBarrier, 4);
    EXPECT_LT(r.cbAll.run.flitHops, r.backoff0.run.flitHops);
}

TEST(Techniques, WakeupsOnlyHappenWithCallbacks)
{
    auto r = runAll(SyncMicro::SignalWait, 6);
    EXPECT_EQ(r.inval.run.cbWakeups, 0u);
    EXPECT_EQ(r.backoff0.run.cbWakeups, 0u);
    EXPECT_GT(r.cbOne.run.cbWakeups, 0u);
}

TEST(Techniques, EnergyModelTracksComponents)
{
    auto r = runAll(SyncMicro::TtasLock, 5);
    // Invalidation burns L1 energy (local spinning); BackOff-0 shifts
    // energy to LLC + network (Fig. 22's qualitative story).
    EXPECT_GT(r.inval.energy.l1, r.cbOne.energy.l1);
    EXPECT_GT(r.backoff0.energy.llc + r.backoff0.energy.network,
              r.cbOne.energy.llc + r.cbOne.energy.network);
    EXPECT_GT(r.cbOne.energy.onChip(), 0.0);
}

TEST(Techniques, CallbackDirectorySizeBarelyMatters)
{
    // §5.2: 4 vs 16 vs 64 entries/bank show no noticeable change.
    auto p = scaled(benchmark("radiosity"), 0.25);
    p.phases = 2;
    auto e4 = runExperiment(p, Technique::CbOne, 16,
                            SyncChoice::scalable(), 4);
    auto e64 = runExperiment(p, Technique::CbOne, 16,
                             SyncChoice::scalable(), 64);
    const double ratio = static_cast<double>(e4.run.cycles) /
                         static_cast<double>(e64.run.cycles);
    EXPECT_NEAR(ratio, 1.0, 0.1);
}

} // namespace
} // namespace cbsim
