/**
 * @file
 * Full-workload integration tests: every technique runs a benchmark
 * skeleton to completion with the mutual-exclusion and phase-progress
 * invariants intact; the suite itself is well-formed.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

namespace cbsim {
namespace {

Profile
tinyProfile()
{
    Profile p = benchmark("radiosity");
    p = scaled(p, 0.3);
    p.phases = 2;
    return p;
}

TEST(Suite, HasNineteenBenchmarks)
{
    const auto& suite = benchmarkSuite();
    EXPECT_EQ(suite.size(), 19u);
    unsigned splash = 0, parsec = 0;
    for (const auto& p : suite) {
        if (p.suite == "splash2")
            ++splash;
        else if (p.suite == "parsec")
            ++parsec;
    }
    EXPECT_EQ(splash, 12u); // the entire Splash-2 suite (§5.1)
    EXPECT_EQ(parsec, 7u);
}

TEST(Suite, NamesAreUniqueAndLookupWorks)
{
    const auto& suite = benchmarkSuite();
    for (const auto& p : suite)
        EXPECT_EQ(benchmark(p.name).name, p.name);
    EXPECT_THROW(benchmark("not-a-benchmark"), FatalError);
}

struct TechniqueRun : ::testing::TestWithParam<Technique>
{
};

TEST_P(TechniqueRun, TinyWorkloadCompletesWithInvariants)
{
    // runExperiment fatally checks guard counters (mutual exclusion).
    auto res = runExperiment(tinyProfile(), GetParam(), 16,
                             SyncChoice::scalable());
    EXPECT_GT(res.run.cycles, 0u);
    // Every thread finished every phase.
    // (phase words are thread-private, read back functionally)
    EXPECT_EQ(res.workload.phasesRun, 2u);
}

TEST_P(TechniqueRun, NaiveSyncAlsoCompletes)
{
    auto res = runExperiment(tinyProfile(), GetParam(), 16,
                             SyncChoice::naive());
    EXPECT_GT(res.run.cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllTechniques, TechniqueRun,
    ::testing::ValuesIn(std::vector<Technique>(
        std::begin(allTechniques), std::end(allTechniques))),
    [](const ::testing::TestParamInfo<Technique>& info) {
        std::string name = techniqueName(info.param);
        for (auto& ch : name) {
            if (!isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        }
        return name;
    });

TEST(Workload, PhaseWordsReachPhaseCount)
{
    const Profile p = tinyProfile();
    ChipConfig cfg = ChipConfig::forTechnique(Technique::CbOne, 16);
    auto w = buildWorkload(p, 16, SyncFlavor::CbOne, LockAlgo::Clh,
                           BarrierAlgo::TreeSenseReversing);
    Chip chip(cfg);
    w.layout.apply(chip.dataStore());
    for (CoreId t = 0; t < 16; ++t)
        chip.setProgram(t, w.programs[t]);
    chip.run();
    for (CoreId t = 0; t < 16; ++t)
        EXPECT_EQ(chip.dataStore().read(w.phaseWords[t]), p.phases);
}

TEST(Workload, PipelineProfileCompletes)
{
    Profile p = scaled(benchmark("dedup"), 0.3);
    p.phases = 2;
    for (Technique t : {Technique::Invalidation, Technique::CbOne}) {
        auto res = runExperiment(p, t, 16);
        EXPECT_GT(res.run.cycles, 0u);
    }
}

TEST(Workload, LockFreeProfileCompletes)
{
    Profile p = scaled(benchmark("fft"), 0.4);
    auto res = runExperiment(p, Technique::CbAll, 16);
    EXPECT_GT(res.run.cycles, 0u);
}

TEST(Workload, StructureIsFlavorIndependent)
{
    // The same profile must expand to the same lock-choice sequence
    // (expected guard counts) for every flavour — the cross-technique
    // comparability requirement of §5.2.
    const Profile p = tinyProfile();
    auto a = buildWorkload(p, 16, SyncFlavor::Mesi,
                           LockAlgo::TestAndTestAndSet,
                           BarrierAlgo::SenseReversing);
    auto b = buildWorkload(p, 16, SyncFlavor::CbOne, LockAlgo::Clh,
                           BarrierAlgo::TreeSenseReversing);
    EXPECT_EQ(a.expectedGuardCounts, b.expectedGuardCounts);
}

TEST(Workload, TinyCallbackDirectoryStillCorrect)
{
    // Failure injection: a 1-entry callback directory forces constant
    // evictions; invariants must still hold.
    auto res = runExperiment(tinyProfile(), Technique::CbOne, 16,
                             SyncChoice::scalable(),
                             /*cb_entries_per_bank=*/1);
    EXPECT_GT(res.run.cycles, 0u);
}

} // namespace
} // namespace cbsim
