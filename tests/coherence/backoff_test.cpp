/**
 * @file
 * Exponential back-off policy tests: doubling, the exponentiation cap
 * (paper §5.2: BackOff-0/5/10/15), and streak resets.
 */

#include <gtest/gtest.h>

#include "coherence/backoff/backoff.hh"

namespace cbsim {
namespace {

TEST(Backoff, FirstIssueIsNeverDelayed)
{
    BackoffPolicy p(BackoffConfig::capped(10));
    EXPECT_EQ(p.nextDelay(42), 0u);
}

TEST(Backoff, DoublesPerConsecutiveRetry)
{
    BackoffPolicy p(BackoffConfig::capped(10, 16));
    EXPECT_EQ(p.nextDelay(42), 0u);
    EXPECT_EQ(p.nextDelay(42), 16u);
    EXPECT_EQ(p.nextDelay(42), 32u);
    EXPECT_EQ(p.nextDelay(42), 64u);
    EXPECT_EQ(p.nextDelay(42), 128u);
}

TEST(Backoff, CapsAfterMaxExponentiations)
{
    BackoffPolicy p(BackoffConfig::capped(5, 16));
    p.nextDelay(42); // first issue
    Tick last = 0;
    for (int i = 0; i < 20; ++i)
        last = p.nextDelay(42);
    EXPECT_EQ(last, 16u << 5); // ceiling: base * 2^5
}

TEST(Backoff, BackOff0NeverDelays)
{
    BackoffPolicy p(BackoffConfig::capped(0, 16));
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(p.nextDelay(42), 0u);
}

TEST(Backoff, DisabledNeverDelays)
{
    BackoffPolicy p(BackoffConfig::off());
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(p.nextDelay(42), 0u);
}

TEST(Backoff, DifferentPcBreaksTheStreak)
{
    BackoffPolicy p(BackoffConfig::capped(10, 16));
    p.nextDelay(42);
    EXPECT_EQ(p.nextDelay(42), 16u);
    EXPECT_EQ(p.nextDelay(99), 0u); // new spin site
    EXPECT_EQ(p.nextDelay(99), 16u);
}

TEST(Backoff, ExplicitResetBreaksTheStreak)
{
    BackoffPolicy p(BackoffConfig::capped(10, 16));
    p.nextDelay(42);
    p.nextDelay(42);
    p.reset();
    EXPECT_EQ(p.nextDelay(42), 0u);
}

TEST(Backoff, RetryCounterTracksStreak)
{
    BackoffPolicy p(BackoffConfig::capped(10));
    p.nextDelay(1);
    EXPECT_EQ(p.consecutiveRetries(), 0u);
    p.nextDelay(1);
    p.nextDelay(1);
    EXPECT_EQ(p.consecutiveRetries(), 2u);
}

TEST(Backoff, Cap15ReachesLargeCeiling)
{
    BackoffPolicy p(BackoffConfig::capped(15, 16));
    p.nextDelay(7);
    Tick last = 0;
    for (int i = 0; i < 40; ++i)
        last = p.nextDelay(7);
    EXPECT_EQ(last, 16u << 15);
}

} // namespace
} // namespace cbsim
