/**
 * @file
 * First-touch private/shared classification tests (VIPS-M's page
 * mechanism): ownership, permanent promotion, and the transition hook.
 */

#include <gtest/gtest.h>

#include <vector>

#include "coherence/vips/page_classifier.hh"
#include "obs/registry.hh"

namespace cbsim {
namespace {

TEST(PageClassifier, FirstTouchIsPrivate)
{
    PageClassifier pc;
    EXPECT_EQ(pc.classify(0x1000, 3), PageClass::Private);
    EXPECT_EQ(pc.classify(0x1010, 3), PageClass::Private); // same page
    EXPECT_EQ(pc.peek(0x1fff), PageClass::Private);
}

TEST(PageClassifier, SecondAccessorPromotesToShared)
{
    PageClassifier pc;
    pc.classify(0x1000, 0);
    EXPECT_EQ(pc.classify(0x1008, 1), PageClass::Shared);
    // Promotion is permanent, even for the original owner.
    EXPECT_EQ(pc.classify(0x1000, 0), PageClass::Shared);
    EXPECT_EQ(pc.peek(0x1000), PageClass::Shared);
}

TEST(PageClassifier, DistinctPagesAreIndependent)
{
    PageClassifier pc;
    pc.classify(0x1000, 0);
    pc.classify(0x2000, 1);
    EXPECT_EQ(pc.classify(0x1100, 0), PageClass::Private);
    EXPECT_EQ(pc.classify(0x2100, 1), PageClass::Private);
}

TEST(PageClassifier, TransitionHookFiresOncePerPage)
{
    std::vector<std::pair<CoreId, Addr>> calls;
    PageClassifier pc([&](CoreId prev, Addr page) {
        calls.emplace_back(prev, page);
    });
    pc.classify(0x5000, 2);
    pc.classify(0x5008, 4); // promotes; hook(2, 0x5000)
    pc.classify(0x5010, 5); // already shared; no hook
    ASSERT_EQ(calls.size(), 1u);
    EXPECT_EQ(calls[0].first, 2u);
    EXPECT_EQ(calls[0].second, 0x5000u);
}

TEST(PageClassifier, UnknownPagePeeksPrivate)
{
    PageClassifier pc;
    EXPECT_EQ(pc.peek(0x9000), PageClass::Private);
}

TEST(PageClassifier, StatsCountTransitions)
{
    PageClassifier pc;
    StatsRegistry stats;
    pc.registerStats(stats.scope("pages"));
    pc.classify(0x1000, 0);
    pc.classify(0x2000, 0);
    pc.classify(0x1000, 1);
    EXPECT_EQ(stats.counter("pages.private_pages"), 2u);
    EXPECT_EQ(stats.counter("pages.transitions"), 1u);
}

} // namespace
} // namespace cbsim
