/**
 * @file
 * MESI protocol tests on a full 4-core chip: state transitions,
 * invalidation on write-sharing, local spinning, owner forwarding,
 * atomic mutual exclusion, and writebacks.
 */

#include <gtest/gtest.h>

#include "../support/chip_helpers.hh"

namespace cbsim {
namespace {

constexpr Addr kFlag = 0x10000; // bank 0x10000/64 % 4 = 0
constexpr Addr kData = 0x20040;

struct MesiFixture : ::testing::Test
{
    std::unique_ptr<Chip> chip;

    void
    build(unsigned cores = 4)
    {
        chip = std::make_unique<Chip>(testConfig(Technique::Invalidation,
                                                 cores));
        idleAll(*chip);
    }
};

TEST_F(MesiFixture, FirstReaderGetsExclusive)
{
    build();
    Assembler a;
    a.movImm(1, kData);
    a.ld(2, 1);
    chip->setProgram(0, a.assemble());
    chip->run();
    auto st = mesiL1(*chip, 0).lineState(kData);
    ASSERT_TRUE(st.has_value());
    EXPECT_EQ(*st, MesiState::E);
}

TEST_F(MesiFixture, SecondReaderMakesBothShared)
{
    build();
    for (CoreId c : {0u, 1u}) {
        Assembler a;
        a.workImm(c * 400); // serialize the reads
        a.movImm(1, kData);
        a.ld(2, 1);
        chip->setProgram(c, a.assemble());
    }
    chip->run();
    EXPECT_EQ(*mesiL1(*chip, 0).lineState(kData), MesiState::S);
    EXPECT_EQ(*mesiL1(*chip, 1).lineState(kData), MesiState::S);
}

TEST_F(MesiFixture, StoreOnExclusiveSilentlyUpgrades)
{
    build();
    Assembler a;
    a.movImm(1, kData);
    a.ld(2, 1);
    a.stImm(5, 1);
    chip->setProgram(0, a.assemble());
    const auto before = chip->stats().counter("noc.packets.GetX");
    chip->run();
    EXPECT_EQ(*mesiL1(*chip, 0).lineState(kData), MesiState::M);
    // E->M must not have produced a GetX.
    EXPECT_EQ(chip->stats().counter("noc.packets.GetX"), before);
    EXPECT_EQ(chip->dataStore().read(kData), 5u);
}

TEST_F(MesiFixture, WriterInvalidatesSharers)
{
    build();
    // Cores 1..3 read the flag; then core 0 writes it.
    for (CoreId c : {1u, 2u, 3u}) {
        Assembler a;
        a.movImm(1, kFlag);
        a.ld(2, 1);
        chip->setProgram(c, a.assemble());
    }
    Assembler w;
    w.workImm(2000); // let the readers cache it first
    w.movImm(1, kFlag);
    w.stImm(1, 1);
    chip->setProgram(0, w.assemble());
    chip->run();

    EXPECT_EQ(*mesiL1(*chip, 0).lineState(kFlag), MesiState::M);
    for (CoreId c : {1u, 2u, 3u})
        EXPECT_FALSE(mesiL1(*chip, c).lineState(kFlag).has_value());
    EXPECT_GE(RunResult::sumWhere(chip->stats(), "llc.", ".invs_sent"),
              3u);
}

TEST_F(MesiFixture, SpinnerSpinsLocallyUntilInvalidated)
{
    build();
    // Core 1 spins on the flag; core 0 sets it after 20k cycles.
    Assembler s;
    s.movImm(1, kFlag);
    s.label("spn");
    s.ld(2, 1).sync = true;
    s.beqz(2, "spn");
    chip->setProgram(1, s.assemble());

    Assembler w;
    w.workImm(20000);
    w.movImm(1, kFlag);
    w.stImm(1, 1).sync = true;
    chip->setProgram(0, w.assemble());

    auto result = chip->run();
    // The spinning core hit in its L1: sync LLC accesses stay O(1)
    // (a handful of misses), NOT O(spin iterations).
    EXPECT_LT(result.llcSyncAccesses, 12u);
    // ... while the L1 absorbed thousands of spin reads.
    EXPECT_GT(result.l1Accesses, 2000u);
}

TEST_F(MesiFixture, AtomicsAreMutuallyExclusive)
{
    build();
    // All four cores do 50 T&S-guarded increments of a shared counter.
    constexpr int iters = 50;
    for (CoreId c = 0; c < 4; ++c) {
        Assembler a;
        a.movImm(1, kFlag);  // lock
        a.movImm(2, kData);  // counter
        a.movImm(5, 0);      // i
        a.movImm(6, iters);
        a.label("loop");
        a.label("acq");
        a.atomic(3, 1, 0, AtomicFunc::TestAndSet, 1, 0, false,
                 WakePolicy::None);
        a.bnez(3, "acq");
        a.ld(4, 2);
        a.addImm(4, 4, 1);
        a.st(4, 2);
        a.stImm(0, 1); // release
        a.addImm(5, 5, 1);
        a.bne(5, 6, "loop");
        chip->setProgram(c, a.assemble());
    }
    chip->run();
    EXPECT_EQ(chip->dataStore().read(kData), 4u * iters);
}

TEST_F(MesiFixture, OwnerForwardsToReader)
{
    build();
    // Core 0 dirties the line; core 1 then reads it: FwdGetS path.
    Assembler w;
    w.movImm(1, kData);
    w.stImm(7, 1);
    chip->setProgram(0, w.assemble());

    Assembler r;
    r.workImm(2000);
    r.movImm(1, kData);
    r.ld(2, 1);
    chip->setProgram(1, r.assemble());

    chip->run();
    EXPECT_EQ(chip->core(1).reg(2), 7u);
    EXPECT_EQ(*mesiL1(*chip, 0).lineState(kData), MesiState::S);
    EXPECT_EQ(*mesiL1(*chip, 1).lineState(kData), MesiState::S);
    EXPECT_GE(chip->stats().counter("noc.packets.FwdGetS"), 1u);
}

TEST_F(MesiFixture, OwnerYieldsToWriter)
{
    build();
    Assembler w0;
    w0.movImm(1, kData);
    w0.stImm(1, 1);
    chip->setProgram(0, w0.assemble());

    Assembler w1;
    w1.workImm(2000);
    w1.movImm(1, kData);
    w1.stImm(2, 1);
    chip->setProgram(1, w1.assemble());

    chip->run();
    EXPECT_FALSE(mesiL1(*chip, 0).lineState(kData).has_value());
    EXPECT_EQ(*mesiL1(*chip, 1).lineState(kData), MesiState::M);
    EXPECT_GE(chip->stats().counter("noc.packets.FwdGetX"), 1u);
    EXPECT_EQ(chip->dataStore().read(kData), 2u);
}

TEST_F(MesiFixture, DirtyEvictionWritesBack)
{
    build();
    // Dirty many lines mapping to the same L1 set to force evictions.
    // L1: 32 KB 4-way -> 128 sets, set stride 128*64 = 8 KB.
    Assembler a;
    for (int i = 0; i < 8; ++i) {
        a.movImm(1, 0x40000 + i * 0x2000);
        a.stImm(i, 1);
    }
    chip->setProgram(0, a.assemble());
    chip->run();
    EXPECT_GE(chip->stats().counter("noc.packets.PutM"), 4u);
    EXPECT_EQ(chip->stats().counter("l1.0.writebacks"),
              chip->stats().counter("noc.packets.PutM"));
}

TEST_F(MesiFixture, ValuePropagatesThroughInvalidation)
{
    build();
    // Classic message pattern: reader caches, writer invalidates,
    // reader re-fetches the new value.
    Assembler r;
    r.movImm(1, kFlag);
    r.label("spn");
    r.ld(2, 1).sync = true;
    r.beqz(2, "spn");
    r.movImm(3, kData);
    r.ld(4, 3);
    chip->setProgram(1, r.assemble());

    Assembler w;
    w.movImm(3, kData);
    w.stImm(99, 3);
    w.workImm(5000);
    w.movImm(1, kFlag);
    w.stImm(1, 1).sync = true;
    chip->setProgram(0, w.assemble());

    chip->run();
    EXPECT_EQ(chip->core(1).reg(4), 99u);
}

TEST_F(MesiFixture, SixteenCoreContendedStore)
{
    build(16);
    for (CoreId c = 0; c < 16; ++c) {
        Assembler a;
        a.movImm(1, kFlag);
        a.atomic(2, 1, 0, AtomicFunc::FetchAndAdd, 1, 0, false,
                 WakePolicy::None);
        chip->setProgram(c, a.assemble());
    }
    chip->run();
    EXPECT_EQ(chip->dataStore().read(kFlag), 16u);
}

} // namespace
} // namespace cbsim
