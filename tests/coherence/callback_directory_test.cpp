/**
 * @file
 * Callback-directory unit tests, including step-by-step replays of the
 * paper's worked examples: Figure 3 (callback-all), Figure 4
 * (callback-one with write_CB1), and the replacement behaviour
 * (Fig. 3 steps 5-6). A randomized test cross-checks the invariant that
 * a blocked read's CB bit is always set until a write (or eviction)
 * satisfies it.
 */

#include <gtest/gtest.h>

#include <set>

#include "coherence/callback/callback_directory.hh"
#include "sim/rng.hh"

namespace cbsim {
namespace {

constexpr Addr kWord = 0x1000;

TEST(CallbackDirectory, FreshEntryStartsFullAllNoCallbacks)
{
    CallbackDirectory dir(4, 4);
    // First ld_cb allocates; all F/E bits full -> consume immediately.
    auto res = dir.ldCb(kWord, 0);
    EXPECT_FALSE(res.blocked);
    auto snap = dir.snapshot(kWord);
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->cb, 0u);
    EXPECT_EQ(snap->fe, 0b1110u); // core 0 consumed its bit
    EXPECT_FALSE(snap->aoOne);
}

TEST(CallbackDirectory, Figure3Walkthrough)
{
    CallbackDirectory dir(4, 4);

    // Step 1: all four cores read after the entry is installed: the
    // starting state of all F/E bits becomes 0.
    for (CoreId c = 0; c < 4; ++c)
        EXPECT_FALSE(dir.ldCb(kWord, c).blocked);
    EXPECT_EQ(dir.snapshot(kWord)->fe, 0u);

    // Step 2: cores 0 and 2 issue callbacks; there is no value, so they
    // block and set their CB bits.
    EXPECT_TRUE(dir.ldCb(kWord, 0).blocked);
    EXPECT_TRUE(dir.ldCb(kWord, 2).blocked);
    EXPECT_EQ(dir.snapshot(kWord)->cb, 0b0101u);
    EXPECT_TRUE(dir.hasCallback(kWord, 0));
    EXPECT_TRUE(dir.hasCallback(kWord, 2));

    // Step 3: core 3 writes; both callbacks are satisfied, and the F/E
    // bits of the cores that did NOT have callbacks become full.
    auto wr = dir.store(kWord, 3, WakePolicy::All);
    EXPECT_EQ(wr.wake, (std::vector<CoreId>{0, 2}));
    auto snap = dir.snapshot(kWord);
    EXPECT_EQ(snap->cb, 0u);
    EXPECT_EQ(snap->fe, 0b1010u); // cores 1 and 3 full; 0 and 2 consumed

    // Step 4: core 1 issues a callback and finds its F/E bit full; it
    // consumes immediately, leaving F/E and CB unset.
    EXPECT_FALSE(dir.ldCb(kWord, 1).blocked);
    snap = dir.snapshot(kWord);
    EXPECT_EQ(snap->fe, 0b1000u);
    EXPECT_EQ(snap->cb, 0u);
}

TEST(CallbackDirectory, Figure3ReplacementLosesBitsAndWakesWaiters)
{
    CallbackDirectory dir(1, 4); // one entry: any new word evicts

    // Core 1 blocks on kWord (consume the fresh-full state first).
    dir.ldCb(kWord, 1);
    EXPECT_TRUE(dir.ldCb(kWord, 1).blocked);

    // Step 5: a callback read to a different word evicts kWord's entry;
    // the blocked waiter must be satisfied with the current value.
    auto res = dir.ldCb(0x2000, 0);
    EXPECT_FALSE(res.blocked); // fresh entry, F/E full
    EXPECT_TRUE(res.evictionHappened);
    EXPECT_EQ(res.evictedWord, kWord);
    EXPECT_EQ(res.evictedWaiters, (std::vector<CoreId>{1}));

    // Step 6: re-created entries start at the known state.
    dir.ldCb(kWord, 2); // evicts 0x2000, allocates fresh
    auto snap = dir.snapshot(kWord);
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->cb, 0u);
    EXPECT_EQ(snap->fe, 0b1011u); // all full minus core 2's consume
    EXPECT_FALSE(snap->aoOne);
}

TEST(CallbackDirectory, Figure4CallbackOneWalkthrough)
{
    CallbackDirectory dir(4, 4);

    // Put the entry into One mode with full F/E bits: a release with no
    // waiters (write_CB1).
    dir.ldCb(kWord, 2); // allocate (consumes core 2's bit)
    dir.store(kWord, 2, WakePolicy::One);
    auto snap = dir.snapshot(kWord);
    EXPECT_TRUE(snap->aoOne);
    EXPECT_EQ(snap->fe, 0b1111u); // step 1: F/E all full, in unison

    // Step 2: core 2 reads the lock; ALL F/E bits act in unison and
    // become empty.
    EXPECT_FALSE(dir.ldCb(kWord, 2).blocked);
    EXPECT_EQ(dir.snapshot(kWord)->fe, 0u);

    // Steps 3-5: cores 0, 1, 3 must block and set callbacks.
    EXPECT_TRUE(dir.ldCb(kWord, 0).blocked);
    EXPECT_TRUE(dir.ldCb(kWord, 1).blocked);
    EXPECT_TRUE(dir.ldCb(kWord, 3).blocked);
    EXPECT_EQ(dir.snapshot(kWord)->cb, 0b1011u);

    // Step 6: core 2 releases with write_CB1: exactly ONE waiter wakes.
    // Round-robin from above the writer: core 3 is picked (matching the
    // paper's hand-off order 2, 3, 0, 1).
    auto wr = dir.store(kWord, 2, WakePolicy::One);
    EXPECT_EQ(wr.wake, (std::vector<CoreId>{3}));

    // Step 9 property: F/E bits stay empty (undisturbed).
    snap = dir.snapshot(kWord);
    EXPECT_EQ(snap->fe, 0u);
    EXPECT_EQ(snap->cb, 0b0011u);

    // Subsequent releases continue the round-robin hand-off: 0, then 1.
    EXPECT_EQ(dir.store(kWord, 3, WakePolicy::One).wake,
              (std::vector<CoreId>{0}));
    EXPECT_EQ(dir.store(kWord, 0, WakePolicy::One).wake,
              (std::vector<CoreId>{1}));
    EXPECT_EQ(dir.snapshot(kWord)->cb, 0u);
}

TEST(CallbackDirectory, WriteCb1WithNoWaitersFillsInUnison)
{
    CallbackDirectory dir(4, 4);
    dir.ldCb(kWord, 0);
    dir.store(kWord, 0, WakePolicy::One);
    auto snap = dir.snapshot(kWord);
    EXPECT_TRUE(snap->aoOne);
    EXPECT_EQ(snap->fe, 0b1111u);
    // The next single reader consumes for everyone.
    EXPECT_FALSE(dir.ldCb(kWord, 3).blocked);
    EXPECT_EQ(dir.snapshot(kWord)->fe, 0u);
}

TEST(CallbackDirectory, WriteCb0WakesNobodyAndKeepsOneMode)
{
    CallbackDirectory dir(4, 4);
    dir.ldCb(kWord, 0);
    dir.store(kWord, 0, WakePolicy::One); // One mode, full
    dir.ldCb(kWord, 1);                   // consumes in unison
    EXPECT_TRUE(dir.ldCb(kWord, 2).blocked);

    // st_cb0 (the write of a successful RMW): nobody wakes, F/E stays
    // empty, mode stays One (Fig. 6).
    auto wr = dir.store(kWord, 1, WakePolicy::Zero);
    EXPECT_TRUE(wr.wake.empty());
    auto snap = dir.snapshot(kWord);
    EXPECT_TRUE(snap->aoOne);
    EXPECT_EQ(snap->fe, 0u);
    EXPECT_EQ(snap->cb, 0b0100u); // core 2 still waiting
}

TEST(CallbackDirectory, NormalWriteResetsOneModeToAll)
{
    CallbackDirectory dir(4, 4);
    dir.ldCb(kWord, 0);
    dir.store(kWord, 0, WakePolicy::One);
    EXPECT_TRUE(dir.snapshot(kWord)->aoOne);
    dir.store(kWord, 1, WakePolicy::All); // st_through resets A/O
    EXPECT_FALSE(dir.snapshot(kWord)->aoOne);
}

TEST(CallbackDirectory, LdThroughConsumesButNeverBlocksOrAllocates)
{
    CallbackDirectory dir(4, 4);
    // No entry: no allocation.
    dir.ldThrough(kWord, 0);
    EXPECT_FALSE(dir.snapshot(kWord).has_value());
    EXPECT_EQ(dir.validEntries(), 0u);

    // With an entry: consumes this core's F/E bit.
    dir.ldCb(kWord, 1); // allocate (core 1 consumes)
    dir.ldThrough(kWord, 0);
    EXPECT_EQ(dir.snapshot(kWord)->fe, 0b1100u);
    // Repeated ld_through when empty: no state change, no blocking.
    dir.ldThrough(kWord, 0);
    EXPECT_EQ(dir.snapshot(kWord)->fe, 0b1100u);
}

TEST(CallbackDirectory, LdThroughConsumesInUnisonInOneMode)
{
    CallbackDirectory dir(4, 4);
    dir.ldCb(kWord, 0);
    dir.store(kWord, 0, WakePolicy::One); // One, full
    dir.ldThrough(kWord, 3);
    EXPECT_EQ(dir.snapshot(kWord)->fe, 0u);
}

TEST(CallbackDirectory, StoresNeverAllocate)
{
    CallbackDirectory dir(4, 4);
    dir.store(kWord, 0, WakePolicy::All);
    dir.store(kWord, 0, WakePolicy::One);
    dir.store(kWord, 0, WakePolicy::Zero);
    EXPECT_EQ(dir.validEntries(), 0u);
}

TEST(CallbackDirectory, RoundRobinWrapsPastHighestId)
{
    CallbackDirectory dir(4, 8);
    dir.ldCb(kWord, 0);
    dir.store(kWord, 0, WakePolicy::One);
    dir.ldCb(kWord, 0); // consume in unison
    for (CoreId c : {1u, 2u, 6u})
        EXPECT_TRUE(dir.ldCb(kWord, c).blocked);
    // Writer 7: scan 0,1,... -> wakes 1 (wraps past the top id).
    EXPECT_EQ(dir.store(kWord, 7, WakePolicy::One).wake,
              (std::vector<CoreId>{1}));
    // Writer 5: scan 6,7,0,... -> wakes 6.
    EXPECT_EQ(dir.store(kWord, 5, WakePolicy::One).wake,
              (std::vector<CoreId>{6}));
}

TEST(CallbackDirectory, LruEvictionPicksOldestEntry)
{
    CallbackDirectory dir(2, 2);
    dir.ldCb(0x1000, 0);
    dir.ldCb(0x2000, 0);
    dir.ldCb(0x1000, 1); // touch 0x1000: 0x2000 becomes LRU
    auto res = dir.ldCb(0x3000, 0);
    EXPECT_TRUE(res.evictionHappened);
    EXPECT_EQ(res.evictedWord, 0x2000u);
}

TEST(CallbackDirectory, WordGranularity)
{
    CallbackDirectory dir(4, 4);
    // Two words of the same cache line get independent entries (§2.2).
    dir.ldCb(0x1000, 0);
    dir.ldCb(0x1008, 0);
    EXPECT_EQ(dir.validEntries(), 2u);
    EXPECT_TRUE(dir.ldCb(0x1000, 0).blocked);
    // Blocking on word 0 does not affect word 1's state.
    EXPECT_EQ(dir.snapshot(0x1008)->cb, 0u);
}

TEST(CallbackDirectory, RejectsBadConfig)
{
    EXPECT_THROW(CallbackDirectory(0, 4), FatalError);
    EXPECT_THROW(CallbackDirectory(4, 0), FatalError);
    EXPECT_THROW(CallbackDirectory(4, 65), FatalError);
}

TEST(CallbackDirectory, SupportsSixtyFourCores)
{
    CallbackDirectory dir(4, 64);
    dir.ldCb(kWord, 63);
    EXPECT_TRUE(dir.ldCb(kWord, 63).blocked);
    auto wr = dir.store(kWord, 0, WakePolicy::All);
    EXPECT_EQ(wr.wake, (std::vector<CoreId>{63}));
}

/**
 * Randomized invariant check against a reference model: every blocked
 * read is eventually woken exactly once (by a store or an eviction), and
 * CB bits always mirror the set of outstanding blocked readers.
 */
TEST(CallbackDirectory, RandomOpsMatchReferenceModel)
{
    constexpr unsigned cores = 8;
    CallbackDirectory dir(2, cores);
    Rng rng(2024);
    const Addr words[] = {0x1000, 0x2000, 0x3000};

    // Reference: per word, the set of blocked cores.
    std::map<Addr, std::set<CoreId>> blocked;
    auto on_wake = [&](Addr w, const std::vector<CoreId>& v) {
        for (CoreId c : v) {
            ASSERT_TRUE(blocked[w].count(c));
            blocked[w].erase(c);
        }
    };

    for (int i = 0; i < 20000; ++i) {
        const Addr w = words[rng.below(3)];
        const auto core = static_cast<CoreId>(rng.below(cores));
        switch (rng.below(4)) {
          case 0: {
            if (blocked[w].count(core))
                break; // a blocked core cannot issue (cores block)
            auto res = dir.ldCb(w, core);
            if (res.evictionHappened)
                on_wake(res.evictedWord, res.evictedWaiters);
            if (res.blocked)
                blocked[w].insert(core);
            break;
          }
          case 1:
            if (!blocked[w].count(core))
                dir.ldThrough(w, core);
            break;
          case 2:
            on_wake(w, dir.store(w, core, WakePolicy::All).wake);
            break;
          case 3:
            on_wake(w, dir.store(w, core, WakePolicy::One).wake);
            break;
        }
        // CB bits must mirror the blocked sets at all times.
        for (Addr check : words) {
            for (CoreId c = 0; c < cores; ++c) {
                EXPECT_EQ(dir.hasCallback(check, c),
                          blocked[check].count(c) != 0);
            }
        }
    }
}

} // namespace
} // namespace cbsim
