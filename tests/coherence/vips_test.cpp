/**
 * @file
 * VIPS-M + callback protocol tests on a full 4-core chip: through-ops,
 * self-invalidation/downgrade fences, page classification, blocking
 * callback reads and wake-ups, st_cb1/st_cb0 semantics, RMW held in the
 * callback directory, premature wake-up (Fig. 5), directory-eviction
 * liveness, and the 3-message value hand-off.
 */

#include <gtest/gtest.h>

#include "../support/chip_helpers.hh"

namespace cbsim {
namespace {

constexpr Addr kFlag = 0x10000;
constexpr Addr kData = 0x20040;

struct VipsFixture : ::testing::Test
{
    std::unique_ptr<Chip> chip;

    void
    build(Technique t = Technique::CbAll, unsigned cores = 4,
          unsigned cb_entries = 4)
    {
        ChipConfig cfg = testConfig(t, cores);
        cfg.cbEntriesPerBank = cb_entries;
        chip = std::make_unique<Chip>(cfg);
        idleAll(*chip);
    }

    std::uint64_t
    llcSync() const
    {
        return RunResult::sumWhere(
            const_cast<Chip&>(*chip).stats(), "llc.", ".sync_accesses");
    }
};

TEST_F(VipsFixture, ThroughOpsBypassTheL1)
{
    build();
    Assembler a;
    a.movImm(1, kFlag);
    a.stThroughImm(3, 1);
    a.ldThrough(2, 1);
    chip->setProgram(0, a.assemble());
    chip->run();
    EXPECT_EQ(chip->core(0).reg(2), 3u);
    EXPECT_FALSE(vipsL1(*chip, 0).cached(kFlag));
    EXPECT_EQ(llcSync(), 2u);
}

TEST_F(VipsFixture, LlcSpinningCostsOneAccessPerIteration)
{
    build(Technique::BackOff0);
    Assembler s;
    s.movImm(1, kFlag);
    s.label("spn");
    s.ldThrough(2, 1).spin = true;
    s.beqz(2, "spn");
    chip->setProgram(1, s.assemble());

    Assembler w;
    w.workImm(8000);
    w.movImm(1, kFlag);
    w.stThroughImm(1, 1);
    chip->setProgram(0, w.assemble());

    chip->run();
    // Every spin iteration reached the LLC (the paper's motivation).
    EXPECT_GT(llcSync(), 40u);
}

TEST_F(VipsFixture, CallbackBlocksInsteadOfSpinning)
{
    build(Technique::CbAll);
    // The paper's callback spin idiom: guard ld_through then ld_cb loop.
    Assembler s;
    s.movImm(1, kFlag);
    s.ldThrough(2, 1);
    s.bnez(2, "out");
    s.label("spn");
    s.ldCb(2, 1);
    s.beqz(2, "spn");
    s.label("out");
    chip->setProgram(1, s.assemble());

    Assembler w;
    w.workImm(8000);
    w.movImm(1, kFlag);
    w.stThroughImm(1, 1);
    chip->setProgram(0, w.assemble());

    auto result = chip->run();
    EXPECT_EQ(chip->core(1).reg(2), 1u);
    // Blocked in the directory: only a handful of sync LLC accesses.
    EXPECT_LT(llcSync(), 8u);
    EXPECT_GE(result.cbWakeups, 1u);
    EXPECT_EQ(chip->stats().counter("noc.packets.WakeUp"), 1u);
}

TEST_F(VipsFixture, ThreeMessageValueHandOff)
{
    build(Technique::CbAll);
    // With the reader already blocked, communicating the value takes
    // exactly {GetCB, write, wake} = 3 messages (§2.1). The writer's
    // completion Ack is the 4th on-chip message.
    Assembler s;
    s.movImm(1, kFlag);
    s.label("spn");
    s.ldCb(2, 1);
    s.beqz(2, "spn");
    chip->setProgram(1, s.assemble());

    Assembler w;
    w.workImm(5000);
    w.movImm(1, kFlag);
    w.stThroughImm(1, 1);
    chip->setProgram(0, w.assemble());

    chip->run();
    const auto& st = chip->stats();
    // The first ld_cb consumes the fresh-full entry (1 GetCB +
    // 1 DataWord), the second blocks (1 GetCB) and gets 1 WakeUp.
    EXPECT_EQ(st.counter("noc.packets.GetCB"), 2u);
    EXPECT_EQ(st.counter("noc.packets.WakeUp"), 1u);
    EXPECT_EQ(st.counter("noc.packets.StThrough"), 1u);
    EXPECT_EQ(st.counter("noc.packets.Inv"), 0u);
}

TEST_F(VipsFixture, SelfDowngradeFlushesDirtyWords)
{
    build();
    Assembler a;
    a.movImm(1, kData);
    a.stImm(11, 1, 0);
    a.stImm(22, 1, 8);
    a.selfDown();
    chip->setProgram(0, a.assemble());
    chip->run();
    EXPECT_EQ(chip->stats().counter("l1.0.wt_flushes"), 1u);
    EXPECT_EQ(chip->stats().counter("noc.packets.WtFlush"), 1u);
    EXPECT_EQ(vipsL1(*chip, 0).dirtyMask(kData), 0u);
    EXPECT_TRUE(vipsL1(*chip, 0).cached(kData)); // downgrade keeps data
}

TEST_F(VipsFixture, SelfInvalidateDiscardsSharedLines)
{
    build();
    // Two cores touch the page so it classifies Shared; then core 0
    // self-invalidates and must lose the line.
    Assembler a0;
    a0.movImm(1, kData);
    a0.ld(2, 1);
    a0.workImm(4000);
    a0.selfInvl();
    chip->setProgram(0, a0.assemble());

    Assembler a1;
    a1.workImm(1000);
    a1.movImm(1, kData + 8);
    a1.ld(2, 1);
    chip->setProgram(1, a1.assemble());

    chip->run();
    EXPECT_FALSE(vipsL1(*chip, 0).cached(kData));
}

TEST_F(VipsFixture, PrivatePagesSurviveSelfInvalidation)
{
    build();
    Assembler a;
    a.movImm(1, 0x90000); // only core 0 ever touches this page
    a.ld(2, 1);
    a.selfInvl();
    chip->setProgram(0, a.assemble());
    chip->run();
    EXPECT_TRUE(vipsL1(*chip, 0).cached(0x90000));
}

TEST_F(VipsFixture, StCb1WakesExactlyOneWaiter)
{
    build(Technique::CbOne);
    // Put the word into One mode and empty: writer0 takes the "lock".
    // Cores 1..3 block on ld_cb; one st_cb1 wakes exactly one.
    for (CoreId c : {1u, 2u, 3u}) {
        Assembler s;
        s.movImm(1, kFlag);
        s.label("spn");
        s.ldCb(2, 1);
        s.beqz(2, "spn");
        chip->setProgram(c, s.assemble());
    }
    Assembler w;
    w.movImm(1, kFlag);
    w.ldThrough(2, 1); // consume the fresh-full state
    w.workImm(6000);   // let all three waiters block
    w.stCb1Imm(1, 1);  // wake ONE
    w.workImm(6000);
    w.stThroughImm(1, 1); // wake the rest so the test terminates
    chip->setProgram(0, w.assemble());

    chip->run();
    const auto& st = chip->stats();
    EXPECT_EQ(st.counter("noc.packets.StCb1"), 1u);
    EXPECT_EQ(st.counter("noc.packets.WakeUp"), 3u);
}

TEST_F(VipsFixture, RmwHeldInDirectoryReExecutesOnWake)
{
    build(Technique::CbOne);
    // Fig. 5/6 scenario: core 1's callback T&S blocks; core 0 holds the
    // "lock" and releases with st_cb1; core 1's RMW re-executes at the
    // LLC and succeeds without re-requesting.
    Assembler w;
    w.movImm(1, kFlag);
    w.atomic(2, 1, 0, AtomicFunc::TestAndSet, 1, 0, false,
             WakePolicy::Zero);
    w.workImm(6000);
    w.stCb1Imm(0, 1); // release
    chip->setProgram(0, w.assemble());

    Assembler s;
    s.workImm(1000);
    s.movImm(1, kFlag);
    s.label("spn");
    s.atomic(2, 1, 0, AtomicFunc::TestAndSet, 1, 0, true,
             WakePolicy::Zero);
    s.bnez(2, "spn");
    chip->setProgram(1, s.assemble());

    chip->run();
    // Core 1 took the lock after the wake; the lock word reads taken.
    EXPECT_EQ(chip->dataStore().read(kFlag), 1u);
    // Exactly one blocked atomic request was sent; the successful retry
    // happened inside the bank (no second AtomicReq from core 1).
    EXPECT_EQ(chip->stats().counter("noc.packets.AtomicReq"), 3u);
}

TEST_F(VipsFixture, PrematureWakeFailsAndReblocks)
{
    build(Technique::CbAll);
    // Callback-ALL with a waking T&S (Fig. 9 left / Fig. 5): when the
    // holder releases with st_through, all waiters wake, exactly one
    // wins the re-executed T&S, and the others re-block. A second
    // release lets the next one through, etc. Termination proves
    // correctness; the guard counter proves mutual exclusion.
    constexpr int iters = 8;
    for (CoreId c = 0; c < 4; ++c) {
        Assembler a;
        a.movImm(1, kFlag);
        a.movImm(2, kData);
        a.movImm(5, 0);
        a.movImm(6, iters);
        a.label("loop");
        a.atomic(3, 1, 0, AtomicFunc::TestAndSet, 1, 0, false,
                 WakePolicy::All);
        a.beqz(3, "cs");
        a.label("spn");
        a.atomic(3, 1, 0, AtomicFunc::TestAndSet, 1, 0, true,
                 WakePolicy::All);
        a.bnez(3, "spn");
        a.label("cs");
        a.selfInvl();
        a.ld(4, 2);
        a.addImm(4, 4, 1);
        a.st(4, 2);
        a.selfDown();
        a.stThroughImm(0, 1);
        a.addImm(5, 5, 1);
        a.bne(5, 6, "loop");
        chip->setProgram(c, a.assemble());
    }
    chip->run();
    EXPECT_EQ(chip->dataStore().read(kData), 4u * iters);
}

TEST_F(VipsFixture, DirectoryEvictionPreservesLiveness)
{
    // One entry per bank and several distinct spin words on the same
    // bank: allocations keep evicting each other's entries; evicted
    // waiters are satisfied with the current value, re-check, and
    // re-block. All spinners must still terminate.
    build(Technique::CbAll, 4, /*cb_entries=*/1);
    // Words on bank 0: line numbers divisible by 4.
    const Addr w0 = 0x40000, w1 = 0x40100, w2 = 0x40200;
    const Addr words[3] = {w0, w1, w2};
    for (CoreId c : {1u, 2u, 3u}) {
        Assembler s;
        s.movImm(1, words[c - 1]);
        s.label("try");
        s.ldThrough(2, 1);
        s.bnez(2, "out");
        s.label("spn");
        s.ldCb(2, 1);
        s.beqz(2, "spn");
        s.label("out");
        chip->setProgram(c, s.assemble());
    }
    Assembler w;
    w.workImm(10000);
    for (const Addr word : words) {
        w.movImm(1, word);
        w.stThroughImm(1, 1);
    }
    chip->setProgram(0, w.assemble());
    chip->run();
    for (CoreId c : {1u, 2u, 3u})
        EXPECT_EQ(chip->core(c).reg(2), 1u);
    // With one entry and three words there must have been evictions.
    EXPECT_GE(RunResult::sumWhere(chip->stats(), "llc.",
                                  ".cbdir.evictions"),
              1u);
}

TEST_F(VipsFixture, PageTransitionFlushesPreviousOwner)
{
    build();
    // Core 0 dirties a page it privately owns; core 1's later access
    // promotes the page to Shared, which must flush+invalidate core 0's
    // lines of that page.
    Assembler a0;
    a0.movImm(1, 0xA0000);
    a0.stImm(5, 1);
    a0.workImm(6000);
    chip->setProgram(0, a0.assemble());

    Assembler a1;
    a1.workImm(2000);
    a1.movImm(1, 0xA0040); // same page, different line
    a1.ld(2, 1);
    chip->setProgram(1, a1.assemble());

    chip->run();
    EXPECT_FALSE(vipsL1(*chip, 0).cached(0xA0000));
    EXPECT_EQ(chip->stats().counter("pages.transitions"), 1u);
    EXPECT_GE(chip->stats().counter("l1.0.wt_flushes"), 1u);
}

TEST_F(VipsFixture, GuardLdThroughPreventsBackToBackSpinDeadlock)
{
    build(Technique::CbAll);
    // Fig. 7: two consecutive spin loops on the same flag. The second
    // loop's guard ld_through must return the already-present value
    // instead of blocking forever.
    Assembler s;
    s.movImm(1, kFlag);
    // Loop 1 (guard + ld_cb).
    s.ldThrough(2, 1);
    s.bnez(2, "l2");
    s.label("spn1");
    s.ldCb(2, 1);
    s.beqz(2, "spn1");
    // Loop 2 (guard + ld_cb) on the SAME flag value.
    s.label("l2");
    s.ldThrough(2, 1);
    s.bnez(2, "out");
    s.label("spn2");
    s.ldCb(2, 1);
    s.beqz(2, "spn2");
    s.label("out");
    chip->setProgram(1, s.assemble());

    Assembler w;
    w.workImm(4000);
    w.movImm(1, kFlag);
    w.stThroughImm(1, 1);
    chip->setProgram(0, w.assemble());

    chip->run(); // termination IS the assertion (deadlock would trip
                 // the tick guard)
    EXPECT_EQ(chip->core(1).reg(2), 1u);
}

TEST_F(VipsFixture, AtomicsAtLlcAreMutuallyExclusive)
{
    build(Technique::BackOff10, 16);
    for (CoreId c = 0; c < 16; ++c) {
        Assembler a;
        a.movImm(1, kFlag);
        a.atomic(2, 1, 0, AtomicFunc::FetchAndAdd, 1, 0, false,
                 WakePolicy::All);
        chip->setProgram(c, a.assemble());
    }
    chip->run();
    EXPECT_EQ(chip->dataStore().read(kFlag), 16u);
}

} // namespace
} // namespace cbsim
