/**
 * @file
 * Tests for the reporting layer behind cbsim-report: the JSON parser
 * (the read-side complement of harness/json.hh), figure-table and
 * contention rendering, the artifact diff, and the CLI entry point's
 * exit-code contract (0 ok / 1 regression / 2 usage or parse error).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "report/json_value.hh"
#include "report/report.hh"

namespace cbsim {
namespace {

TEST(JsonValue, ParsesScalarsContainersAndEscapes)
{
    std::string err;
    const JsonValue v = JsonValue::parse(
        R"({"a": 1, "b": [true, null, -2.5e1], "s": "x\n\"y\""})", err);
    ASSERT_TRUE(err.empty()) << err;
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.getNumber("a"), 1.0);
    EXPECT_EQ(v.get("a").text(), "1"); // raw token survives for display
    const auto& arr = v.get("b").items();
    ASSERT_EQ(arr.size(), 3u);
    EXPECT_TRUE(arr[0].boolean());
    EXPECT_TRUE(arr[1].isNull());
    EXPECT_EQ(arr[2].number(), -25.0);
    EXPECT_EQ(v.getString("s"), "x\n\"y\"");
    // Insertion order is preserved (artifacts have deterministic keys).
    EXPECT_EQ(v.members()[0].first, "a");
    EXPECT_EQ(v.members()[2].first, "s");
}

TEST(JsonValue, ReportsErrorsWithLineNumbers)
{
    std::string err;
    JsonValue::parse("{\n  \"a\": ,\n}", err);
    EXPECT_NE(err.find("line 2"), std::string::npos) << err;

    JsonValue::parse("{} trailing", err);
    EXPECT_NE(err.find("trailing"), std::string::npos);

    JsonValue::parse("[1, 2", err);
    EXPECT_FALSE(err.empty());

    // Absent keys chain to a shared null instead of throwing.
    const JsonValue v = JsonValue::parse("{}", err);
    EXPECT_TRUE(v.get("missing").get("nested").isNull());
    EXPECT_EQ(v.getNumber("missing"), 0.0);
}

/** A minimal two-run schema-v4 artifact, parsed. */
JsonValue
sampleArtifact(std::uint64_t invCycles, bool cbOk)
{
    std::ostringstream os;
    os << R"({
      "schema_version": 4, "generator": "cbsim", "bench": "t",
      "meta": {},
      "runs": [
        {"key": "m/Invalidation",
         "config": {"kind": "micro", "workload": "TTS",
                    "technique": "Invalidation", "cores": 4},
         "ok": true, "status": "ok",
         "metrics": {"cycles": )"
       << invCycles << R"(, "llc_sync_accesses": 33, "flit_hops": 478},
         "contention": [
           {"addr": "0x40000040", "symbol": "lock0", "cycles": 2772,
            "invalidations": 17, "reacquires": 6, "spin_rereads": 0,
            "backoff_iters": 10, "parks": 0, "wakes": 0,
            "wake_evictions": 0, "park_ticks_p50": 0,
            "park_ticks_p95": 0, "park_ticks_p99": 0}]},
        {"key": "m/CB-One",
         "config": {"kind": "micro", "workload": "TTS",
                    "technique": "CB-One", "cores": 4},
         "ok": )"
       << (cbOk ? "true" : "false") << R"(,
         "status": ")" << (cbOk ? "ok" : "timeout") << R"(",
         "metrics": {"cycles": 6162, "llc_sync_accesses": 29,
                     "flit_hops": 140}}
      ]})";
    std::string err;
    JsonValue v = JsonValue::parse(os.str(), err);
    EXPECT_TRUE(err.empty()) << err;
    return v;
}

TEST(Report, RendersFigureTablesAndContention)
{
    std::ostringstream os;
    ASSERT_TRUE(renderFigureTables(sampleArtifact(7016, true), os));
    const std::string tables = os.str();
    EXPECT_NE(tables.find("schema v4"), std::string::npos);
    EXPECT_NE(tables.find("Invalidation"), std::string::npos);
    EXPECT_NE(tables.find("CB-One"), std::string::npos);
    EXPECT_NE(tables.find("7016"), std::string::npos);

    std::ostringstream cs;
    ASSERT_TRUE(renderContention(sampleArtifact(7016, true), cs, 10));
    EXPECT_NE(cs.str().find("lock0"), std::string::npos);
    EXPECT_NE(cs.str().find("2772"), std::string::npos);

    // Not-an-artifact input is rejected, not rendered.
    std::string err;
    std::ostringstream bad;
    EXPECT_FALSE(renderFigureTables(JsonValue::parse("{}", err), bad));
}

TEST(Report, DiffFlagsRegressionsImprovementsAndFailures)
{
    // +11% cycles on one run: a regression at the default 2% threshold.
    const DiffResult worse =
        diffArtifacts(sampleArtifact(7016, true),
                      sampleArtifact(7800, true), 0.02);
    ASSERT_EQ(worse.regressions.size(), 1u);
    EXPECT_NE(worse.regressions[0].find("cycles"), std::string::npos);
    EXPECT_NE(worse.regressions[0].find("7016 -> 7800"),
              std::string::npos);
    EXPECT_FALSE(worse.ok());

    // The same delta under a 20% threshold passes.
    EXPECT_TRUE(diffArtifacts(sampleArtifact(7016, true),
                              sampleArtifact(7800, true), 0.20)
                    .ok());

    // Improvements are informational, never failures.
    const DiffResult better = diffArtifacts(
        sampleArtifact(7800, true), sampleArtifact(7016, true), 0.02);
    EXPECT_TRUE(better.ok());
    ASSERT_EQ(better.improvements.size(), 1u);

    // A run flipping ok -> failed is always a regression.
    const DiffResult broke = diffArtifacts(sampleArtifact(7016, true),
                                           sampleArtifact(7016, false),
                                           0.02);
    ASSERT_EQ(broke.regressions.size(), 1u);
    EXPECT_NE(broke.regressions[0].find("timeout"), std::string::npos);

    // Identical artifacts diff clean.
    EXPECT_TRUE(diffArtifacts(sampleArtifact(7016, true),
                              sampleArtifact(7016, true), 0.02)
                    .ok());
}

/** A schema-v5 artifact whose CB-One run crashed and was quarantined. */
JsonValue
partialArtifact()
{
    std::string err;
    JsonValue v = JsonValue::parse(R"({
      "schema_version": 5, "generator": "cbsim", "bench": "t",
      "meta": {},
      "runs": [
        {"key": "m/Invalidation",
         "config": {"kind": "micro", "workload": "TTS",
                    "technique": "Invalidation", "cores": 4},
         "ok": true, "status": "ok", "attempts": 1,
         "quarantined": false,
         "metrics": {"cycles": 7016, "llc_sync_accesses": 33,
                     "flit_hops": 478}},
        {"key": "m/CB-One",
         "config": {"kind": "micro", "workload": "TTS",
                    "technique": "CB-One", "cores": 4},
         "ok": false, "status": "crashed", "attempts": 2,
         "quarantined": true,
         "error": "job 'm/CB-One' crashed: killed by SIGKILL"}
      ]})",
                                   err);
    EXPECT_TRUE(err.empty()) << err;
    return v;
}

TEST(Report, FlagsPartialArtifactsAndQuarantinedDiffs)
{
    // Rendering a partial artifact names the damage up front.
    std::ostringstream os;
    ASSERT_TRUE(renderFigureTables(partialArtifact(), os));
    EXPECT_NE(os.str().find("WARNING: partial artifact"),
              std::string::npos)
        << os.str();
    EXPECT_NE(os.str().find("quarantined"), std::string::npos);

    // A healthy artifact stays warning-free.
    std::ostringstream clean;
    ASSERT_TRUE(renderFigureTables(sampleArtifact(7016, true), clean));
    EXPECT_EQ(clean.str().find("WARNING: partial artifact"),
              std::string::npos);

    // ok -> crashed+quarantined is a regression that says so.
    const DiffResult broke =
        diffArtifacts(sampleArtifact(7016, true), partialArtifact(), 0.02);
    ASSERT_EQ(broke.regressions.size(), 1u);
    EXPECT_NE(broke.regressions[0].find("quarantined"), std::string::npos)
        << broke.regressions[0];

    // Still-quarantined cells keep failing the diff even when the old
    // artifact was already broken: quarantine is never an accepted
    // steady state.
    const DiffResult stuck =
        diffArtifacts(partialArtifact(), partialArtifact(), 0.02);
    ASSERT_EQ(stuck.regressions.size(), 1u);
    EXPECT_NE(stuck.regressions[0].find("quarantined"), std::string::npos)
        << stuck.regressions[0];
}

TEST(Report, CliExitCodes)
{
    std::ostringstream os, err;
    // Usage errors: 2.
    EXPECT_EQ(reportMain({}, os, err), 2);
    EXPECT_EQ(reportMain({"--diff", "one.json"}, os, err), 2);
    EXPECT_EQ(reportMain({"--bogus"}, os, err), 2);
    // Unreadable artifact: 2.
    EXPECT_EQ(reportMain({"/nonexistent/a.json"}, os, err), 2);
    EXPECT_EQ(
        reportMain({"--diff", "/nonexistent/a.json", "/nonexistent/b.json"},
                   os, err),
        2);
    // --help prints usage and succeeds.
    EXPECT_EQ(reportMain({"--help"}, os, err), 0);
    EXPECT_NE(os.str().find("usage:"), std::string::npos);
}

} // namespace
} // namespace cbsim
