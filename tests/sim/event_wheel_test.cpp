/**
 * @file
 * Property and regression tests for the two-level event queue (timing
 * wheel + far-heap) and the inline Event/Clocked machinery.
 *
 * The load-bearing property: for ANY schedule — including far-future
 * overflow past the wheel window and re-entrant scheduling during
 * dispatch — the queue fires events in exactly (when, scheduling
 * sequence) order, i.e. indistinguishable from a reference model that
 * stable-sorts by tick. Everything downstream (bit-exact artifacts,
 * tests/golden/smoke) rests on this.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <random>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"

namespace cbsim {
namespace {

/** Reference model: (when, seq) pairs, stable-sorted by when. */
using RefSchedule = std::vector<std::pair<Tick, std::uint64_t>>;

RefSchedule
sortedReference(RefSchedule ref)
{
    std::stable_sort(ref.begin(), ref.end(),
                     [](const auto& a, const auto& b) {
                         return a.first < b.first;
                     });
    return ref;
}

/**
 * Randomized schedules spanning the wheel window, the far-heap, and the
 * boundary between them, checked against the stable-sort reference.
 */
TEST(EventWheel, MatchesReferenceModelOnRandomSchedules)
{
    std::mt19937 rng(0xC0FFEEu); // fixed seed: deterministic test
    // Delay classes stress different paths: in-window, boundary
    // straddling wheelSize, and deep far-heap (spin-park watchdogs).
    std::uniform_int_distribution<Tick> nearDelay(0, 10);
    std::uniform_int_distribution<Tick> windowDelay(
        0, 2 * EventQueue::wheelSize);
    std::uniform_int_distribution<Tick> farDelay(50'000, 150'000);
    std::uniform_int_distribution<int> classPick(0, 9);

    for (int round = 0; round < 20; ++round) {
        EventQueue eq;
        RefSchedule ref;
        std::vector<std::pair<Tick, std::uint64_t>> fired;
        std::uint64_t seq = 0;

        auto scheduleOne = [&](Tick delay) {
            const Tick when = eq.now() + delay;
            const std::uint64_t id = seq++;
            ref.emplace_back(when, id);
            eq.schedule(delay, [&fired, &eq, when, id] {
                EXPECT_EQ(eq.now(), when);
                fired.emplace_back(when, id);
            });
        };
        auto randomDelay = [&] {
            const int c = classPick(rng);
            if (c < 6)
                return nearDelay(rng);
            if (c < 9)
                return windowDelay(rng);
            return farDelay(rng);
        };

        for (int i = 0; i < 500; ++i)
            scheduleOne(randomDelay());

        eq.run();
        EXPECT_EQ(fired, sortedReference(ref)) << "round " << round;
    }
}

/**
 * Same property with events scheduled *during dispatch* — the
 * re-entrant case where a bucket's vector can grow (and reallocate)
 * while it is being drained, and far events land mid-window.
 */
TEST(EventWheel, MatchesReferenceWithReentrantScheduling)
{
    std::mt19937 rng(0xB00Cu);
    std::uniform_int_distribution<Tick> delayPick(0, 600);
    std::uniform_int_distribution<int> fanout(0, 3);

    EventQueue eq;
    RefSchedule ref;
    std::vector<std::pair<Tick, std::uint64_t>> fired;
    std::uint64_t seq = 0;
    int budget = 2'000; // total events, so the cascade terminates

    // Declared std::function so the closure can reschedule itself; it
    // still rides the queue inline (function fits the event payload).
    std::function<void(Tick, std::uint64_t)> fire =
        [&](Tick when, std::uint64_t id) {
            EXPECT_EQ(eq.now(), when);
            fired.emplace_back(when, id);
            for (int k = fanout(rng); k > 0 && budget > 0; --k) {
                --budget;
                const Tick d =
                    fanout(rng) == 0 ? 100'000 : delayPick(rng);
                const Tick w = eq.now() + d;
                const std::uint64_t child = seq++;
                ref.emplace_back(w, child);
                eq.schedule(d, [&fire, w, child] { fire(w, child); });
            }
        };

    for (int i = 0; i < 50; ++i) {
        const Tick d = delayPick(rng);
        const std::uint64_t id = seq++;
        ref.emplace_back(d, id);
        eq.schedule(d, [&fire, d, id] { fire(d, id); });
    }
    eq.run();

    EXPECT_GT(fired.size(), 50u); // the cascade actually fanned out
    EXPECT_EQ(fired, sortedReference(ref));
}

/** Far-future events (beyond the wheel window) still interleave FIFO. */
TEST(EventWheel, FarHeapPreservesFifoAmongSameTickEvents)
{
    EventQueue eq;
    std::vector<int> order;
    const Tick far = 100'000; // well past wheelSize
    for (int i = 0; i < 8; ++i)
        eq.schedule(far, [&order, i] { order.push_back(i); });
    eq.schedule(far + EventQueue::wheelSize, [&order] {
        order.push_back(100);
    });
    eq.run();
    ASSERT_EQ(order.size(), 9u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
    EXPECT_EQ(order.back(), 100);
}

/** Wheel events scheduled after an earlier far event must not overtake
 *  it (the fixed-window rule: the window does not slide under a live
 *  wheel, so the later-scheduled event also lands in the far-heap). */
TEST(EventWheel, LaterScheduledWheelEventCannotOvertakeFarEvent)
{
    EventQueue eq;
    std::vector<int> order;
    // At t=0: A at 300 (outside the initial [0, wheelSize) window).
    eq.schedule(300, [&order] { order.push_back(1); });
    // At t=100: B at 350 — 350 is within 256 of now, but must still
    // fire after A(300).
    eq.schedule(100, [&order, &eq] {
        eq.schedule(250, [&order] { order.push_back(2); });
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

/** Clocked wake-ups interleave with ordinary events in FIFO order. */
TEST(EventWheel, ClockedTicksShareOrderingWithClosures)
{
    class Ticker : public Clocked
    {
      public:
        explicit Ticker(std::vector<int>& order) : order_(order) {}
        void tick() override { order_.push_back(7); }

      private:
        std::vector<int>& order_;
    };

    EventQueue eq;
    std::vector<int> order;
    Ticker ticker(order);
    eq.schedule(5, [&order] { order.push_back(1); });
    eq.scheduleTick(5, &ticker);
    eq.schedule(5, [&order] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 7, 2}));
}

/** The tick-budget fatal reports pending count and the head tick. */
TEST(EventWheel, TickBudgetReportsPendingAndHeadTick)
{
    EventQueue eq;
    std::function<void()> forever = [&] { eq.schedule(100, forever); };
    eq.schedule(0, forever);
    eq.schedule(40'000, [] {}); // a second pending event at blow-up time
    try {
        eq.run(10'000);
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("2 events pending"), std::string::npos) << msg;
        EXPECT_NE(msg.find("head event at tick 10100"),
                  std::string::npos)
            << msg;
    }
}

/** Moved-from events are inert; move transfers the callable. */
TEST(EventWheel, EventMoveSemantics)
{
    int fired = 0;
    Event a([&fired] { ++fired; });
    EXPECT_TRUE(static_cast<bool>(a));
    Event b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));
    EXPECT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(fired, 1);

    Event c;
    EXPECT_FALSE(static_cast<bool>(c));
    c = std::move(b);
    EXPECT_FALSE(static_cast<bool>(b));
    c();
    EXPECT_EQ(fired, 2);
}

/** Destruction of pending events releases captured resources. */
TEST(EventWheel, PendingEventsAreDestroyedWithTheQueue)
{
    auto token = std::make_shared<int>(42);
    std::weak_ptr<int> watch = token;
    {
        EventQueue eq;
        eq.schedule(10, [t = std::move(token)] { (void)*t; });
        eq.schedule(100'000, [] {}); // one in the far-heap too
        EXPECT_FALSE(watch.expired());
    }
    EXPECT_TRUE(watch.expired());
}

} // namespace
} // namespace cbsim
