/**
 * @file
 * Tests for counters, histograms, the stat registry, and geomean.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "sim/log.hh"
#include "stats/stats.hh"

namespace cbsim {
namespace {

TEST(Counter, IncrementsAndResets)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Histogram, TracksMoments)
{
    Histogram h;
    h.sample(10);
    h.sample(20);
    h.sample(30);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 60u);
    EXPECT_EQ(h.min(), 10u);
    EXPECT_EQ(h.max(), 30u);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(Histogram, EmptyIsZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(StatSet, RegistersAndReads)
{
    StatSet s;
    Counter c;
    s.add("llc.0.accesses", c);
    c.inc(7);
    EXPECT_EQ(s.counter("llc.0.accesses"), 7u);
    EXPECT_TRUE(s.hasCounter("llc.0.accesses"));
    EXPECT_FALSE(s.hasCounter("nope"));
}

TEST(StatSet, DuplicateRegistrationPanics)
{
    StatSet s;
    Counter a, b;
    s.add("x", a);
    EXPECT_THROW(s.add("x", b), PanicError);
}

TEST(StatSet, UnknownCounterIsFatal)
{
    StatSet s;
    EXPECT_THROW(s.counter("missing"), FatalError);
}

TEST(StatSet, SumByPrefix)
{
    StatSet s;
    Counter a, b, c;
    s.add("llc.0.accesses", a);
    s.add("llc.1.accesses", b);
    s.add("noc.packets", c);
    a.inc(5);
    b.inc(7);
    c.inc(100);
    EXPECT_EQ(s.sumByPrefix("llc."), 12u);
    EXPECT_EQ(s.sumByPrefix("noc."), 100u);
    EXPECT_EQ(s.sumByPrefix("zzz"), 0u);
}

TEST(StatSet, ResetAllClearsEverything)
{
    StatSet s;
    Counter c;
    Histogram h;
    s.add("c", c);
    s.add("h", h);
    c.inc(3);
    h.sample(9);
    s.resetAll();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(h.count(), 0u);
}

TEST(StatSet, DumpContainsNames)
{
    StatSet s;
    Counter c;
    s.add("my.counter", c);
    c.inc(11);
    std::ostringstream os;
    s.dump(os);
    EXPECT_NE(os.str().find("my.counter = 11"), std::string::npos);
}

TEST(Histogram, PercentileOfEmptyIsZero)
{
    Histogram h;
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

TEST(Histogram, PercentileEndpointsAreMinMax)
{
    Histogram h;
    for (std::uint64_t v : {10u, 20u, 30u, 4000u})
        h.sample(v);
    EXPECT_DOUBLE_EQ(h.percentile(0), 10.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 4000.0);
}

TEST(Histogram, PercentileIsWithinItsBucket)
{
    // Log2-bucket approximation: p must land within a factor of 2 of
    // the exact value for a uniform sample.
    Histogram h;
    for (std::uint64_t v = 1; v <= 1000; ++v)
        h.sample(v);
    const double p50 = h.percentile(50);
    EXPECT_GE(p50, 250.0);
    EXPECT_LE(p50, 1000.0);
    const double p99 = h.percentile(99);
    EXPECT_GE(p99, 500.0);
    EXPECT_LE(p99, 2000.0);
}

TEST(Histogram, TailDetectsOutliers)
{
    Histogram h;
    for (int i = 0; i < 990; ++i)
        h.sample(100);
    for (int i = 0; i < 10; ++i)
        h.sample(100000);
    EXPECT_LT(h.percentile(50), 200.0);
    EXPECT_GT(h.percentile(99.5), 50000.0);
}

TEST(Geomean, MatchesClosedForm)
{
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
    EXPECT_NEAR(geomean({3.0}), 3.0, 1e-12);
}

TEST(Geomean, EmptyIsZero)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

} // namespace
} // namespace cbsim
