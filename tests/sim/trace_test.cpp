/**
 * @file
 * Tracer tests: category gating, line filtering, sink redirection, and
 * end-to-end emission from a real simulation.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "../support/chip_helpers.hh"
#include "sim/trace.hh"

namespace cbsim {
namespace {

struct TracerFixture : ::testing::Test
{
    void SetUp() override { Tracer::instance().reset(); }
    void TearDown() override { Tracer::instance().reset(); }
};

TEST_F(TracerFixture, DisabledByDefault)
{
    std::ostringstream os;
    Tracer::instance().setSink(&os);
    CBSIM_TRACE(TraceCategory::L1, 5, 0x1000, "should not appear");
    EXPECT_TRUE(os.str().empty());
    EXPECT_EQ(Tracer::instance().eventsEmitted(), 0u);
}

TEST_F(TracerFixture, CategoryGating)
{
    std::ostringstream os;
    auto& t = Tracer::instance();
    t.setSink(&os);
    t.enable(TraceCategory::Llc);
    CBSIM_TRACE(TraceCategory::L1, 1, 0x1000, "l1 event");
    CBSIM_TRACE(TraceCategory::Llc, 2, 0x1000, "llc event");
    EXPECT_EQ(os.str().find("l1 event"), std::string::npos);
    EXPECT_NE(os.str().find("llc event"), std::string::npos);
    EXPECT_NE(os.str().find("[2]"), std::string::npos);
}

TEST_F(TracerFixture, LineFilter)
{
    std::ostringstream os;
    auto& t = Tracer::instance();
    t.setSink(&os);
    t.enableAll();
    t.setLineFilter(0x2000);
    CBSIM_TRACE(TraceCategory::L1, 1, 0x1000, "other line");
    CBSIM_TRACE(TraceCategory::L1, 2, 0x2008, "same line");
    EXPECT_EQ(os.str().find("other line"), std::string::npos);
    EXPECT_NE(os.str().find("same line"), std::string::npos);
}

TEST_F(TracerFixture, EndToEndSimulationEmitsEvents)
{
    std::ostringstream os;
    auto& t = Tracer::instance();
    t.setSink(&os);
    t.enable(TraceCategory::Llc);
    t.enable(TraceCategory::CbDir);

    Chip chip(testConfig(Technique::CbAll, 4));
    idleAll(chip);
    Assembler w;
    w.workImm(3000);
    w.movImm(1, 0x10000);
    w.stThroughImm(1, 1);
    chip.setProgram(0, w.assemble());
    Assembler s;
    s.movImm(1, 0x10000);
    s.label("spn");
    s.ldCb(2, 1);
    s.beqz(2, "spn");
    chip.setProgram(1, s.assemble());
    chip.run();

    EXPECT_NE(os.str().find("dispatch"), std::string::npos);
    EXPECT_NE(os.str().find("wake core 1"), std::string::npos);
    EXPECT_GT(t.eventsEmitted(), 3u);
}

TEST_F(TracerFixture, CategoryNames)
{
    EXPECT_STREQ(traceCategoryName(TraceCategory::CbDir), "cbdir");
    EXPECT_STREQ(traceCategoryName(TraceCategory::Noc), "noc");
}

} // namespace
} // namespace cbsim
