/**
 * @file
 * Tests for the deterministic RNG: reproducibility, bounds, and rough
 * uniformity (enough to trust workload generation).
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.hh"

namespace cbsim {
namespace {

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowRespectsBound)
{
    Rng r(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(r.below(bound), bound);
    }
}

TEST(Rng, BelowOneIsAlwaysZero)
{
    Rng r(9);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, RangeIsInclusive)
{
    Rng r(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= v == 3;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(13);
    double sum = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng r(17);
    std::vector<int> buckets(8, 0);
    const int n = 80000;
    for (int i = 0; i < n; ++i)
        ++buckets[r.below(8)];
    for (int b : buckets)
        EXPECT_NEAR(b, n / 8, n / 80);
}

TEST(Rng, JitterStaysWithinSpread)
{
    Rng r(19);
    for (int i = 0; i < 1000; ++i) {
        const auto v = r.jitter(1000, 0.25);
        EXPECT_GE(v, 750u);
        EXPECT_LE(v, 1250u);
    }
}

TEST(Rng, JitterZeroSpreadIsIdentity)
{
    Rng r(21);
    EXPECT_EQ(r.jitter(500, 0.0), 500u);
    EXPECT_EQ(r.jitter(0, 0.5), 0u);
}

TEST(Rng, JitterNeverReturnsZeroForPositiveMean)
{
    Rng r(23);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(r.jitter(2, 0.9), 1u);
}

} // namespace
} // namespace cbsim
