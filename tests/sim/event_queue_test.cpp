/**
 * @file
 * Unit tests for the discrete-event kernel: ordering, stability,
 * re-entrancy, and the tick-budget deadlock guard.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace cbsim {
namespace {

TEST(EventQueue, StartsAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.pendingEvents(), 0u);
    EXPECT_EQ(eq.executedEvents(), 0u);
}

TEST(EventQueue, ExecutesInTickOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickEventsAreFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 5)
            eq.schedule(7, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(eq.now(), 4u * 7u);
}

TEST(EventQueue, ZeroDelayRunsAtCurrentTick)
{
    EventQueue eq;
    Tick seen = maxTick;
    eq.schedule(12, [&] {
        eq.schedule(0, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 12u);
}

TEST(EventQueue, SchedulingIntoThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [&] {
        EXPECT_THROW(eq.scheduleAt(5, [] {}), PanicError);
    });
    eq.run();
}

TEST(EventQueue, TickBudgetDetectsRunaway)
{
    EventQueue eq;
    std::function<void()> forever = [&] { eq.schedule(100, forever); };
    eq.schedule(0, forever);
    EXPECT_THROW(eq.run(10'000), FatalError);
}

TEST(EventQueue, StepExecutesExactlyOneEvent)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ExecutedEventCountIsAccurate)
{
    EventQueue eq;
    for (int i = 0; i < 25; ++i)
        eq.schedule(i, [] {});
    eq.run();
    EXPECT_EQ(eq.executedEvents(), 25u);
}

} // namespace
} // namespace cbsim
