/**
 * @file
 * Tests for the bench table printer and numeric formatting.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/table.hh"
#include "sim/log.hh"

namespace cbsim {
namespace {

TEST(TablePrinter, AlignsColumnsAndPrintsRule)
{
    std::ostringstream os;
    TablePrinter t(os, {"name", "a", "b"}, 8, 6);
    t.row({"x", "1", "2"});
    const auto text = os.str();
    EXPECT_NE(text.find("name"), std::string::npos);
    EXPECT_NE(text.find("----"), std::string::npos);
    // All lines have equal width (header, rule, row).
    std::istringstream in(text);
    std::string line;
    std::getline(in, line);
    const auto w = line.size();
    std::getline(in, line);
    EXPECT_EQ(line.size(), w);
    std::getline(in, line);
    EXPECT_EQ(line.size(), w);
}

TEST(TablePrinter, ArityMismatchPanics)
{
    std::ostringstream os;
    TablePrinter t(os, {"a", "b"});
    EXPECT_THROW(t.row({"only-one"}), PanicError);
}

TEST(TablePrinter, GapEmitsBlankLine)
{
    std::ostringstream os;
    TablePrinter t(os, {"a"});
    t.gap();
    EXPECT_NE(os.str().find("\n\n"), std::string::npos);
}

TEST(Format, FixedPrecision)
{
    EXPECT_EQ(fmt(1.23456, 2), "1.23");
    EXPECT_EQ(fmt(2.0, 0), "2");
    EXPECT_EQ(norm(0.5), "0.500");
    EXPECT_EQ(norm(1.0), "1.000");
}

} // namespace
} // namespace cbsim
