/**
 * @file
 * Tests for the bench table printer and numeric formatting.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/table.hh"
#include "sim/log.hh"

namespace cbsim {
namespace {

TEST(TablePrinter, AlignsColumnsAndPrintsRule)
{
    std::ostringstream os;
    TablePrinter t(os, {"name", "a", "b"}, 8, 6);
    t.row({"x", "1", "2"});
    const auto text = os.str();
    EXPECT_NE(text.find("name"), std::string::npos);
    EXPECT_NE(text.find("----"), std::string::npos);
    // All lines have equal width (header, rule, row).
    std::istringstream in(text);
    std::string line;
    std::getline(in, line);
    const auto w = line.size();
    std::getline(in, line);
    EXPECT_EQ(line.size(), w);
    std::getline(in, line);
    EXPECT_EQ(line.size(), w);
}

TEST(TablePrinter, ArityMismatchPanics)
{
    std::ostringstream os;
    TablePrinter t(os, {"a", "b"});
    EXPECT_THROW(t.row({"only-one"}), PanicError);
}

TEST(TablePrinter, GapEmitsBlankLine)
{
    std::ostringstream os;
    TablePrinter t(os, {"a"});
    t.gap();
    EXPECT_NE(os.str().find("\n\n"), std::string::npos);
}

TEST(Format, FixedPrecision)
{
    EXPECT_EQ(fmt(1.23456, 2), "1.23");
    EXPECT_EQ(fmt(2.0, 0), "2");
    EXPECT_EQ(norm(0.5), "0.500");
    EXPECT_EQ(norm(1.0), "1.000");
}

TEST(TablePrinter, FirstColumnLeftRestRightAligned)
{
    std::ostringstream os;
    TablePrinter t(os, {"bench", "cycles"}, 10, 8);
    t.row({"fft", "42"});
    std::istringstream in(os.str());
    std::string header, rule, row;
    std::getline(in, header);
    std::getline(in, rule);
    std::getline(in, row);
    // "fft" flush-left in a 10-char field, "42" flush-right in 8.
    EXPECT_EQ(row.substr(0, 10), "fft       ");
    EXPECT_EQ(row.substr(10), "      42");
    EXPECT_EQ(rule, std::string(18, '-'));
}

TEST(TablePrinter, NormalizationRowsLineUpNumerically)
{
    // The bench binaries print normalized series (norm()): every value
    // lands in the same fixed format so columns stay comparable.
    std::ostringstream os;
    TablePrinter t(os, {"tech", "llc", "traffic"}, 12, 10);
    t.row({"Invalidation", norm(1.0), norm(1.0)});
    t.row({"CB-One", norm(0.127), norm(0.271)});
    const auto text = os.str();
    EXPECT_NE(text.find("1.000"), std::string::npos);
    EXPECT_NE(text.find("0.127"), std::string::npos);
    // Equal-width rows even with mixed magnitudes.
    std::istringstream in(text);
    std::string line;
    std::size_t w = 0;
    while (std::getline(in, line)) {
        if (w == 0)
            w = line.size();
        EXPECT_EQ(line.size(), w);
    }
}

TEST(TablePrinter, EmptyCellsKeepTheGridAligned)
{
    std::ostringstream os;
    TablePrinter t(os, {"name", "a", "b"}, 8, 6);
    t.row({"x", "", "2"}); // empty cell pads to the column width
    t.row({"", "1", ""});  // empty first column keeps its field too
    std::istringstream in(os.str());
    std::string line;
    std::getline(in, line); // header
    const auto w = line.size();
    std::getline(in, line); // rule
    std::getline(in, line);
    EXPECT_EQ(line.size(), w);
    // "x" left in 8, empty right in 6, "2" right in 6.
    EXPECT_EQ(line, "x" + std::string(18, ' ') + "2");
    std::getline(in, line);
    EXPECT_EQ(line.size(), w);
    // Empty first column, "1" right in 6, empty right in 6.
    EXPECT_EQ(line, std::string(13, ' ') + "1" + std::string(6, ' '));
}

TEST(TablePrinter, OversizedCellsExpandRatherThanTruncate)
{
    std::ostringstream os;
    TablePrinter t(os, {"n", "v"}, 4, 4);
    t.row({"long-name-cell", "123456"});
    const auto text = os.str();
    EXPECT_NE(text.find("long-name-cell"), std::string::npos);
    EXPECT_NE(text.find("123456"), std::string::npos);
}

} // namespace
} // namespace cbsim
