/**
 * @file
 * Tests for the experiment harness: micro-benchmarks and full workload
 * runs return sane, internally consistent metrics.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

namespace cbsim {
namespace {

TEST(SyncMicroHarness, AllMicrosRunOnAllTechniques)
{
    for (SyncMicro m :
         {SyncMicro::TtasLock, SyncMicro::ClhLock, SyncMicro::SrBarrier,
          SyncMicro::TreeBarrier, SyncMicro::SignalWait}) {
        for (Technique t : {Technique::Invalidation, Technique::BackOff10,
                            Technique::CbOne}) {
            auto r = runSyncMicro(m, t, 4, 3, 500);
            EXPECT_GT(r.run.cycles, 0u) << syncMicroName(m);
            EXPECT_GT(r.run.packets, 0u) << syncMicroName(m);
        }
    }
}

TEST(SyncMicroHarness, LockMicroCountsAcquires)
{
    auto r = runSyncMicro(SyncMicro::ClhLock, Technique::CbOne, 16, 4);
    const auto acq = static_cast<std::size_t>(SyncKind::Acquire);
    EXPECT_EQ(r.run.sync[acq].completions, 64u);
}

TEST(SyncMicroHarness, BarrierMicroCountsEpisodes)
{
    auto r = runSyncMicro(SyncMicro::TreeBarrier, Technique::BackOff5, 16,
                          5);
    const auto bar = static_cast<std::size_t>(SyncKind::Barrier);
    EXPECT_EQ(r.run.sync[bar].completions, 80u);
}

TEST(SyncMicroHarness, SignalWaitPairsBalance)
{
    auto r = runSyncMicro(SyncMicro::SignalWait, Technique::CbAll, 16, 6);
    const auto sk = static_cast<std::size_t>(SyncKind::Signal);
    const auto wk = static_cast<std::size_t>(SyncKind::Wait);
    EXPECT_EQ(r.run.sync[sk].completions, r.run.sync[wk].completions);
    EXPECT_EQ(r.run.sync[sk].completions, 48u);
}

TEST(ExperimentHarness, MetricsAreInternallyConsistent)
{
    Profile p = scaled(benchmark("fmm"), 0.2);
    p.phases = 2;
    auto r = runExperiment(p, Technique::CbOne, 16);
    EXPECT_GE(r.run.llcAccesses, r.run.llcSyncAccesses);
    EXPECT_GT(r.run.l1Accesses, 0u);
    EXPECT_GT(r.run.instructions, 0u);
    EXPECT_GT(r.energy.onChip(), 0.0);
    // Energy components derive from the same counters.
    EXPECT_DOUBLE_EQ(r.energy.llc,
                     EnergyParams{}.llcAccess *
                         static_cast<double>(r.run.llcAccesses));
}

TEST(ExperimentHarness, SyncChoicePresetsDiffer)
{
    EXPECT_EQ(SyncChoice::scalable().lock, LockAlgo::Clh);
    EXPECT_EQ(SyncChoice::scalable().barrier,
              BarrierAlgo::TreeSenseReversing);
    EXPECT_EQ(SyncChoice::naive().lock, LockAlgo::TestAndTestAndSet);
    EXPECT_EQ(SyncChoice::naive().barrier, BarrierAlgo::SenseReversing);
}

} // namespace
} // namespace cbsim
