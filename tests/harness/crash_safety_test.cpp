/**
 * @file
 * Tests for the crash-safe sweep layer (docs/ROBUSTNESS.md §Crash-safe
 * sweeps): process isolation, the result codec's byte-exact round
 * trip, the append-only journal, retry with quarantine, and the
 * harness chaos faults that provoke each recovery path on purpose.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "harness/harness_faults.hh"
#include "harness/journal.hh"
#include "harness/result_codec.hh"
#include "harness/result_sink.hh"
#include "harness/subprocess.hh"
#include "harness/sweep.hh"
#include "report/json_value.hh"
#include "sim/log.hh"

namespace cbsim {
namespace {

namespace fs = std::filesystem;

SweepJob
tinyMicro(const std::string& key, SyncMicro m, Technique t)
{
    return SweepJob::forMicro(key, m, t, 4, 2, 500);
}

/** RAII: harness faults installed for one test, cleared after. */
struct ScopedHarnessFaults
{
    explicit ScopedHarnessFaults(const HarnessFaultPlan& plan)
    {
        setHarnessFaultsForTest(
            std::make_unique<HarnessFaultInjector>(plan));
    }
    ~ScopedHarnessFaults() { setHarnessFaultsForTest(nullptr); }
};

/** Fresh scratch directory under the test's working dir. */
fs::path
scratchDir(const std::string& name)
{
    const fs::path dir = fs::path("crash_safety_scratch") / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

TEST(ResultCodec, ChildPayloadRoundTripsToIdenticalRow)
{
    // The byte-identity hinge: a result that crossed the --isolate
    // pipe must serialize to the exact same artifact row as the
    // in-process original.
    SweepRunner runner(1);
    runner.add(tinyMicro("codec/cell", SyncMicro::ClhLock,
                         Technique::CbOne));
    const auto outcomes = runner.run();
    ASSERT_TRUE(outcomes[0].ok) << outcomes[0].error;

    const std::string payload = serializeChildPayload(outcomes[0]);
    JobOutcome parsed;
    ASSERT_TRUE(parseChildPayload(payload, parsed));
    parsed.attempts = outcomes[0].attempts;

    EXPECT_EQ(serializeRunRow(runner.job(0), outcomes[0]),
              serializeRunRow(runner.job(0), parsed));
    // And the payload itself is a fixed point of the codec.
    EXPECT_EQ(serializeChildPayload(parsed), payload);
}

TEST(ResultCodec, JobConfigHashSeparatesConfigsAndSweeps)
{
    const SweepJob a = tinyMicro("cell", SyncMicro::ClhLock,
                                 Technique::CbOne);
    const SweepJob b = tinyMicro("cell", SyncMicro::ClhLock,
                                 Technique::CbAll);
    EXPECT_NE(jobConfigHash(a, 5, "cores=4"), jobConfigHash(b, 5, "cores=4"));
    // Same cell, different schema or sweep sizing: a journal from one
    // must never satisfy the other.
    EXPECT_NE(jobConfigHash(a, 5, "cores=4"), jobConfigHash(a, 4, "cores=4"));
    EXPECT_NE(jobConfigHash(a, 5, "cores=4"),
              jobConfigHash(a, 5, "cores=64"));
    EXPECT_EQ(jobConfigHash(a, 5, "cores=4"), jobConfigHash(a, 5, "cores=4"));
}

TEST(Isolation, IsolatedSweepMatchesInlineByteForByte)
{
    const auto sweep = [](bool isolate) {
        SweepRunner runner(2);
        runner.setIsolate(isolate);
        runner.add(tinyMicro("iso/a", SyncMicro::TtasLock,
                             Technique::Invalidation));
        runner.add(tinyMicro("iso/b", SyncMicro::ClhLock,
                             Technique::CbOne));
        runner.add(tinyMicro("iso/c", SyncMicro::TreeBarrier,
                             Technique::CbAll));
        const auto outcomes = runner.run();
        ResultSink sink("isolation_test");
        for (std::size_t i = 0; i < outcomes.size(); ++i)
            sink.add(runner.job(i), outcomes[i]);
        return sink.toJson();
    };
    const std::string inline_json = sweep(false);
    const std::string isolated_json = sweep(true);
    EXPECT_GT(inline_json.size(), 0u);
    EXPECT_EQ(inline_json, isolated_json);
}

TEST(Isolation, CrashingCellBecomesACrashedRowWithoutKillingSiblings)
{
    SweepRunner runner(1);
    runner.setIsolate(true);
    runner.add(tinyMicro("ok-before", SyncMicro::ClhLock,
                         Technique::CbOne));
    runner.add(SweepJob::custom("hard-crash", [] {
        std::raise(SIGKILL); // stands in for a segfault / OOM kill
        return ExperimentResult();
    }));
    runner.add(tinyMicro("ok-after", SyncMicro::TreeBarrier,
                         Technique::Invalidation));

    const auto outcomes = runner.run();
    ASSERT_EQ(outcomes.size(), 3u);
    EXPECT_TRUE(outcomes[0].ok) << outcomes[0].error;
    EXPECT_FALSE(outcomes[1].ok);
    EXPECT_EQ(outcomes[1].status, JobStatus::Crashed);
    EXPECT_NE(outcomes[1].error.find("SIGKILL"), std::string::npos)
        << outcomes[1].error;
    EXPECT_NE(outcomes[1].error.find("hard-crash"), std::string::npos)
        << outcomes[1].error;
    EXPECT_TRUE(outcomes[2].ok) << outcomes[2].error;

    ResultSink sink("crash_test");
    for (std::size_t i = 0; i < outcomes.size(); ++i)
        sink.add(runner.job(i), outcomes[i]);
    EXPECT_NE(sink.toJson().find("\"status\": \"crashed\""),
              std::string::npos);
}

TEST(Isolation, ChildFatalIsClassifiedInTheChild)
{
    // A failure the child can catch (fatal()) must come back as a
    // plain failed row — identical to what the inline path reports.
    SweepJob bad = SweepJob::custom("iso-fatal", []() -> ExperimentResult {
        fatal("deliberate failure inside the child");
    });
    SweepRunner runner(1);
    runner.setIsolate(true);
    runner.add(bad);
    const auto outcomes = runner.run();
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes[0].status, JobStatus::Failed);
    EXPECT_NE(outcomes[0].error.find("deliberate failure"),
              std::string::npos)
        << outcomes[0].error;
}

TEST(Isolation, WedgedChildTripsTheParentSideBackstop)
{
    // A child that stops polling its watchdog entirely: the parent's
    // hard backstop must SIGKILL it and report a timeout row.
    SweepJob wedged = SweepJob::custom("iso-wedged", [] {
        std::this_thread::sleep_for(std::chrono::seconds(30));
        return ExperimentResult();
    });
    const JobOutcome out =
        runJobIsolated(wedged, DebugConfig::current(), 0.2, false);
    EXPECT_FALSE(out.ok);
    EXPECT_EQ(out.status, JobStatus::TimedOut);
    EXPECT_NE(out.error.find("hard timeout"), std::string::npos)
        << out.error;
    EXPECT_NE(out.error.find("iso-wedged"), std::string::npos);
}

TEST(ResultSink, WriteFilePublishesAtomicallyAndLeavesNoTemp)
{
    const fs::path dir = scratchDir("sink");
    const std::string path = (dir / "nested" / "out.json").string();

    SweepRunner runner(1);
    runner.add(tinyMicro("sink/cell", SyncMicro::TtasLock,
                         Technique::CbOne));
    const auto outcomes = runner.run();
    ASSERT_TRUE(outcomes[0].ok);

    ResultSink sink("writefile_test");
    sink.add(runner.job(0), outcomes[0]);
    sink.writeFile(path);

    std::ifstream is(path);
    std::ostringstream buf;
    buf << is.rdbuf();
    EXPECT_EQ(buf.str(), sink.toJson());
    EXPECT_FALSE(fs::exists(path + ".tmp")); // renamed, not copied

    // Re-publish over the existing artifact: still atomic, same bytes.
    sink.writeFile(path);
    std::ifstream is2(path);
    std::ostringstream buf2;
    buf2 << is2.rdbuf();
    EXPECT_EQ(buf2.str(), sink.toJson());
    fs::remove_all("crash_safety_scratch");
}

TEST(Chaos, KillChildFaultCrashesExactlyTheNthCell)
{
    HarnessFaultPlan plan;
    plan.killChildAt = 2;
    ScopedHarnessFaults faults(plan);

    SweepRunner runner(1);
    runner.setIsolate(true);
    runner.add(tinyMicro("chaos/a", SyncMicro::TtasLock,
                         Technique::CbOne));
    runner.add(tinyMicro("chaos/b", SyncMicro::ClhLock,
                         Technique::CbAll));
    runner.add(tinyMicro("chaos/c", SyncMicro::SrBarrier,
                         Technique::Invalidation));
    const auto outcomes = runner.run();
    ASSERT_EQ(outcomes.size(), 3u);
    EXPECT_TRUE(outcomes[0].ok);
    EXPECT_EQ(outcomes[1].status, JobStatus::Crashed);
    EXPECT_TRUE(outcomes[2].ok);
}

TEST(Retry, TransientFailureIsHealedByOneRetry)
{
    HarnessFaultPlan plan;
    plan.transientOnce = true;
    ScopedHarnessFaults faults(plan);

    SweepRunner runner(1);
    runner.setRetries(1);
    runner.add(tinyMicro("retry/cell", SyncMicro::ClhLock,
                         Technique::CbOne));
    const auto outcomes = runner.run();
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_TRUE(outcomes[0].ok) << outcomes[0].error;
    EXPECT_EQ(outcomes[0].attempts, 2u);
}

TEST(Retry, WithoutRetriesTheTransientFailureSticks)
{
    HarnessFaultPlan plan;
    plan.transientOnce = true;
    ScopedHarnessFaults faults(plan);

    SweepRunner runner(1);
    runner.add(tinyMicro("retry/none", SyncMicro::ClhLock,
                         Technique::CbOne));
    const auto outcomes = runner.run();
    EXPECT_FALSE(outcomes[0].ok);
    EXPECT_EQ(outcomes[0].attempts, 1u);
    EXPECT_NE(outcomes[0].error.find("transient"), std::string::npos);
}

TEST(Retry, ExhaustedRetriesQuarantineTheCell)
{
    const fs::path qdir = scratchDir("quarantine");
    SweepJob bad = SweepJob::custom("quar/always-fails",
                                    []() -> ExperimentResult {
                                        fatal("fails every attempt");
                                    });
    SweepRunner runner(1);
    runner.setRetries(1);
    runner.setQuarantineDir(qdir.string());
    runner.setRerunPrefix("./build/bench/bench_all --smoke");
    runner.add(bad);
    runner.add(tinyMicro("quar/fine", SyncMicro::TtasLock,
                         Technique::CbOne));
    const auto outcomes = runner.run();

    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_FALSE(outcomes[0].ok);
    EXPECT_EQ(outcomes[0].attempts, 2u);
    EXPECT_TRUE(outcomes[0].quarantined);
    EXPECT_TRUE(outcomes[1].ok);
    EXPECT_FALSE(outcomes[1].quarantined);

    // The bundle is self-contained: config, and the exact re-run line.
    // (The directory name is the sanitized key plus a hash suffix —
    // forensics::sanitizeLabel — so locate it by scanning.)
    fs::path bundle;
    for (const auto& entry : fs::directory_iterator(qdir))
        if (entry.is_directory())
            bundle = entry.path();
    ASSERT_FALSE(bundle.empty());
    EXPECT_NE(bundle.filename().string().find("quar_always-fails"),
              std::string::npos);
    EXPECT_TRUE(fs::exists(bundle / "job.json"));
    EXPECT_TRUE(fs::exists(bundle / "rerun.txt"));
    std::ifstream rerun(bundle / "rerun.txt");
    std::string line;
    std::getline(rerun, line);
    EXPECT_NE(line.find("--only-key 'quar/always-fails'"),
              std::string::npos)
        << line;
    std::string jerr;
    const JsonValue job_doc =
        JsonValue::parseFile((bundle / "job.json").string(), jerr);
    EXPECT_TRUE(jerr.empty()) << jerr;
    EXPECT_EQ(job_doc.getString("key"), "quar/always-fails");
    EXPECT_EQ(job_doc.getString("status"), "failed");

    // The artifact row advertises the quarantine.
    ResultSink sink("quarantine_test");
    for (std::size_t i = 0; i < outcomes.size(); ++i)
        sink.add(runner.job(i), outcomes[i]);
    EXPECT_NE(sink.toJson().find("\"quarantined\": true"),
              std::string::npos);
    fs::remove_all("crash_safety_scratch");
}

TEST(Journal, AppendLoadRoundTripAndTornTailTolerance)
{
    const fs::path dir = scratchDir("journal");
    const std::string path = (dir / "mod.json.journal").string();
    {
        ResultJournal journal(path);
        EXPECT_TRUE(journal.append("00aa", "{\n  \"key\": \"a\"\n}"));
        EXPECT_TRUE(journal.append("00bb", "{\n  \"key\": \"b\"\n}"));
        EXPECT_FALSE(journal.degraded());
    }
    // Simulate the line being written at SIGKILL time: a torn tail.
    {
        std::ofstream os(path, std::ios::app);
        os << "{\"cell\": \"00cc\", \"row\": \"{\\n  \"tr";
    }
    const auto entries = ResultJournal::load(path);
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].cell, "00aa");
    EXPECT_EQ(entries[0].row, "{\n  \"key\": \"a\"\n}");
    EXPECT_EQ(entries[1].cell, "00bb");

    ResultJournal::removeFile(path);
    EXPECT_FALSE(fs::exists(path));
    EXPECT_TRUE(ResultJournal::load(path).empty());
    fs::remove_all("crash_safety_scratch");
}

TEST(Chaos, JournalEioFaultDegradesTheJournalNotTheSweep)
{
    HarnessFaultPlan plan;
    plan.journalEioAt = 2;
    ScopedHarnessFaults faults(plan);

    const fs::path dir = scratchDir("journal_eio");
    ResultJournal journal((dir / "mod.json.journal").string());
    EXPECT_TRUE(journal.append("00aa", "{}"));
    EXPECT_FALSE(journal.append("00bb", "{}")); // injected EIO
    EXPECT_TRUE(journal.degraded());
    EXPECT_FALSE(journal.append("00cc", "{}")); // stays degraded

    // Only the first line survives — and load still reads it.
    const auto entries = ResultJournal::load(journal.path());
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].cell, "00aa");
    fs::remove_all("crash_safety_scratch");
}

TEST(Chaos, FaultPlanParserAcceptsSitesAndRejectsGarbage)
{
    std::string error;
    HarnessFaultPlan plan = HarnessFaultPlan::parse(
        "kill-child@3,journal-eio@1,sweep-kill@7,transient-once", error);
    EXPECT_TRUE(error.empty()) << error;
    EXPECT_EQ(plan.killChildAt, 3u);
    EXPECT_EQ(plan.journalEioAt, 1u);
    EXPECT_EQ(plan.sweepKillAt, 7u);
    EXPECT_TRUE(plan.transientOnce);

    HarnessFaultPlan::parse("kill-child", error); // needs @N
    EXPECT_FALSE(error.empty());
    HarnessFaultPlan::parse("transient-once@2", error); // takes no @N
    EXPECT_FALSE(error.empty());
    HarnessFaultPlan::parse("kill-child@0", error); // 1-based
    EXPECT_FALSE(error.empty());
    HarnessFaultPlan::parse("made-up-site@1", error);
    EXPECT_FALSE(error.empty());
}

TEST(ResultSink, ReplayedRowIsSplicedVerbatim)
{
    // Two sinks over the same cell: one fresh, one replaying the
    // fresh sink's serialized row — the artifacts must match exactly.
    SweepRunner runner(1);
    runner.add(tinyMicro("replay/cell", SyncMicro::TtasLock,
                         Technique::CbOne));
    const auto outcomes = runner.run();
    ASSERT_TRUE(outcomes[0].ok);
    const std::string row = serializeRunRow(runner.job(0), outcomes[0]);

    ResultSink fresh("replay_test");
    fresh.meta("cores", "4");
    fresh.add(runner.job(0), outcomes[0]);

    std::string parse_error;
    const JsonValue row_doc = JsonValue::parse(row, parse_error);
    ASSERT_TRUE(parse_error.empty()) << parse_error;
    JobOutcome replayed;
    replayed.ok = true;
    replayed.status = JobStatus::Ok;
    replayed.result = parseRowResult(row_doc);

    ResultSink resumed("replay_test");
    resumed.meta("cores", "4");
    resumed.addReplayed(runner.job(0), row, replayed);

    EXPECT_EQ(fresh.toJson(), resumed.toJson());
    EXPECT_TRUE(resumed.allOk());
}

} // namespace
} // namespace cbsim
