/**
 * @file
 * Tests for metric extraction (RunResult) and chip configuration.
 */

#include <gtest/gtest.h>

#include "system/chip_config.hh"
#include "system/run_result.hh"

namespace cbsim {
namespace {

TEST(RunResultSums, SumWhereMatchesPrefixAndSuffix)
{
    StatSet stats;
    Counter a, b, c, d;
    stats.add("llc.0.accesses", a);
    stats.add("llc.1.accesses", b);
    stats.add("llc.0.sync_accesses", c);
    stats.add("l1.0.accesses", d);
    a.inc(5);
    b.inc(7);
    c.inc(100);
    d.inc(1000);
    // Strict suffix match: "sync_accesses" must NOT count as
    // ".accesses" (they are separate metrics).
    EXPECT_EQ(RunResult::sumWhere(stats, "llc.", ".accesses"), 12u);
    EXPECT_EQ(RunResult::sumWhere(stats, "llc.", ".sync_accesses"), 100u);
    EXPECT_EQ(RunResult::sumWhere(stats, "l1.", ".accesses"), 1000u);
    EXPECT_EQ(RunResult::sumWhere(stats, "zz.", ".accesses"), 0u);
}

TEST(ChipConfig, Table2Defaults)
{
    ChipConfig cfg;
    EXPECT_EQ(cfg.l1.sizeBytes, 32u * 1024);
    EXPECT_EQ(cfg.l1.ways, 4u);
    EXPECT_EQ(cfg.llcBank.sizeBytes, 256u * 1024);
    EXPECT_EQ(cfg.llcBank.ways, 16u);
    EXPECT_EQ(cfg.llc.tagLatency, 6u);
    EXPECT_EQ(cfg.llc.dataLatency, 12u);
    EXPECT_EQ(cfg.memLatency, 160u);
    EXPECT_EQ(cfg.cbEntriesPerBank, 4u);
    EXPECT_EQ(cfg.noc.flitBytes, 16u);
    EXPECT_EQ(cfg.noc.switchLatency, 6u);
    EXPECT_EQ(cfg.noc.width, 8u);
    EXPECT_EQ(cfg.noc.height, 8u);
}

TEST(ChipConfig, TechniqueMapping)
{
    auto inval = ChipConfig::forTechnique(Technique::Invalidation, 64);
    EXPECT_EQ(inval.protocol, ProtocolKind::Mesi);
    EXPECT_FALSE(inval.backoff.enabled);
    EXPECT_GT(inval.backoff.pauseDelay, 0u);

    auto b10 = ChipConfig::forTechnique(Technique::BackOff10, 64);
    EXPECT_EQ(b10.protocol, ProtocolKind::Vips);
    EXPECT_TRUE(b10.backoff.enabled);
    EXPECT_EQ(b10.backoff.maxExponent, 10u);

    auto b0 = ChipConfig::forTechnique(Technique::BackOff0, 64);
    EXPECT_FALSE(b0.backoff.enabled);

    auto cb = ChipConfig::forTechnique(Technique::CbOne, 64);
    EXPECT_EQ(cb.protocol, ProtocolKind::Vips);
    EXPECT_FALSE(cb.backoff.enabled);
}

TEST(ChipConfig, MeshSizedToCores)
{
    auto c16 = ChipConfig::forTechnique(Technique::CbAll, 16);
    EXPECT_EQ(c16.noc.width, 4u);
    EXPECT_EQ(c16.noc.height, 4u);
    c16.validate();
    EXPECT_THROW(ChipConfig::forTechnique(Technique::CbAll, 12),
                 FatalError);
}

TEST(ChipConfig, ValidationCatchesBadConfigs)
{
    ChipConfig cfg = ChipConfig::forTechnique(Technique::CbAll, 16);
    cfg.numCores = 65;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg = ChipConfig::forTechnique(Technique::CbAll, 16);
    cfg.cbEntriesPerBank = 0;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg = ChipConfig::forTechnique(Technique::CbAll, 16);
    cfg.noc.width = 3;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(ChipConfig, TechniqueNamesMatchThePaper)
{
    EXPECT_STREQ(techniqueName(Technique::Invalidation), "Invalidation");
    EXPECT_STREQ(techniqueName(Technique::BackOff10), "BackOff-10");
    EXPECT_STREQ(techniqueName(Technique::CbAll), "CB-All");
    EXPECT_STREQ(techniqueName(Technique::CbOne), "CB-One");
    EXPECT_EQ(std::size(allTechniques), 7u);
}

} // namespace
} // namespace cbsim
