/**
 * @file
 * Tests for the parallel sweep runner and the structured results layer:
 * submission-order collection, scheduling-independent (byte-identical)
 * JSON, and failure isolation — a job that trips the mutual-exclusion
 * invariant must report a failed outcome without affecting siblings.
 */

#include <gtest/gtest.h>

#include <atomic>

#include "debug/debug_config.hh"
#include "harness/result_sink.hh"
#include "harness/sweep.hh"
#include "sync/locks.hh"

namespace cbsim {
namespace {

/** A tiny but real micro job (4 cores, 2 iterations). */
SweepJob
tinyMicro(const std::string& key, SyncMicro m, Technique t)
{
    return SweepJob::forMicro(key, m, t, 4, 2, 500);
}

std::vector<SweepJob>
mixedJobList()
{
    std::vector<SweepJob> jobs;
    jobs.push_back(tinyMicro("a", SyncMicro::TtasLock,
                             Technique::Invalidation));
    jobs.push_back(tinyMicro("b", SyncMicro::ClhLock, Technique::CbOne));
    jobs.push_back(tinyMicro("c", SyncMicro::TreeBarrier,
                             Technique::BackOff10));
    jobs.push_back(tinyMicro("d", SyncMicro::SignalWait,
                             Technique::CbAll));
    Profile p = scaled(benchmark("fft"), 0.1);
    p.phases = 1;
    jobs.push_back(SweepJob::forProfile("e", p, Technique::CbOne, 4));
    jobs.push_back(tinyMicro("f", SyncMicro::SrBarrier,
                             Technique::BackOff5));
    jobs.push_back(tinyMicro("g", SyncMicro::TtasLock, Technique::CbAll));
    jobs.push_back(tinyMicro("h", SyncMicro::ClhLock,
                             Technique::BackOff0));
    return jobs;
}

TEST(SweepRunner, ResultsArriveInSubmissionOrder)
{
    SweepRunner runner(4);
    const auto jobs = mixedJobList();
    for (const auto& j : jobs)
        runner.add(j);
    ASSERT_EQ(runner.jobCount(), jobs.size());

    std::atomic<unsigned> callbacks{0};
    auto outcomes = runner.run(
        [&](std::size_t, const JobOutcome&) { ++callbacks; });

    ASSERT_EQ(outcomes.size(), jobs.size());
    EXPECT_EQ(callbacks.load(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        // Outcome i belongs to submitted job i regardless of which
        // worker finished it first.
        EXPECT_EQ(runner.job(i).key, jobs[i].key);
        EXPECT_TRUE(outcomes[i].ok) << jobs[i].key << ": "
                                    << outcomes[i].error;
        EXPECT_GT(outcomes[i].result.run.cycles, 0u) << jobs[i].key;
    }
}

/** Run the same job list with @p workers threads and serialize. */
std::string
sweepJson(unsigned workers)
{
    SweepRunner runner(workers);
    const auto jobs = mixedJobList();
    for (const auto& j : jobs)
        runner.add(j);
    const auto outcomes = runner.run();

    ResultSink sink("determinism_test");
    sink.meta("cores", "4");
    for (std::size_t i = 0; i < jobs.size(); ++i)
        sink.add(runner.job(i), outcomes[i]);
    return sink.toJson();
}

TEST(SweepRunner, ParallelJsonIsByteIdenticalToSerial)
{
    const std::string serial = sweepJson(1);
    const std::string parallel = sweepJson(4);
    EXPECT_GT(serial.size(), 0u);
    EXPECT_EQ(serial, parallel);
}

/**
 * A job whose run genuinely trips the mutual-exclusion invariant check:
 * the guard word is never incremented, but the workload claims it must
 * end at cores * iterations, so finishExperiment() fatal()s.
 */
ExperimentResult
runGuardViolation()
{
    constexpr unsigned cores = 4;
    ChipConfig cfg = ChipConfig::forTechnique(Technique::CbOne, cores);

    WorkloadBuild w;
    w.locks.push_back(
        makeLock(w.layout, LockAlgo::TestAndTestAndSet, cores));
    const Addr guard = w.layout.allocLine();
    w.layout.init(guard, 0);
    w.guardWords.push_back(guard);
    w.expectedGuardCounts.push_back(cores); // never incremented: trips

    Chip chip(cfg);
    w.layout.apply(chip.dataStore());
    for (CoreId t = 0; t < cores; ++t) {
        Assembler a;
        a.workImm(20);
        a.done();
        chip.setProgram(t, a.assemble());
        w.programs.push_back(Program{});
    }
    return finishExperiment(chip, std::move(w), true);
}

TEST(SweepRunner, FailedJobIsIsolatedFromSiblings)
{
    SweepRunner runner(4);
    runner.add(tinyMicro("ok-before", SyncMicro::ClhLock,
                         Technique::CbOne));
    runner.add(SweepJob::custom("bad", runGuardViolation));
    runner.add(tinyMicro("ok-after", SyncMicro::TreeBarrier,
                         Technique::Invalidation));

    const auto outcomes = runner.run();
    ASSERT_EQ(outcomes.size(), 3u);

    EXPECT_TRUE(outcomes[0].ok);
    EXPECT_GT(outcomes[0].result.run.cycles, 0u);

    EXPECT_FALSE(outcomes[1].ok);
    EXPECT_NE(outcomes[1].error.find("mutual-exclusion"),
              std::string::npos)
        << outcomes[1].error;

    EXPECT_TRUE(outcomes[2].ok);
    EXPECT_GT(outcomes[2].result.run.cycles, 0u);

    // The sink records the failure without metrics and flags the sweep.
    ResultSink sink("failure_test");
    for (std::size_t i = 0; i < outcomes.size(); ++i)
        sink.add(runner.job(i), outcomes[i]);
    EXPECT_FALSE(sink.allOk());
    const std::string json = sink.toJson();
    EXPECT_NE(json.find("\"ok\": false"), std::string::npos);
    EXPECT_NE(json.find("mutual-exclusion"), std::string::npos);
}

TEST(ResultSink, EscapesAndStructuresJson)
{
    SweepJob job = tinyMicro("quote\"and\\slash", SyncMicro::TtasLock,
                             Technique::CbOne);
    JobOutcome out;
    out.ok = false;
    out.error = "line1\nline2\ttab";

    ResultSink sink("escape_test");
    sink.meta("note", "a \"quoted\" value");
    sink.add(job, out);
    const std::string json = sink.toJson();
    EXPECT_NE(json.find("\"quote\\\"and\\\\slash\""), std::string::npos);
    EXPECT_NE(json.find("line1\\nline2\\ttab"), std::string::npos);
    EXPECT_NE(json.find("\"schema_version\": 5"), std::string::npos);
    EXPECT_NE(json.find("a \\\"quoted\\\" value"), std::string::npos);
}

TEST(ResultSink, EveryRowCarriesAStatusString)
{
    SweepRunner runner(2);
    runner.add(tinyMicro("fine", SyncMicro::ClhLock, Technique::CbOne));
    runner.add(SweepJob::custom("broken", runGuardViolation));
    const auto outcomes = runner.run();

    EXPECT_EQ(outcomes[0].status, JobStatus::Ok);
    EXPECT_EQ(outcomes[1].status, JobStatus::Failed);

    ResultSink sink("status_test");
    for (std::size_t i = 0; i < outcomes.size(); ++i)
        sink.add(runner.job(i), outcomes[i]);
    const std::string json = sink.toJson();
    EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos);
    EXPECT_NE(json.find("\"status\": \"failed\""), std::string::npos);
    // Failed rows keep their error text in place of metrics.
    EXPECT_NE(json.find("\"error\""), std::string::npos);
}

TEST(SweepRunner, MaxFailuresStopsClaimingNewJobs)
{
    // One worker makes the claim order deterministic: the first job
    // burns the whole failure budget, so the rest must be skipped.
    SweepRunner runner(1);
    runner.setMaxFailures(1);
    runner.add(SweepJob::custom("bad", runGuardViolation));
    runner.add(tinyMicro("never-run-1", SyncMicro::TtasLock,
                         Technique::CbAll));
    runner.add(tinyMicro("never-run-2", SyncMicro::SrBarrier,
                         Technique::Invalidation));

    const auto outcomes = runner.run();
    ASSERT_EQ(outcomes.size(), 3u);
    EXPECT_EQ(outcomes[0].status, JobStatus::Failed);
    EXPECT_EQ(outcomes[1].status, JobStatus::Skipped);
    EXPECT_EQ(outcomes[2].status, JobStatus::Skipped);
    EXPECT_FALSE(outcomes[1].ok);
    EXPECT_NE(outcomes[1].error.find("failure budget"),
              std::string::npos)
        << outcomes[1].error;

    ResultSink sink("budget_test");
    for (std::size_t i = 0; i < outcomes.size(); ++i)
        sink.add(runner.job(i), outcomes[i]);
    EXPECT_NE(sink.toJson().find("\"status\": \"skipped\""),
              std::string::npos);
}

/** Serialize a budget-tripped sweep executed on @p workers threads. */
std::string
abortedSweepJson(unsigned workers)
{
    SweepRunner runner(workers);
    runner.setMaxFailures(2);
    runner.add(SweepJob::custom("bad-1", runGuardViolation));
    runner.add(tinyMicro("ok-1", SyncMicro::TtasLock, Technique::CbOne));
    runner.add(SweepJob::custom("bad-2", runGuardViolation));
    runner.add(tinyMicro("ok-2", SyncMicro::ClhLock,
                         Technique::Invalidation));
    runner.add(tinyMicro("ok-3", SyncMicro::TreeBarrier,
                         Technique::CbAll));
    runner.add(tinyMicro("ok-4", SyncMicro::SignalWait,
                         Technique::BackOff10));
    const auto outcomes = runner.run();

    ResultSink sink("budget_determinism_test");
    for (std::size_t i = 0; i < outcomes.size(); ++i)
        sink.add(runner.job(i), outcomes[i]);
    return sink.toJson();
}

TEST(SweepRunner, MaxFailuresSkipSetIsDeterministicAcrossWorkers)
{
    // The deterministic contract: which cells a budget-tripped sweep
    // skips depends only on submission order. With the budget at 2,
    // the walk reaches it at "bad-2" (index 2), so "ok-2".."ok-4" must
    // be skipped — even when 4 workers raced ahead and actually ran
    // them before the second failure completed.
    const std::string serial = abortedSweepJson(1);
    const std::string parallel = abortedSweepJson(4);
    EXPECT_GT(serial.size(), 0u);
    EXPECT_EQ(serial, parallel);
    EXPECT_NE(serial.find("\"status\": \"skipped\""), std::string::npos);
}

TEST(SweepRunner, FailedRowErrorNamesItsCell)
{
    // In a grid of hundreds of cells, a failed row must be
    // attributable from the artifact alone: the error text carries the
    // sweep-job key (the watchdog label already embeds it for
    // timeouts; plain failures get it prefixed).
    SweepRunner runner(1);
    runner.add(SweepJob::custom("grid/cell-under-test",
                                runGuardViolation));
    const auto outcomes = runner.run();
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_FALSE(outcomes[0].ok);
    EXPECT_NE(outcomes[0].error.find("grid/cell-under-test"),
              std::string::npos)
        << outcomes[0].error;
}

TEST(SweepRunner, JobTimeoutBecomesATimedOutRow)
{
    // The watchdog polls the wall clock every checkIntervalEvents
    // events; tighten the process default so a tiny job still polls.
    DebugConfig& defaults = DebugConfig::processDefaults();
    const DebugConfig saved = defaults;
    defaults.checkIntervalEvents = 20;

    SweepRunner runner(1);
    runner.setJobTimeoutS(1e-9); // any elapsed wall time trips
    runner.add(tinyMicro("too-slow", SyncMicro::ClhLock,
                         Technique::CbOne));
    const auto outcomes = runner.run();
    defaults = saved;

    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_FALSE(outcomes[0].ok);
    EXPECT_EQ(outcomes[0].status, JobStatus::TimedOut);
    EXPECT_NE(outcomes[0].error.find("wall-clock"), std::string::npos)
        << outcomes[0].error;

    ResultSink sink("timeout_test");
    sink.add(runner.job(0), outcomes[0]);
    EXPECT_NE(sink.toJson().find("\"status\": \"timeout\""),
              std::string::npos);
}

} // namespace
} // namespace cbsim
