/**
 * @file
 * Energy-model tests: linearity in event counts, component attribution,
 * and the Figure 22 on-chip aggregate.
 */

#include <gtest/gtest.h>

#include "energy/energy_model.hh"

namespace cbsim {
namespace {

RunResult
counts(std::uint64_t l1, std::uint64_t llc, std::uint64_t hops,
       std::uint64_t cbdir = 0, std::uint64_t mem = 0)
{
    RunResult r;
    r.l1Accesses = l1;
    r.llcAccesses = llc;
    r.flitHops = hops;
    r.cbdirAccesses = cbdir;
    r.memReads = mem;
    return r;
}

TEST(EnergyModel, ZeroEventsZeroEnergy)
{
    const auto e = computeEnergy(counts(0, 0, 0));
    EXPECT_DOUBLE_EQ(e.total(), 0.0);
}

TEST(EnergyModel, LinearInEachComponent)
{
    EnergyParams p;
    const auto e1 = computeEnergy(counts(100, 0, 0), p);
    const auto e2 = computeEnergy(counts(200, 0, 0), p);
    EXPECT_DOUBLE_EQ(e2.l1, 2 * e1.l1);
    EXPECT_DOUBLE_EQ(e1.l1, 100 * p.l1Access);

    const auto n1 = computeEnergy(counts(0, 0, 1000), p);
    EXPECT_DOUBLE_EQ(n1.network, 1000 * p.flitHop);
}

TEST(EnergyModel, OnChipExcludesMemory)
{
    const auto e = computeEnergy(counts(10, 10, 10, 10, 10));
    EXPECT_GT(e.memory, 0.0);
    EXPECT_DOUBLE_EQ(e.onChip(), e.l1 + e.llc + e.network + e.cbdir);
    EXPECT_DOUBLE_EQ(e.total(), e.onChip() + e.memory);
}

TEST(EnergyModel, DefaultsFollowThePapersRelativeWeights)
{
    // §5.4.2: the L1 is "relatively more expensive to access than the
    // LLC"; the callback directory is tiny.
    EnergyParams p;
    EXPECT_GT(p.l1Access, p.llcAccess);
    EXPECT_LT(p.cbDirAccess, 0.2 * p.llcAccess);
}

TEST(EnergyModel, MatchesHandComputedTotals)
{
    // Distinct prime weights so any cross-attribution shows up in the
    // totals rather than cancelling out.
    EnergyParams p;
    p.l1Access = 2.0;
    p.llcAccess = 3.0;
    p.cbDirAccess = 5.0;
    p.flitHop = 7.0;
    p.memAccess = 11.0;

    const auto e = computeEnergy(counts(10, 20, 30, 40, 50), p);
    EXPECT_DOUBLE_EQ(e.l1, 20.0);       // 10 * 2
    EXPECT_DOUBLE_EQ(e.llc, 60.0);      // 20 * 3
    EXPECT_DOUBLE_EQ(e.network, 210.0); // 30 * 7
    EXPECT_DOUBLE_EQ(e.cbdir, 200.0);   // 40 * 5
    EXPECT_DOUBLE_EQ(e.memory, 550.0);  // 50 * 11
    EXPECT_DOUBLE_EQ(e.onChip(), 490.0);
    EXPECT_DOUBLE_EQ(e.total(), 1040.0);
}

TEST(EnergyModel, PauseSavingsAreBlockedCyclesTimesDelta)
{
    EnergyParams p;
    p.coreActive = 0.08;
    p.corePaused = 0.03;
    RunResult r;
    r.cbBlockedCycles = 1000;
    EXPECT_DOUBLE_EQ(pauseSavings(r, p), 50.0); // 1000 * (0.08 - 0.03)

    r.cbBlockedCycles = 0;
    EXPECT_DOUBLE_EQ(pauseSavings(r, p), 0.0);
}

TEST(EnergyModel, SummaryMentionsComponents)
{
    const auto e = computeEnergy(counts(1, 1, 1));
    const auto s = e.summary();
    EXPECT_NE(s.find("l1="), std::string::npos);
    EXPECT_NE(s.find("net="), std::string::npos);
}

} // namespace
} // namespace cbsim
