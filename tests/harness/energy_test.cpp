/**
 * @file
 * Energy-model tests: linearity in event counts, component attribution,
 * and the Figure 22 on-chip aggregate.
 */

#include <gtest/gtest.h>

#include "energy/energy_model.hh"

namespace cbsim {
namespace {

RunResult
counts(std::uint64_t l1, std::uint64_t llc, std::uint64_t hops,
       std::uint64_t cbdir = 0, std::uint64_t mem = 0)
{
    RunResult r;
    r.l1Accesses = l1;
    r.llcAccesses = llc;
    r.flitHops = hops;
    r.cbdirAccesses = cbdir;
    r.memReads = mem;
    return r;
}

TEST(EnergyModel, ZeroEventsZeroEnergy)
{
    const auto e = computeEnergy(counts(0, 0, 0));
    EXPECT_DOUBLE_EQ(e.total(), 0.0);
}

TEST(EnergyModel, LinearInEachComponent)
{
    EnergyParams p;
    const auto e1 = computeEnergy(counts(100, 0, 0), p);
    const auto e2 = computeEnergy(counts(200, 0, 0), p);
    EXPECT_DOUBLE_EQ(e2.l1, 2 * e1.l1);
    EXPECT_DOUBLE_EQ(e1.l1, 100 * p.l1Access);

    const auto n1 = computeEnergy(counts(0, 0, 1000), p);
    EXPECT_DOUBLE_EQ(n1.network, 1000 * p.flitHop);
}

TEST(EnergyModel, OnChipExcludesMemory)
{
    const auto e = computeEnergy(counts(10, 10, 10, 10, 10));
    EXPECT_GT(e.memory, 0.0);
    EXPECT_DOUBLE_EQ(e.onChip(), e.l1 + e.llc + e.network + e.cbdir);
    EXPECT_DOUBLE_EQ(e.total(), e.onChip() + e.memory);
}

TEST(EnergyModel, DefaultsFollowThePapersRelativeWeights)
{
    // §5.4.2: the L1 is "relatively more expensive to access than the
    // LLC"; the callback directory is tiny.
    EnergyParams p;
    EXPECT_GT(p.l1Access, p.llcAccess);
    EXPECT_LT(p.cbDirAccess, 0.2 * p.llcAccess);
}

TEST(EnergyModel, SummaryMentionsComponents)
{
    const auto e = computeEnergy(counts(1, 1, 1));
    const auto s = e.summary();
    EXPECT_NE(s.find("l1="), std::string::npos);
    EXPECT_NE(s.find("net="), std::string::npos);
}

} // namespace
} // namespace cbsim
