/**
 * @file
 * Minimal Chrome trace-event JSON schema checker for tests.
 *
 * Parses a JSON document into a tiny DOM (no external dependency) and
 * validates the subset of the trace-event format cbsim emits
 * (docs/OBSERVABILITY.md): top-level otherData/displayTimeUnit/
 * traceEvents, per-event required fields by phase, known process ids.
 * Deliberately strict about what the exporter produces rather than
 * about what the format permits — it is a regression net for
 * src/obs/trace_export.cc, not a general validator.
 */

#ifndef CBSIM_TESTS_SUPPORT_TRACE_SCHEMA_HH
#define CBSIM_TESTS_SUPPORT_TRACE_SCHEMA_HH

#include <cctype>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace cbsim::test {

/** One parsed JSON value (number precision: double — fine for tests). */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isString() const { return kind == Kind::String; }
    bool isNumber() const { return kind == Kind::Number; }

    const JsonValue* find(const std::string& key) const
    {
        if (kind != Kind::Object)
            return nullptr;
        auto it = object.find(key);
        return it == object.end() ? nullptr : &it->second;
    }
};

/** Recursive-descent JSON parser; throws std::runtime_error on errors. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string& text) : text_(text) {}

    JsonValue parse()
    {
        const JsonValue v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after document");
        return v;
    }

  private:
    [[noreturn]] void fail(const std::string& what) const
    {
        throw std::runtime_error("json parse error at offset " +
                                 std::to_string(pos_) + ": " + what);
    }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail("unexpected end of document");
        return text_[pos_];
    }

    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consumeIf(char c)
    {
        if (pos_ < text_.size() && peek() == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    JsonValue parseValue()
    {
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return parseString();
          case 't':
          case 'f': return parseBool();
          case 'n': return parseNull();
          default: return parseNumber();
        }
    }

    JsonValue parseObject()
    {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        if (consumeIf('}'))
            return v;
        for (;;) {
            JsonValue key = parseString();
            expect(':');
            v.object.emplace(std::move(key.string), parseValue());
            if (consumeIf('}'))
                return v;
            expect(',');
        }
    }

    JsonValue parseArray()
    {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        if (consumeIf(']'))
            return v;
        for (;;) {
            v.array.push_back(parseValue());
            if (consumeIf(']'))
                return v;
            expect(',');
        }
    }

    JsonValue parseString()
    {
        expect('"');
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\') {
                if (pos_ >= text_.size())
                    fail("dangling escape");
                const char esc = text_[pos_++];
                switch (esc) {
                  case '"': c = '"'; break;
                  case '\\': c = '\\'; break;
                  case '/': c = '/'; break;
                  case 'n': c = '\n'; break;
                  case 't': c = '\t'; break;
                  case 'r': c = '\r'; break;
                  case 'b': c = '\b'; break;
                  case 'f': c = '\f'; break;
                  case 'u':
                    // Tests never need non-ASCII; keep the escape verbatim.
                    if (pos_ + 4 > text_.size())
                        fail("truncated \\u escape");
                    v.string += "\\u" + text_.substr(pos_, 4);
                    pos_ += 4;
                    continue;
                  default: fail("unknown escape");
                }
            }
            v.string += c;
        }
        if (pos_ >= text_.size())
            fail("unterminated string");
        ++pos_; // closing quote
        return v;
    }

    JsonValue parseBool()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        if (text_.compare(pos_, 4, "true") == 0) {
            v.boolean = true;
            pos_ += 4;
        } else if (text_.compare(pos_, 5, "false") == 0) {
            v.boolean = false;
            pos_ += 5;
        } else {
            fail("bad literal");
        }
        return v;
    }

    JsonValue parseNull()
    {
        if (text_.compare(pos_, 4, "null") != 0)
            fail("bad literal");
        pos_ += 4;
        return JsonValue{};
    }

    JsonValue parseNumber()
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            fail("expected a value");
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        try {
            v.number = std::stod(text_.substr(start, pos_ - start));
        } catch (const std::exception&) {
            fail("bad number");
        }
        return v;
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

inline JsonValue
parseJson(const std::string& text)
{
    return JsonParser(text).parse();
}

/**
 * Validate @p text against the cbsim trace-event schema.
 * @return violations, empty when the document conforms
 */
inline std::vector<std::string>
validateTrace(const std::string& text)
{
    std::vector<std::string> errs;
    JsonValue root;
    try {
        root = parseJson(text);
    } catch (const std::exception& e) {
        return {e.what()};
    }

    if (!root.isObject())
        return {"top level is not an object"};

    const JsonValue* other = root.find("otherData");
    if (other == nullptr || !other->isObject()) {
        errs.push_back("missing otherData object");
    } else {
        const JsonValue* schema = other->find("schema");
        if (schema == nullptr || !schema->isString() ||
            schema->string != "cbsim-trace-v1")
            errs.push_back("otherData.schema is not cbsim-trace-v1");
    }
    const JsonValue* unit = root.find("displayTimeUnit");
    if (unit == nullptr || !unit->isString())
        errs.push_back("missing displayTimeUnit string");

    const JsonValue* events = root.find("traceEvents");
    if (events == nullptr || !events->isArray())
        return [&] {
            errs.push_back("missing traceEvents array");
            return errs;
        }();

    for (std::size_t i = 0; i < events->array.size(); ++i) {
        const JsonValue& ev = events->array[i];
        const std::string at = "traceEvents[" + std::to_string(i) + "]";
        if (!ev.isObject()) {
            errs.push_back(at + " is not an object");
            continue;
        }
        const JsonValue* name = ev.find("name");
        if (name == nullptr || !name->isString() || name->string.empty())
            errs.push_back(at + " has no name");
        const JsonValue* ph = ev.find("ph");
        if (ph == nullptr || !ph->isString() || ph->string.size() != 1 ||
            std::string("MXiCbe").find(ph->string) == std::string::npos) {
            errs.push_back(at + " has a bad ph");
            continue;
        }
        const JsonValue* pid = ev.find("pid");
        if (pid == nullptr || !pid->isNumber() ||
            (pid->number != 1 && pid->number != 2 && pid->number != 3 &&
             pid->number != 4))
            errs.push_back(at + " has an unknown pid");

        const char phase = ph->string[0];
        // Only process-level metadata may omit the tid.
        const bool processMeta =
            phase == 'M' && name != nullptr && name->isString() &&
            name->string == "process_name";
        if (!processMeta && ev.find("tid") == nullptr)
            errs.push_back(at + " has no tid");
        if (phase == 'M') {
            if (name->string != "process_name" &&
                name->string != "thread_name")
                errs.push_back(at + " metadata has unexpected name");
            const JsonValue* args = ev.find("args");
            const JsonValue* label =
                args != nullptr ? args->find("name") : nullptr;
            if (label == nullptr || !label->isString())
                errs.push_back(at + " metadata lacks args.name");
            continue;
        }
        const JsonValue* ts = ev.find("ts");
        if (ts == nullptr || !ts->isNumber() || ts->number < 0)
            errs.push_back(at + " has no valid ts");
        if (phase == 'X') {
            const JsonValue* dur = ev.find("dur");
            if (dur == nullptr || !dur->isNumber() || dur->number < 0)
                errs.push_back(at + " duration slice has no dur");
        }
        if (phase == 'i') {
            const JsonValue* s = ev.find("s");
            if (s == nullptr || !s->isString())
                errs.push_back(at + " instant has no scope");
        }
        if (phase == 'C') {
            const JsonValue* args = ev.find("args");
            if (args == nullptr || !args->isObject() ||
                args->object.empty())
                errs.push_back(at + " counter has no args");
        }
        if (phase == 'b' || phase == 'e') {
            // Async contended-line slices pair on (cat, id, name).
            const JsonValue* cat = ev.find("cat");
            if (cat == nullptr || !cat->isString())
                errs.push_back(at + " async event has no cat");
            if (ev.find("id") == nullptr)
                errs.push_back(at + " async event has no id");
            if (pid != nullptr && pid->isNumber() && pid->number != 4)
                errs.push_back(at + " async event off the lines pid");
        }
    }
    return errs;
}

} // namespace cbsim::test

#endif // CBSIM_TESTS_SUPPORT_TRACE_SCHEMA_HH
