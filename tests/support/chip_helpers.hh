/**
 * @file
 * Shared helpers for full-chip protocol and sync tests: small-mesh chip
 * construction and typed access to protocol controllers.
 */

#ifndef CBSIM_TESTS_SUPPORT_CHIP_HELPERS_HH
#define CBSIM_TESTS_SUPPORT_CHIP_HELPERS_HH

#include <memory>

#include "system/chip.hh"

namespace cbsim {

/** A chip config with @p cores cores (perfect square) for a technique. */
inline ChipConfig
testConfig(Technique t, unsigned cores = 4)
{
    ChipConfig cfg = ChipConfig::forTechnique(t, cores);
    cfg.maxTicks = 50'000'000ULL; // tight deadlock guard for tests
    return cfg;
}

/** Typed accessors (fatal on protocol mismatch). */
inline MesiL1&
mesiL1(Chip& chip, CoreId i)
{
    auto* p = dynamic_cast<MesiL1*>(&chip.l1(i));
    if (!p)
        fatal("not a MESI chip");
    return *p;
}

inline VipsL1&
vipsL1(Chip& chip, CoreId i)
{
    auto* p = dynamic_cast<VipsL1*>(&chip.l1(i));
    if (!p)
        fatal("not a VIPS chip");
    return *p;
}

inline MesiLlcBank&
mesiBank(Chip& chip, BankId i)
{
    auto* p = dynamic_cast<MesiLlcBank*>(&chip.bank(i));
    if (!p)
        fatal("not a MESI chip");
    return *p;
}

inline VipsLlcBank&
vipsBank(Chip& chip, BankId i)
{
    auto* p = dynamic_cast<VipsLlcBank*>(&chip.bank(i));
    if (!p)
        fatal("not a VIPS chip");
    return *p;
}

/** An idle program for cores not participating in a test. */
inline Program
idleProgram()
{
    Assembler a;
    return a.assemble();
}

/** Fill every core with idle programs, then overwrite participants. */
inline void
idleAll(Chip& chip)
{
    for (CoreId i = 0; i < chip.config().numCores; ++i)
        chip.setProgram(i, idleProgram());
}

} // namespace cbsim

#endif // CBSIM_TESTS_SUPPORT_CHIP_HELPERS_HH
