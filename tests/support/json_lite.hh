/**
 * @file
 * Minimal JSON well-formedness checker for tests (no build deps).
 *
 * Validates the artifacts the simulator emits (results JSON, forensic
 * dumps) without pulling a JSON library into the image: a strict
 * recursive-descent pass over one JSON value. Content assertions are
 * done with plain substring checks by the callers; this only guarantees
 * the emitter produced a parseable document.
 */

#ifndef CBSIM_TESTS_SUPPORT_JSON_LITE_HH
#define CBSIM_TESTS_SUPPORT_JSON_LITE_HH

#include <cctype>
#include <cstddef>
#include <string>

namespace cbsim::jsonlite {

class Parser
{
  public:
    explicit Parser(const std::string& s) : s_(s) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    bool
    literal(const char* word)
    {
        const std::size_t n = std::char_traits<char>::length(word);
        if (s_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    string()
    {
        if (pos_ >= s_.size() || s_[pos_] != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size()) {
            const char c = s_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    return false;
                const char e = s_[pos_];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos_;
                        if (pos_ >= s_.size() ||
                            !std::isxdigit(
                                static_cast<unsigned char>(s_[pos_])))
                            return false;
                    }
                } else if (std::string("\"\\/bfnrt").find(e) ==
                           std::string::npos) {
                    return false;
                }
            }
            ++pos_;
        }
        return false; // unterminated
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (pos_ < s_.size() && s_[pos_] == '-')
            ++pos_;
        std::size_t digits = 0;
        while (pos_ < s_.size() &&
               std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
            ++pos_;
            ++digits;
        }
        if (digits == 0)
            return false;
        if (pos_ < s_.size() && s_[pos_] == '.') {
            ++pos_;
            digits = 0;
            while (pos_ < s_.size() &&
                   std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
                ++pos_;
                ++digits;
            }
            if (digits == 0)
                return false;
        }
        if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-'))
                ++pos_;
            digits = 0;
            while (pos_ < s_.size() &&
                   std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
                ++pos_;
                ++digits;
            }
            if (digits == 0)
                return false;
        }
        return pos_ > start;
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (pos_ >= s_.size() || s_[pos_] != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (pos_ >= s_.size())
                return false;
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (pos_ >= s_.size())
                return false;
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    value()
    {
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    const std::string& s_;
    std::size_t pos_ = 0;
};

/** True if @p s is exactly one well-formed JSON document. */
inline bool
wellFormed(const std::string& s)
{
    return Parser(s).valid();
}

} // namespace cbsim::jsonlite

#endif // CBSIM_TESTS_SUPPORT_JSON_LITE_HH
