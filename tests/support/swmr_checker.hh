/**
 * @file
 * Single-Writer/Multiple-Reader protocol checker for MESI chips.
 *
 * Periodically snapshots every L1's stable line states and asserts the
 * MESI invariant: a line held M or E anywhere has no other valid copy.
 * Transients are handled atomically within single events in this
 * simulator, so the checker (which runs as its own event) never
 * observes a mid-transaction state — any violation it reports is a real
 * divergence (both protocol races found during bring-up would have been
 * caught by this checker).
 */

#ifndef CBSIM_TESTS_SUPPORT_SWMR_CHECKER_HH
#define CBSIM_TESTS_SUPPORT_SWMR_CHECKER_HH

#include <map>
#include <sstream>

#include "chip_helpers.hh"

namespace cbsim {

class SwmrChecker
{
  public:
    /**
     * Arm the checker on a MESI @p chip; it re-checks every @p period
     * cycles until the chip finishes.
     */
    SwmrChecker(Chip& chip, Tick period = 500)
        : chip_(chip), period_(period)
    {
        CBSIM_ASSERT(chip.config().protocol == ProtocolKind::Mesi,
                     "SWMR checker is MESI-only");
        schedule();
    }

    std::uint64_t checksRun() const { return checks_; }
    std::uint64_t violations() const { return violations_; }
    const std::string& firstViolation() const { return firstViolation_; }

  private:
    void
    schedule()
    {
        chip_.eventQueue().schedule(period_, [this] {
            if (chip_.finishedCores() == chip_.config().numCores)
                return; // drained: stop re-arming
            checkNow();
            schedule();
        });
    }

    void
    checkNow()
    {
        ++checks_;
        struct Holders
        {
            unsigned exclusive = 0;
            unsigned total = 0;
            CoreId anExclusive = invalidCore;
        };
        std::map<Addr, Holders> lines;
        for (CoreId c = 0; c < chip_.config().numCores; ++c) {
            for (auto [addr, state] : mesiL1(chip_, c).cachedLines()) {
                auto& h = lines[addr];
                ++h.total;
                if (state == MesiState::M || state == MesiState::E) {
                    ++h.exclusive;
                    h.anExclusive = c;
                }
            }
        }
        for (const auto& [addr, h] : lines) {
            if (h.exclusive > 1 || (h.exclusive == 1 && h.total > 1)) {
                ++violations_;
                if (firstViolation_.empty()) {
                    std::ostringstream os;
                    os << "SWMR violated at tick "
                       << chip_.eventQueue().now() << ": line 0x"
                       << std::hex << addr << std::dec << " has "
                       << h.exclusive << " exclusive and " << h.total
                       << " total copies (one exclusive holder: core "
                       << h.anExclusive << ")";
                    firstViolation_ = os.str();
                }
            }
        }
    }

    Chip& chip_;
    Tick period_;
    std::uint64_t checks_ = 0;
    std::uint64_t violations_ = 0;
    std::string firstViolation_;
};

} // namespace cbsim

#endif // CBSIM_TESTS_SUPPORT_SWMR_CHECKER_HH
