/**
 * @file
 * Test double: an L1 controller that serves every request functionally
 * from a DataStore after a fixed latency, with no network or protocol.
 * Lets core/ISA tests run without building a whole chip.
 */

#ifndef CBSIM_TESTS_SUPPORT_MAGIC_L1_HH
#define CBSIM_TESTS_SUPPORT_MAGIC_L1_HH

#include <vector>

#include "coherence/controller.hh"
#include "mem/data_store.hh"

namespace cbsim {

class MagicL1 : public L1Controller
{
  public:
    MagicL1(EventQueue& eq, DataStore& data, Tick latency = 1)
        : eq_(eq), data_(data), latency_(latency)
    {
    }

    void
    access(MemRequest req) override
    {
        ops.push_back(req.op);
        Word result = 0;
        switch (req.op) {
          case MemOp::Load:
          case MemOp::LdThrough:
          case MemOp::LdCb:
            result = data_.read(req.addr);
            break;
          case MemOp::Store:
          case MemOp::StThrough:
          case MemOp::StCb1:
          case MemOp::StCb0:
            data_.write(req.addr, req.storeValue);
            break;
          case MemOp::Atomic: {
            const Word old = data_.read(req.addr);
            const auto out =
                evalAtomic(req.func, old, req.operand, req.compare);
            if (out.doWrite)
                data_.write(req.addr, out.newValue);
            result = old;
            break;
          }
        }
        eq_.schedule(latency_,
                     [cb = std::move(req.onComplete), result] {
                         cb(result);
                     });
    }

    void
    selfInvalidate(FenceCompletion done) override
    {
        ++selfInvls;
        eq_.schedule(1, std::move(done));
    }

    void
    selfDowngrade(FenceCompletion done) override
    {
        ++selfDowns;
        eq_.schedule(1, std::move(done));
    }

    void handleMessage(const Message&) override {}

    std::vector<MemOp> ops;
    int selfInvls = 0;
    int selfDowns = 0;

  private:
    EventQueue& eq_;
    DataStore& data_;
    Tick latency_;
};

} // namespace cbsim

#endif // CBSIM_TESTS_SUPPORT_MAGIC_L1_HH
