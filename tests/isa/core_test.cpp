/**
 * @file
 * Core interpreter tests against the MagicL1 test double: ALU semantics,
 * branches, loops, memory ops, work timing, fences, Record markers, and
 * back-off interaction with spin-marked loads.
 */

#include <gtest/gtest.h>

#include "../support/magic_l1.hh"
#include "core/core.hh"

namespace cbsim {
namespace {

struct CoreFixture : ::testing::Test
{
    EventQueue eq;
    DataStore data;
    SyncStats syncStats;
    MagicL1 l1{eq, data};
    bool done = false;

    std::unique_ptr<Core>
    makeCore(Program p, BackoffConfig backoff = BackoffConfig::off())
    {
        auto core = std::make_unique<Core>(0, eq, l1, backoff, syncStats,
                                           [this] { done = true; });
        core->setProgram(std::move(p));
        return core;
    }

    void
    runProgram(Core& core)
    {
        core.start();
        eq.run(10'000'000);
        ASSERT_TRUE(done);
    }
};

TEST_F(CoreFixture, AluAndBranches)
{
    Assembler a;
    a.movImm(1, 10);
    a.movImm(2, 32);
    a.add(3, 1, 2);    // r3 = 42
    a.addImm(4, 3, 8); // r4 = 50
    a.sub(5, 4, 1);    // r5 = 40
    a.notOp(6, 5);     // r6 = 0 (logical)
    a.notOp(7, 6);     // r7 = 1
    auto core = makeCore(a.assemble());
    runProgram(*core);
    EXPECT_EQ(core->reg(3), 42u);
    EXPECT_EQ(core->reg(4), 50u);
    EXPECT_EQ(core->reg(5), 40u);
    EXPECT_EQ(core->reg(6), 0u);
    EXPECT_EQ(core->reg(7), 1u);
}

TEST_F(CoreFixture, CountedLoopViaBranch)
{
    Assembler a;
    a.movImm(1, 0);  // counter
    a.movImm(2, 10); // bound
    a.label("loop");
    a.addImm(1, 1, 1);
    a.bne(1, 2, "loop");
    auto core = makeCore(a.assemble());
    runProgram(*core);
    EXPECT_EQ(core->reg(1), 10u);
}

TEST_F(CoreFixture, LoadStoreRoundTrip)
{
    Assembler a;
    a.movImm(1, 0x1000);
    a.stImm(77, 1);
    a.ld(2, 1);
    auto core = makeCore(a.assemble());
    runProgram(*core);
    EXPECT_EQ(core->reg(2), 77u);
    EXPECT_EQ(data.read(0x1000), 77u);
}

TEST_F(CoreFixture, AtomicReturnsOldValue)
{
    data.write(0x2000, 5);
    Assembler a;
    a.movImm(1, 0x2000);
    a.atomic(2, 1, 0, AtomicFunc::FetchAndAdd, 3, 0, false,
             WakePolicy::None);
    auto core = makeCore(a.assemble());
    runProgram(*core);
    EXPECT_EQ(core->reg(2), 5u);
    EXPECT_EQ(data.read(0x2000), 8u);
}

TEST_F(CoreFixture, WorkAdvancesTime)
{
    Assembler a;
    a.workImm(500);
    auto core = makeCore(a.assemble());
    runProgram(*core);
    EXPECT_GE(core->doneTick(), 500u);
    EXPECT_LT(core->doneTick(), 520u);
}

TEST_F(CoreFixture, WorkFromRegister)
{
    Assembler a;
    a.movImm(1, 300);
    a.workReg(1);
    auto core = makeCore(a.assemble());
    runProgram(*core);
    EXPECT_GE(core->doneTick(), 300u);
}

TEST_F(CoreFixture, FencesReachTheL1)
{
    Assembler a;
    a.selfDown();
    a.selfInvl();
    a.selfDown();
    auto core = makeCore(a.assemble());
    runProgram(*core);
    EXPECT_EQ(l1.selfInvls, 1);
    EXPECT_EQ(l1.selfDowns, 2);
}

TEST_F(CoreFixture, RecordSamplesLatency)
{
    Assembler a;
    a.recordStart(SyncKind::Acquire);
    a.workImm(100);
    a.recordEnd(SyncKind::Acquire);
    auto core = makeCore(a.assemble());
    runProgram(*core);
    const auto k = static_cast<std::size_t>(SyncKind::Acquire);
    EXPECT_EQ(syncStats.latency[k].count(), 1u);
    EXPECT_GE(syncStats.latency[k].mean(), 100.0);
    EXPECT_LT(syncStats.latency[k].mean(), 110.0);
}

TEST_F(CoreFixture, EffectiveAddressUsesBasePlusOffset)
{
    data.write(0x3010, 11);
    Assembler a;
    a.movImm(1, 0x3000);
    a.ld(2, 1, 0x10);
    auto core = makeCore(a.assemble());
    runProgram(*core);
    EXPECT_EQ(core->reg(2), 11u);
}

TEST_F(CoreFixture, SpinLoopWithBackoffDelaysRetries)
{
    // Spin on a flag that never changes for a while: back-off must
    // stretch the retry interval. The flag starts 0 and is set by a
    // scheduled event; the core then exits the loop.
    data.write(0x4000, 0);
    Assembler a;
    a.movImm(1, 0x4000);
    a.label("spn");
    a.ldThrough(2, 1).spin = true;
    a.beqz(2, "spn");
    auto core = makeCore(a.assemble(), BackoffConfig::capped(5, 16));
    eq.schedule(3000, [&] { data.write(0x4000, 1); });
    core->start();
    eq.run(10'000'000);
    ASSERT_TRUE(done);
    // Without back-off the loop iterates every ~3 cycles (1000 retries);
    // with cap-5 back-off (ceiling 512) it must be far fewer.
    const std::size_t retries = l1.ops.size();
    EXPECT_LT(retries, 60u);
    EXPECT_GT(retries, 5u);
}

TEST_F(CoreFixture, NoBackoffSpinsHot)
{
    data.write(0x4000, 0);
    Assembler a;
    a.movImm(1, 0x4000);
    a.label("spn");
    a.ldThrough(2, 1).spin = true;
    a.beqz(2, "spn");
    auto core = makeCore(a.assemble(), BackoffConfig::capped(0, 16));
    eq.schedule(3000, [&] { data.write(0x4000, 1); });
    core->start();
    eq.run(10'000'000);
    ASSERT_TRUE(done);
    EXPECT_GT(l1.ops.size(), 400u);
}

TEST_F(CoreFixture, RunawayAluLoopPanics)
{
    Assembler a;
    a.label("forever");
    a.movImm(1, 1);
    a.jump("forever");
    auto core = makeCore(a.assemble());
    core->start();
    EXPECT_THROW(eq.run(), PanicError);
}

TEST_F(CoreFixture, StartWithoutProgramPanics)
{
    auto core = std::make_unique<Core>(0, eq, l1, BackoffConfig::off(),
                                       syncStats, [] {});
    EXPECT_THROW(core->start(), PanicError);
}

} // namespace
} // namespace cbsim
