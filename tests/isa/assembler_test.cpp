/**
 * @file
 * Assembler tests: label resolution (forward and backward), emitted
 * instruction fields, and failure modes.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"

namespace cbsim {
namespace {

TEST(Assembler, ResolvesBackwardLabels)
{
    Assembler a;
    a.label("top");
    a.movImm(1, 5);
    a.bnez(1, "top");
    Program p = a.assemble();
    EXPECT_EQ(p.at(1).imm, 0u);
}

TEST(Assembler, ResolvesForwardLabels)
{
    Assembler a;
    a.beqz(1, "out");
    a.movImm(2, 7);
    a.label("out");
    a.done();
    Program p = a.assemble();
    EXPECT_EQ(p.at(0).imm, 2u);
}

TEST(Assembler, UndefinedLabelIsFatal)
{
    Assembler a;
    a.jump("nowhere");
    EXPECT_THROW(a.assemble(), FatalError);
}

TEST(Assembler, DuplicateLabelIsFatal)
{
    Assembler a;
    a.label("x");
    a.movImm(0, 0);
    EXPECT_THROW(a.label("x"), FatalError);
}

TEST(Assembler, AppendsDoneIfMissing)
{
    Assembler a;
    a.movImm(1, 1);
    Program p = a.assemble();
    EXPECT_EQ(p.size(), 2u);
    EXPECT_EQ(p.at(1).op, Opcode::Done);
}

TEST(Assembler, EmptyProgramGetsDone)
{
    Assembler a;
    Program p = a.assemble();
    ASSERT_EQ(p.size(), 1u);
    EXPECT_EQ(p.at(0).op, Opcode::Done);
}

TEST(Assembler, MemoryOperandsEncode)
{
    Assembler a;
    a.ld(3, 4, 16);
    a.stImm(99, 5, -8);
    Program p = a.assemble();
    EXPECT_EQ(p.at(0).op, Opcode::Ld);
    EXPECT_EQ(p.at(0).rd, 3);
    EXPECT_EQ(p.at(0).addrReg, 4);
    EXPECT_EQ(p.at(0).offset, 16);
    EXPECT_EQ(p.at(1).op, Opcode::St);
    EXPECT_TRUE(p.at(1).useImm);
    EXPECT_EQ(p.at(1).imm, 99u);
    EXPECT_EQ(p.at(1).offset, -8);
}

TEST(Assembler, RacyOpsAreSyncMarkedByDefault)
{
    Assembler a;
    a.ldThrough(1, 2);
    a.ldCb(1, 2);
    a.stThroughImm(0, 2);
    a.stCb1Imm(0, 2);
    a.stCb0Imm(0, 2);
    a.atomic(1, 2, 0, AtomicFunc::TestAndSet, 1, 0, false,
             WakePolicy::Zero);
    Program p = a.assemble();
    for (std::size_t i = 0; i < 6; ++i)
        EXPECT_TRUE(p.at(i).sync) << i;
}

TEST(Assembler, DrfOpsAreNotSyncMarked)
{
    Assembler a;
    a.ld(1, 2);
    a.stImm(0, 2);
    Program p = a.assemble();
    EXPECT_FALSE(p.at(0).sync);
    EXPECT_FALSE(p.at(1).sync);
}

TEST(Assembler, AtomicFieldsEncode)
{
    Assembler a;
    a.atomic(7, 8, 0, AtomicFunc::TestAndSet, 1, 0, true,
             WakePolicy::Zero);
    a.atomicReg(6, 8, 0, AtomicFunc::FetchAndStore, 5, 0, false,
                WakePolicy::All);
    Program p = a.assemble();
    EXPECT_EQ(p.at(0).func, AtomicFunc::TestAndSet);
    EXPECT_TRUE(p.at(0).ldCb);
    EXPECT_EQ(p.at(0).wake, WakePolicy::Zero);
    EXPECT_TRUE(p.at(0).useImm);
    EXPECT_EQ(p.at(1).func, AtomicFunc::FetchAndStore);
    EXPECT_FALSE(p.at(1).useImm);
    EXPECT_EQ(p.at(1).rs1, 5);
}

TEST(Assembler, SpinFlagIsSettable)
{
    Assembler a;
    a.ldThrough(1, 2).spin = true;
    Program p = a.assemble();
    EXPECT_TRUE(p.at(0).spin);
}

TEST(Assembler, ListingShowsOpcodes)
{
    Assembler a;
    a.movImm(1, 7);
    a.ldCb(2, 1);
    Program p = a.assemble();
    const auto text = p.listing();
    EXPECT_NE(text.find("movi"), std::string::npos);
    EXPECT_NE(text.find("ld_cb"), std::string::npos);
}

TEST(AtomicEval, TestAndSet)
{
    auto r = evalAtomic(AtomicFunc::TestAndSet, 0, 1, 0);
    EXPECT_TRUE(r.doWrite);
    EXPECT_EQ(r.newValue, 1u);
    r = evalAtomic(AtomicFunc::TestAndSet, 1, 1, 0);
    EXPECT_FALSE(r.doWrite);
}

TEST(AtomicEval, FetchAndStoreAlwaysWrites)
{
    auto r = evalAtomic(AtomicFunc::FetchAndStore, 123, 456, 0);
    EXPECT_TRUE(r.doWrite);
    EXPECT_EQ(r.newValue, 456u);
}

TEST(AtomicEval, FetchAndAdd)
{
    auto r = evalAtomic(AtomicFunc::FetchAndAdd, 10, 5, 0);
    EXPECT_TRUE(r.doWrite);
    EXPECT_EQ(r.newValue, 15u);
    // Decrement via two's-complement operand.
    r = evalAtomic(AtomicFunc::FetchAndAdd, 10, static_cast<Word>(-1), 0);
    EXPECT_EQ(r.newValue, 9u);
}

TEST(AtomicEval, TestAndDec)
{
    auto r = evalAtomic(AtomicFunc::TestAndDec, 3, 0, 0);
    EXPECT_TRUE(r.doWrite);
    EXPECT_EQ(r.newValue, 2u);
    r = evalAtomic(AtomicFunc::TestAndDec, 0, 0, 0);
    EXPECT_FALSE(r.doWrite);
}

} // namespace
} // namespace cbsim
