/**
 * @file
 * Signal/wait tests (Figures 18-19): token conservation, one-to-one and
 * one-to-many signaling, pipelines, and the callback-one optimization.
 */

#include <gtest/gtest.h>

#include "../support/chip_helpers.hh"
#include "sync/signal_wait.hh"

namespace cbsim {
namespace {

Technique
techniqueFor(SyncFlavor f)
{
    switch (f) {
      case SyncFlavor::Mesi: return Technique::Invalidation;
      case SyncFlavor::VipsBackoff: return Technique::BackOff5;
      case SyncFlavor::CbAll: return Technique::CbAll;
      case SyncFlavor::CbOne: return Technique::CbOne;
    }
    return Technique::Invalidation;
}

struct SignalWaitTest : ::testing::TestWithParam<SyncFlavor>
{
    SyncFlavor flavor = GetParam();
};

TEST_P(SignalWaitTest, OneToOneTokensAreConserved)
{
    constexpr unsigned tokens = 10;
    Chip chip(testConfig(techniqueFor(flavor), 4));
    idleAll(chip);
    SyncLayout layout;
    SignalHandle sig = makeSignal(layout);

    Assembler producer;
    for (unsigned i = 0; i < tokens; ++i) {
        producer.workImm(150 + i * 37 % 211);
        emitSignal(producer, sig, flavor);
    }
    chip.setProgram(0, producer.assemble());

    Assembler consumer;
    for (unsigned i = 0; i < tokens; ++i) {
        emitWait(consumer, sig, flavor);
        consumer.workImm(90);
    }
    chip.setProgram(1, consumer.assemble());

    layout.apply(chip.dataStore());
    auto result = chip.run();
    EXPECT_EQ(chip.dataStore().read(sig.counter), 0u);
    const auto wk = static_cast<std::size_t>(SyncKind::Wait);
    const auto sk = static_cast<std::size_t>(SyncKind::Signal);
    EXPECT_EQ(result.sync[wk].completions, tokens);
    EXPECT_EQ(result.sync[sk].completions, tokens);
}

TEST_P(SignalWaitTest, OneSignalerManyWaiters)
{
    constexpr unsigned waiters = 3;
    constexpr unsigned rounds = 5;
    Chip chip(testConfig(techniqueFor(flavor), 4));
    SyncLayout layout;
    SignalHandle sig = makeSignal(layout);

    Assembler producer;
    for (unsigned r = 0; r < rounds * waiters; ++r) {
        producer.workImm(200);
        emitSignal(producer, sig, flavor);
    }
    chip.setProgram(0, producer.assemble());

    for (CoreId t = 1; t <= waiters; ++t) {
        Assembler consumer;
        consumer.workImm(t * 13);
        for (unsigned r = 0; r < rounds; ++r) {
            emitWait(consumer, sig, flavor);
            consumer.workImm(60);
        }
        chip.setProgram(t, consumer.assemble());
    }
    layout.apply(chip.dataStore());
    chip.run();
    EXPECT_EQ(chip.dataStore().read(sig.counter), 0u);
}

TEST_P(SignalWaitTest, PipelineChainCompletes)
{
    constexpr unsigned stages = 4;
    constexpr unsigned items = 6;
    Chip chip(testConfig(techniqueFor(flavor), stages));
    SyncLayout layout;
    std::vector<SignalHandle> sig;
    for (unsigned s = 0; s < stages; ++s)
        sig.push_back(makeSignal(layout));

    for (CoreId t = 0; t < stages; ++t) {
        Assembler a;
        for (unsigned i = 0; i < items; ++i) {
            if (t > 0)
                emitWait(a, sig[t], flavor);
            a.workImm(120);
            if (t + 1 < stages)
                emitSignal(a, sig[t + 1], flavor);
        }
        chip.setProgram(t, a.assemble());
    }
    layout.apply(chip.dataStore());
    chip.run(); // termination = no lost tokens anywhere in the chain
    for (unsigned s = 1; s < stages; ++s)
        EXPECT_EQ(chip.dataStore().read(sig[s].counter), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllFlavors, SignalWaitTest,
    ::testing::Values(SyncFlavor::Mesi, SyncFlavor::VipsBackoff,
                      SyncFlavor::CbAll, SyncFlavor::CbOne),
    [](const ::testing::TestParamInfo<SyncFlavor>& info) {
        std::string name = syncFlavorName(info.param);
        for (auto& ch : name) {
            if (!isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        }
        return name;
    });

TEST(SignalWaitTraffic, CallbackWaitIsQuiet)
{
    auto run = [](Technique tech, SyncFlavor flavor) {
        Chip chip(testConfig(tech, 4));
        idleAll(chip);
        SyncLayout layout;
        SignalHandle sig = makeSignal(layout);
        Assembler p;
        p.workImm(25000); // waiter idles a long time
        emitSignal(p, sig, flavor);
        chip.setProgram(0, p.assemble());
        Assembler c;
        emitWait(c, sig, flavor);
        chip.setProgram(1, c.assemble());
        layout.apply(chip.dataStore());
        return chip.run().llcSyncAccesses;
    };
    const auto spinning = run(Technique::BackOff0,
                              SyncFlavor::VipsBackoff);
    const auto callback = run(Technique::CbOne, SyncFlavor::CbOne);
    EXPECT_GT(spinning, 10 * callback);
}

} // namespace
} // namespace cbsim
