/**
 * @file
 * Lock-algorithm tests, parameterized over (flavour x algorithm): mutual
 * exclusion under contention, sequential re-acquisition, single-thread
 * fast path, and flavour-specific traffic properties (local spinning for
 * MESI, LLC spinning for back-off, directory blocking for callbacks).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "../support/chip_helpers.hh"
#include "sync/locks.hh"

namespace cbsim {
namespace {

Technique
techniqueFor(SyncFlavor f)
{
    switch (f) {
      case SyncFlavor::Mesi: return Technique::Invalidation;
      case SyncFlavor::VipsBackoff: return Technique::BackOff5;
      case SyncFlavor::CbAll: return Technique::CbAll;
      case SyncFlavor::CbOne: return Technique::CbOne;
    }
    return Technique::Invalidation;
}

using Param = std::tuple<SyncFlavor, LockAlgo>;

struct LockTest : ::testing::TestWithParam<Param>
{
    SyncFlavor flavor = std::get<0>(GetParam());
    LockAlgo algo = std::get<1>(GetParam());

    /**
     * N threads x iters critical sections incrementing a guarded
     * counter; returns the final counter value.
     */
    Word
    contend(unsigned cores, unsigned iters, Chip** out_chip = nullptr)
    {
        static std::unique_ptr<Chip> chip; // keep alive for inspection
        chip = std::make_unique<Chip>(
            testConfig(techniqueFor(flavor), cores));
        SyncLayout layout;
        LockHandle lock = makeLock(layout, algo, cores);
        const Addr guard = layout.allocLine();
        layout.init(guard, 0);

        for (CoreId t = 0; t < cores; ++t) {
            Assembler a;
            a.workImm(17 * t % 64);
            a.movImm(2, guard);
            a.movImm(5, 0);
            a.movImm(6, iters);
            a.label("loop");
            emitAcquire(a, lock, flavor, t);
            a.ld(4, 2);
            a.addImm(4, 4, 1);
            a.st(4, 2);
            emitRelease(a, lock, flavor, t);
            a.workImm(40 + t);
            a.addImm(5, 5, 1);
            a.bne(5, 6, "loop");
            chip->setProgram(t, a.assemble());
        }
        layout.apply(chip->dataStore());
        chip->run();
        if (out_chip)
            *out_chip = chip.get();
        return chip->dataStore().read(guard);
    }
};

TEST_P(LockTest, MutualExclusionUnderContention)
{
    EXPECT_EQ(contend(4, 20), 80u);
}

TEST_P(LockTest, SixteenCoreContention)
{
    EXPECT_EQ(contend(16, 6), 96u);
}

TEST_P(LockTest, SingleThreadFastPath)
{
    EXPECT_EQ(contend(1, 10), 10u);
}

TEST_P(LockTest, SyncLatencyIsRecorded)
{
    Chip* chip = nullptr;
    contend(4, 5, &chip);
    const auto acq = static_cast<std::size_t>(SyncKind::Acquire);
    const auto rel = static_cast<std::size_t>(SyncKind::Release);
    EXPECT_EQ(chip->syncStats().latency[acq].count(), 20u);
    EXPECT_EQ(chip->syncStats().latency[rel].count(), 20u);
    EXPECT_GT(chip->syncStats().latency[acq].mean(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllFlavorsAndAlgos, LockTest,
    ::testing::Combine(::testing::Values(SyncFlavor::Mesi,
                                         SyncFlavor::VipsBackoff,
                                         SyncFlavor::CbAll,
                                         SyncFlavor::CbOne),
                       ::testing::Values(LockAlgo::TestAndSet,
                                         LockAlgo::TestAndTestAndSet,
                                         LockAlgo::Clh, LockAlgo::Ticket,
                                         LockAlgo::Mcs)),
    [](const ::testing::TestParamInfo<Param>& info) {
        std::string name = syncFlavorName(std::get<0>(info.param));
        name += "_";
        name += lockAlgoName(std::get<1>(info.param));
        for (auto& ch : name) {
            if (!isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        }
        return name;
    });

TEST(LockTraffic, CallbackLockAvoidsLlcSpinning)
{
    // Hold the lock for a long time with one waiter: BackOff-0 hammers
    // the LLC while CB-One blocks in the directory.
    auto run = [](Technique tech, SyncFlavor flavor) {
        Chip chip(testConfig(tech, 4));
        idleAll(chip);
        SyncLayout layout;
        LockHandle lock =
            makeLock(layout, LockAlgo::TestAndTestAndSet, 4);

        Assembler holder;
        emitAcquire(holder, lock, flavor, 0);
        holder.workImm(20000);
        emitRelease(holder, lock, flavor, 0);
        chip.setProgram(0, holder.assemble());

        Assembler waiter;
        waiter.workImm(500);
        emitAcquire(waiter, lock, flavor, 1);
        emitRelease(waiter, lock, flavor, 1);
        chip.setProgram(1, waiter.assemble());

        layout.apply(chip.dataStore());
        return chip.run().llcSyncAccesses;
    };
    const auto spinning = run(Technique::BackOff0,
                              SyncFlavor::VipsBackoff);
    const auto callback = run(Technique::CbOne, SyncFlavor::CbOne);
    EXPECT_GT(spinning, 10 * callback);
    EXPECT_LT(callback, 30u);
}

TEST(LockTraffic, MesiSpinsInL1NotLlc)
{
    Chip chip(testConfig(Technique::Invalidation, 4));
    idleAll(chip);
    SyncLayout layout;
    LockHandle lock = makeLock(layout, LockAlgo::TestAndTestAndSet, 4);

    Assembler holder;
    emitAcquire(holder, lock, SyncFlavor::Mesi, 0);
    holder.workImm(20000);
    emitRelease(holder, lock, SyncFlavor::Mesi, 0);
    chip.setProgram(0, holder.assemble());

    Assembler waiter;
    waiter.workImm(500);
    emitAcquire(waiter, lock, SyncFlavor::Mesi, 1);
    emitRelease(waiter, lock, SyncFlavor::Mesi, 1);
    chip.setProgram(1, waiter.assemble());

    layout.apply(chip.dataStore());
    auto result = chip.run();
    EXPECT_LT(result.llcSyncAccesses, 20u);
    // The spin-watch charges one L1 access per pause interval of local
    // spinning: ~20000/12 accesses, far above the non-spinning traffic.
    EXPECT_GT(result.l1Accesses, 1000u);
}

struct FifoLockTest : ::testing::TestWithParam<LockAlgo>
{
};

TEST_P(FifoLockTest, HandsOffInFifoOrderUnderStagger)
{
    // Threads enqueue in a known order (staggered far apart); the
    // queue/ticket lock must grant the lock in that same order.
    Chip chip(testConfig(Technique::CbOne, 4));
    SyncLayout layout;
    LockHandle lock = makeLock(layout, GetParam(), 4);
    const Addr order = layout.allocLine(); // order[] slots
    const Addr cursor = layout.allocLine();
    layout.init(cursor, 0);

    for (CoreId t = 0; t < 4; ++t) {
        Assembler a;
        a.workImm(1 + t * 2000); // enqueue order 0,1,2,3
        emitAcquire(a, lock, SyncFlavor::CbOne, t);
        // order[cursor++] = t
        a.movImm(1, cursor);
        a.ld(2, 1);
        a.movImm(3, order);
        a.add(3, 3, 2);
        a.add(3, 3, 2);
        a.add(3, 3, 2);
        a.add(3, 3, 2);
        a.add(3, 3, 2);
        a.add(3, 3, 2);
        a.add(3, 3, 2);
        a.add(3, 3, 2); // order + 8*cursor
        a.movImm(4, t);
        a.st(4, 3);
        a.addImm(2, 2, 1);
        a.st(2, 1);
        emitRelease(a, lock, SyncFlavor::CbOne, t);
        chip.setProgram(t, a.assemble());
    }
    layout.apply(chip.dataStore());
    chip.run();
    for (CoreId t = 0; t < 4; ++t)
        EXPECT_EQ(chip.dataStore().read(order + 8 * t), t);
}

INSTANTIATE_TEST_SUITE_P(
    QueueLocks, FifoLockTest,
    ::testing::Values(LockAlgo::Clh, LockAlgo::Ticket, LockAlgo::Mcs),
    [](const ::testing::TestParamInfo<LockAlgo>& info) {
        std::string name = lockAlgoName(info.param);
        for (auto& ch : name) {
            if (!isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        }
        return name;
    });

} // namespace
} // namespace cbsim
