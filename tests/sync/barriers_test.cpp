/**
 * @file
 * Barrier tests, parameterized over (flavour x algorithm): the safety
 * invariant (no thread passes barrier k before all arrived), repeated
 * episodes with imbalance, and flavour traffic properties.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "../support/chip_helpers.hh"
#include "sim/rng.hh"
#include "sync/barriers.hh"

namespace cbsim {
namespace {

Technique
techniqueFor(SyncFlavor f)
{
    switch (f) {
      case SyncFlavor::Mesi: return Technique::Invalidation;
      case SyncFlavor::VipsBackoff: return Technique::BackOff5;
      case SyncFlavor::CbAll: return Technique::CbAll;
      case SyncFlavor::CbOne: return Technique::CbOne;
    }
    return Technique::Invalidation;
}

using Param = std::tuple<SyncFlavor, BarrierAlgo>;

struct BarrierTest : ::testing::TestWithParam<Param>
{
    SyncFlavor flavor = std::get<0>(GetParam());
    BarrierAlgo algo = std::get<1>(GetParam());

    BarrierHandle
    make(SyncLayout& layout, unsigned cores)
    {
        return algo == BarrierAlgo::SenseReversing
                   ? makeSrBarrier(layout, cores,
                                   LockAlgo::TestAndTestAndSet)
                   : makeTreeBarrier(layout, cores);
    }
};

TEST_P(BarrierTest, SafetyInvariantAcrossPhases)
{
    // Every thread publishes its arrival count (slot[t] = p+1, racy
    // store-through) before the barrier; after the barrier it checks
    // that its neighbour's slot is >= p+1. Violations bump an error
    // counter atomically.
    constexpr unsigned cores = 4;
    constexpr unsigned phases = 6;
    Chip chip(testConfig(techniqueFor(flavor), cores));
    SyncLayout layout;
    BarrierHandle barrier = make(layout, cores);
    std::vector<Addr> slots;
    for (unsigned t = 0; t < cores; ++t) {
        slots.push_back(layout.allocLine());
        layout.init(slots.back(), 0);
    }
    const Addr errors = layout.allocLine();
    layout.init(errors, 0);

    for (CoreId t = 0; t < cores; ++t) {
        Assembler a;
        Rng rng(99 + t);
        a.movImm(7, 0); // phase counter
        a.movImm(8, phases);
        a.label("loop");
        a.workImm(rng.jitter(600, 0.8)); // heavy imbalance
        // slot[t] = p + 1 (racy single-writer store).
        a.movImm(1, slots[t]);
        a.addImm(2, 7, 1);
        a.stThrough(2, 1);
        emitBarrier(a, barrier, flavor, t);
        // check: slot[(t+1) % cores] >= p + 1
        a.movImm(1, slots[(t + 1) % cores]);
        a.ldThrough(3, 1);
        a.addImm(2, 7, 1);
        a.blt(3, 2, "violation");
        a.jump("next");
        a.label("violation");
        a.movImm(1, errors);
        a.atomic(4, 1, 0, AtomicFunc::FetchAndAdd, 1, 0, false,
                 WakePolicy::All);
        a.label("next");
        a.addImm(7, 7, 1);
        a.bne(7, 8, "loop");
        chip.setProgram(t, a.assemble());
    }
    layout.apply(chip.dataStore());
    chip.run();
    EXPECT_EQ(chip.dataStore().read(errors), 0u);
    // All threads completed all phases.
    for (unsigned t = 0; t < cores; ++t)
        EXPECT_EQ(chip.dataStore().read(slots[t]), phases);
}

TEST_P(BarrierTest, SixteenCores)
{
    constexpr unsigned cores = 16;
    constexpr unsigned phases = 3;
    Chip chip(testConfig(techniqueFor(flavor), cores));
    SyncLayout layout;
    BarrierHandle barrier = make(layout, cores);

    for (CoreId t = 0; t < cores; ++t) {
        Assembler a;
        Rng rng(7 + t);
        for (unsigned p = 0; p < phases; ++p) {
            a.workImm(rng.jitter(400, 0.9));
            emitBarrier(a, barrier, flavor, t);
        }
        chip.setProgram(t, a.assemble());
    }
    layout.apply(chip.dataStore());
    auto result = chip.run(); // termination proves no lost wake-ups
    const auto k = static_cast<std::size_t>(SyncKind::Barrier);
    EXPECT_EQ(result.sync[k].completions, cores * phases);
}

TEST_P(BarrierTest, SingleThreadBarrierIsTrivial)
{
    Chip chip(testConfig(techniqueFor(flavor), 1));
    SyncLayout layout;
    BarrierHandle barrier = make(layout, 1);
    Assembler a;
    for (int p = 0; p < 4; ++p)
        emitBarrier(a, barrier, flavor, 0);
    chip.setProgram(0, a.assemble());
    layout.apply(chip.dataStore());
    chip.run();
    SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(
    AllFlavorsAndAlgos, BarrierTest,
    ::testing::Combine(::testing::Values(SyncFlavor::Mesi,
                                         SyncFlavor::VipsBackoff,
                                         SyncFlavor::CbAll,
                                         SyncFlavor::CbOne),
                       ::testing::Values(BarrierAlgo::SenseReversing,
                                         BarrierAlgo::TreeSenseReversing)),
    [](const ::testing::TestParamInfo<Param>& info) {
        std::string name = syncFlavorName(std::get<0>(info.param));
        name += "_";
        name += barrierAlgoName(std::get<1>(info.param));
        for (auto& ch : name) {
            if (!isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        }
        return name;
    });

TEST(BarrierTraffic, CallbackBarrierBlocksInsteadOfSpinning)
{
    auto run = [](Technique tech, SyncFlavor flavor) {
        constexpr unsigned cores = 4;
        Chip chip(testConfig(tech, cores));
        SyncLayout layout;
        BarrierHandle barrier = makeTreeBarrier(layout, cores);
        for (CoreId t = 0; t < cores; ++t) {
            Assembler a;
            // Thread 3 arrives very late: others wait a long time.
            a.workImm(t == 3 ? 30000 : 100);
            emitBarrier(a, barrier, flavor, t);
            chip.setProgram(t, a.assemble());
        }
        layout.apply(chip.dataStore());
        return chip.run().llcSyncAccesses;
    };
    const auto spinning = run(Technique::BackOff0,
                              SyncFlavor::VipsBackoff);
    const auto callback = run(Technique::CbAll, SyncFlavor::CbAll);
    EXPECT_GT(spinning, 5 * callback);
}

TEST(BarrierAtomicVariant, Figure14SingleAtomicCounterWorks)
{
    constexpr unsigned cores = 4;
    for (SyncFlavor flavor : {SyncFlavor::Mesi, SyncFlavor::CbAll}) {
        Chip chip(testConfig(techniqueFor(flavor), cores));
        SyncLayout layout;
        BarrierHandle barrier = makeSrBarrierAtomic(layout, cores);
        for (CoreId t = 0; t < cores; ++t) {
            Assembler a;
            for (int p = 0; p < 4; ++p) {
                a.workImm(100 + 321 * t % 777);
                emitBarrier(a, barrier, flavor, t);
            }
            chip.setProgram(t, a.assemble());
        }
        layout.apply(chip.dataStore());
        auto result = chip.run();
        const auto k = static_cast<std::size_t>(SyncKind::Barrier);
        EXPECT_EQ(result.sync[k].completions, cores * 4u);
    }
}

} // namespace
} // namespace cbsim
