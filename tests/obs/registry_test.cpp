/**
 * @file
 * StatsRegistry tests: hierarchical scoped registration, qualified
 * names, duplicate detection through scopes, and mergeable snapshots.
 */

#include <gtest/gtest.h>

#include "obs/registry.hh"
#include "sim/log.hh"

namespace cbsim {
namespace {

TEST(StatsRegistry, ScopedRegistrationQualifiesNames)
{
    StatsRegistry reg;
    Counter c;
    Histogram h;
    const StatsScope llc3 = reg.scope("llc.3");
    llc3.add("accesses", c);
    llc3.add("latency", h);
    c.inc(5);
    h.sample(12);
    EXPECT_EQ(reg.counter("llc.3.accesses"), 5u);
    EXPECT_EQ(reg.histogram("llc.3.latency").count(), 1u);
}

TEST(StatsRegistry, NestedScopesComposePrefixes)
{
    StatsRegistry reg;
    Counter c;
    const StatsScope bank = reg.scope("llc.0");
    const StatsScope cbdir = bank.scope("cbdir");
    EXPECT_EQ(cbdir.prefix(), "llc.0.cbdir.");
    EXPECT_EQ(cbdir.qualify("evictions"), "llc.0.cbdir.evictions");
    cbdir.add("evictions", c);
    c.inc();
    EXPECT_EQ(reg.counter("llc.0.cbdir.evictions"), 1u);
}

TEST(StatsRegistry, RootScopeRegistersVerbatim)
{
    StatsRegistry reg;
    Counter c;
    reg.root().add("noc.packets", c);
    EXPECT_TRUE(reg.hasCounter("noc.packets"));
}

TEST(StatsRegistry, DuplicateThroughDifferentScopesPanics)
{
    // Two components accidentally landing on the same qualified name
    // must fail loudly, exactly like flat StatSet registration.
    StatsRegistry reg;
    Counter a, b;
    reg.scope("core.0").add("instructions", a);
    EXPECT_THROW(reg.scope("core.0").add("instructions", b), PanicError);
}

TEST(StatsRegistry, SnapshotCopiesLiveValues)
{
    StatsRegistry reg;
    Counter c;
    Histogram h;
    reg.scope("mem").add("reads", c);
    reg.scope("core.0").add("stall_latency", h);
    c.inc(3);
    h.sample(100);

    const StatsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counters.at("mem.reads"), 3u);
    EXPECT_EQ(snap.histograms.at("core.0.stall_latency").count, 1u);

    // Snapshots are owning copies: later increments don't leak in.
    c.inc(100);
    EXPECT_EQ(snap.counters.at("mem.reads"), 3u);
}

TEST(StatsSnapshot, MergeAddsCountersAndFoldsHistograms)
{
    StatsRegistry a, b;
    Counter ca, cb;
    Histogram ha, hb;
    a.scope("noc").add("packets", ca);
    a.scope("noc").add("hop_distance", ha);
    b.scope("noc").add("packets", cb);
    b.scope("noc").add("hop_distance", hb);
    ca.inc(10);
    cb.inc(32);
    ha.sample(2);
    hb.sample(4);
    hb.sample(6);

    StatsSnapshot sa = a.snapshot();
    StatsSnapshot sb = b.snapshot();
    StatsSnapshot ab = sa;
    ab.merge(sb);
    StatsSnapshot ba = sb;
    ba.merge(sa);

    EXPECT_EQ(ab.counters.at("noc.packets"), 42u);
    EXPECT_EQ(ab.histograms.at("noc.hop_distance").count, 3u);
    // Commutative: per-job snapshots can fold in any completion order.
    EXPECT_EQ(ab, ba);
}

TEST(StatsSnapshot, MergeKeepsDisjointNames)
{
    StatsRegistry a, b;
    Counter ca, cb;
    a.scope("core.0").add("instructions", ca);
    b.scope("core.1").add("instructions", cb);
    ca.inc(7);
    cb.inc(9);

    StatsSnapshot s = a.snapshot();
    s.merge(b.snapshot());
    EXPECT_EQ(s.counters.at("core.0.instructions"), 7u);
    EXPECT_EQ(s.counters.at("core.1.instructions"), 9u);
}

} // namespace
} // namespace cbsim
