/**
 * @file
 * Golden-trace smoke tests: one micro per technique family
 * (Invalidation / BackOff-10 / CB-One), each exported as a
 * `.trace.json` through the sweep runner. The traces must be
 * schema-valid and byte-identical across sweep worker counts and with
 * the invariant checker toggled — the determinism contract of
 * docs/RESULTS.md extended to traces (docs/OBSERVABILITY.md).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "debug/debug_config.hh"
#include "harness/sweep.hh"
#include "support/trace_schema.hh"

namespace cbsim {
namespace {

const std::map<std::string, Technique> kTraceCells = {
    {"inv", Technique::Invalidation},
    {"bo10", Technique::BackOff10},
    {"cb1", Technique::CbOne},
};

/**
 * Run the three micro cells with traces exported into a fresh
 * directory; return every trace keyed by cell name.
 * @param workers       sweep worker threads
 * @param invariants    run with the protocol invariant checker on
 */
std::map<std::string, std::string>
runTracedSweep(unsigned workers, bool invariants)
{
    const std::string dir = ::testing::TempDir() + "cbsim_golden_trace_" +
                            std::to_string(workers) +
                            (invariants ? "_inv" : "_plain");
    std::filesystem::remove_all(dir);

    // Worker threads resolve DebugConfig::current() from the process
    // defaults, so the obs settings must go there (and be restored).
    DebugConfig& defaults = DebugConfig::processDefaults();
    const DebugConfig saved = defaults;
    defaults.obs.traceDir = dir;
    defaults.checkInvariants = invariants;

    SweepRunner runner(workers);
    for (const auto& [name, tech] : kTraceCells)
        runner.add(SweepJob::forMicro(name, SyncMicro::TtasLock, tech, 4,
                                      2, 500));
    const auto outcomes = runner.run();
    defaults = saved;

    std::map<std::string, std::string> traces;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        EXPECT_TRUE(outcomes[i].ok)
            << runner.job(i).key << ": " << outcomes[i].error;
        const std::string path =
            dir + "/" + runner.job(i).key + ".trace.json";
        std::ifstream in(path);
        EXPECT_TRUE(in.good()) << "missing trace: " << path;
        std::stringstream ss;
        ss << in.rdbuf();
        traces[runner.job(i).key] = ss.str();
    }
    std::filesystem::remove_all(dir);
    return traces;
}

TEST(GoldenTrace, EveryTechniqueEmitsASchemaValidTrace)
{
    const auto traces = runTracedSweep(1, true);
    ASSERT_EQ(traces.size(), kTraceCells.size());
    for (const auto& [name, json] : traces) {
        EXPECT_GT(json.size(), 0u) << name;
        const auto errs = test::validateTrace(json);
        EXPECT_TRUE(errs.empty()) << name << ": " << errs.front();
    }
    // Only the callback technique parks cores in the directory.
    EXPECT_NE(traces.at("cb1").find("\"park\""), std::string::npos);
    EXPECT_EQ(traces.at("inv").find("\"park\""), std::string::npos);
}

TEST(GoldenTrace, ByteIdenticalAcrossWorkerCounts)
{
    const auto serial = runTracedSweep(1, true);
    const auto parallel = runTracedSweep(4, true);
    ASSERT_EQ(serial.size(), parallel.size());
    for (const auto& [name, json] : serial)
        EXPECT_EQ(json, parallel.at(name)) << name;
}

TEST(GoldenTrace, ByteIdenticalUnderInvariantChecking)
{
    // The checker observes the same simulation (sendDebug vs send must
    // sample identically); traces must not depend on it.
    const auto checked = runTracedSweep(2, true);
    const auto unchecked = runTracedSweep(2, false);
    ASSERT_EQ(checked.size(), unchecked.size());
    for (const auto& [name, json] : checked)
        EXPECT_EQ(json, unchecked.at(name)) << name;
}

} // namespace
} // namespace cbsim
