/**
 * @file
 * Trace-exporter tests: event emission, schema validity of the JSON
 * (tests/support/trace_schema.hh), file export via the DebugConfig
 * layering, and the in-memory "-" mode (docs/OBSERVABILITY.md).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>

#include "isa/assembler.hh"

#include "debug/debug_config.hh"
#include "harness/experiment.hh"
#include "obs/trace_export.hh"
#include "support/trace_schema.hh"
#include "system/chip.hh"

namespace cbsim {
namespace {

std::string
jsonOf(const TraceExporter& t)
{
    std::ostringstream os;
    t.writeJson(os);
    return os.str();
}

TEST(TraceExporter, EmptyTraceIsSchemaValid)
{
    TraceExporter t(2, 2);
    EXPECT_EQ(t.eventCount(), 0u);
    const auto errs = test::validateTrace(jsonOf(t));
    EXPECT_TRUE(errs.empty()) << errs.front();
}

TEST(TraceExporter, EventKindsSerializeWithTheirPhases)
{
    TraceExporter t(4, 4);
    t.coreSlice(1, "spin", 100, 250);
    t.park(2, 1, 300);
    t.wake(2, 1, 400, false);
    t.wake(2, 3, 410, true);
    t.counter("llc_accesses", 500, 17);
    EXPECT_EQ(t.eventCount(), 5u);

    const std::string json = jsonOf(t);
    const auto errs = test::validateTrace(json);
    EXPECT_TRUE(errs.empty()) << errs.front();

    const test::JsonValue root = test::parseJson(json);
    const auto& events = root.find("traceEvents")->array;
    // Metadata first (4 process names + 4 cores + 4 banks), then ours.
    ASSERT_EQ(events.size(), 12u + 5u);
    const test::JsonValue& slice = events[12];
    EXPECT_EQ(slice.find("name")->string, "spin");
    EXPECT_EQ(slice.find("ph")->string, "X");
    EXPECT_EQ(slice.find("ts")->number, 100.0);
    EXPECT_EQ(slice.find("dur")->number, 150.0);
    EXPECT_EQ(slice.find("tid")->number, 1.0);

    const test::JsonValue& park = events[13];
    EXPECT_EQ(park.find("ph")->string, "i");
    EXPECT_EQ(park.find("args")->find("core")->number, 1.0);

    EXPECT_EQ(events[15].find("name")->string, "wake-evict");
    EXPECT_EQ(events[16].find("ph")->string, "C");
    EXPECT_EQ(events[16].find("args")->find("value")->number, 17.0);
}

TEST(TraceExporter, ContendedLineSlicesPairOnSymbolicNames)
{
    std::map<Addr, std::string> symbols{{0x1008, "lock0"}};
    TraceExporter t(2, 1);
    t.setSymbols(&symbols);
    t.linePark(0x1008, 1, 100); // 0x1008's line is labeled "lock0"
    t.lineWake(0x1008, 1, 200);
    t.linePark(0x2000, 0, 150); // unlabeled line: hex fallback

    const std::string json = jsonOf(t);
    const auto errs = test::validateTrace(json);
    EXPECT_TRUE(errs.empty()) << errs.front();

    const test::JsonValue root = test::parseJson(json);
    const auto& events = root.find("traceEvents")->array;
    // 4 process metas + 2 core threads + 1 bank thread, then ours.
    ASSERT_EQ(events.size(), 7u + 3u);
    const test::JsonValue& park = events[7];
    const test::JsonValue& wakeEv = events[8];
    EXPECT_EQ(park.find("name")->string, "lock0");
    EXPECT_EQ(park.find("ph")->string, "b");
    EXPECT_EQ(park.find("pid")->number, 4.0);
    EXPECT_EQ(park.find("cat")->string, "contention");
    EXPECT_EQ(wakeEv.find("ph")->string, "e");
    // The 'b'/'e' pair matches on the same async id.
    EXPECT_EQ(park.find("id")->number, wakeEv.find("id")->number);
    EXPECT_EQ(events[9].find("name")->string, "0x2000");
}

TEST(TraceExporter, WriteFileSanitizesTheLabel)
{
    const std::string dir = ::testing::TempDir() + "cbsim_trace_test";
    std::filesystem::remove_all(dir);

    TraceExporter t(1, 1);
    t.coreSlice(0, "mem", 0, 10);
    const std::string path = t.writeFile(dir, "fig20/CLH CB-One");
    ASSERT_FALSE(path.empty());
    // Substituted labels get a hash suffix so "fig20/CLH CB-One" and
    // "fig20_CLH_CB-One" never overwrite each other's trace.
    EXPECT_EQ(path, dir + "/fig20_CLH_CB-One-7a7e3c17.trace.json");

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    const auto errs = test::validateTrace(ss.str());
    EXPECT_TRUE(errs.empty()) << errs.front();
    std::filesystem::remove_all(dir);
}

TEST(TraceExporter, DashDirectoryMeansInMemoryOnly)
{
    TraceExporter t(1, 1);
    t.coreSlice(0, "mem", 0, 10);
    EXPECT_EQ(t.writeFile("-", "label"), "");
    EXPECT_EQ(t.writeFile("", "label"), "");
}

/** Run a 4-core chip with tracing in-memory; return the trace JSON. */
std::string
tracedChipJson(Technique tech,
               const std::function<Program(CoreId)>& program)
{
    DebugConfig cfg = DebugConfig::current();
    cfg.obs.traceDir = "-";
    DebugScope scope(cfg);

    ChipConfig chipCfg = ChipConfig::forTechnique(tech, 4);
    Chip chip(chipCfg);
    EXPECT_NE(chip.traceExporter(), nullptr);
    for (CoreId c = 0; c < 4; ++c)
        chip.setProgram(c, program(c));
    chip.run();
    std::ostringstream os;
    chip.traceExporter()->writeJson(os);
    return os.str();
}

TEST(TraceExporter, ChipRunEmitsASchemaValidTrace)
{
    // Trivial per-core programs: one DRF store each, then done.
    const std::string json =
        tracedChipJson(Technique::CbOne, [](CoreId c) {
            Assembler a;
            a.movImm(1, 0x1000 + 0x40 * static_cast<Addr>(c));
            a.stImm(7, 1);
            a.done();
            return a.assemble();
        });
    const auto errs = test::validateTrace(json);
    EXPECT_TRUE(errs.empty()) << errs.front();
    // The stores miss the L1, so cores contribute "mem" slices.
    EXPECT_NE(json.find("\"mem\""), std::string::npos);
}

TEST(TraceExporter, OffByDefaultCreatesNoExporter)
{
    ChipConfig cfg = ChipConfig::forTechnique(Technique::CbOne, 4);
    Chip chip(cfg);
    EXPECT_EQ(chip.traceExporter(), nullptr);
}

TEST(TraceExporter, ParkAndWakeLandOnTheCbdirTracks)
{
    // Core 0 spins on a callback read of a word that stays 0 until
    // core 1's delayed st_cb1: at least one ld_cb parks in the
    // directory, and the store wakes it.
    constexpr Addr flag = 0x2000;
    const std::string json =
        tracedChipJson(Technique::CbOne, [](CoreId c) {
            Assembler a;
            a.movImm(1, flag);
            if (c == 0) {
                a.label("spin");
                a.ldCb(2, 1);
                a.beqz(2, "spin");
            } else if (c == 1) {
                a.workImm(5000);
                a.stCb1Imm(7, 1);
            }
            a.done();
            return a.assemble();
        });
    const auto errs = test::validateTrace(json);
    EXPECT_TRUE(errs.empty()) << errs.front();
    EXPECT_NE(json.find("\"park\""), std::string::npos);
    EXPECT_NE(json.find("\"wake\""), std::string::npos);
    EXPECT_NE(json.find("\"cbdir-blocked\""), std::string::npos);
}

} // namespace
} // namespace cbsim
