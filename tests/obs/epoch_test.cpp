/**
 * @file
 * Epoch time-series tests: the event-queue boundary hook, delta
 * accounting in the EpochSampler, and the schema-v3 "epochs" array of a
 * real micro run (docs/OBSERVABILITY.md).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "debug/debug_config.hh"
#include "harness/experiment.hh"
#include "harness/result_sink.hh"
#include "harness/sweep.hh"
#include "obs/epoch.hh"
#include "obs/registry.hh"
#include "sim/event_queue.hh"

namespace cbsim {
namespace {

TEST(EventQueueEpochHook, CutsUniformBoundaries)
{
    EventQueue eq;
    std::vector<Tick> boundaries;
    eq.setEpochHook(100, [&](Tick t) { boundaries.push_back(t); });

    // A sparse schedule: the queue jumps tick 50 -> 150 -> 1000. The
    // hook must still emit one boundary per window, in order, so the
    // series stays uniform regardless of event density.
    int fired = 0;
    for (Tick t : {Tick{50}, Tick{150}, Tick{1000}})
        eq.schedule(t, [&] { ++fired; });
    eq.run();

    EXPECT_EQ(fired, 3);
    ASSERT_EQ(boundaries.size(), 10u);
    for (std::size_t i = 0; i < boundaries.size(); ++i)
        EXPECT_EQ(boundaries[i], 100 * (i + 1));
}

TEST(EventQueueEpochHook, OffByDefaultAndNeverFires)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(1 << 20, [&] { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 2); // and no hook to crash on
}

TEST(EpochSampler, RowsCarryWindowDeltas)
{
    EventQueue eq;
    StatsRegistry stats;
    Counter llc0, llc1, flits, packets;
    stats.scope("llc.0").add("accesses", llc0);
    stats.scope("llc.1").add("accesses", llc1);
    stats.scope("noc").add("flit_hops", flits);
    stats.scope("noc").add("packets", packets);

    std::uint64_t blockedNow = 0;
    EpochSampler sampler(stats, [&] { return blockedNow; });
    sampler.install(eq, 100);

    // Window 1: 3 LLC accesses (split across banks), 10 hops, 2 pkts.
    eq.schedule(10, [&] {
        llc0.inc(2);
        llc1.inc();
        flits.inc(10);
        packets.inc(2);
        blockedNow = 3;
    });
    // Window 2: 1 more access; blocked probe drops back to zero.
    eq.schedule(150, [&] {
        llc0.inc();
        blockedNow = 0;
    });
    eq.schedule(250, [] {});
    eq.run();

    const auto& rows = sampler.rows();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].tick, 100u);
    EXPECT_EQ(rows[0].llcAccesses, 3u);
    EXPECT_EQ(rows[0].flitHops, 10u);
    EXPECT_EQ(rows[0].packets, 2u);
    EXPECT_EQ(rows[0].blockedCores, 3u);
    EXPECT_EQ(rows[1].tick, 200u);
    EXPECT_EQ(rows[1].llcAccesses, 1u); // delta, not running total
    EXPECT_EQ(rows[1].flitHops, 0u);
    EXPECT_EQ(rows[1].blockedCores, 0u);
}

TEST(EpochSampler, FieldNameTableMatchesTheRowShape)
{
    // kFieldNames is the serialization contract (ResultSink order and
    // the check_docs.sh lint both read it).
    ASSERT_EQ(EpochSampler::kFieldNames.size(), 5u);
    EXPECT_STREQ(EpochSampler::kFieldNames[0], "tick");
    EXPECT_STREQ(EpochSampler::kFieldNames[1], "llc_accesses");
    EXPECT_STREQ(EpochSampler::kFieldNames[2], "flit_hops");
    EXPECT_STREQ(EpochSampler::kFieldNames[3], "packets");
    EXPECT_STREQ(EpochSampler::kFieldNames[4], "blocked_cores");
}

/** Run a tiny lock micro with epoch sampling at @p epochTicks. */
ExperimentResult
microWithEpochs(Tick epochTicks)
{
    DebugConfig cfg = DebugConfig::current();
    cfg.obs.epochTicks = epochTicks;
    DebugScope scope(cfg);
    return runSyncMicro(SyncMicro::TtasLock, Technique::CbOne, 4, 2, 500);
}

TEST(EpochSampler, RealRunProducesAUniformSeries)
{
    const ExperimentResult res = microWithEpochs(1000);
    const auto& epochs = res.run.epochs;
    ASSERT_FALSE(epochs.empty());
    std::uint64_t llcFromEpochs = 0;
    for (std::size_t i = 0; i < epochs.size(); ++i) {
        EXPECT_EQ(epochs[i].tick, 1000 * (i + 1));
        llcFromEpochs += epochs[i].llcAccesses;
    }
    // The series under-counts only the tail after the last boundary.
    EXPECT_LE(llcFromEpochs, res.run.llcAccesses);
    EXPECT_GT(llcFromEpochs, 0u);
}

TEST(EpochSampler, SamplingDoesNotPerturbTheSimulation)
{
    const ExperimentResult off =
        runSyncMicro(SyncMicro::TtasLock, Technique::CbOne, 4, 2, 500);
    const ExperimentResult on = microWithEpochs(500);
    // Identical simulated execution: epoch sampling is observation only.
    EXPECT_EQ(on.run.cycles, off.run.cycles);
    EXPECT_EQ(on.run.llcAccesses, off.run.llcAccesses);
    EXPECT_EQ(on.run.packets, off.run.packets);
    EXPECT_TRUE(off.run.epochs.empty());
}

TEST(ResultSink, EpochsLandInTheSchemaV3Artifact)
{
    SweepJob job = SweepJob::forMicro("epoch-cell", SyncMicro::TtasLock,
                                      Technique::CbOne, 4, 2, 500);
    JobOutcome out;
    out.ok = true;
    out.status = JobStatus::Ok;
    out.result = microWithEpochs(1000);

    ResultSink sink("epoch_test");
    sink.add(job, out);
    const std::string json = sink.toJson();
    EXPECT_NE(json.find("\"epochs\""), std::string::npos);
    EXPECT_NE(json.find("\"blocked_cores\""), std::string::npos);

    // And a run without sampling serializes with no epochs key at all.
    JobOutcome plain;
    plain.ok = true;
    plain.status = JobStatus::Ok;
    plain.result =
        runSyncMicro(SyncMicro::TtasLock, Technique::CbOne, 4, 2, 500);
    ResultSink sink2("epoch_test");
    sink2.add(job, plain);
    EXPECT_EQ(sink2.toJson().find("\"epochs\""), std::string::npos);
}

} // namespace
} // namespace cbsim
