/**
 * @file
 * Observability/robustness interaction regression tests: epoch
 * sampling, trace export, contention attribution, the invariant
 * checker, and the watchdog all hook the same event loop (epoch hook
 * before each bucket, poll hook after it). Enabling everything at once
 * must not change what the simulation does — the event count and every
 * result metric must match an all-off run exactly.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "debug/debug_config.hh"
#include "harness/experiment.hh"

namespace cbsim {
namespace {

/** One tiny callback-technique micro under the current debug config. */
ExperimentResult
tinyMicro()
{
    return runSyncMicro(SyncMicro::TtasLock, Technique::CbOne, 4, 2, 500);
}

TEST(ObsInteraction, EverythingOnMatchesAllOffExactly)
{
    const ExperimentResult off = tinyMicro();

    const std::string dir =
        ::testing::TempDir() + "cbsim_obs_interaction";
    std::filesystem::remove_all(dir);

    DebugConfig cfg = DebugConfig::current();
    cfg.obs.epochTicks = 500;     // CBSIM_OBS_EPOCH
    cfg.obs.traceDir = dir;       // CBSIM_TRACE_DIR
    cfg.obs.attribution = true;   // CBSIM_OBS_ATTR
    cfg.checkInvariants = true;   // CBSIM_CHECK_INVARIANTS
    cfg.noProgressWindow = 1'000'000; // watchdog armed (never trips)
    cfg.checkIntervalEvents = 64;     // poll often to stress ordering
    cfg.wallTimeoutS = 600.0;
    ExperimentResult on = [&] {
        DebugScope scope(cfg);
        return tinyMicro();
    }();

    // Identical simulated execution: the hooks observe, never perturb.
    // `events` counts every kernel event the queue dispatched, so a
    // hook that scheduled work (or a mis-ordered epoch/poll pair that
    // dropped or duplicated a bucket) would show up here.
    EXPECT_EQ(on.run.events, off.run.events);
    EXPECT_EQ(on.run.cycles, off.run.cycles);
    EXPECT_EQ(on.run.instructions, off.run.instructions);
    EXPECT_EQ(on.run.llcAccesses, off.run.llcAccesses);
    EXPECT_EQ(on.run.packets, off.run.packets);
    EXPECT_EQ(on.run.flitHops, off.run.flitHops);
    EXPECT_EQ(on.run.stallCycles, off.run.stallCycles);
    EXPECT_EQ(on.run.cbWakeups, off.run.cbWakeups);

    // And each observer actually ran: epochs sampled, attribution
    // attributed, the trace file landed on disk.
    EXPECT_FALSE(on.run.epochs.empty());
    EXPECT_FALSE(on.run.contention.empty());
    bool sawTrace = false;
    for (const auto& entry : std::filesystem::directory_iterator(dir))
        if (entry.path().string().ends_with(".trace.json"))
            sawTrace = true;
    EXPECT_TRUE(sawTrace);
    std::filesystem::remove_all(dir);
}

TEST(ObsInteraction, EpochAndWatchdogHookOrderingIsStable)
{
    // The same run under three polling cadences: the poll hook fires
    // after bucket dispatch and the epoch hook before it, so cadence
    // changes must never leak into epoch rows or metrics.
    DebugConfig cfg = DebugConfig::current();
    cfg.obs.epochTicks = 250;
    cfg.checkInvariants = true;
    cfg.noProgressWindow = 1'000'000;

    cfg.checkIntervalEvents = 16;
    ExperimentResult fast = [&] {
        DebugScope scope(cfg);
        return tinyMicro();
    }();
    cfg.checkIntervalEvents = 200'000;
    ExperimentResult slow = [&] {
        DebugScope scope(cfg);
        return tinyMicro();
    }();

    EXPECT_EQ(fast.run.events, slow.run.events);
    EXPECT_EQ(fast.run.cycles, slow.run.cycles);
    ASSERT_EQ(fast.run.epochs.size(), slow.run.epochs.size());
    for (std::size_t i = 0; i < fast.run.epochs.size(); ++i) {
        EXPECT_EQ(fast.run.epochs[i].tick, slow.run.epochs[i].tick);
        EXPECT_EQ(fast.run.epochs[i].llcAccesses,
                  slow.run.epochs[i].llcAccesses);
        EXPECT_EQ(fast.run.epochs[i].blockedCores,
                  slow.run.epochs[i].blockedCores);
    }
}

} // namespace
} // namespace cbsim
