/**
 * @file
 * Contention attribution tests (docs/OBSERVABILITY.md §Attribution):
 * bounded-table eviction with a deterministic victim order, the
 * cross-shard fold, symbol resolution, and the schema-v4 determinism
 * contract — the "contention" array must be byte-identical across
 * sweep worker counts and with the invariant checker toggled.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "debug/debug_config.hh"
#include "harness/experiment.hh"
#include "harness/result_sink.hh"
#include "harness/sweep.hh"
#include "obs/attribution.hh"

namespace cbsim {
namespace {

TEST(AttributionTable, AccumulatesPerLine)
{
    AttributionTable t;
    t.row(0x1000).cycles += 10;
    t.row(0x1008).cycles += 5; // same 64 B line as 0x1000
    t.row(0x2000).parks += 1;

    EXPECT_EQ(t.size(), 2u);
    std::map<Addr, AttributionRow> merged;
    t.mergeInto(merged);
    EXPECT_EQ(merged.at(0x1000).cycles, 15u);
    EXPECT_EQ(merged.at(0x2000).parks, 1u);
}

TEST(AttributionTable, EvictsTheSmallestWeightDeterministically)
{
    AttributionTable t(2);
    t.row(0x1000).cycles = 100;
    t.row(0x2000).cycles = 5;
    t.row(0x3000).parks = 1; // full: must evict 0x2000 (weight 5)

    EXPECT_EQ(t.evictions(), 1u);
    std::map<Addr, AttributionRow> merged;
    t.mergeInto(merged);
    EXPECT_EQ(merged.count(0x1000), 1u);
    EXPECT_EQ(merged.count(0x2000), 0u);
    EXPECT_EQ(merged.count(0x3000), 1u);
}

TEST(AttributionTable, EvictionTieBreaksOnAddress)
{
    // Equal weights: the lower address is the victim — a total order,
    // so the choice never depends on hash-map iteration order.
    AttributionTable t(2);
    t.row(0x2000).cycles = 7;
    t.row(0x1000).cycles = 7;
    t.row(0x3000).cycles = 1;

    std::map<Addr, AttributionRow> merged;
    t.mergeInto(merged);
    EXPECT_EQ(merged.count(0x1000), 0u);
    EXPECT_EQ(merged.count(0x2000), 1u);
    EXPECT_EQ(merged.count(0x3000), 1u);
}

TEST(BuildContention, FoldsShardsAndResolvesSymbols)
{
    AttributionTable a, b;
    a.row(0x1000).cycles = 10;
    a.row(0x1000).invalidations = 2;
    b.row(0x1000).cycles = 30; // same line via a second shard
    b.row(0x2040).cycles = 5;
    b.row(0x3000).cycles = 90;

    // 0x1004 labels the middle of 0x1000's line: lowest labeled
    // address within the line wins. 0x3000's line is unlabeled.
    const std::map<Addr, std::string> symbols = {
        {0x1004, "lock0"}, {0x1020, "shadowed"}, {0x2040, "barrier0"}};

    const auto rows = buildContention({&a, &b}, symbols, 16);
    ASSERT_EQ(rows.size(), 3u);
    // Ranked by attributed cycles, descending.
    EXPECT_EQ(rows[0].addr, 0x3000u);
    EXPECT_EQ(rows[0].symbol, contentionHexName(0x3000));
    EXPECT_EQ(rows[1].addr, 0x1000u);
    EXPECT_EQ(rows[1].symbol, "lock0");
    EXPECT_EQ(rows[1].cycles, 40u);
    EXPECT_EQ(rows[1].invalidations, 2u);
    EXPECT_EQ(rows[2].addr, 0x2040u);
    EXPECT_EQ(rows[2].symbol, "barrier0");

    // top_n truncates after ranking.
    EXPECT_EQ(buildContention({&a, &b}, symbols, 2).size(), 2u);
}

TEST(BuildContention, FieldTableMatchesTheRowShape)
{
    // kContentionFields is the serialization contract (ResultSink
    // order and the check_docs.sh lint both read it).
    ASSERT_EQ(kContentionFields.size(), 13u);
    EXPECT_EQ(kContentionFields[0], "addr");
    EXPECT_EQ(kContentionFields[1], "symbol");
    EXPECT_EQ(kContentionFields[2], "cycles");
    EXPECT_EQ(kContentionFields[9], "wake_evictions");
    EXPECT_EQ(kContentionFields[12], "park_ticks_p99");
}

/**
 * Run one micro per technique with attribution on and @p workers sweep
 * threads; serialize to the schema-v4 artifact. Worker threads resolve
 * DebugConfig::current() from the process defaults, so attribution is
 * enabled there (and restored).
 */
std::string
attributedSweepJson(unsigned workers, bool invariants)
{
    DebugConfig& defaults = DebugConfig::processDefaults();
    const DebugConfig saved = defaults;
    defaults.obs.attribution = true;
    defaults.checkInvariants = invariants;

    SweepRunner runner(workers);
    runner.add(SweepJob::forMicro("inv", SyncMicro::TtasLock,
                                  Technique::Invalidation, 4, 2, 500));
    runner.add(SweepJob::forMicro("bo10", SyncMicro::TtasLock,
                                  Technique::BackOff10, 4, 2, 500));
    runner.add(SweepJob::forMicro("cb1", SyncMicro::TtasLock,
                                  Technique::CbOne, 4, 2, 500));
    const auto outcomes = runner.run();
    defaults = saved;

    ResultSink sink("attribution_test");
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        EXPECT_TRUE(outcomes[i].ok) << outcomes[i].error;
        sink.add(runner.job(i), outcomes[i]);
    }
    return sink.toJson();
}

TEST(AttributionDeterminism, ContentionIsByteIdenticalAcrossWorkers)
{
    const std::string serial = attributedSweepJson(1, false);
    const std::string parallel = attributedSweepJson(4, false);
    EXPECT_NE(serial.find("\"contention\""), std::string::npos);
    // Every technique attributes against the same (symbolic) lock.
    EXPECT_NE(serial.find("\"symbol\": \"lock0\""), std::string::npos);
    EXPECT_EQ(serial, parallel);
}

TEST(AttributionDeterminism, InvariantCheckingDoesNotPerturbContention)
{
    // The checker observes the same simulation; attribution counts
    // must not depend on it (docs/RESULTS.md determinism contract).
    const std::string unchecked = attributedSweepJson(2, false);
    const std::string checked = attributedSweepJson(2, true);
    EXPECT_EQ(unchecked, checked);
}

TEST(AttributionDeterminism, RunsCarryAllThreeTechniqueColumns)
{
    const ExperimentResult off =
        runSyncMicro(SyncMicro::TtasLock, Technique::CbOne, 4, 2, 500);
    EXPECT_TRUE(off.run.contention.empty());

    DebugConfig cfg = DebugConfig::current();
    cfg.obs.attribution = true;
    DebugScope scope(cfg);

    const ExperimentResult inv = runSyncMicro(
        SyncMicro::TtasLock, Technique::Invalidation, 4, 2, 500);
    const ExperimentResult bo =
        runSyncMicro(SyncMicro::TtasLock, Technique::BackOff10, 4, 2, 500);
    const ExperimentResult cb =
        runSyncMicro(SyncMicro::TtasLock, Technique::CbOne, 4, 2, 500);

    ASSERT_FALSE(inv.run.contention.empty());
    ASSERT_FALSE(bo.run.contention.empty());
    ASSERT_FALSE(cb.run.contention.empty());
    // MESI: invalidation fan-out; VIPS: spin re-reads / back-off;
    // callback: parks and wakes with park-duration percentiles.
    EXPECT_GT(inv.run.contention[0].invalidations, 0u);
    EXPECT_GT(bo.run.contention[0].spinRereads, 0u);
    EXPECT_GT(cb.run.contention[0].parks, 0u);
    EXPECT_GT(cb.run.contention[0].wakes, 0u);
    EXPECT_GT(cb.run.contention[0].parkP95, 0.0);

    // Attribution is observation only: identical simulated execution.
    EXPECT_EQ(cb.run.cycles, off.run.cycles);
    EXPECT_EQ(cb.run.llcAccesses, off.run.llcAccesses);
}

} // namespace
} // namespace cbsim
