/**
 * @file
 * Histogram-core tests (docs/OBSERVABILITY.md): deterministic binning,
 * merge algebra (associative + commutative, so sweep aggregation is
 * byte-identical across worker counts), and percentile edge cases.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "stats/stats.hh"

namespace cbsim {
namespace {

TEST(HistogramData, BinningIsTheHighestSetBit)
{
    EXPECT_EQ(HistogramData::bucketOf(0), 0u);
    EXPECT_EQ(HistogramData::bucketOf(1), 0u);
    EXPECT_EQ(HistogramData::bucketOf(2), 1u);
    EXPECT_EQ(HistogramData::bucketOf(3), 1u);
    EXPECT_EQ(HistogramData::bucketOf(4), 2u);
    EXPECT_EQ(HistogramData::bucketOf(1023), 9u);
    EXPECT_EQ(HistogramData::bucketOf(1024), 10u);
    EXPECT_EQ(HistogramData::bucketOf(std::uint64_t{1} << 63), 63u);
    EXPECT_EQ(
        HistogramData::bucketOf(std::numeric_limits<std::uint64_t>::max()),
        63u);
}

TEST(HistogramData, BinningIsDeterministicAcrossRepeats)
{
    // Same samples, same order => identical plain-data state (the
    // property the smoke-golden byte comparison ultimately rests on).
    const std::vector<std::uint64_t> samples{3, 0, 17, 17, 1 << 20, 5};
    HistogramData a, b;
    for (auto v : samples)
        a.sample(v);
    for (auto v : samples)
        b.sample(v);
    EXPECT_EQ(a, b);
}

/** The canonical sample set the merge tests slice up. */
std::vector<std::uint64_t>
sampleSet()
{
    std::vector<std::uint64_t> v;
    for (std::uint64_t i = 0; i < 400; ++i)
        v.push_back((i * 2654435761u) % 100000); // deterministic spread
    return v;
}

TEST(HistogramData, MergeIsCommutative)
{
    const auto samples = sampleSet();
    HistogramData a, b;
    for (std::size_t i = 0; i < samples.size(); ++i)
        (i % 2 == 0 ? a : b).sample(samples[i]);

    HistogramData ab = a, ba = b;
    ab.merge(b);
    ba.merge(a);
    EXPECT_EQ(ab, ba);
    EXPECT_EQ(ab.count, samples.size());
}

TEST(HistogramData, MergeIsAssociative)
{
    const auto samples = sampleSet();
    HistogramData h[3];
    for (std::size_t i = 0; i < samples.size(); ++i)
        h[i % 3].sample(samples[i]);

    HistogramData left = h[0]; // (0+1)+2
    left.merge(h[1]);
    left.merge(h[2]);
    HistogramData right = h[1]; // 0+(1+2)
    right.merge(h[2]);
    HistogramData r0 = h[0];
    r0.merge(right);
    EXPECT_EQ(left, r0);
}

TEST(HistogramData, ShardedMergeMatchesSerialByteForByte)
{
    // jobs=1 vs jobs=4: one histogram fed serially must equal four
    // per-worker shards folded together, whatever the fold order — the
    // invariant that lets sweep workers keep private distributions.
    const auto samples = sampleSet();
    HistogramData serial;
    for (auto v : samples)
        serial.sample(v);

    HistogramData shard[4];
    for (std::size_t i = 0; i < samples.size(); ++i)
        shard[i % 4].sample(samples[i]);

    HistogramData forward; // 0,1,2,3
    for (const auto& s : shard)
        forward.merge(s);
    HistogramData backward; // 3,2,1,0
    for (int i = 3; i >= 0; --i)
        backward.merge(shard[i]);

    EXPECT_EQ(forward, serial);
    EXPECT_EQ(backward, serial);
}

TEST(HistogramData, MergeWithEmptyIsIdentity)
{
    HistogramData a, empty;
    a.sample(42);
    a.sample(7);
    const HistogramData before = a;
    a.merge(empty);
    EXPECT_EQ(a, before);

    HistogramData onto = empty;
    onto.merge(before);
    EXPECT_EQ(onto, before);
}

TEST(HistogramData, PercentileOfEmptyIsZero)
{
    HistogramData h;
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 0.0);
}

TEST(HistogramData, PercentileSingleBucketInterpolates)
{
    // All mass in bucket 0 ([0, 2)): every interior percentile lands
    // inside that bucket's range.
    HistogramData h;
    for (int i = 0; i < 10; ++i)
        h.sample(1);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0); // p<=0 returns min
    const double p50 = h.percentile(50.0);
    EXPECT_GE(p50, 0.0);
    EXPECT_LE(p50, 2.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 1.0); // p>=100 returns max
}

TEST(HistogramData, PercentileSaturatingMaxBucket)
{
    // Samples in the top bucket (bit 63): interpolation must not
    // overflow or return nonsense; endpoints stay exact.
    HistogramData h;
    const std::uint64_t top = std::uint64_t{1} << 63;
    h.sample(top);
    h.sample(top + 1);
    h.sample(std::numeric_limits<std::uint64_t>::max());
    EXPECT_DOUBLE_EQ(h.percentile(0.0), static_cast<double>(top));
    EXPECT_DOUBLE_EQ(
        h.percentile(100.0),
        static_cast<double>(std::numeric_limits<std::uint64_t>::max()));
    const double p50 = h.percentile(50.0);
    EXPECT_GE(p50, static_cast<double>(top));
    EXPECT_LE(p50, std::pow(2.0, 64));
}

TEST(HistogramData, PercentileIsMonotoneInP)
{
    HistogramData h;
    for (std::uint64_t v = 1; v <= 2000; ++v)
        h.sample(v);
    double prev = h.percentile(0.0);
    for (double p = 5.0; p <= 100.0; p += 5.0) {
        const double cur = h.percentile(p);
        EXPECT_GE(cur, prev) << "p=" << p;
        prev = cur;
    }
}

TEST(Histogram, LiveWrapperDelegatesToData)
{
    Histogram h;
    h.sample(8);
    h.sample(9);
    EXPECT_EQ(h.data().count, 2u);
    EXPECT_EQ(h.data().buckets[3], 2u); // 8,9 in [8,16)

    Histogram other;
    other.sample(100);
    h.merge(other);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.max(), 100u);

    h.reset();
    EXPECT_EQ(h.data(), HistogramData{});
}

} // namespace
} // namespace cbsim
