/**
 * @file
 * Mesh tests: X-Y routing distances, latency model, point-to-point
 * ordering (a protocol correctness prerequisite), contention, and
 * flit-hop accounting.
 */

#include <gtest/gtest.h>

#include <vector>

#include "noc/mesh.hh"

namespace cbsim {
namespace {

struct MeshFixture : ::testing::Test
{
    EventQueue eq;
    StatsRegistry stats;
    NocConfig cfg;
    std::unique_ptr<Mesh> mesh;

    void
    build(unsigned w = 8, unsigned h = 8)
    {
        cfg.width = w;
        cfg.height = h;
        mesh = std::make_unique<Mesh>(eq, cfg, stats.scope("noc"));
    }

    Message
    msg(NodeId src, NodeId dst, MsgType t = MsgType::GetS)
    {
        Message m;
        m.type = t;
        m.src = src;
        m.dst = dst;
        m.dstPort = Port::Bank;
        return m;
    }
};

TEST_F(MeshFixture, HopCountIsManhattanDistance)
{
    build();
    EXPECT_EQ(mesh->hopCount(0, 0), 0u);
    EXPECT_EQ(mesh->hopCount(0, 7), 7u);   // same row
    EXPECT_EQ(mesh->hopCount(0, 56), 7u);  // same column
    EXPECT_EQ(mesh->hopCount(0, 63), 14u); // opposite corner
    EXPECT_EQ(mesh->hopCount(9, 18), 2u);  // (1,1) -> (2,2)
}

TEST_F(MeshFixture, DeliveryLatencyMatchesModel)
{
    build();
    Tick arrival = 0;
    mesh->attach(63, Port::Bank, [&](const Message&) { arrival = eq.now(); });
    mesh->send(msg(0, 63));
    eq.run();
    // 14 hops * 6 cycles, single-flit control message, no contention.
    EXPECT_EQ(arrival, 14u * 6u);
    EXPECT_EQ(arrival, mesh->minLatency(msg(0, 63)));
}

TEST_F(MeshFixture, DataMessagePaysSerialization)
{
    build();
    Tick arrival = 0;
    mesh->attach(1, Port::Bank, [&](const Message&) { arrival = eq.now(); });
    mesh->send(msg(0, 1, MsgType::Data));
    eq.run();
    // 1 hop * 6 + (5 flits - 1) tail serialization.
    EXPECT_EQ(arrival, 6u + 4u);
}

TEST_F(MeshFixture, LocalDeliveryBypassesNetwork)
{
    build();
    Tick arrival = 0;
    mesh->attach(5, Port::Bank, [&](const Message&) { arrival = eq.now(); });
    mesh->send(msg(5, 5));
    eq.run();
    EXPECT_EQ(arrival, cfg.localLatency);
    EXPECT_EQ(mesh->flitHops(), 0u); // never entered the network
}

TEST_F(MeshFixture, FlitHopAccounting)
{
    build();
    mesh->attach(3, Port::Bank, [](const Message&) {});
    mesh->send(msg(0, 3));                 // 3 hops x 1 flit
    mesh->send(msg(0, 3, MsgType::Data));  // 3 hops x 5 flits
    eq.run();
    EXPECT_EQ(mesh->flitHops(), 3u + 15u);
    EXPECT_EQ(stats.counter("noc.packets"), 2u);
    EXPECT_EQ(stats.counter("noc.packets.GetS"), 1u);
    EXPECT_EQ(stats.counter("noc.packets.Data"), 1u);
}

TEST_F(MeshFixture, PointToPointOrderingHolds)
{
    // Same source, same destination: X-Y routing + FCFS links must keep
    // message order (the MESI L1 relies on Data-before-Inv ordering).
    build();
    std::vector<std::uint64_t> order;
    mesh->attach(10, Port::Core, [&](const Message& m) {
        order.push_back(m.txn);
    });
    for (std::uint64_t i = 0; i < 20; ++i) {
        Message m = msg(0, 10);
        m.dstPort = Port::Core;
        m.txn = i;
        // Mix sizes so serialization could reorder if the model allowed.
        m.type = i % 3 == 0 ? MsgType::Data : MsgType::Inv;
        mesh->send(m);
    }
    eq.run();
    ASSERT_EQ(order.size(), 20u);
    for (std::uint64_t i = 0; i < 20; ++i)
        EXPECT_EQ(order[i], i);
}

TEST_F(MeshFixture, ContentionDelaysSecondPacket)
{
    build();
    std::vector<Tick> arrivals;
    mesh->attach(1, Port::Bank,
                 [&](const Message&) { arrivals.push_back(eq.now()); });
    // Two 5-flit data packets over the same link, injected together.
    mesh->send(msg(0, 1, MsgType::Data));
    mesh->send(msg(0, 1, MsgType::Data));
    eq.run();
    ASSERT_EQ(arrivals.size(), 2u);
    EXPECT_EQ(arrivals[0], 10u);
    // Second starts crossing after the first's 5-cycle link occupancy.
    EXPECT_EQ(arrivals[1], 15u);
}

TEST_F(MeshFixture, CrossTrafficDoesNotInterfere)
{
    build();
    Tick a = 0, b = 0;
    mesh->attach(1, Port::Bank, [&](const Message&) { a = eq.now(); });
    mesh->attach(15, Port::Bank, [&](const Message&) { b = eq.now(); });
    mesh->send(msg(0, 1));
    mesh->send(msg(8, 15)); // different row, disjoint links
    eq.run();
    EXPECT_EQ(a, 6u);
    EXPECT_EQ(b, 7u * 6u);
}

TEST_F(MeshFixture, UnattachedEndpointPanics)
{
    build(2, 2);
    mesh->send(msg(0, 3));
    EXPECT_THROW(eq.run(), PanicError);
}

TEST_F(MeshFixture, SmallMeshWorks)
{
    build(2, 2);
    Tick arrival = 0;
    mesh->attach(3, Port::Bank, [&](const Message&) { arrival = eq.now(); });
    mesh->send(msg(0, 3));
    eq.run();
    EXPECT_EQ(arrival, 2u * 6u);
}

TEST_F(MeshFixture, ZeroDimensionIsFatal)
{
    NocConfig bad;
    bad.width = 0;
    EXPECT_THROW(Mesh(eq, bad, stats.scope("noc2")), FatalError);
}

} // namespace
} // namespace cbsim
