/**
 * @file
 * Message sizing tests: the flit counts behind the paper's traffic
 * accounting (control = 1 flit, full line = 5 flits, word = 1 flit).
 */

#include <gtest/gtest.h>

#include "noc/message.hh"

namespace cbsim {
namespace {

constexpr unsigned flitB = 16, hdrB = 8, lineB = 64;

unsigned
flitsOf(MsgType t, std::uint32_t word_mask = 0)
{
    Message m;
    m.type = t;
    m.wordMask = word_mask;
    return m.flits(flitB, hdrB, lineB);
}

TEST(Message, ControlMessagesAreOneFlit)
{
    for (MsgType t : {MsgType::GetS, MsgType::GetX, MsgType::Inv,
                      MsgType::InvAck, MsgType::FwdGetS, MsgType::FwdGetX,
                      MsgType::LdThrough, MsgType::GetCB, MsgType::Ack}) {
        EXPECT_EQ(flitsOf(t), 1u) << msgTypeName(t);
    }
}

TEST(Message, LineMessagesAreFiveFlits)
{
    // 8 B header + 64 B line = 72 B -> ceil(72/16) = 5 flits.
    EXPECT_EQ(flitsOf(MsgType::Data), 5u);
    EXPECT_EQ(flitsOf(MsgType::PutM), 5u);
}

TEST(Message, WordMessagesAreOneFlit)
{
    // 8 B header + 8 B word = 16 B -> exactly one flit. This is why the
    // callback hand-off {GetCB, write, wake} moves only 3 flits.
    for (MsgType t : {MsgType::StThrough, MsgType::StCb1, MsgType::StCb0,
                      MsgType::AtomicReq, MsgType::DataWord,
                      MsgType::WakeUp}) {
        EXPECT_EQ(flitsOf(t), 1u) << msgTypeName(t);
    }
}

TEST(Message, WtFlushScalesWithDirtyWords)
{
    EXPECT_EQ(flitsOf(MsgType::WtFlush, 0b1), 1u);       // 16 B
    EXPECT_EQ(flitsOf(MsgType::WtFlush, 0b11), 2u);      // 24 B
    EXPECT_EQ(flitsOf(MsgType::WtFlush, 0xff), 5u);      // 72 B
}

TEST(Message, CarriesLine)
{
    EXPECT_TRUE(carriesLine(MsgType::Data));
    EXPECT_TRUE(carriesLine(MsgType::PutM));
    EXPECT_FALSE(carriesLine(MsgType::WakeUp));
    EXPECT_FALSE(carriesLine(MsgType::GetS));
}

TEST(Message, ToStringIsInformative)
{
    Message m;
    m.type = MsgType::GetCB;
    m.src = 3;
    m.dst = 9;
    m.addr = 0x1000;
    const auto s = m.toString();
    EXPECT_NE(s.find("GetCB"), std::string::npos);
    EXPECT_NE(s.find("1000"), std::string::npos);
}

} // namespace
} // namespace cbsim
