/**
 * @file
 * Line-lock table tests: the MSHR-locking substrate behind RMW atomicity
 * (paper §2.6) and the blocking directory.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/mshr.hh"

namespace cbsim {
namespace {

TEST(LineLockTable, LockUnlockCycle)
{
    LineLockTable t;
    EXPECT_FALSE(t.isLocked(0x1000));
    t.lock(0x1000);
    EXPECT_TRUE(t.isLocked(0x1000));
    EXPECT_TRUE(t.unlock(0x1000).empty());
    EXPECT_FALSE(t.isLocked(0x1000));
}

TEST(LineLockTable, LockKeyIsTheLine)
{
    LineLockTable t;
    t.lock(0x1008); // word inside line 0x1000
    EXPECT_TRUE(t.isLocked(0x1000));
    EXPECT_TRUE(t.isLocked(0x103f));
    EXPECT_FALSE(t.isLocked(0x1040));
    t.unlock(0x1010);
}

TEST(LineLockTable, DeferredOpsReplayInFifoOrder)
{
    LineLockTable t;
    t.lock(0x2000);
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        t.defer(0x2000, [&order, i] { order.push_back(i); });
    auto ops = t.unlock(0x2000);
    for (auto& op : ops)
        op();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(LineLockTable, IndependentLines)
{
    LineLockTable t;
    t.lock(0x1000);
    t.lock(0x2000);
    EXPECT_EQ(t.lockedLines(), 2u);
    t.unlock(0x1000);
    EXPECT_TRUE(t.isLocked(0x2000));
    EXPECT_FALSE(t.isLocked(0x1000));
}

TEST(LineLockTable, DoubleLockIsBug)
{
    LineLockTable t;
    t.lock(0x1000);
    EXPECT_THROW(t.lock(0x1000), PanicError);
}

TEST(LineLockTable, UnlockWithoutLockIsBug)
{
    LineLockTable t;
    EXPECT_THROW(t.unlock(0x1000), PanicError);
}

TEST(LineLockTable, DeferOnUnlockedIsBug)
{
    LineLockTable t;
    EXPECT_THROW(t.defer(0x1000, [] {}), PanicError);
}

TEST(LineLockTable, RelockFromDeferredOp)
{
    // A replayed op may re-lock the line (atomic after atomic).
    LineLockTable t;
    t.lock(0x3000);
    bool replayed = false;
    t.defer(0x3000, [&] {
        t.lock(0x3000);
        replayed = true;
    });
    auto ops = t.unlock(0x3000);
    for (auto& op : ops)
        op();
    EXPECT_TRUE(replayed);
    EXPECT_TRUE(t.isLocked(0x3000));
}

} // namespace
} // namespace cbsim
