/**
 * @file
 * Set-associative array tests: lookup, LRU victimization, pinned-way
 * victim selection, and a randomized cross-check against a reference
 * model.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "mem/cache_array.hh"
#include "sim/rng.hh"

namespace cbsim {
namespace {

struct TagState
{
    int marker = 0;
};

using Array = CacheArray<TagState>;

CacheGeometry
smallGeom()
{
    // 4 sets x 2 ways x 64 B lines.
    return CacheGeometry{4 * 2 * 64, 2, 64};
}

TEST(CacheArray, GeometryDerivesSets)
{
    EXPECT_EQ(CacheGeometry({32 * 1024, 4, 64}).numSets(), 128u);
    EXPECT_EQ(CacheGeometry({256 * 1024, 16, 64}).numSets(), 256u);
}

TEST(CacheArray, MissThenHit)
{
    Array a(smallGeom());
    EXPECT_EQ(a.find(0x1000), nullptr);
    auto* v = a.victim(0x1000);
    a.install(*v, 0x1000);
    auto* line = a.find(0x1000);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->tag, 0x1000u);
    // Any address inside the line hits.
    EXPECT_EQ(a.find(0x1038), line);
    EXPECT_EQ(a.find(0x1040), nullptr);
}

TEST(CacheArray, InstallResetsState)
{
    Array a(smallGeom());
    auto* v = a.victim(0x2000);
    a.install(*v, 0x2000);
    v->state.marker = 99;
    a.invalidate(*v);
    auto* v2 = a.victim(0x2000);
    a.install(*v2, 0x2000);
    EXPECT_EQ(a.find(0x2000)->state.marker, 0);
}

TEST(CacheArray, LruEvictsOldest)
{
    Array a(smallGeom());
    // Set stride: 4 sets * 64 B = 256 B. These three map to set 0.
    const Addr x = 0x0, y = 0x100, z = 0x200;
    a.install(*a.victim(x), x);
    a.install(*a.victim(y), y);
    a.touch(*a.find(x)); // x is now MRU
    auto* v = a.victim(z);
    EXPECT_EQ(v->tag, y); // y is LRU
}

TEST(CacheArray, VictimPrefersInvalidWay)
{
    Array a(smallGeom());
    a.install(*a.victim(0x0), 0x0);
    auto* v = a.victim(0x100);
    EXPECT_FALSE(v->valid);
}

TEST(CacheArray, VictimIfSkipsPinnedWays)
{
    Array a(smallGeom());
    const Addr x = 0x0, y = 0x100, z = 0x200;
    a.install(*a.victim(x), x);
    a.install(*a.victim(y), y);
    // Pin the LRU line (x); victimIf must pick y.
    auto* v = a.victimIf(z, [&](const Array::Line& l) { return l.tag != x; });
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->tag, y);
    // Pin everything: no victim available.
    EXPECT_EQ(a.victimIf(z, [](const Array::Line&) { return false; }),
              nullptr);
}

TEST(CacheArray, ForEachValidVisitsAll)
{
    Array a(smallGeom());
    for (Addr addr : {0x0ULL, 0x40ULL, 0x80ULL})
        a.install(*a.victim(addr), addr);
    int count = 0;
    a.forEachValid([&](Array::Line&) { ++count; });
    EXPECT_EQ(count, 3);
    EXPECT_EQ(a.validCount(), 3u);
}

/** Randomized LRU cross-check against a per-set reference model. */
TEST(CacheArray, MatchesReferenceModelUnderRandomTraffic)
{
    Array a(smallGeom());
    // Reference: per set, list of line addresses in LRU -> MRU order.
    std::map<std::uint64_t, std::vector<Addr>> ref;
    Rng rng(1234);

    for (int i = 0; i < 5000; ++i) {
        const Addr addr = rng.below(16) * 64; // 16 lines over 4 sets
        const auto set = (addr / 64) % 4;
        auto& order = ref[set];
        auto it = std::find(order.begin(), order.end(), addr);

        if (auto* line = a.find(addr)) {
            ASSERT_NE(it, order.end()) << "array hit but reference miss";
            a.touch(*line);
            order.erase(it);
            order.push_back(addr);
        } else {
            ASSERT_EQ(it, order.end()) << "array miss but reference hit";
            auto* v = a.victim(addr);
            if (v->valid) {
                ASSERT_EQ(order.size(), 2u);
                ASSERT_EQ(v->tag, order.front()) << "wrong LRU victim";
                order.erase(order.begin());
            }
            a.install(*v, addr);
            order.push_back(addr);
        }
    }
}

} // namespace
} // namespace cbsim
