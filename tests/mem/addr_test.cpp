/**
 * @file
 * Address-arithmetic tests: alignment, word indexing, bank interleaving.
 */

#include <gtest/gtest.h>

#include "mem/addr.hh"

namespace cbsim {
namespace {

TEST(AddrLayout, Alignment)
{
    EXPECT_EQ(AddrLayout::wordAlign(0x1007), 0x1000u);
    EXPECT_EQ(AddrLayout::wordAlign(0x1008), 0x1008u);
    EXPECT_EQ(AddrLayout::lineAlign(0x10ff), 0x10c0u);
    EXPECT_EQ(AddrLayout::pageAlign(0x12345), 0x12000u);
}

TEST(AddrLayout, WordInLine)
{
    EXPECT_EQ(AddrLayout::wordInLine(0x1000), 0u);
    EXPECT_EQ(AddrLayout::wordInLine(0x1008), 1u);
    EXPECT_EQ(AddrLayout::wordInLine(0x1038), 7u);
    EXPECT_EQ(AddrLayout::wordInLine(0x1040), 0u); // next line wraps
    EXPECT_EQ(AddrLayout::wordInLine(0x100c), 1u); // intra-word offset
}

TEST(AddrLayout, LineAndPageNumbers)
{
    EXPECT_EQ(AddrLayout::lineNumber(0x0), 0u);
    EXPECT_EQ(AddrLayout::lineNumber(0x40), 1u);
    EXPECT_EQ(AddrLayout::pageNumber(0xfff), 0u);
    EXPECT_EQ(AddrLayout::pageNumber(0x1000), 1u);
}

TEST(AddrLayout, BankInterleavesByLine)
{
    // Consecutive lines go to consecutive banks.
    for (unsigned i = 0; i < 128; ++i) {
        EXPECT_EQ(AddrLayout::bankOf(i * 64, 64), i % 64);
    }
    // All words of one line share a bank.
    for (unsigned w = 0; w < 8; ++w)
        EXPECT_EQ(AddrLayout::bankOf(0x1c0 + w * 8, 64),
                  AddrLayout::bankOf(0x1c0, 64));
}

TEST(AddrLayout, BankOfZeroBanksIsBug)
{
    EXPECT_THROW(AddrLayout::bankOf(0x1000, 0), PanicError);
}

} // namespace
} // namespace cbsim
