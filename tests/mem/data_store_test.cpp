/**
 * @file
 * Functional store tests: word granularity, zero-fill, overwrite.
 */

#include <gtest/gtest.h>

#include "mem/data_store.hh"
#include "mem/memory_model.hh"
#include "obs/registry.hh"

namespace cbsim {
namespace {

TEST(DataStore, UnwrittenReadsZero)
{
    DataStore d;
    EXPECT_EQ(d.read(0x1234), 0u);
}

TEST(DataStore, WriteThenRead)
{
    DataStore d;
    d.write(0x1000, 42);
    EXPECT_EQ(d.read(0x1000), 42u);
    d.write(0x1000, 7);
    EXPECT_EQ(d.read(0x1000), 7u);
}

TEST(DataStore, WordGranularAliasing)
{
    DataStore d;
    d.write(0x1004, 99); // inside word 0x1000
    EXPECT_EQ(d.read(0x1000), 99u);
    EXPECT_EQ(d.read(0x1007), 99u);
    EXPECT_EQ(d.read(0x1008), 0u); // next word untouched
}

TEST(DataStore, FootprintCountsDistinctWords)
{
    DataStore d;
    d.write(0x0, 1);
    d.write(0x8, 2);
    d.write(0x4, 3); // aliases word 0x0
    EXPECT_EQ(d.footprintWords(), 2u);
}

TEST(MemoryModel, ReadCompletesAfterLatency)
{
    EventQueue eq;
    StatsRegistry stats;
    MemoryModel mem(eq, 160, stats.scope("mem"));
    Tick done_at = 0;
    eq.schedule(10, [&] {
        mem.read(0x1000, [&] { done_at = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(done_at, 170u);
    EXPECT_EQ(stats.counter("mem.reads"), 1u);
}

TEST(MemoryModel, WritesAreCounted)
{
    EventQueue eq;
    StatsRegistry stats;
    MemoryModel mem(eq, 160, stats.scope("mem"));
    mem.write(0x40);
    mem.write(0x80);
    EXPECT_EQ(stats.counter("mem.writes"), 2u);
}

} // namespace
} // namespace cbsim
