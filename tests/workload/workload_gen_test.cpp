/**
 * @file
 * Workload-generator unit tests: profile well-formedness, program
 * structure, layout disjointness, and per-flavour encoding differences.
 */

#include <gtest/gtest.h>

#include <set>

#include "workload/program_gen.hh"
#include "workload/suite.hh"

namespace cbsim {
namespace {

TEST(Profiles, AllAreWellFormed)
{
    for (const auto& p : benchmarkSuite()) {
        EXPECT_FALSE(p.name.empty());
        EXPECT_GE(p.phases, 1u);
        EXPECT_GE(p.numLocks, 1u);
        EXPECT_GT(p.workMean, 0u);
        EXPECT_GE(p.workImbalance, 0.0);
        EXPECT_LE(p.workImbalance, 1.0);
        EXPECT_LE(p.hotLockFraction, 1.0);
        EXPECT_GT(p.approxWorkPerThread(), 0u);
    }
}

TEST(Profiles, ScaledReducesVolume)
{
    const Profile& p = benchmark("ocean");
    Profile q = scaled(p, 0.25);
    EXPECT_LE(q.phases, p.phases);
    EXPECT_LT(q.workMean, p.workMean);
    EXPECT_GE(q.phases, 1u);
    // Scaling never zeroes out locks if the profile had them.
    EXPECT_GE(q.lockAcqPerPhase, 1u);
}

TEST(Profiles, QuickSuiteIsASubset)
{
    for (const auto& p : quickSuite())
        EXPECT_EQ(benchmark(p.name).name, p.name);
}

TEST(WorkloadGen, ProducesOneProgramPerThread)
{
    auto w = buildWorkload(benchmark("fmm"), 16, SyncFlavor::CbOne,
                           LockAlgo::Clh,
                           BarrierAlgo::TreeSenseReversing);
    ASSERT_EQ(w.programs.size(), 16u);
    for (const auto& prog : w.programs)
        EXPECT_GT(prog.size(), 10u);
    EXPECT_EQ(w.phaseWords.size(), 16u);
    EXPECT_EQ(w.guardWords.size(), w.locks.size());
}

TEST(WorkloadGen, GuardExpectationsSumToTotalAcquisitions)
{
    const Profile& p = benchmark("radiosity");
    auto w = buildWorkload(p, 16, SyncFlavor::Mesi,
                           LockAlgo::TestAndTestAndSet,
                           BarrierAlgo::SenseReversing);
    std::uint64_t total = 0;
    for (auto c : w.expectedGuardCounts)
        total += c;
    EXPECT_EQ(total, 16ULL * p.phases * p.lockAcqPerPhase);
}

TEST(WorkloadGen, HotLockGetsTheLionShare)
{
    const Profile& p = benchmark("raytrace"); // hot fraction 0.5
    auto w = buildWorkload(p, 16, SyncFlavor::CbAll, LockAlgo::Clh,
                           BarrierAlgo::TreeSenseReversing);
    std::uint64_t total = 0;
    for (auto c : w.expectedGuardCounts)
        total += c;
    EXPECT_GT(w.expectedGuardCounts[0], total / 3);
}

TEST(WorkloadGen, PipelineProfilesGetSignals)
{
    auto dedup = buildWorkload(benchmark("dedup"), 8, SyncFlavor::CbOne,
                               LockAlgo::Clh,
                               BarrierAlgo::TreeSenseReversing);
    EXPECT_EQ(dedup.signals.size(), 8u);
    auto fft = buildWorkload(benchmark("fft"), 8, SyncFlavor::CbOne,
                             LockAlgo::Clh,
                             BarrierAlgo::TreeSenseReversing);
    EXPECT_TRUE(fft.signals.empty());
}

TEST(WorkloadGen, FlavorsChangeEncodingNotStructure)
{
    const Profile& p = benchmark("ocean");
    auto mesi = buildWorkload(p, 8, SyncFlavor::Mesi, LockAlgo::Clh,
                              BarrierAlgo::TreeSenseReversing);
    auto cb = buildWorkload(p, 8, SyncFlavor::CbOne, LockAlgo::Clh,
                            BarrierAlgo::TreeSenseReversing);
    EXPECT_EQ(mesi.expectedGuardCounts, cb.expectedGuardCounts);

    // The MESI encoding contains no callback reads; the CB one does.
    auto count_op = [](const Program& prog, Opcode op) {
        std::size_t n = 0;
        for (std::size_t i = 0; i < prog.size(); ++i)
            n += prog.at(i).op == op ? 1 : 0;
        return n;
    };
    EXPECT_EQ(count_op(mesi.programs[1], Opcode::LdCb), 0u);
    EXPECT_GT(count_op(cb.programs[1], Opcode::LdCb), 0u);
    EXPECT_EQ(count_op(mesi.programs[1], Opcode::SelfInvl), 0u);
    EXPECT_GT(count_op(cb.programs[1], Opcode::SelfInvl), 0u);
}

TEST(WorkloadGen, LayoutInitsAreDisjointWords)
{
    auto w = buildWorkload(benchmark("barnes"), 16, SyncFlavor::CbAll,
                           LockAlgo::Clh,
                           BarrierAlgo::TreeSenseReversing);
    std::set<Addr> words;
    for (const auto& [addr, value] : w.layout.initWrites()) {
        EXPECT_TRUE(words.insert(AddrLayout::wordAlign(addr)).second)
            << "duplicate init at " << std::hex << addr;
    }
}

TEST(SyncLayoutUnit, SeparatesLineAndPageRegions)
{
    SyncLayout layout;
    const Addr l1 = layout.allocLine();
    const Addr page = layout.allocPage();
    const Addr l2 = layout.allocLine();
    // Consecutive line allocations stay consecutive even when pages are
    // allocated in between (the bank-0 clustering regression).
    EXPECT_EQ(l2, l1 + AddrLayout::lineBytes);
    EXPECT_GE(page, 0x8000'0000ULL);
    EXPECT_EQ(page % AddrLayout::pageBytes, 0u);
}

TEST(SyncLayoutUnit, PrivateLinesNeverSharePagesAcrossThreads)
{
    SyncLayout layout;
    std::set<Addr> pages_by_thread[3];
    for (int round = 0; round < 200; ++round) {
        for (CoreId t = 0; t < 3; ++t) {
            const Addr a = layout.allocPrivateLine(t);
            pages_by_thread[t].insert(AddrLayout::pageNumber(a));
        }
    }
    for (int i = 0; i < 3; ++i) {
        for (int j = i + 1; j < 3; ++j) {
            for (Addr p : pages_by_thread[i])
                EXPECT_EQ(pages_by_thread[j].count(p), 0u);
        }
    }
}

} // namespace
} // namespace cbsim
