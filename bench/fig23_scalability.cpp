/**
 * @file
 * Figure 23 reproduction — can callbacks make up for non-scalable
 * synchronization? TreeSR barrier fixed, lock implementation varied
 * between T&T&S (naive) and CLH (scalable); geometric mean of total
 * execution time and network traffic over all benchmarks for
 * Invalidation, BackOff-10, CB-All, and CB-One.
 *
 * Paper result: scalable locks matter for Invalidation (in time) but
 * NOT for callbacks — naive sync with callbacks is as good as scalable
 * sync with callbacks.
 */

#include "bench_common.hh"

namespace cbsim::bench {
namespace {

const Technique kTechniques[] = {
    Technique::Invalidation, Technique::BackOff10, Technique::CbAll,
    Technique::CbOne,
};

std::string
key(const std::string& bench_name, Technique t, bool naive)
{
    return "fig23/" + bench_name + "/" + techniqueName(t) +
           (naive ? "/T&T&S" : "/CLH");
}

void
printTables()
{
    std::cout << "\n=== Figure 23: naive (T&T&S) vs scalable (CLH) "
                 "locks, TreeSR barrier fixed ===\n"
              << "(geomean over all benchmarks, normalized to "
                 "Invalidation/CLH)\n\n";
    TablePrinter table(std::cout,
                       {"config", "exec-time", "net-traffic"}, 28, 14);

    std::map<std::string, double> time_gm, traffic_gm;
    std::vector<double> base_time, base_traffic;
    for (const auto& p : figSuite()) {
        base_time.push_back(static_cast<double>(
            result(key(p.name, Technique::Invalidation, false))
                .run.cycles));
        base_traffic.push_back(static_cast<double>(
            result(key(p.name, Technique::Invalidation, false))
                .run.flitHops));
    }
    for (Technique t : kTechniques) {
        for (bool naive : {false, true}) {
            std::vector<double> times, traffics;
            std::size_t i = 0;
            for (const auto& p : figSuite()) {
                const auto& r = result(key(p.name, t, naive)).run;
                times.push_back(static_cast<double>(r.cycles) /
                                base_time[i]);
                traffics.push_back(static_cast<double>(r.flitHops) /
                                   base_traffic[i]);
                ++i;
            }
            const std::string name = std::string(techniqueName(t)) +
                                     (naive ? " + T&T&S" : " + CLH");
            table.row({name, norm(geomean(times)),
                       norm(geomean(traffics))});
        }
    }
    table.gap();
    std::cout
        << "Paper shape check: Invalidation degrades in time with "
           "T&T&S; the callback rows are nearly identical between "
           "T&T&S and CLH.\n";
}

void
registerCells()
{
    for (const auto& p : figSuite()) {
        for (Technique t : kTechniques) {
            for (bool naive : {false, true}) {
                SyncChoice choice;
                choice.lock = naive ? LockAlgo::TestAndTestAndSet
                                    : LockAlgo::Clh;
                choice.barrier = BarrierAlgo::TreeSenseReversing;
                registerJob(SweepJob::forProfile(
                    key(p.name, t, naive), scaled(p, mode().scale), t,
                    mode().cores, choice));
            }
        }
    }
}

const BenchRegistrar reg({23, "fig23_scalability",
                          "Fig. 23 — naive (T&T&S) vs scalable (CLH) "
                          "locks",
                          registerCells, printTables});

} // namespace
} // namespace cbsim::bench
