/**
 * @file
 * Ablation — message-count claim (paper §2.1): communicating one new
 * value takes 5 messages with invalidation ({write=GetX, Inv, InvAck,
 * load=GetS, Data}) but only 3 with a callback ({GetCB, write, wake}).
 *
 * A two-core producer/consumer microbenchmark counts actual on-chip
 * messages per communicated value. The raw counts also include each
 * writer's own completion response (Data for MESI, Ack for VIPS), which
 * the paper's 5-vs-3 accounting excludes from both sides; the table
 * reports both views.
 */

#include "bench_common.hh"

namespace cbsim::bench {
namespace {

constexpr Addr kFlag = 0x10000;
constexpr unsigned kRounds = 50;

/** Consumer spins for value i+1 in round i; producer publishes it. */
ExperimentResult
runHandoff(Technique tech)
{
    ChipConfig cfg = ChipConfig::forTechnique(tech, 4);
    Chip* chip = new Chip(cfg); // leaked deliberately: result snapshot
    const SyncFlavor flavor = syncFlavorFor(tech);

    Assembler p;
    for (unsigned i = 0; i < kRounds; ++i) {
        p.workImm(4000);
        p.movImm(1, kFlag);
        if (flavor == SyncFlavor::Mesi)
            p.stImm(i + 1, 1).sync = true;
        else
            p.stThroughImm(i + 1, 1);
    }
    chip->setProgram(0, p.assemble());

    // Consumer: one spin loop consuming each successive value (r4 holds
    // the last value seen; the producer paces writes far apart so each
    // write finds the consumer already waiting — the steady state the
    // paper's 5-vs-3 accounting describes).
    Assembler c;
    c.movImm(1, kFlag);
    c.movImm(4, 0);       // last value seen
    c.movImm(5, kRounds); // final value
    switch (flavor) {
      case SyncFlavor::Mesi:
        c.label("loop");
        c.ld(2, 1).sync = true;
        c.beq(2, 4, "loop"); // unchanged: spin locally
        c.mov(4, 2);
        c.bne(4, 5, "loop");
        break;
      case SyncFlavor::VipsBackoff:
        c.label("loop");
        c.ldThrough(2, 1).spin = true;
        c.beq(2, 4, "loop");
        c.mov(4, 2);
        c.bne(4, 5, "loop");
        break;
      default:
        c.ldThrough(2, 1); // the one-time §3.3 guard
        c.mov(4, 2);
        c.beq(4, 5, "out");
        c.label("loop");
        c.ldCb(2, 1);
        c.beq(2, 4, "loop"); // spurious wake: re-block
        c.mov(4, 2);
        c.bne(4, 5, "loop");
        c.label("out");
        break;
    }
    chip->setProgram(1, c.assemble());
    for (CoreId i = 2; i < 4; ++i) {
        Assembler idle;
        chip->setProgram(i, idle.assemble());
    }

    ExperimentResult res;
    res.run = chip->run();
    res.energy = computeEnergy(res.run);
    return res;
}

void
printTables()
{
    std::cout << "\n=== Ablation: messages per communicated value "
                 "(paper §2.1: invalidation 5 vs callback 3) ===\n\n";
    TablePrinter table(
        std::cout,
        {"technique", "msgs/value", "excl-writer-rsp", "flit-hops/val"},
        16, 18);
    for (Technique t : {Technique::Invalidation, Technique::CbOne}) {
        const auto& r =
            result(std::string("messages/") + techniqueName(t)).run;
        const double per_value =
            static_cast<double>(r.packets) / kRounds;
        // The writer's completion response (Data under MESI, Ack under
        // VIPS) is excluded by the paper's accounting on both sides.
        const double excl = per_value - 1.0;
        table.row({techniqueName(t), fmt(per_value, 2), fmt(excl, 2),
                   fmt(static_cast<double>(r.flitHops) / kRounds, 1)});
    }
    table.gap();
    std::cout
        << "Expected: ~3 for CB-One ({callback, write, wake}, §2.1). The\n"
           "paper counts the idealized invalidation hand-off as 5\n"
           "({write, inv, ack, load, data}); a real directory MESI also\n"
           "pays owner forwarding on the reader's refetch (FwdGetS +\n"
           "owner data), which this bench measures (~7). Either way the\n"
           "callback moves fewer, smaller messages (see flit-hops).\n";
}

void
registerCells()
{
    for (Technique t : {Technique::Invalidation, Technique::CbOne}) {
        registerCell(std::string("messages/") + techniqueName(t),
                     [t] { return runHandoff(t); });
    }
}

const BenchRegistrar reg({31, "ablation_messages",
                          "§2.1 — messages per communicated value "
                          "(5 vs 3)",
                          registerCells, printTables});

} // namespace
} // namespace cbsim::bench
