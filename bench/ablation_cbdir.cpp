/**
 * @file
 * Ablation — callback-directory size (paper §5.2): the paper evaluates
 * 4 entries per bank and reports that 16, 64, and 256 entries show "no
 * noticeable change". This bench sweeps the sizes (including a
 * 1-entry stress case the paper does not show) on the most
 * lock-intensive workloads.
 */

#include "bench_common.hh"

namespace cbsim::bench {
namespace {

const unsigned kSizes[] = {1, 4, 16, 64, 256};

std::string
key(const std::string& bench_name, Technique t, unsigned entries)
{
    return "cbdir/" + bench_name + "/" + techniqueName(t) + "/" +
           std::to_string(entries);
}

void
printTables()
{
    std::cout << "\n=== Ablation: callback directory entries per bank "
                 "(execution time normalized to 4 entries) ===\n\n";
    for (Technique t : {Technique::CbAll, Technique::CbOne}) {
        std::cout << "--- " << techniqueName(t) << " ---\n";
        std::vector<std::string> headers = {"benchmark"};
        for (unsigned s : kSizes)
            headers.push_back(std::to_string(s) + "e");
        headers.push_back("evict@4");
        TablePrinter table(std::cout, headers, 16, 10);
        for (const auto& p : quickSuite()) {
            const double base = static_cast<double>(
                result(key(p.name, t, 4)).run.cycles);
            std::vector<std::string> cells = {p.name};
            for (unsigned s : kSizes) {
                cells.push_back(norm(
                    static_cast<double>(
                        result(key(p.name, t, s)).run.cycles) /
                    base));
            }
            cells.push_back(std::to_string(
                result(key(p.name, t, 4)).run.cbdirEvictions));
            table.row(cells);
        }
        table.gap();
    }
    std::cout << "Paper claim check: 4 vs 16/64/256 entries should be "
                 "within noise (§5.2); only the 1-entry stress case may "
                 "deviate.\n";
}

void
registerCells()
{
    for (const auto& p : quickSuite()) {
        for (Technique t : {Technique::CbAll, Technique::CbOne}) {
            for (unsigned s : kSizes) {
                registerJob(SweepJob::forProfile(
                    key(p.name, t, s), scaled(p, mode().scale), t,
                    mode().cores, SyncChoice::scalable(), s));
            }
        }
    }
}

const BenchRegistrar reg({30, "ablation_cbdir",
                          "§5.2 — callback-directory size sweep "
                          "(1…256 entries/bank)",
                          registerCells, printTables});

} // namespace
} // namespace cbsim::bench
