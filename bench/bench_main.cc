/**
 * @file
 * Shared driver for every bench binary (and bench_all, which links all
 * modules). Collects the registered modules' SweepJobs, executes them
 * on a SweepRunner worker pool, writes one JSON artifact per module,
 * and prints the paper-shaped tables in module order.
 */

#include "bench_common.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <map>
#include <memory>
#include <set>

#include "debug/debug_config.hh"
#include "harness/journal.hh"
#include "harness/json.hh"
#include "harness/result_codec.hh"
#include "report/json_value.hh"
#include "sim/log.hh"

namespace cbsim::bench {

namespace {

std::vector<BenchModule>&
modules()
{
    static std::vector<BenchModule> m;
    return m;
}

/** (module name, job) in registration order. */
std::vector<std::pair<std::string, SweepJob>>&
pendingJobs()
{
    static std::vector<std::pair<std::string, SweepJob>> jobs;
    return jobs;
}

std::string&
currentModule()
{
    static std::string name;
    return name;
}

std::map<std::string, ExperimentResult>&
cache()
{
    static std::map<std::string, ExperimentResult> c;
    return c;
}

void
usage(const char* argv0)
{
    std::cout
        << "usage: " << argv0 << " [options]\n"
        << "  --jobs N      worker threads for the sweep (default: all "
           "hardware threads);\n"
        << "                results are bit-identical regardless of N\n"
        << "  --quick       16 cores, scaled-down workloads (smoke runs)\n"
        << "  --smoke       4 cores, tiny workloads, reduced suite "
           "(ctest tier-2)\n"
        << "  --out-dir D   JSON artifact directory (default: "
           "bench/results)\n"
        << "  --no-json     skip writing JSON artifacts\n"
        << "  --max-failures N  stop claiming new jobs after N failures "
           "(default: run all)\n"
        << "  --job-timeout-s S  per-job wall-clock budget in seconds; "
           "timed-out jobs\n"
        << "                become failed rows (default: off)\n"
        << "  --check-invariants  run the protocol invariant checker in "
           "every job\n"
        << "                (docs/ROBUSTNESS.md; panics on violation)\n"
        << "  --profile     print per-module wall time and events/sec "
           "to stderr\n"
        << "                (host-dependent; never written into the "
           "JSON artifacts)\n"
        << "  --isolate     fork each job into a child process; a "
           "crashing cell becomes\n"
        << "                a 'crashed' row instead of killing the "
           "sweep (docs/ROBUSTNESS.md)\n"
        << "  --resume      replay completed cells from the journal of "
           "an interrupted\n"
        << "                sweep; the final artifact is byte-identical "
           "to an uninterrupted run\n"
        << "  --retries N   re-run failed/timed-out/crashed cells up to "
           "N extra times\n"
        << "                with bounded deterministic backoff "
           "(default: 0)\n"
        << "  --quarantine-dir D  repro bundles for cells that fail "
           "every attempt\n"
        << "                (default: <out-dir>/../quarantine)\n"
        << "  --only-key K  run only the cell with this exact key "
           "(repeatable); repro\n"
        << "                mode: no artifacts, no tables — used by "
           "quarantine bundles\n"
        << "  --only NAME   run only the named module (repeatable; "
           "bench_all)\n"
        << "  --list        list the linked modules and exit\n"
        << "  --help        this text\n";
}

} // namespace

BenchMode&
mode()
{
    static BenchMode m;
    return m;
}

const std::vector<Profile>&
figSuite()
{
    static const std::vector<Profile> quick = quickSuite();
    return mode().smoke ? quick : benchmarkSuite();
}

BenchRegistrar::BenchRegistrar(BenchModule m)
{
    modules().push_back(std::move(m));
}

void
registerJob(SweepJob job)
{
    if (currentModule().empty())
        fatal("registerJob outside a module's registerCells");
    pendingJobs().emplace_back(currentModule(), std::move(job));
}

void
registerCell(const std::string& key, std::function<ExperimentResult()> fn)
{
    registerJob(SweepJob::custom(key, std::move(fn)));
}

const ExperimentResult&
result(const std::string& key)
{
    auto it = cache().find(key);
    if (it == cache().end())
        fatal("bench cell not run: ", key);
    return it->second;
}

/** Parse a --jobs value; rejects anything but a plain decimal count. */
bool
parseJobs(const std::string& s, unsigned& out)
{
    if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos)
        return false;
    out = static_cast<unsigned>(std::stoul(s));
    return true;
}

/** Parse a --job-timeout-s value: a non-negative decimal number. */
bool
parseSeconds(const std::string& s, double& out)
{
    if (s.empty())
        return false;
    char* end = nullptr;
    out = std::strtod(s.c_str(), &end);
    return end == s.c_str() + s.size() && out >= 0.0;
}

int
benchMain(int argc, char** argv)
{
    bool list_only = false;
    bool check_invariants = false;
    unsigned max_failures = 0;
    double job_timeout_s = 0.0;
    std::vector<std::string> only;
    std::vector<std::string> only_keys;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--quick") {
            mode().cores = 16;
            mode().scale = 0.25;
            mode().microIters = 6;
        } else if (a == "--smoke") {
            mode().smoke = true;
            mode().cores = 4;
            mode().scale = 0.1;
            mode().microIters = 2;
        } else if (a == "--jobs" && i + 1 < argc) {
            if (!parseJobs(argv[++i], mode().jobs)) {
                std::cerr << "--jobs: not a number: " << argv[i] << "\n";
                return 2;
            }
        } else if (a.rfind("--jobs=", 0) == 0) {
            if (!parseJobs(a.substr(7), mode().jobs)) {
                std::cerr << "--jobs: not a number: " << a.substr(7)
                          << "\n";
                return 2;
            }
        } else if (a == "--out-dir" && i + 1 < argc) {
            mode().outDir = argv[++i];
        } else if (a.rfind("--out-dir=", 0) == 0) {
            mode().outDir = a.substr(10);
        } else if (a == "--no-json") {
            mode().writeJson = false;
        } else if (a == "--max-failures" && i + 1 < argc) {
            if (!parseJobs(argv[++i], max_failures)) {
                std::cerr << "--max-failures: not a number: " << argv[i]
                          << "\n";
                return 2;
            }
        } else if (a.rfind("--max-failures=", 0) == 0) {
            if (!parseJobs(a.substr(15), max_failures)) {
                std::cerr << "--max-failures: not a number: "
                          << a.substr(15) << "\n";
                return 2;
            }
        } else if (a == "--job-timeout-s" && i + 1 < argc) {
            if (!parseSeconds(argv[++i], job_timeout_s)) {
                std::cerr << "--job-timeout-s: not a duration: "
                          << argv[i] << "\n";
                return 2;
            }
        } else if (a.rfind("--job-timeout-s=", 0) == 0) {
            if (!parseSeconds(a.substr(16), job_timeout_s)) {
                std::cerr << "--job-timeout-s: not a duration: "
                          << a.substr(16) << "\n";
                return 2;
            }
        } else if (a == "--check-invariants") {
            check_invariants = true;
        } else if (a == "--profile") {
            mode().profile = true;
        } else if (a == "--isolate") {
            mode().isolate = true;
        } else if (a == "--resume") {
            mode().resume = true;
        } else if (a == "--retries" && i + 1 < argc) {
            if (!parseJobs(argv[++i], mode().retries)) {
                std::cerr << "--retries: not a number: " << argv[i]
                          << "\n";
                return 2;
            }
        } else if (a.rfind("--retries=", 0) == 0) {
            if (!parseJobs(a.substr(10), mode().retries)) {
                std::cerr << "--retries: not a number: " << a.substr(10)
                          << "\n";
                return 2;
            }
        } else if (a == "--quarantine-dir" && i + 1 < argc) {
            mode().quarantineDir = argv[++i];
        } else if (a.rfind("--quarantine-dir=", 0) == 0) {
            mode().quarantineDir = a.substr(17);
        } else if (a == "--only-key" && i + 1 < argc) {
            only_keys.push_back(argv[++i]);
        } else if (a.rfind("--only-key=", 0) == 0) {
            only_keys.push_back(a.substr(11));
        } else if (a == "--only" && i + 1 < argc) {
            only.push_back(argv[++i]);
        } else if (a == "--list") {
            list_only = true;
        } else if (a == "--help" || a == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::cerr << "unknown option: " << a << "\n";
            usage(argv[0]);
            return 2;
        }
    }

    auto mods = modules();
    std::sort(mods.begin(), mods.end(),
              [](const BenchModule& a, const BenchModule& b) {
                  return a.order < b.order;
              });
    if (!only.empty()) {
        std::vector<BenchModule> selected;
        for (const auto& name : only) {
            const auto it = std::find_if(
                mods.begin(), mods.end(),
                [&](const BenchModule& m) { return m.name == name; });
            if (it == mods.end()) {
                std::cerr << "unknown module: " << name
                          << " (see --list)\n";
                return 2;
            }
            selected.push_back(*it);
        }
        mods = std::move(selected);
    }
    if (list_only) {
        for (const auto& m : mods)
            std::cout << m.name << "  —  " << m.title << "\n";
        return 0;
    }

    for (const auto& m : mods) {
        currentModule() = m.name;
        m.registerCells();
    }
    currentModule().clear();

    // --only-key repro mode (what a quarantine bundle's rerun line
    // invokes): run just the named cells, skip artifacts and tables.
    if (!only_keys.empty()) {
        auto& pending = pendingJobs();
        std::vector<std::pair<std::string, SweepJob>> kept;
        for (const auto& want : only_keys) {
            const auto it = std::find_if(
                pending.begin(), pending.end(),
                [&](const auto& p) { return p.second.key == want; });
            if (it == pending.end()) {
                std::cerr << "unknown cell key: " << want << "\n";
                return 2;
            }
            kept.push_back(*it);
        }
        pending = std::move(kept);
        mode().writeJson = false;
    }

    // Process-wide debug defaults: every chip built by this process's
    // jobs inherits these (plus the per-job label the runner installs).
    DebugConfig& dbg = DebugConfig::processDefaults();
    if (check_invariants)
        dbg.checkInvariants = true;
    if (dbg.forensicDir.empty())
        dbg.forensicDir = mode().outDir;
    // Bench artifacts always carry the contention[] attribution table
    // (schema v4); the bounded shards keep the cost negligible.
    dbg.obs.attribution = true;

    // Sweep-level sizing annotations folded into every cell's journal
    // hash, so a --smoke journal can never satisfy a full-size sweep
    // even when cell keys coincide (result_codec.hh).
    const std::string sweep_meta =
        "cores=" + std::to_string(mode().cores) +
        ";scale=" + JsonWriter::number(mode().scale) +
        ";micro_iters=" + std::to_string(mode().microIters);
    const auto journal_path = [&](const std::string& module_name) {
        return mode().outDir + "/" + module_name + ".json.journal";
    };

    // The exact command a quarantined cell's repro bundle re-runs:
    // this invocation minus the flags that must not replay.
    std::string rerun_prefix = argv[0];
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--resume")
            continue;
        if ((a == "--retries" || a == "--only-key" ||
             a == "--max-failures") &&
            i + 1 < argc) {
            ++i;
            continue;
        }
        if (a.rfind("--retries=", 0) == 0 ||
            a.rfind("--only-key=", 0) == 0 ||
            a.rfind("--max-failures=", 0) == 0)
            continue;
        rerun_prefix += " " + a;
    }

    std::string quarantine_dir = mode().quarantineDir;
    if (quarantine_dir.empty()) {
        const std::filesystem::path out(mode().outDir);
        quarantine_dir =
            (out.has_parent_path() ? out.parent_path() / "quarantine"
                                   : std::filesystem::path("quarantine"))
                .string();
    }

    // --resume: load every module's journal; a cell whose config hash
    // matches a journaled line is replayed instead of re-run.
    std::map<std::string, std::string> journal_rows; // hash -> raw row
    if (mode().resume && mode().writeJson) {
        for (const auto& m : mods)
            for (auto& e : ResultJournal::load(journal_path(m.name)))
                journal_rows[e.cell] = std::move(e.row);
    }

    SweepRunner runner(mode().jobs);
    runner.setMaxFailures(max_failures);
    runner.setJobTimeoutS(job_timeout_s);
    runner.setIsolate(mode().isolate);
    runner.setRetries(mode().retries);
    runner.setQuarantineDir(quarantine_dir);
    runner.setRerunPrefix(rerun_prefix);

    struct ReplayedCell
    {
        std::string row; ///< verbatim journal bytes for the artifact
        JobOutcome outcome;
    };
    std::map<std::string, ReplayedCell> replayed_cells; // by cell key
    std::map<std::string, std::size_t> key_to_index;
    std::vector<std::string> index_module; // runner index -> module
    std::set<std::string> seen_keys;
    for (auto& [module_name, job] : pendingJobs()) {
        if (!seen_keys.insert(job.key).second)
            fatal("duplicate bench cell key: ", job.key);
        const auto jr = journal_rows.find(jobConfigHash(
            job, ResultSink::kSchemaVersion, sweep_meta));
        if (jr != journal_rows.end()) {
            std::string parse_error;
            const JsonValue row =
                JsonValue::parse(jr->second, parse_error);
            if (parse_error.empty() &&
                row.getString("key") == job.key) {
                ReplayedCell cell;
                cell.row = jr->second;
                cell.outcome.ok = true;
                cell.outcome.status = JobStatus::Ok;
                cell.outcome.attempts = 0; // producing run's count is
                                           // inside the replayed row
                cell.outcome.result = parseRowResult(row);
                replayed_cells.emplace(job.key, std::move(cell));
                continue;
            }
        }
        key_to_index.emplace(job.key, runner.jobCount());
        index_module.push_back(module_name);
        runner.add(job);
    }

    // Journals are written as cells complete, one flushed line each, so
    // a killed sweep only loses the in-flight cell (--resume replays
    // the rest). Only successful cells are journaled: failures are
    // retried by the resumed run instead of replayed.
    std::map<std::string, std::unique_ptr<ResultJournal>> journals;
    if (mode().writeJson)
        for (const auto& m : mods)
            journals.emplace(m.name, std::make_unique<ResultJournal>(
                                         journal_path(m.name)));

    const std::size_t total = runner.jobCount();
    std::cout << "cbsim bench: " << total << " simulations on "
              << runner.workers() << " worker thread(s)";
    if (!replayed_cells.empty())
        std::cout << " (" << replayed_cells.size()
                  << " cells replayed from journal)";
    std::cout << "\n";

    const auto t0 = std::chrono::steady_clock::now();
    std::size_t done = 0;
    auto outcomes =
        runner.run([&](std::size_t i, const JobOutcome& out) {
            ++done;
            std::cout << "[" << done << "/" << total << "] "
                      << runner.job(i).key << "  "
                      << fmt(out.wallMs, 1) << " ms";
            if (!out.ok) {
                std::cout << "  " << jobStatusName(out.status);
            }
            std::cout << "\n";
            if (out.ok && !journals.empty()) {
                const SweepJob& job = runner.job(i);
                const auto it = journals.find(index_module[i]);
                if (it != journals.end())
                    it->second->append(
                        jobConfigHash(job, ResultSink::kSchemaVersion,
                                      sweep_meta),
                        serializeRunRow(job, out));
            }
        });
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    std::cout << "sweep finished in " << fmt(wall_s, 2) << " s\n";

    // Publish results for the table printers (failed cells print as
    // zeros and are reported at the end; replayed cells contribute the
    // reconstruction parsed from their journal row).
    for (std::size_t i = 0; i < outcomes.size(); ++i)
        cache()[runner.job(i).key] = outcomes[i].result;
    for (const auto& [key, cell] : replayed_cells)
        cache()[key] = cell.outcome.result;

    for (const auto& m : mods) {
        ResultSink sink(m.name);
        sink.meta("cores", std::to_string(mode().cores));
        sink.meta("scale", JsonWriter::number(mode().scale));
        sink.meta("micro_iters", std::to_string(mode().microIters));
        for (const auto& [module_name, job] : pendingJobs()) {
            if (module_name != m.name)
                continue;
            const auto rc = replayed_cells.find(job.key);
            if (rc != replayed_cells.end())
                sink.addReplayed(job, rc->second.row,
                                 rc->second.outcome);
            else
                sink.add(job, outcomes[key_to_index.at(job.key)]);
        }
        if (mode().writeJson) {
            const std::string path =
                mode().outDir + "/" + m.name + ".json";
            sink.writeFile(path);
            std::cout << "wrote " << path << " (" << sink.size()
                      << " runs)\n";
            const auto jit = journals.find(m.name);
            if (jit != journals.end() && jit->second->degraded())
                std::cerr << "warning: journal write failed for "
                          << m.name
                          << "; --resume cannot skip its cells\n";
            if (sink.allOk()) {
                // The artifact now supersedes the journal.
                ResultJournal::removeFile(journal_path(m.name));
            } else {
                std::cerr << "journal kept: " << journal_path(m.name)
                          << " (re-run with --resume to retry the "
                             "failed cells)\n";
            }
        }
    }

    if (mode().profile) {
        // Host-perf summary: stderr only, never into the JSON artifacts
        // (docs/RESULTS.md determinism contract; schema: docs/PERF.md).
        std::uint64_t all_events = 0;
        double all_wall = 0.0;
        for (const auto& m : mods) {
            std::uint64_t events = 0;
            double wall_ms = 0.0;
            for (const auto& [module_name, job] : pendingJobs()) {
                if (module_name != m.name)
                    continue;
                const auto it = key_to_index.find(job.key);
                if (it == key_to_index.end())
                    continue; // replayed: no host-perf numbers
                events += outcomes[it->second].result.run.events;
                wall_ms += outcomes[it->second].wallMs;
            }
            all_events += events;
            all_wall += wall_ms;
            std::cerr << "[profile] " << m.name << ": " << events
                      << " events, " << fmt(wall_ms, 1) << " ms, "
                      << fmt(wall_ms > 0.0
                                 ? static_cast<double>(events) /
                                       (wall_ms / 1e3) / 1e6
                                 : 0.0,
                             2)
                      << " Mev/s\n";
        }
        std::cerr << "[profile] total: " << all_events << " events, "
                  << fmt(all_wall, 1) << " ms, "
                  << fmt(all_wall > 0.0
                             ? static_cast<double>(all_events) /
                                   (all_wall / 1e3) / 1e6
                             : 0.0,
                         2)
                  << " Mev/s\n";
    }

    // Repro mode runs a hand-picked subset; the table printers would
    // fatal on the cells that were left out.
    if (only_keys.empty())
        for (const auto& m : mods)
            m.print();

    unsigned failures = 0;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (!outcomes[i].ok) {
            ++failures;
            std::cerr << "FAILED (" << jobStatusName(outcomes[i].status)
                      << "): " << runner.job(i).key << ": "
                      << outcomes[i].error << "\n";
        }
    }
    if (failures) {
        std::cerr << failures << " of " << total
                  << " simulations failed\n";
        return 1;
    }
    return 0;
}

} // namespace cbsim::bench

int
main(int argc, char** argv)
{
    return cbsim::bench::benchMain(argc, argv);
}
