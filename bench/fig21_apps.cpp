/**
 * @file
 * Figure 21 reproduction — execution time and network traffic for all
 * 19 benchmarks under scalable synchronization (CLH + TreeSR barrier),
 * all seven configurations, normalized to Invalidation, with the
 * geometric mean the paper quotes (callbacks ~11% faster and ~27% less
 * traffic than Invalidation; ~5% faster and ~15% less traffic than
 * BackOff-10).
 */

#include "bench_common.hh"

namespace cbsim::bench {
namespace {

std::string
key(const std::string& bench_name, Technique t)
{
    return "fig21/" + bench_name + "/" + techniqueName(t);
}

double
metricOf(const RunResult& r, bool traffic)
{
    return traffic ? static_cast<double>(r.flitHops)
                   : static_cast<double>(r.cycles);
}

void
printTables()
{
    std::cout << "\n=== Figure 21: execution time and network traffic, "
                 "19 benchmarks, scalable sync (CLH + TreeSR) ===\n"
              << "(normalized to Invalidation)\n\n";
    for (bool traffic : {false, true}) {
        std::cout << (traffic ? "--- network traffic (flit-hops) ---\n"
                              : "--- execution time (cycles) ---\n");
        std::vector<std::string> headers = {"benchmark"};
        for (Technique t : allTechniques)
            headers.push_back(techniqueName(t));
        TablePrinter table(std::cout, headers, 16, 13);

        std::map<Technique, std::vector<double>> normalized;
        for (const auto& p : figSuite()) {
            const double base = metricOf(
                result(key(p.name, Technique::Invalidation)).run,
                traffic);
            std::vector<std::string> cells = {p.name};
            for (Technique t : allTechniques) {
                const double v =
                    metricOf(result(key(p.name, t)).run, traffic) /
                    base;
                normalized[t].push_back(v);
                cells.push_back(norm(v));
            }
            table.row(cells);
        }
        std::vector<std::string> gm = {"geomean"};
        for (Technique t : allTechniques)
            gm.push_back(norm(geomean(normalized[t])));
        table.row(gm);
        table.gap();
    }
    std::cout
        << "Paper shape check (geomean row): callback variants <= 1.0 "
           "vs Invalidation in time, clearly < 1.0 in traffic, and "
           "beat BackOff-15 in traffic while matching the best "
           "back-off in time.\n";
}

void
registerCells()
{
    for (const auto& p : figSuite()) {
        for (Technique t : allTechniques) {
            registerJob(SweepJob::forProfile(
                key(p.name, t), scaled(p, mode().scale), t,
                mode().cores, SyncChoice::scalable()));
        }
    }
}

const BenchRegistrar reg({21, "fig21_apps",
                          "Fig. 21 — exec time + network traffic, 19 "
                          "benchmarks, 7 configs",
                          registerCells, printTables});

} // namespace
} // namespace cbsim::bench
