/**
 * @file
 * Figure 22 reproduction — energy consumption (L1 / LLC / network
 * breakdown) for all 19 benchmarks, normalized to Invalidation.
 * The paper's qualitative story: Invalidation spins in the (relatively
 * expensive) L1; back-off shifts energy into LLC + network; callbacks
 * minimize all three. Quoted numbers: callbacks ~40% below Invalidation
 * and ~5% below BackOff-10 overall.
 */

#include "bench_common.hh"

namespace cbsim::bench {
namespace {

std::string
key(const std::string& bench_name, Technique t)
{
    return "fig22/" + bench_name + "/" + techniqueName(t);
}

void
printTables()
{
    std::cout << "\n=== Figure 22: energy consumption (normalized to "
                 "Invalidation; components are fractions of the "
                 "config's on-chip total) ===\n\n";
    std::vector<std::string> headers = {"benchmark"};
    for (Technique t : allTechniques)
        headers.push_back(techniqueName(t));
    TablePrinter table(std::cout, headers, 16, 24);

    std::map<Technique, std::vector<double>> normalized;
    for (const auto& p : figSuite()) {
        const double base =
            result(key(p.name, Technique::Invalidation))
                .energy.onChip();
        std::vector<std::string> cells = {p.name};
        for (Technique t : allTechniques) {
            const auto& e = result(key(p.name, t)).energy;
            const double total = e.onChip() / base;
            normalized[t].push_back(total);
            // total(L1/LLC/net shares)
            cells.push_back(
                norm(total) + "(" + fmt(e.l1 / e.onChip(), 2) + "/" +
                fmt(e.llc / e.onChip(), 2) + "/" +
                fmt(e.network / e.onChip(), 2) + ")");
        }
        table.row(cells);
    }
    std::vector<std::string> gm = {"geomean"};
    for (Technique t : allTechniques)
        gm.push_back(norm(geomean(normalized[t])));
    table.row(gm);
    table.gap();
    std::cout
        << "Paper shape check: Invalidation is L1-heavy; BackOff-0/5 "
           "shift weight to LLC+network; callbacks minimize the "
           "total.\n";
}

void
registerCells()
{
    for (const auto& p : figSuite()) {
        for (Technique t : allTechniques) {
            registerJob(SweepJob::forProfile(
                key(p.name, t), scaled(p, mode().scale), t,
                mode().cores, SyncChoice::scalable()));
        }
    }
}

const BenchRegistrar reg({22, "fig22_energy",
                          "Fig. 22 — L1/LLC/network energy breakdown",
                          registerCells, printTables});

} // namespace
} // namespace cbsim::bench
