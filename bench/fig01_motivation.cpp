/**
 * @file
 * Figure 1 reproduction — motivation: explicit invalidation vs LLC
 * spinning with exponential back-off (0/5/10/15 exponentiations), for
 * spin-waiting in a CLH queue lock and a tree sense-reversal barrier.
 * Reports LLC accesses and latency, normalized to the largest value per
 * synchronization algorithm, exactly like the paper's two panels.
 */

#include "bench_common.hh"

namespace cbsim::bench {
namespace {

const Technique kTechniques[] = {
    Technique::Invalidation, Technique::BackOff0, Technique::BackOff5,
    Technique::BackOff10, Technique::BackOff15,
};

const SyncMicro kMicros[] = {SyncMicro::ClhLock, SyncMicro::TreeBarrier};

std::string
key(SyncMicro m, Technique t)
{
    return std::string("fig01/") + syncMicroName(m) + "/" +
           techniqueName(t);
}

void
printTables()
{
    std::cout << "\n=== Figure 1: explicit invalidation vs. "
                 "self-invalidation with back-off ===\n"
              << "(normalized to the largest value per sync algorithm; "
                 "latency = mean cycles per operation)\n\n";

    for (const char* metric : {"LLC accesses", "latency"}) {
        std::cout << "--- " << metric << " ---\n";
        std::vector<std::string> headers = {"sync-algo"};
        for (Technique t : kTechniques)
            headers.push_back(techniqueName(t));
        TablePrinter table(std::cout, headers, 18, 14);
        for (SyncMicro m : kMicros) {
            double raw[5];
            double max_v = 0.0;
            for (int i = 0; i < 5; ++i) {
                const auto& r = result(key(m, kTechniques[i])).run;
                raw[i] = std::strcmp(metric, "latency") == 0
                             ? syncLatency(r)
                             : static_cast<double>(r.llcSyncAccesses);
                max_v = std::max(max_v, raw[i]);
            }
            std::vector<std::string> cells = {syncMicroName(m)};
            for (int i = 0; i < 5; ++i)
                cells.push_back(norm(max_v > 0 ? raw[i] / max_v : 0));
            table.row(cells);
        }
        table.gap();
    }
    std::cout
        << "Paper shape check: Invalidation has near-minimal LLC "
           "accesses and latency; BackOff-0 maximizes LLC accesses; "
           "increasing the exponentiation cap trades LLC accesses for "
           "latency (no single best back-off).\n";
}

void
registerCells()
{
    for (SyncMicro m : kMicros) {
        for (Technique t : kTechniques) {
            registerJob(SweepJob::forMicro(key(m, t), m, t,
                                           mode().cores,
                                           mode().microIters));
        }
    }
}

const BenchRegistrar reg({10, "fig01_motivation",
                          "Fig. 1 — invalidation vs back-off: LLC "
                          "accesses / latency trade-off",
                          registerCells, printTables});

} // namespace
} // namespace cbsim::bench
