/**
 * @file
 * Ablation — pause-while-waiting (paper §2.1): "a further important
 * benefit of a callback is that a core can easily go into a
 * power-saving mode while waiting"; the paper leaves demonstrating this
 * to future work. This bench quantifies it in our model: a core blocked
 * on a callback read is architecturally idle (no retries, no local
 * spinning — the wake-up arrives as a response), so its blocked cycles
 * can run at a low-power rate. Spinning techniques have no comparable
 * window: MESI cores re-check their L1 and back-off cores must wake to
 * retry.
 *
 * Reported per technique: total core stall cycles, the pausable
 * (callback-blocked) fraction, and the resulting core-energy saving.
 */

#include "bench_common.hh"

namespace cbsim::bench {
namespace {

std::string
key(const std::string& bench_name, Technique t)
{
    return "pause/" + bench_name + "/" + techniqueName(t);
}

const Technique kTechniques[] = {
    Technique::Invalidation,
    Technique::BackOff10,
    Technique::CbAll,
    Technique::CbOne,
};

void
printTables()
{
    std::cout << "\n=== Ablation: pause-while-waiting (paper §2.1) ===\n"
              << "(pausable = cycles blocked on callbacks; saving = "
                 "core energy at corePaused vs coreActive)\n\n";
    TablePrinter table(std::cout,
                       {"bench/technique", "stall-cyc", "pausable",
                        "pausable%", "saving-nJ"},
                       30, 13);
    for (const auto& p : quickSuite()) {
        for (Technique t : kTechniques) {
            const auto& res = result(key(p.name, t));
            const auto& r = res.run;
            const double pct =
                r.stallCycles
                    ? 100.0 * static_cast<double>(r.cbBlockedCycles) /
                          static_cast<double>(r.stallCycles)
                    : 0.0;
            table.row({p.name + std::string(" / ") + techniqueName(t),
                       std::to_string(r.stallCycles),
                       std::to_string(r.cbBlockedCycles), fmt(pct, 1),
                       fmt(pauseSavings(r), 1)});
        }
        table.gap();
    }
    std::cout
        << "Expected: only the callback techniques have a non-zero "
           "pausable fraction; for synchronization-heavy benchmarks "
           "most of their stall time is pausable.\n";
}

void
registerCells()
{
    for (const auto& p : quickSuite()) {
        for (Technique t : kTechniques) {
            registerJob(SweepJob::forProfile(
                key(p.name, t), scaled(p, mode().scale), t,
                mode().cores, SyncChoice::scalable()));
        }
    }
}

const BenchRegistrar reg({32, "ablation_pause",
                          "§2.1 — pause-while-waiting core-energy "
                          "saving",
                          registerCells, printTables});

} // namespace
} // namespace cbsim::bench
