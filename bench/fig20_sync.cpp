/**
 * @file
 * Figure 20 reproduction — effect of callbacks on synchronization:
 * extends Figure 1 with CB-All and CB-One for all analyzed constructs
 * (T&T&S acquire, CLH acquire, SR barrier, TreeSR barrier, and the wait
 * side of signal/wait). Reports LLC accesses and latency normalized to
 * the highest result per construct.
 */

#include "bench_common.hh"

namespace cbsim::bench {
namespace {

const SyncMicro kMicros[] = {
    SyncMicro::TtasLock, SyncMicro::ClhLock, SyncMicro::SrBarrier,
    SyncMicro::TreeBarrier, SyncMicro::SignalWait,
};

std::string
key(SyncMicro m, Technique t)
{
    return std::string("fig20/") + syncMicroName(m) + "/" +
           techniqueName(t);
}

void
printTables()
{
    std::cout << "\n=== Figure 20: effect of callbacks on "
                 "synchronization ===\n"
              << "(normalized to the highest result per construct)\n\n";
    for (const char* metric : {"LLC accesses", "latency"}) {
        std::cout << "--- " << metric << " ---\n";
        std::vector<std::string> headers = {"construct"};
        for (Technique t : allTechniques)
            headers.push_back(techniqueName(t));
        TablePrinter table(std::cout, headers, 18, 13);
        for (SyncMicro m : kMicros) {
            std::vector<double> raw;
            double max_v = 0.0;
            for (Technique t : allTechniques) {
                const auto& r = result(key(m, t)).run;
                raw.push_back(std::strcmp(metric, "latency") == 0
                                  ? syncLatency(r)
                                  : static_cast<double>(
                                        r.llcSyncAccesses));
                max_v = std::max(max_v, raw.back());
            }
            std::vector<std::string> cells = {syncMicroName(m)};
            for (double v : raw)
                cells.push_back(norm(max_v > 0 ? v / max_v : 0));
            table.row(cells);
        }
        table.gap();
    }
    std::cout
        << "Paper shape check: back-off variants dominate LLC accesses "
           "on every construct; CB-All ~ CB-One except for T&T&S "
           "acquire and the SR barrier (which embeds a T&T&S), where "
           "only CB-One approaches Invalidation (§5.3); Invalidation "
           "loses in latency on the naive constructs (T&T&S, SR) under "
           "contention.\n";
}

void
registerCells()
{
    for (SyncMicro m : kMicros) {
        for (Technique t : allTechniques) {
            registerJob(SweepJob::forMicro(key(m, t), m, t,
                                           mode().cores,
                                           mode().microIters));
        }
    }
}

const BenchRegistrar reg({20, "fig20_sync",
                          "Fig. 20 — effect of callbacks on five sync "
                          "constructs",
                          registerCells, printTables});

} // namespace
} // namespace cbsim::bench
