/**
 * @file
 * Host-performance benchmark of the simulation kernel.
 *
 * Runs a fig21-style workload mix (quick-suite benchmarks under the
 * MESI baseline, a back-off variant, and both callback flavours),
 * measures host wall time and executed kernel events per cell, and
 * writes a *host-perf* JSON artifact (schema: docs/PERF.md). Two
 * windows are timed per cell: the event-loop window (Chip::run's
 * dispatch loop — the kernel-throughput headline) and the full
 * experiment wall including workload build, chip construction, and
 * stats extraction (identical code on both sides of a kernel
 * comparison, so it only dilutes the ratio). This is
 * deliberately NOT a bench_main module: host timings are
 * machine-dependent and must never enter the deterministic results
 * artifacts (docs/RESULTS.md contract), so this binary has its own
 * driver and its own output file.
 *
 * Compare two artifacts (e.g. before/after a kernel change) with
 * scripts/perf_compare.py.
 */

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/json.hh"
#include "sim/log.hh"
#include "workload/suite.hh"

namespace cbsim {
namespace {

/** Techniques in the measured mix: baseline, back-off, both callbacks. */
constexpr Technique perfTechniques[] = {
    Technique::Invalidation,
    Technique::BackOff10,
    Technique::CbAll,
    Technique::CbOne,
};

struct CellResult
{
    std::string key;
    std::uint64_t events = 0; ///< kernel events per run (deterministic)
    double bestWallMs = 0.0;  ///< fastest full-experiment wall, --repeat
    double bestSimMs = 0.0;   ///< fastest event-loop window, --repeat
};

struct Options
{
    unsigned cores = 16;
    double scale = 0.25;
    unsigned repeat = 3;
    std::string out = "bench/results/perf/perf_kernel.json";
    bool writeJson = true;
};

void
usage(const char* argv0)
{
    std::cout
        << "usage: " << argv0 << " [options]\n"
        << "  --full        paper-size cells (64 cores, full workloads)\n"
        << "  --smoke       4 cores, tiny workloads (CI sanity)\n"
        << "  --repeat N    runs per cell, best-of-N wall time "
           "(default: 3)\n"
        << "  --out FILE    host-perf artifact path (default: "
           "bench/results/perf/perf_kernel.json)\n"
        << "  --no-json     skip writing the artifact\n"
        << "  --help        this text\n"
        << "default sizing: 16 cores, 0.25-scale workloads\n";
}

double
eventsPerSec(std::uint64_t events, double wall_ms)
{
    return wall_ms > 0.0 ? static_cast<double>(events) / (wall_ms / 1e3)
                         : 0.0;
}

std::string
fmtMevps(double eps)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(2);
    os << eps / 1e6 << " Mev/s";
    return os.str();
}

void
writeArtifact(const Options& opt, const std::vector<CellResult>& cells)
{
    std::ostringstream os;
    {
        JsonWriter w(os);
        w.beginObject();
        w.field("schema", "cbsim-host-perf");
        w.field("schema_version", 2u);
        w.field("bench", "perf_kernel");
        w.key("config");
        w.beginObject();
        w.field("cores", opt.cores);
        w.field("scale", opt.scale);
        w.field("repeat", opt.repeat);
        w.endObject();
        w.key("cells");
        w.beginArray();
        std::uint64_t total_events = 0;
        double total_wall = 0.0;
        double total_sim = 0.0;
        for (const auto& c : cells) {
            total_events += c.events;
            total_wall += c.bestWallMs;
            total_sim += c.bestSimMs;
            w.beginObject();
            w.field("key", c.key);
            w.field("events", c.events);
            w.field("best_wall_ms", c.bestWallMs);
            w.field("best_sim_ms", c.bestSimMs);
            w.field("events_per_sec",
                    eventsPerSec(c.events, c.bestSimMs));
            w.endObject();
        }
        w.endArray();
        w.key("totals");
        w.beginObject();
        w.field("events", total_events);
        w.field("wall_ms", total_wall);
        w.field("sim_ms", total_sim);
        w.field("events_per_sec",
                eventsPerSec(total_events, total_sim));
        w.endObject();
        w.endObject();
    }
    const std::filesystem::path p(opt.out);
    std::error_code ec;
    if (p.has_parent_path())
        std::filesystem::create_directories(p.parent_path(), ec);
    std::ofstream f(p, std::ios::trunc);
    if (!f)
        fatal("perf_kernel: cannot write ", opt.out);
    f << os.str() << "\n";
    if (!f)
        fatal("perf_kernel: write failed: ", opt.out);
}

int
perfMain(int argc, char** argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--full") {
            opt.cores = 64;
            opt.scale = 1.0;
        } else if (a == "--smoke") {
            opt.cores = 4;
            opt.scale = 0.1;
            opt.repeat = 1;
        } else if (a == "--repeat" && i + 1 < argc) {
            opt.repeat = static_cast<unsigned>(std::stoul(argv[++i]));
        } else if (a == "--out" && i + 1 < argc) {
            opt.out = argv[++i];
        } else if (a == "--no-json") {
            opt.writeJson = false;
        } else if (a == "--help" || a == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::cerr << "unknown option: " << a << "\n";
            usage(argv[0]);
            return 2;
        }
    }
    if (opt.repeat == 0)
        opt.repeat = 1;

    const std::vector<Profile> suite = quickSuite();
    std::vector<CellResult> cells;
    std::cout << "cbsim perf_kernel: " << suite.size() << " benchmarks x "
              << std::size(perfTechniques) << " techniques, " << opt.cores
              << " cores, scale " << opt.scale << ", best of "
              << opt.repeat << "\n";

    for (const auto& p : suite) {
        const Profile sp = scaled(p, opt.scale);
        for (const Technique t : perfTechniques) {
            CellResult cell;
            cell.key = std::string("perf/") + p.name + "/" +
                       techniqueName(t);
            for (unsigned r = 0; r < opt.repeat; ++r) {
                const auto t0 = std::chrono::steady_clock::now();
                const ExperimentResult res =
                    runExperiment(sp, t, opt.cores);
                const double wall_ms =
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
                if (r == 0 || wall_ms < cell.bestWallMs)
                    cell.bestWallMs = wall_ms;
                if (r == 0 || res.run.simWallMs < cell.bestSimMs)
                    cell.bestSimMs = res.run.simWallMs;
                cell.events = res.run.events;
            }
            std::cout << "  " << cell.key << ": " << cell.events
                      << " events, "
                      << fmtMevps(
                             eventsPerSec(cell.events, cell.bestSimMs))
                      << "\n";
            cells.push_back(std::move(cell));
        }
    }

    std::uint64_t total_events = 0;
    double total_wall = 0.0;
    double total_sim = 0.0;
    for (const auto& c : cells) {
        total_events += c.events;
        total_wall += c.bestWallMs;
        total_sim += c.bestSimMs;
    }
    std::cout << "total: " << total_events << " events in "
              << static_cast<std::uint64_t>(total_sim)
              << " ms of event-loop time = "
              << fmtMevps(eventsPerSec(total_events, total_sim))
              << " (full-experiment wall "
              << static_cast<std::uint64_t>(total_wall) << " ms)\n";

    if (opt.writeJson) {
        writeArtifact(opt, cells);
        std::cout << "wrote " << opt.out << "\n";
    }
    return 0;
}

} // namespace
} // namespace cbsim

int
main(int argc, char** argv)
{
    return cbsim::perfMain(argc, argv);
}
