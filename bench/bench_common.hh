/**
 * @file
 * Shared plumbing for the figure-reproduction benches.
 *
 * Each bench source file is a *module*: it registers its simulation
 * cells as declarative SweepJobs and provides a table printer. A shared
 * driver (bench_main.cc) parses the command line, fans the collected
 * jobs out across a SweepRunner worker pool (--jobs N, default: all
 * hardware threads), writes one versioned JSON artifact per module to
 * bench/results/ (schema: docs/RESULTS.md), and then prints the
 * paper-shaped tables. Runs are bit-identical regardless of --jobs.
 *
 * Every binary accepts --quick (16 cores, scaled-down workloads) and
 * --smoke (4 cores, tiny workloads, reduced suite — the ctest tier-2
 * target); the default configuration is the paper's 64-core system.
 * bench_all links every module and regenerates the whole paper.
 */

#ifndef CBSIM_BENCH_BENCH_COMMON_HH
#define CBSIM_BENCH_BENCH_COMMON_HH

#include <cstring>
#include <functional>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/result_sink.hh"
#include "harness/sweep.hh"
#include "harness/table.hh"
#include "workload/suite.hh"

namespace cbsim::bench {

/** Global bench sizing and driver options, set by benchMain. */
struct BenchMode
{
    unsigned cores = 64;
    double scale = 1.0;
    unsigned microIters = 20;

    unsigned jobs = 0; ///< sweep worker threads; 0 = hardware threads
    bool smoke = false;
    bool writeJson = true;
    bool profile = false; ///< per-module host-perf summary to stderr
    std::string outDir = "bench/results";

    // Crash-safe sweep options (docs/ROBUSTNESS.md §Crash-safe sweeps).
    bool isolate = false;  ///< fork each job into a child (--isolate)
    bool resume = false;   ///< replay completed cells from the journal
    unsigned retries = 0;  ///< extra attempts for failed cells
    std::string quarantineDir; ///< repro bundles; "" = <outDir>/../quarantine
};

BenchMode& mode();

/**
 * The application suite the full-size figures sweep: all 19 benchmarks
 * normally, the reduced quick suite under --smoke.
 */
const std::vector<Profile>& figSuite();

/** One bench binary's worth of cells: registration + table printing. */
struct BenchModule
{
    int order = 0;     ///< presentation order across bench_all
    std::string name;  ///< artifact stem, e.g. "fig20_sync"
    std::string title; ///< one-line description (--list)
    std::function<void()> registerCells;
    std::function<void()> print;
};

/** Self-registration hook; define one per module at namespace scope. */
struct BenchRegistrar
{
    explicit BenchRegistrar(BenchModule m);
};

/** Register one simulation cell of the current module. */
void registerJob(SweepJob job);

/** Custom cell: configuration is opaque, only the key is serialized. */
void registerCell(const std::string& key,
                  std::function<ExperimentResult()> fn);

/** Result of a finished cell; fatal if @p key was never registered. */
const ExperimentResult& result(const std::string& key);

/** Mean sync latency over the kinds a micro-bench exercises. */
inline double
syncLatency(const RunResult& r)
{
    double total = 0;
    std::uint64_t count = 0;
    for (const auto& k : r.sync) {
        total += static_cast<double>(k.totalLatency);
        count += k.completions;
    }
    return count ? total / static_cast<double>(count) : 0.0;
}

/** Shared driver: parse args, run the sweep, emit JSON, print tables. */
int benchMain(int argc, char** argv);

} // namespace cbsim::bench

#endif // CBSIM_BENCH_BENCH_COMMON_HH
