/**
 * @file
 * Shared plumbing for the figure-reproduction benches: each (workload x
 * technique) cell is registered as a google-benchmark with a single
 * iteration; results are cached and the paper-shaped table is printed
 * after the benchmark pass.
 *
 * Every bench accepts --quick (16 cores, scaled-down workloads) for fast
 * smoke runs; the default configuration is the paper's 64-core system.
 */

#ifndef CBSIM_BENCH_BENCH_COMMON_HH
#define CBSIM_BENCH_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <cstring>
#include <functional>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/table.hh"

namespace cbsim::bench {

/** Global bench sizing, set by parseArgs. */
struct BenchMode
{
    unsigned cores = 64;
    double scale = 1.0;
    unsigned microIters = 20;
};

inline BenchMode&
mode()
{
    static BenchMode m;
    return m;
}

/** Strip and apply --quick before google-benchmark sees argv. */
inline void
parseArgs(int& argc, char** argv)
{
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            mode().cores = 16;
            mode().scale = 0.25;
            mode().microIters = 6;
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
}

/** Result cache keyed by a cell name chosen by the bench. */
inline std::map<std::string, ExperimentResult>&
cache()
{
    static std::map<std::string, ExperimentResult> c;
    return c;
}

/**
 * Register a single-iteration benchmark that runs @p fn once and
 * records throughput counters; the result lands in cache()[key].
 */
inline void
registerCell(const std::string& key,
             std::function<ExperimentResult()> fn)
{
    benchmark::RegisterBenchmark(
        key.c_str(),
        [key, fn](benchmark::State& state) {
            for (auto _ : state) {
                auto res = fn();
                state.counters["cycles"] =
                    static_cast<double>(res.run.cycles);
                state.counters["llc"] =
                    static_cast<double>(res.run.llcAccesses);
                state.counters["flit_hops"] =
                    static_cast<double>(res.run.flitHops);
                cache()[key] = std::move(res);
            }
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
}

inline const ExperimentResult&
result(const std::string& key)
{
    auto it = cache().find(key);
    if (it == cache().end())
        fatal("bench cell not run: ", key);
    return it->second;
}

/** Mean sync latency over the kinds a micro-bench exercises. */
inline double
syncLatency(const RunResult& r)
{
    double total = 0;
    std::uint64_t count = 0;
    for (const auto& k : r.sync) {
        total += static_cast<double>(k.totalLatency);
        count += k.completions;
    }
    return count ? total / static_cast<double>(count) : 0.0;
}

/** Run the registered cells, then call @p print. */
inline int
runAndPrint(int argc, char** argv, const std::function<void()>& print)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    print();
    benchmark::Shutdown();
    return 0;
}

} // namespace cbsim::bench

#endif // CBSIM_BENCH_BENCH_COMMON_HH
